(** Engine semantics: life cycles, valuation simultaneity, permissions
    (state, temporal, parametric, quantified), event calling closure,
    transactions with rollback, phases, incorporation, active objects,
    and the naive-vs-monitored permission equivalence. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let value = Alcotest.testable Value.pp Value.equal

let load ?config src =
  match Compile.load ?config src with
  | Ok (c, _) -> c
  | Error e -> Alcotest.failf "load failed: %s" e

let ident cls s = Ident.make cls (Value.String s)

let fire c id name args = Engine.fire c (Event.make id name args)

let accepted = function
  | Ok (_ : Engine.outcome) -> true
  | Error _ -> false

let reason = function
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error r -> r

let attr c id name =
  Eval.read_attr c (Community.object_exn c id) name []

let counter_spec = {|
object class COUNTER
  identification id: string;
  template
    attributes n: integer;
    events
      birth init;
      death stop;
      incr;
      decr;
      add(integer);
    valuation
      variables k: integer;
      [init] n = 0;
      [incr] n = n + 1;
      [decr] n = n - 1;
      [add(k)] n = n + k;
    permissions
      { n > 0 } decr;
end object class COUNTER;
|}

(* ------------------------------------------------------------------ *)
(* Life cycle                                                          *)
(* ------------------------------------------------------------------ *)

let test_lifecycle () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  check tbool "create" true
    (accepted (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ()));
  check value "initialised" (Value.Int 0) (attr c x "n");
  check value "id attribute" (Value.String "x") (attr c x "id");
  (match reason (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ()) with
  | Runtime_error.Already_alive _ -> ()
  | r -> Alcotest.failf "wrong reason %s" (Runtime_error.reason_to_string r));
  check tbool "event works" true (accepted (fire c x "incr" []));
  check tbool "death" true (accepted (Engine.destroy c ~id:x ()));
  (match reason (fire c x "incr" []) with
  | Runtime_error.Not_alive _ -> ()
  | r -> Alcotest.failf "wrong reason %s" (Runtime_error.reason_to_string r));
  (* no rebirth *)
  (match reason (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ()) with
  | Runtime_error.Already_alive _ -> ()
  | r -> Alcotest.failf "wrong reason %s" (Runtime_error.reason_to_string r))

let test_unknown_things () =
  let c = load counter_spec in
  (match Engine.create c ~cls:"NOPE" ~key:(Value.String "x") () with
  | Error (Runtime_error.Unknown_class "NOPE") -> ()
  | _ -> Alcotest.fail "unknown class");
  let x = ident "COUNTER" "x" in
  (match fire c x "incr" [] with
  | Error (Runtime_error.Unknown_object _) -> ()
  | _ -> Alcotest.fail "event on unknown object");
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  match fire c x "frobnicate" [] with
  | Error (Runtime_error.Unknown_event _) -> ()
  | _ -> Alcotest.fail "unknown event"

let test_events_on_unborn () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  match fire c x "incr" [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "event accepted on unborn object"

(* ------------------------------------------------------------------ *)
(* Valuation semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_valuation_effects () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  ignore (fire c x "incr" []);
  ignore (fire c x "incr" []);
  ignore (fire c x "add" [ Value.Int 5 ]);
  check value "accumulated" (Value.Int 7) (attr c x "n")

let swap_spec = {|
object class SWAP
  identification id: string;
  template
    attributes a: integer; b: integer;
    events
      birth init(integer, integer);
      swap;
    valuation
      variables x: integer; y: integer;
      [init(x, y)] a = x;
      [init(x, y)] b = y;
      [swap] a = b;
      [swap] b = a;
end object class SWAP;
|}

let test_simultaneous_valuation () =
  (* the classic test: both right-hand sides read the PRE-state *)
  let c = load swap_spec in
  let x = ident "SWAP" "x" in
  ignore
    (Engine.create c ~cls:"SWAP" ~key:(Value.String "x")
       ~args:[ Value.Int 1; Value.Int 2 ] ());
  ignore (fire c x "swap" []);
  check value "a got old b" (Value.Int 2) (attr c x "a");
  check value "b got old a" (Value.Int 1) (attr c x "b")

let test_valuation_conflict () =
  let spec = {|
object class CONFLICT
  identification id: string;
  template
    attributes n: integer;
    events birth init; bump; slam;
    valuation
      [init] n = 0;
      [bump] n = n + 1;
      [slam] n = 99;
    calling
      bump >> self.slam;
end object class CONFLICT;
|}
  in
  let c = load spec in
  let x = ident "CONFLICT" "x" in
  ignore (Engine.create c ~cls:"CONFLICT" ~key:(Value.String "x") ());
  (* bump calls slam into the same step; both write n differently *)
  (match reason (fire c x "bump" []) with
  | Runtime_error.Valuation_conflict _ -> ()
  | r -> Alcotest.failf "wrong reason %s" (Runtime_error.reason_to_string r));
  check value "state unchanged after conflict" (Value.Int 0) (attr c x "n")

let test_guarded_valuation () =
  let spec = {|
object class GV
  identification id: string;
  template
    attributes n: integer; capped: bool;
    events birth init; step;
    valuation
      [init] n = 0;
      [init] capped = false;
      { n < 3 } [step] n = n + 1;
      { n >= 3 } [step] capped = true;
end object class GV;
|}
  in
  let c = load spec in
  let x = ident "GV" "x" in
  ignore (Engine.create c ~cls:"GV" ~key:(Value.String "x") ());
  for _ = 1 to 5 do
    ignore (fire c x "step" [])
  done;
  check value "guard stopped increments" (Value.Int 3) (attr c x "n");
  check value "other guard fired" (Value.Bool true) (attr c x "capped")

(* ------------------------------------------------------------------ *)
(* Permissions                                                         *)
(* ------------------------------------------------------------------ *)

let test_state_permission () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  (match reason (fire c x "decr" []) with
  | Runtime_error.Permission_denied _ -> ()
  | r -> Alcotest.failf "wrong reason: %s" (Runtime_error.reason_to_string r));
  ignore (fire c x "incr" []);
  check tbool "allowed when positive" true (accepted (fire c x "decr" []))

let dept_community () =
  let c = load Paper_specs.dept in
  let alice = ident "PERSON" "alice" in
  let bob = ident "PERSON" "bob" in
  let d = ident "DEPT" "d" in
  ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "alice") ());
  ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "bob") ());
  ignore
    (Engine.create c ~cls:"DEPT" ~key:(Value.String "d")
       ~args:[ Value.Date 0 ] ());
  (c, alice, bob, d)

let test_temporal_permission_indexed () =
  let c, alice, bob, d = dept_community () in
  (* fire(P) requires sometime(after(hire(P))) — per instantiation *)
  check tbool "alice not yet hired" false
    (accepted (fire c d "fire" [ Ident.to_value alice ]));
  ignore (fire c d "hire" [ Ident.to_value alice ]);
  check tbool "bob's monitor is separate" false
    (accepted (fire c d "fire" [ Ident.to_value bob ]));
  check tbool "alice can be fired" true
    (accepted (fire c d "fire" [ Ident.to_value alice ]));
  (* the permission is about history, not current membership: a second
     fire of alice still satisfies sometime(after(hire(alice))) but she
     is only removed once — still accepted by the guard *)
  check tbool "guard latches" true
    (accepted (fire c d "fire" [ Ident.to_value alice ]))

let test_quantified_permission () =
  let c, alice, bob, d = dept_community () in
  ignore (fire c d "hire" [ Ident.to_value alice ]);
  ignore (fire c d "hire" [ Ident.to_value bob ]);
  check tbool "closure blocked (two employed)" false
    (accepted (fire c d "closure" []));
  ignore (fire c d "fire" [ Ident.to_value alice ]);
  check tbool "closure blocked (one employed)" false
    (accepted (fire c d "closure" []));
  ignore (fire c d "fire" [ Ident.to_value bob ]);
  check tbool "closure allowed (all fired)" true
    (accepted (fire c d "closure" []))

let test_quantified_vacuous () =
  let c = load Paper_specs.dept in
  let d = ident "DEPT" "empty" in
  ignore
    (Engine.create c ~cls:"DEPT" ~key:(Value.String "empty")
       ~args:[ Value.Date 0 ] ());
  check tbool "closure of never-staffed department" true
    (accepted (fire c d "closure" []))

let test_permission_conjunction () =
  (* several permissions on one event must all hold *)
  let spec = {|
object class PC
  identification id: string;
  template
    attributes a: bool; b: bool;
    events birth init(bool, bool); go;
    valuation
      variables x: bool; y: bool;
      [init(x, y)] a = x;
      [init(x, y)] b = y;
    permissions
      { a } go;
      { b } go;
end object class PC;
|}
  in
  let c = load spec in
  let mk name va vb =
    ignore
      (Engine.create c ~cls:"PC" ~key:(Value.String name)
         ~args:[ Value.Bool va; Value.Bool vb ] ())
  in
  mk "tt" true true;
  mk "tf" true false;
  check tbool "both guards hold" true (accepted (fire c (ident "PC" "tt") "go" []));
  check tbool "one guard fails" false (accepted (fire c (ident "PC" "tf") "go" []))

(* ------------------------------------------------------------------ *)
(* Event calling                                                       *)
(* ------------------------------------------------------------------ *)

let test_global_calling () =
  let c, alice, _, d = dept_community () in
  match fire c d "new_manager" [ Ident.to_value alice ] with
  | Ok o ->
      let step = List.concat o.Engine.committed in
      check tint "two events in one step (plus phases)" 2
        (List.length
           (List.filter
              (fun (e : Event.t) ->
                List.mem e.Event.name [ "new_manager"; "become_manager" ])
              step))
  | Error r -> Alcotest.failf "rejected: %s" (Runtime_error.reason_to_string r)

let test_calling_cascade () =
  (* a >> b >> c across three objects in one synchronous set *)
  let spec = {|
object class NODE
  identification id: string;
  template
    attributes next: |NODE|; hits: integer;
    events birth init(|NODE|); pulse;
    valuation
      variables N: |NODE|;
      [init(N)] next = N;
      [init(N)] hits = 0;
      [pulse] hits = hits + 1;
    calling
      { defined(next) } pulse >> NODE(next).pulse;
end object class NODE;
|}
  in
  let c = load spec in
  let n1 = ident "NODE" "n1" and n2 = ident "NODE" "n2" and n3 = ident "NODE" "n3" in
  ignore (Engine.create c ~cls:"NODE" ~key:(Value.String "n3") ~args:[ Value.Undefined ] ());
  ignore (Engine.create c ~cls:"NODE" ~key:(Value.String "n2") ~args:[ Ident.to_value n3 ] ());
  ignore (Engine.create c ~cls:"NODE" ~key:(Value.String "n1") ~args:[ Ident.to_value n2 ] ());
  (match fire c n1 "pulse" [] with
  | Ok o ->
      check tint "three events in one sync set" 3
        (List.length (List.concat o.Engine.committed))
  | Error r -> Alcotest.failf "rejected: %s" (Runtime_error.reason_to_string r));
  List.iter
    (fun n -> check value "hit" (Value.Int 1) (attr c n "hits"))
    [ n1; n2; n3 ]

let test_calling_cycle_is_shared () =
  (* mutual calling converges: the closure is a set, not a loop *)
  let spec = {|
object class PING
  identification id: string;
  template
    attributes n: integer; peer: |PING|;
    events birth init(|PING|); ping;
    valuation
      variables P: |PING|;
      [init(P)] peer = P;
      [init(P)] n = 0;
      [ping] n = n + 1;
    calling
      { defined(peer) } ping >> PING(peer).ping;
end object class PING;
|}
  in
  let c = load spec in
  let a = ident "PING" "a" and b = ident "PING" "b" in
  ignore (Engine.create c ~cls:"PING" ~key:(Value.String "a") ~args:[ Ident.to_value b ] ());
  (* b's init can refer to a even though a's peer was bound first *)
  ignore (Engine.create c ~cls:"PING" ~key:(Value.String "b") ~args:[ Ident.to_value a ] ());
  check tbool "mutual calling accepted" true (accepted (fire c a "ping" []));
  check value "a stepped once" (Value.Int 1) (attr c a "n");
  check value "b stepped once" (Value.Int 1) (attr c b "n")

let test_transaction_calling_and_rollback () =
  let spec = {|
object class TX
  identification id: string;
  template
    attributes n: integer;
    events birth init; double_up; bump; explode;
    valuation
      [init] n = 0;
      [bump] n = n + 1;
    permissions
      { n >= 10 } explode;
    calling
      double_up >> (bump; bump);
end object class TX;
|}
  in
  let c = load spec in
  let x = ident "TX" "x" in
  ignore (Engine.create c ~cls:"TX" ~key:(Value.String "x") ());
  (match fire c x "double_up" [] with
  | Ok o -> check tint "three micro-steps" 3 (List.length o.Engine.committed)
  | Error r -> Alcotest.failf "rejected: %s" (Runtime_error.reason_to_string r));
  check value "sequence applied in order" (Value.Int 2) (attr c x "n");
  (* a failing element anywhere aborts the whole chain *)
  let r =
    Engine.fire_seq c
      [ Event.make x "bump" []; Event.make x "explode" [] ]
  in
  check tbool "transaction rejected" false (accepted r);
  check value "first element rolled back" (Value.Int 2) (attr c x "n")

let test_rollback_restores_monitors () =
  (* after a rejected transaction the permission monitors must be as
     before: hire(bob);closure would step hire's monitor — rollback *)
  let c, alice, bob, d = dept_community () in
  ignore (fire c d "hire" [ Ident.to_value alice ]);
  let r =
    Engine.fire_seq c
      [ Event.make d "hire" [ Ident.to_value bob ];
        Event.make d "closure" [] ]
  in
  check tbool "transaction rejected" false (accepted r);
  (* bob's hire was rolled back: firing him must still be impossible *)
  check tbool "bob's monitor rolled back" false
    (accepted (fire c d "fire" [ Ident.to_value bob ]));
  check value "extension intact" (Value.Bool true)
    (Value.Bool
       (Ident.Set.mem d (Community.extension c "DEPT")));
  (* alice unaffected *)
  check tbool "alice still fireable" true
    (accepted (fire c d "fire" [ Ident.to_value alice ]))

let test_rollback_removes_created () =
  let spec = {|
object class BAD
  identification id: string;
  template
    attributes n: integer;
    events birth init;
    valuation [init] n = 1;
    constraints static n > 5;
end object class BAD;
|}
  in
  let c = load spec in
  (match Engine.create c ~cls:"BAD" ~key:(Value.String "x") () with
  | Error (Runtime_error.Constraint_violated _) -> ()
  | _ -> Alcotest.fail "constraint should reject birth");
  check tbool "object not registered" true
    (Community.find_object c (ident "BAD" "x") = None);
  check tint "extension empty" 0
    (Ident.Set.cardinal (Community.extension c "BAD"))

(* ------------------------------------------------------------------ *)
(* Constraints                                                         *)
(* ------------------------------------------------------------------ *)

let test_static_constraint () =
  let spec = {|
object class LIMIT
  identification id: string;
  template
    attributes n: integer;
    events birth init; add(integer);
    valuation
      variables k: integer;
      [init] n = 0;
      [add(k)] n = n + k;
    constraints
      static n <= 10;
end object class LIMIT;
|}
  in
  let c = load spec in
  let x = ident "LIMIT" "x" in
  ignore (Engine.create c ~cls:"LIMIT" ~key:(Value.String "x") ());
  check tbool "within bound" true (accepted (fire c x "add" [ Value.Int 10 ]));
  check tbool "over bound rejected" false
    (accepted (fire c x "add" [ Value.Int 1 ]));
  check value "state preserved" (Value.Int 10) (attr c x "n")

let test_temporal_constraint () =
  (* once armed, always armed: a temporal (non-static) constraint *)
  let spec = {|
object class ARM
  identification id: string;
  template
    attributes armed: bool;
    events birth init; arm; disarm;
    valuation
      [init] armed = false;
      [arm] armed = true;
      [disarm] armed = false;
    constraints
      sometime(armed) => armed;
end object class ARM;
|}
  in
  let c = load spec in
  let x = ident "ARM" "x" in
  ignore (Engine.create c ~cls:"ARM" ~key:(Value.String "x") ());
  check tbool "arming ok" true (accepted (fire c x "arm" []));
  check tbool "disarming violates history constraint" false
    (accepted (fire c x "disarm" []));
  check value "still armed" (Value.Bool true) (attr c x "armed")

(* ------------------------------------------------------------------ *)
(* Phases, inheritance, components                                     *)
(* ------------------------------------------------------------------ *)

let company_community () =
  let c = load Paper_specs.company in
  let key name =
    Value.Tuple [ ("Name", Value.String name); ("Birthdate", Value.Date 0) ]
  in
  let mk name salary dept =
    ignore
      (Engine.create c ~cls:"PERSON" ~key:(key name)
         ~args:[ Value.Money (Money.of_units salary); Value.String dept ] ());
    Ident.make "PERSON" (key name)
  in
  (c, mk)

let test_phase_birth_and_delegation () =
  let c, mk = company_community () in
  let alice = mk "alice" 6000 "Research" in
  let d = ident "DEPT" "Research" in
  ignore (Engine.create c ~cls:"DEPT" ~key:(Value.String "Research") ());
  ignore (fire c d "new_manager" [ Ident.to_value alice ]);
  let alice_mgr = Ident.as_class "MANAGER" alice in
  check tbool "phase exists" true (Community.living c alice_mgr <> None);
  (* inherited attribute read through the phase *)
  check value "delegated Salary" (Value.Money (Money.of_units 6000))
    (attr c alice_mgr "Salary");
  (* events fired at the phase delegate upward *)
  check tbool "inherited event" true
    (accepted (fire c alice_mgr "ChangeSalary" [ Value.Money (Money.of_units 7000) ]));
  check value "base attribute updated" (Value.Money (Money.of_units 7000))
    (attr c alice "Salary")

let test_phase_constraint_blocks_promotion () =
  let c, mk = company_community () in
  let bob = mk "bob" 3000 "Sales" in
  let d = ident "DEPT" "Sales" in
  ignore (Engine.create c ~cls:"DEPT" ~key:(Value.String "Sales") ());
  check tbool "promotion rejected by phase constraint" false
    (accepted (fire c d "new_manager" [ Ident.to_value bob ]));
  (* atomicity: the base-level effect was rolled back too *)
  check value "manager not recorded" Value.Undefined (attr c d "manager");
  check tbool "phase not created" true
    (Community.find_object c (Ident.as_class "MANAGER" bob) = None)

let test_phase_direct_birth_requires_base () =
  let c, _ = company_community () in
  let ghost =
    Ident.make "MANAGER"
      (Value.Tuple [ ("Name", Value.String "ghost"); ("Birthdate", Value.Date 0) ])
  in
  match Engine.fire c (Event.make ghost "become_manager" []) with
  | Error (Runtime_error.Not_alive _) -> ()
  | Error r -> Alcotest.failf "wrong reason %s" (Runtime_error.reason_to_string r)
  | Ok _ -> Alcotest.fail "phase born without base aspect"

let test_components_and_incorporation () =
  let c, _ = company_community () in
  let d = ident "DEPT" "Sales" in
  ignore (Engine.create c ~cls:"DEPT" ~key:(Value.String "Sales") ());
  let comp = Ident.singleton "TheCompany" in
  ignore
    (Engine.create c ~cls:"TheCompany" ~key:(Value.Tuple [])
       ~args:[ Value.Date 0 ] ());
  ignore (fire c comp "add_dept" [ Ident.to_value d ]);
  check value "component list" (Value.List [ Ident.to_value d ])
    (attr c comp "depts")

let test_specialization_creates_base_aspect () =
  let spec = {|
object class THING
  identification id: string;
  template
    attributes tag: string;
    events birth appear; death disappear; touch;
    valuation
      [appear] tag = "thing";
end object class THING;

object class GADGET
  specialization of THING;
  identification id: string;
  template
    attributes volts: integer;
    events birth appear_g; zap;
    valuation
      [appear_g] volts = 12;
end object class GADGET;
|}
  in
  let c = load spec in
  let g = ident "GADGET" "g1" in
  (* closure under inheritance: the base aspect must exist first *)
  (match Engine.create c ~cls:"GADGET" ~key:(Value.String "g1") () with
  | Error (Runtime_error.Not_alive _) -> ()
  | _ -> Alcotest.fail "specialization born without base aspect");
  ignore (Engine.create c ~cls:"THING" ~key:(Value.String "g1") ());
  ignore (Engine.create c ~cls:"GADGET" ~key:(Value.String "g1") ());
  check value "own attribute" (Value.Int 12) (attr c g "volts");
  check value "inherited attribute" (Value.String "thing") (attr c g "tag");
  check tbool "inherited event" true (accepted (fire c g "touch" []));
  (* aspects share the life cycle: base death ends the specialization *)
  ignore
    (Engine.fire c
       (Event.make (ident "THING" "g1") "disappear" []));
  check tbool "specialization died with base" true
    (Community.living c g = None)

let test_base_death_kills_phases () =
  let c, mk = company_community () in
  let alice = mk "alice" 6000 "Research" in
  let d = ident "DEPT" "R" in
  ignore (Engine.create c ~cls:"DEPT" ~key:(Value.String "R") ());
  ignore (fire c d "new_manager" [ Ident.to_value alice ]);
  let mgr = Ident.as_class "MANAGER" alice in
  check tbool "phase alive" true (Community.living c mgr <> None);
  (* the person dies: the MANAGER aspect must end with it *)
  (match Engine.destroy c ~id:alice ~event:"dies" () with
  | Ok o ->
      check tbool "both identities destroyed" true
        (List.length o.Engine.destroyed = 2)
  | Error r -> Alcotest.failf "%s" (Runtime_error.reason_to_string r));
  check tbool "phase dead" true (Community.living c mgr = None);
  check tint "manager extension empty" 0
    (Ident.Set.cardinal (Community.extension c "MANAGER"));
  (* and the dead phase rejects events *)
  match fire c mgr "assign_official_car" [ Ident.to_value alice ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "event accepted on dead phase"

let test_phase_death_spares_base () =
  (* a role can end without ending the person *)
  let spec = {|
object class P
  identification id: string;
  template
    events birth born; death dies; take_role;
end object class P;
object class R
  view of P;
  template
    events birth P.take_role; death drop_role;
end object class R;
|}
  in
  let c = load spec in
  let p = ident "P" "x" in
  ignore (Engine.create c ~cls:"P" ~key:(Value.String "x") ());
  ignore (fire c p "take_role" []);
  let r = ident "R" "x" in
  check tbool "role born" true (Community.living c r <> None);
  ignore (Engine.destroy c ~id:r ~event:"drop_role" ());
  check tbool "role dead" true (Community.living c r = None);
  check tbool "base still alive" true (Community.living c p <> None)

(* ------------------------------------------------------------------ *)
(* Active objects                                                      *)
(* ------------------------------------------------------------------ *)

let test_active_objects () =
  let c = load Paper_specs.library in
  ignore
    (Engine.create c ~cls:"LibraryClock" ~key:(Value.Tuple [])
       ~args:[ Value.Date 0 ] ());
  let fired = Engine.run_active c ~fuel:100 in
  check tint "permission bounds autonomy at 7 ticks" 7 (List.length fired);
  check value "clock advanced" (Value.Date 7)
    (attr c (Ident.singleton "LibraryClock") "Today");
  (* audit re-enables *)
  ignore (fire c (Ident.singleton "LibraryClock") "audit" []);
  check tint "re-enabled" 7 (List.length (Engine.run_active c ~fuel:100));
  (* fuel is respected *)
  ignore (fire c (Ident.singleton "LibraryClock") "audit" []);
  check tint "fuel cap" 3 (List.length (Engine.run_active c ~fuel:3))

(* ------------------------------------------------------------------ *)
(* Quantifier evaluation in state formulas                             *)
(* ------------------------------------------------------------------ *)

let quantifier_spec = {|
data type Color = (red, green, blue);

object class ITEM
  identification id: string;
  template
    attributes Hue: Color; Weight: integer;
    events birth make(Color, integer);
    valuation
      variables c: Color; w: integer;
      [make(c, w)] Hue = c;
      [make(c, w)] Weight = w;
end object class ITEM;

object Checker
  template
    attributes dummy: integer;
    events birth boot;
      check_all; check_some; check_witness;
    valuation [boot] dummy = 0;
    permissions
      { for all (X: ITEM : X.Weight > 0) } check_all;
      { exists (X: ITEM : X.Hue = red) } check_some;
      { exists (w: integer : in({3, 5, 8}, w) and w > 4) } check_witness;
end object Checker;
|}

let quantifier_community () =
  let c = load quantifier_spec in
  let mk name color w =
    ignore
      (Engine.create c ~cls:"ITEM" ~key:(Value.String name)
         ~args:[ Value.Enum ("Color", color); Value.Int w ] ())
  in
  (c, mk, Ident.singleton "Checker")

let test_forall_over_extension () =
  let c, mk, checker = quantifier_community () in
  check tbool "vacuously true on empty extension" true
    (accepted (fire c checker "check_all" []));
  mk "a" "red" 5;
  mk "b" "green" 7;
  check tbool "all positive" true (accepted (fire c checker "check_all" []));
  mk "c" "blue" 0;
  check tbool "one zero-weight item falsifies" false
    (accepted (fire c checker "check_all" []))

let test_exists_over_extension () =
  let c, mk, checker = quantifier_community () in
  check tbool "false on empty extension" false
    (accepted (fire c checker "check_some" []));
  mk "a" "green" 5;
  check tbool "still no red item" false
    (accepted (fire c checker "check_some" []));
  mk "b" "red" 5;
  check tbool "red item found" true
    (accepted (fire c checker "check_some" []))

let test_exists_witness_extraction () =
  (* exists over an infinite base type, solved by witness candidates
     from the membership constraint — the paper's [exists(s1: integer)
     in(Emps, tuple(…, s1))] pattern *)
  let c, _, checker = quantifier_community () in
  check tbool "witness 5 or 8 found" true
    (accepted (fire c checker "check_witness" []))

(* ------------------------------------------------------------------ *)
(* Event sharing (simultaneous events)                                 *)
(* ------------------------------------------------------------------ *)

let test_fire_sync_shared_step () =
  (* two events of one object in one synchronous set: valuations read
     the same pre-state and must agree *)
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  (* incr and add(1) both write n from the same pre-state: both compute
     n = 0 + 1 — consistent, so the step is accepted once *)
  (match
     Engine.fire_sync c
       [ Event.make x "incr" []; Event.make x "add" [ Value.Int 1 ] ]
   with
  | Ok o -> check tint "one synchronous step" 1 (List.length o.Engine.committed)
  | Error r -> Alcotest.failf "%s" (Runtime_error.reason_to_string r));
  check value "applied once, not twice" (Value.Int 1) (attr c x "n");
  (* conflicting writes in one shared step reject *)
  match
    Engine.fire_sync c
      [ Event.make x "incr" []; Event.make x "add" [ Value.Int 2 ] ]
  with
  | Error (Runtime_error.Valuation_conflict _) -> ()
  | _ -> Alcotest.fail "conflicting shared step accepted"

let test_fire_sync_two_objects () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" and y = ident "COUNTER" "y" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "y") ());
  (* atomicity across objects: y's decr is forbidden at 0, so x's incr
     must roll back too *)
  (match
     Engine.fire_sync c [ Event.make x "incr" []; Event.make y "decr" [] ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forbidden shared step accepted");
  check value "x untouched" (Value.Int 0) (attr c x "n")

let test_runtime_arg_validation () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  (match fire c x "add" [] with
  | Error (Runtime_error.Eval_error _) -> ()
  | _ -> Alcotest.fail "arity violation accepted");
  (match fire c x "add" [ Value.String "one" ] with
  | Error (Runtime_error.Eval_error _) -> ()
  | _ -> Alcotest.fail "type violation accepted");
  check tbool "well-typed accepted" true
    (accepted (fire c x "add" [ Value.Int 1 ]));
  (* enum arguments are compatible by enumeration name *)
  let lib = load Paper_specs.library in
  check tbool "enum argument accepted" true
    (accepted
       (Engine.create lib ~cls:"BOOK" ~key:(Value.String "b")
          ~args:[ Value.String "T"; Value.Enum ("Genre", "poetry") ] ()));
  match
    Engine.create lib ~cls:"BOOK" ~key:(Value.String "b2")
      ~args:[ Value.String "T"; Value.Enum ("Color", "red") ] ()
  with
  | Error (Runtime_error.Eval_error _) -> ()
  | _ -> Alcotest.fail "foreign enumeration accepted"

let test_runaway_closure_rejected () =
  (* an event calling itself with fresh arguments never converges; the
     configurable bound turns it into a clean rejection *)
  let spec = {|
object class LOOP
  identification id: string;
  template
    attributes n: integer;
    events birth init; spin(integer);
    valuation
      variables k: integer;
      [init] n = 0;
      [spin(k)] n = k;
    calling
      variables k: integer;
      spin(k) >> self.spin(k + 1);
end object class LOOP;
|}
  in
  let config = { Community.default_config with Community.max_sync_set = 64 } in
  let c = load ~config spec in
  let x = ident "LOOP" "x" in
  ignore (Engine.create c ~cls:"LOOP" ~key:(Value.String "x") ());
  (match fire c x "spin" [ Value.Int 0 ] with
  | Error (Runtime_error.Unsupported _) -> ()
  | Error r -> Alcotest.failf "wrong reason %s" (Runtime_error.reason_to_string r)
  | Ok _ -> Alcotest.fail "runaway closure accepted");
  check value "rolled back" (Value.Int 0) (attr c x "n")

(* ------------------------------------------------------------------ *)
(* Enabledness queries                                                 *)
(* ------------------------------------------------------------------ *)

let test_enabled_events () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  check (Alcotest.list Alcotest.string) "unknown object" []
    (Engine.enabled_events c x);
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  (* decr is gated on n > 0 *)
  check (Alcotest.list Alcotest.string) "fresh counter"
    [ "stop"; "incr" ]
    (Engine.enabled_events c x);
  ignore (fire c x "incr" []);
  check (Alcotest.list Alcotest.string) "after incr"
    [ "stop"; "incr"; "decr" ]
    (Engine.enabled_events c x);
  (* the probe does not perturb state or monitors *)
  check value "state untouched by probes" (Value.Int 1) (attr c x "n");
  check tbool "candidate list includes parameterized events" true
    (List.mem_assoc "add" (Engine.candidate_events c x))

(* ------------------------------------------------------------------ *)
(* Naive (trace) permission checking ≡ monitors                        *)
(* ------------------------------------------------------------------ *)

let test_naive_equals_monitor () =
  let config = { Community.default_config with Community.record_history = true } in
  let c = load ~config Paper_specs.dept in
  let alice = ident "PERSON" "alice" in
  let d = ident "DEPT" "d" in
  ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "alice") ());
  ignore
    (Engine.create c ~cls:"DEPT" ~key:(Value.String "d") ~args:[ Value.Date 0 ] ());
  let o = Community.object_exn c d in
  let guard_body =
    match
      List.find_map
        (fun (p : Template.permission) ->
          match p.Template.pm_guard with
          | Template.PG_indexed { ix_body; _ } -> Some ix_body
          | _ -> None)
        (Community.template_exn c "DEPT").Template.t_perms
    with
    | Some body -> body
    | None -> Alcotest.fail "expected an indexed permission"
  in
  let naive binds = Engine.naive_guard_value c o guard_body ~binds in
  let binds = [ ("P", Ident.to_value alice) ] in
  check tbool "before hire: naive says no" false (naive binds);
  ignore (fire c d "hire" [ Ident.to_value alice ]);
  check tbool "after hire: naive says yes" true (naive binds);
  (* and it agrees with the engine's answer *)
  check tbool "engine agrees" true
    (accepted (fire c d "fire" [ Ident.to_value alice ]))

(* random walk: monitored decisions = naive decisions on every step *)
let prop_naive_equals_monitor_random =
  QCheck.Test.make ~name:"naive trace check ≡ incremental monitors"
    ~count:60
    (QCheck.make
       ~print:(fun l -> String.concat "" (List.map string_of_int l))
       QCheck.Gen.(list_size (int_range 1 25) (int_range 0 3)))
    (fun actions ->
      let config =
        { Community.default_config with Community.record_history = true }
      in
      let c = load ~config Paper_specs.dept in
      let alice = ident "PERSON" "alice" in
      let d = ident "DEPT" "d" in
      ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "alice") ());
      ignore
        (Engine.create c ~cls:"DEPT" ~key:(Value.String "d")
           ~args:[ Value.Date 0 ] ());
      let o = Community.object_exn c d in
      let guard_body =
        match
          List.find_map
            (fun (p : Template.permission) ->
              match p.Template.pm_guard with
              | Template.PG_indexed { ix_body; _ } -> Some ix_body
              | _ -> None)
            (Community.template_exn c "DEPT").Template.t_perms
        with
        | Some body -> body
        | None -> assert false
      in
      let ok = ref true in
      List.iter
        (fun action ->
          (* before acting, naive and monitored answers for fire(alice)
             must coincide *)
          let naive =
            Engine.naive_guard_value c o guard_body
              ~binds:[ ("P", Ident.to_value alice) ]
          in
          let monitored =
            match Engine.fire (Community.clone c) (Event.make d "fire" [ Ident.to_value alice ]) with
            | Ok _ -> true
            | Error (Runtime_error.Permission_denied _) -> false
            | Error _ -> naive (* other rejection reasons don't compare *)
          in
          if naive <> monitored then ok := false;
          let ev =
            match action with
            | 0 -> Event.make d "hire" [ Ident.to_value alice ]
            | 1 -> Event.make d "fire" [ Ident.to_value alice ]
            | 2 -> Event.make d "new_manager" [ Ident.to_value alice ]
            | _ -> Event.make d "hire" [ Ident.to_value alice ]
          in
          ignore (Engine.fire c ev))
        actions;
      !ok)

(* ------------------------------------------------------------------ *)
(* The transaction layer (Txn): journal, savepoints, probes, stats      *)
(* ------------------------------------------------------------------ *)

let cascade_birth_spec = {|
object class CHILD
  identification id: string;
  template
    events birth make;
end object class CHILD;
object class PARENT
  identification id: string;
  template
    attributes n: integer;
    events birth init; go; crash;
    valuation
      [init] n = 0;
      [crash] n = n - 1;
    constraints
      static n >= 0;
    calling
      go >> (CHILD("c").make; crash);
end object class PARENT;
|}

let test_cascade_rollback_unwinds_births () =
  let c = load cascade_birth_spec in
  let p = ident "PARENT" "p" in
  let child = ident "CHILD" "c" in
  ignore (Engine.create c ~cls:"PARENT" ~key:(Value.String "p") ());
  (* go queues two follow-up micro-steps: CHILD("c").make, then crash;
     the constraint violation happens in the LAST micro-step, after the
     child was born in an earlier one — the whole chain must unwind,
     object table, extension and storage index included *)
  (match fire c p "go" [] with
  | Error (Runtime_error.Constraint_violated _) -> ()
  | Ok _ -> Alcotest.fail "crash should reject the whole chain"
  | Error r ->
      Alcotest.failf "wrong reason %s" (Runtime_error.reason_to_string r));
  check tbool "child object removed" true
    (Community.find_object c child = None);
  check tint "CHILD extension empty" 0
    (Ident.Set.cardinal (Community.extension c "CHILD"));
  check tbool "storage index restored" true
    (Btree.find c.Community.index (Ident.to_value child) = None);
  check tint "index holds only the parent" 1
    (Btree.cardinal c.Community.index);
  check value "parent state unchanged" (Value.Int 0) (attr c p "n")

let test_probe_bit_identical () =
  let config =
    { Community.default_config with Community.record_history = true }
  in
  let c = load ~config Paper_specs.dept in
  let alice = ident "PERSON" "alice" in
  let d = ident "DEPT" "d" in
  ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "alice") ());
  ignore
    (Engine.create c ~cls:"DEPT" ~key:(Value.String "d")
       ~args:[ Value.Date 0 ] ());
  ignore (fire c d "hire" [ Ident.to_value alice ]);
  let o = Community.object_exn c d in
  let before = Persist.save c in
  let hist_before = List.length o.Obj_state.history in
  let steps_before = o.Obj_state.steps in
  (* both an accepted and a rejected probe must leave no trace *)
  check tbool "accepted probe" true
    (Engine.enabled c (Event.make d "fire" [ Ident.to_value alice ]));
  check tbool "rejected probe" false
    (Engine.enabled c (Event.make d "hire" [ Ident.to_value alice ]));
  check Alcotest.string "dump bit-identical" before (Persist.save c);
  (* Persist does not serialise histories: check them separately *)
  check tint "history untouched" hist_before (List.length o.Obj_state.history);
  check tint "steps counter untouched" steps_before o.Obj_state.steps;
  check tbool "real step still works after probing" true
    (accepted (fire c d "fire" [ Ident.to_value alice ]))

let test_nested_savepoints_lifo () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  let o = Community.object_exn c x in
  let t = Txn.begin_ c in
  Txn.touch t o;
  Obj_state.set_attr o "n" (Value.Int 1);
  let sp1 = Txn.savepoint t in
  Txn.touch t o;
  Obj_state.set_attr o "n" (Value.Int 2);
  let sp2 = Txn.savepoint t in
  Txn.touch t o;
  Obj_state.set_attr o "n" (Value.Int 3);
  check value "innermost write applied" (Value.Int 3) (Obj_state.attr o "n");
  Txn.rollback_to t sp2;
  check value "inner savepoint unwound first" (Value.Int 2)
    (Obj_state.attr o "n");
  Txn.rollback_to t sp1;
  check value "outer savepoint unwound second" (Value.Int 1)
    (Obj_state.attr o "n");
  Txn.rollback t;
  check value "whole transaction unwound last" (Value.Int 0)
    (Obj_state.attr o "n")

exception Boom

(* The exception branch of Txn.probe: the raise must pass through with
   every speculative mutation undone, the community's journal slot
   released (a later transaction takes the pooled journal, not a leaked
   live one), and — when the probe runs nested inside an open
   transaction — the outer journal and its savepoint LIFO untouched. *)
let test_probe_exception_branch () =
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  ignore (fire c x "incr" []);
  let before = Persist.save c in
  (* top-level: mutate through the engine, then raise out of the probe *)
  (match
     Txn.probe c (fun () ->
         ignore (fire c x "incr" []);
         raise Boom)
   with
  | _ -> Alcotest.fail "expected Boom to escape the probe"
  | exception Boom -> ());
  check Alcotest.string "raising probe leaves no trace" before (Persist.save c);
  check tbool "journal slot released" true (c.Community.journal = None);
  (* the pooled journal is reusable, not corrupted: a real step works *)
  check tbool "engine still works" true (accepted (fire c x "decr" []));
  ignore (fire c x "incr" []);
  (* nested: a raising probe between two savepoints, with a dangling
     inner scope the probe must unwind itself *)
  let o = Community.object_exn c x in
  let outer_before = Persist.save c in
  let t = Txn.begin_ c in
  Txn.touch t o;
  Obj_state.set_attr o "n" (Value.Int 1);
  let sp1 = Txn.savepoint t in
  Txn.touch t o;
  Obj_state.set_attr o "n" (Value.Int 2);
  (match
     Txn.probe c (fun () ->
         let inner = Txn.begin_ c in
         Txn.touch inner o;
         Obj_state.set_attr o "n" (Value.Int 99);
         (* neither commit nor rollback of [inner]: the probe's
            exception path owns the unwind *)
         raise Boom)
   with
  | _ -> Alcotest.fail "expected Boom to escape the nested probe"
  | exception Boom -> ());
  check value "probe mutations unwound under open txn" (Value.Int 2)
    (Obj_state.attr o "n");
  let sp2 = Txn.savepoint t in
  Txn.touch t o;
  Obj_state.set_attr o "n" (Value.Int 3);
  Txn.rollback_to t sp2;
  check value "savepoint after the probe unwinds first" (Value.Int 2)
    (Obj_state.attr o "n");
  Txn.rollback_to t sp1;
  check value "savepoint before the probe unwinds second" (Value.Int 1)
    (Obj_state.attr o "n");
  Txn.rollback t;
  check Alcotest.string "outer rollback restores the pre-txn image"
    outer_before (Persist.save c);
  check tbool "journal slot released after outer close" true
    (c.Community.journal = None)

let test_txn_stats_counters () =
  Txn.reset_stats ();
  let c = load counter_spec in
  let x = ident "COUNTER" "x" in
  ignore (Engine.create c ~cls:"COUNTER" ~key:(Value.String "x") ());
  ignore (fire c x "incr" []);
  check tbool "decr enabled after incr" true
    (Engine.enabled c (Event.make x "decr" []));
  ignore (fire c x "decr" []);
  (match fire c x "decr" [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decr at zero should be rejected");
  let s = Trace.txn_stats () in
  check tint "one probe" 1 s.Txn.probes;
  check tbool "transactions begun" true (s.Txn.begun >= 4);
  check tbool "transactions committed" true (s.Txn.committed >= 3);
  check tbool "rollbacks (probe + rejection)" true (s.Txn.rolled_back >= 2);
  check tbool "journal entries recorded" true (s.Txn.journal_entries > 0);
  check tbool "snapshot bytes accounted" true (s.Txn.bytes_snapshotted > 0);
  check tint "stats rows" 8 (List.length (Trace.txn_stats_rows ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "kernel"
    [
      ( "life-cycle",
        [
          Alcotest.test_case "birth/death" `Quick test_lifecycle;
          Alcotest.test_case "unknown names" `Quick test_unknown_things;
          Alcotest.test_case "events on unborn" `Quick test_events_on_unborn;
        ] );
      ( "valuation",
        [
          Alcotest.test_case "effects accumulate" `Quick test_valuation_effects;
          Alcotest.test_case "simultaneous (swap)" `Quick
            test_simultaneous_valuation;
          Alcotest.test_case "write conflict rejects" `Quick
            test_valuation_conflict;
          Alcotest.test_case "guarded rules" `Quick test_guarded_valuation;
        ] );
      ( "permissions",
        [
          Alcotest.test_case "state guard" `Quick test_state_permission;
          Alcotest.test_case "temporal, per instantiation" `Quick
            test_temporal_permission_indexed;
          Alcotest.test_case "quantified over class" `Quick
            test_quantified_permission;
          Alcotest.test_case "quantified, vacuous" `Quick
            test_quantified_vacuous;
          Alcotest.test_case "conjunction of guards" `Quick
            test_permission_conjunction;
        ] );
      ( "calling",
        [
          Alcotest.test_case "global interaction" `Quick test_global_calling;
          Alcotest.test_case "cascade" `Quick test_calling_cascade;
          Alcotest.test_case "mutual calling is sharing" `Quick
            test_calling_cycle_is_shared;
          Alcotest.test_case "transactions + rollback" `Quick
            test_transaction_calling_and_rollback;
          Alcotest.test_case "rollback restores monitors" `Quick
            test_rollback_restores_monitors;
          Alcotest.test_case "rollback removes created" `Quick
            test_rollback_removes_created;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "cascade rollback unwinds births" `Quick
            test_cascade_rollback_unwinds_births;
          Alcotest.test_case "probe leaves state bit-identical" `Quick
            test_probe_bit_identical;
          Alcotest.test_case "nested savepoints unwind LIFO" `Quick
            test_nested_savepoints_lifo;
          Alcotest.test_case "raising probe: no leak, LIFO intact" `Quick
            test_probe_exception_branch;
          Alcotest.test_case "stats counters" `Quick test_txn_stats_counters;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "static" `Quick test_static_constraint;
          Alcotest.test_case "temporal" `Quick test_temporal_constraint;
        ] );
      ( "inheritance",
        [
          Alcotest.test_case "phase birth + delegation" `Quick
            test_phase_birth_and_delegation;
          Alcotest.test_case "phase constraint blocks step" `Quick
            test_phase_constraint_blocks_promotion;
          Alcotest.test_case "phase needs base" `Quick
            test_phase_direct_birth_requires_base;
          Alcotest.test_case "components" `Quick
            test_components_and_incorporation;
          Alcotest.test_case "specialization" `Quick
            test_specialization_creates_base_aspect;
          Alcotest.test_case "base death kills phases" `Quick
            test_base_death_kills_phases;
          Alcotest.test_case "phase death spares base" `Quick
            test_phase_death_spares_base;
        ] );
      ( "active",
        [ Alcotest.test_case "bounded autonomy" `Quick test_active_objects ] );
      ( "quantifiers",
        [
          Alcotest.test_case "forall over extension" `Quick
            test_forall_over_extension;
          Alcotest.test_case "exists over extension" `Quick
            test_exists_over_extension;
          Alcotest.test_case "exists by witness extraction" `Quick
            test_exists_witness_extraction;
        ] );
      ( "argument-validation",
        [
          Alcotest.test_case "arity and types at the API" `Quick
            test_runtime_arg_validation;
        ] );
      ( "closure-bound",
        [
          Alcotest.test_case "runaway calling rejected" `Quick
            test_runaway_closure_rejected;
        ] );
      ( "enabledness",
        [ Alcotest.test_case "enabled_events" `Quick test_enabled_events ] );
      ( "event-sharing",
        [
          Alcotest.test_case "shared step, one object" `Quick
            test_fire_sync_shared_step;
          Alcotest.test_case "atomicity across objects" `Quick
            test_fire_sync_two_objects;
        ] );
      ( "naive-vs-monitor",
        Alcotest.test_case "hand case" `Quick test_naive_equals_monitor
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_naive_equals_monitor_random ] );
    ]
