(** The parallel probe engine: frozen views stay immutable under
    concurrent probes, O(1) invalidation fires exactly on real changes,
    pool shutdown drains cleanly, jobs=1 is bit-identical to the
    sequential queries, and a 4-domain pool probing stale views races
    harmlessly against a mutating main engine. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstrings = Alcotest.(list string)

let load src =
  match Compile.load src with
  | Ok (c, _) -> c
  | Error e -> Alcotest.failf "load failed: %s" e

let counter_spec = {|
object class COUNTER
  identification id: string;
  template
    attributes n: integer;
    events
      birth init;
      death stop;
      incr;
      decr;
      add(integer);
    valuation
      variables k: integer;
      [init] n = 0;
      [incr] n = n + 1;
      [decr] n = n - 1;
      [add(k)] n = n + k;
    permissions
      { n > 0 } decr;
end object class COUNTER;
|}

let ident s = Ident.make "COUNTER" (Value.String s)

let fire c id name args =
  match Engine.fire c (Event.make id name args) with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "fire failed: %s" (Runtime_error.reason_to_string r)

(* A community of [n] counters, counter [i] stepped up [i] times, so
   enabledness of [decr] varies across the society. *)
let society n =
  let c = load counter_spec in
  let ids =
    Array.init n (fun i ->
        let key = Printf.sprintf "c%d" i in
        (match Engine.create c ~cls:"COUNTER" ~key:(Value.String key) () with
        | Ok _ -> ()
        | Error r ->
            Alcotest.failf "create failed: %s"
              (Runtime_error.reason_to_string r));
        let id = ident key in
        for _ = 1 to i do
          fire c id "incr" []
        done;
        id)
  in
  (c, ids)

(* Every object crossed with every parameterless non-birth event. *)
let probe_batch ids =
  Array.concat
    (Array.to_list
       (Array.map
          (fun id ->
            Array.map
              (fun name -> Event.make id name [])
              [| "stop"; "incr"; "decr" |])
          ids))

(* ------------------------------------------------------------------ *)
(* View immutability under concurrent probes                           *)
(* ------------------------------------------------------------------ *)

let test_view_immutable () =
  let c, ids = society 8 in
  let batch = probe_batch ids in
  let expected = Array.map (Engine.enabled c) batch in
  let pre = Persist.save c in
  let view = View.freeze c in
  let pool = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      for _ = 1 to 5 do
        let got = Engine.enabled_batch_par ~pool view batch in
        check tbool "parallel batch matches sequential" true (got = expected)
      done);
  check tbool "source image untouched by probes" true (Persist.save c = pre);
  check tbool "view still valid after probes" true (View.valid view)

(* ------------------------------------------------------------------ *)
(* Invalidation                                                        *)
(* ------------------------------------------------------------------ *)

let test_view_invalidation () =
  let c, ids = society 2 in
  let v1 = View.freeze c in
  check tbool "fresh view valid" true (View.valid v1);
  (* probes and rejected steps roll back and never invalidate *)
  ignore (Engine.enabled c (Event.make ids.(0) "incr" []));
  check tbool "probe keeps view valid" true (View.valid v1);
  (match Engine.fire c (Event.make ids.(0) "decr" []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decr at n=0 should be rejected");
  check tbool "rejected step keeps view valid" true (View.valid v1);
  (* a committed step invalidates *)
  fire c ids.(0) "incr" [];
  check tbool "committed step invalidates" false (View.valid v1);
  let v2 = View.freeze c in
  check tbool "refrozen view valid" true (View.valid v2);
  (* a schema edit invalidates every view *)
  Community.add_enum c "COLOUR" [ "red"; "green" ];
  check tbool "schema edit invalidates" false (View.valid v2)

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_shutdown () =
  let pool = Pool.create ~jobs:4 in
  check tint "pool size" 4 (Pool.jobs pool);
  let hits = Atomic.make 0 in
  Pool.run pool ~n:1000 (fun _ -> Atomic.incr hits);
  check tint "every index ran exactly once" 1000 (Atomic.get hits);
  let doubled = Pool.map_array pool (fun x -> 2 * x) (Array.init 257 Fun.id) in
  check tbool "map_array preserves order" true
    (doubled = Array.init 257 (fun i -> 2 * i));
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* a drained pool still answers, sequentially *)
  Atomic.set hits 0;
  Pool.run pool ~n:100 (fun _ -> Atomic.incr hits);
  check tint "post-shutdown dispatch runs sequentially" 100 (Atomic.get hits)

let test_pool_exception () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      (match
         Pool.run pool ~n:500 (fun i -> if i = 123 then failwith "boom")
       with
      | () -> Alcotest.fail "expected the worker exception to surface"
      | exception Failure msg -> check Alcotest.string "message" "boom" msg);
      (* the pool survives a failed dispatch *)
      let hits = Atomic.make 0 in
      Pool.run pool ~n:100 (fun _ -> Atomic.incr hits);
      check tint "pool usable after exception" 100 (Atomic.get hits))

(* ------------------------------------------------------------------ *)
(* jobs = 1 bit-identity                                               *)
(* ------------------------------------------------------------------ *)

let test_jobs1_identity () =
  let c, ids = society 6 in
  let pool = Pool.create ~jobs:1 in
  let view = View.freeze c in
  Array.iter
    (fun id ->
      check tstrings "enabled_events identical"
        (Engine.enabled_events c id)
        (Engine.enabled_events_par ~pool view id);
      let seq = Engine.candidate_events c id in
      let par = Engine.candidate_events_par ~pool view id in
      check tbool "candidate names and types identical" true
        (seq = List.map (fun (n, p, _) -> (n, p)) par);
      List.iter
        (fun (n, params, verdict) ->
          match (params, verdict) with
          | [], Some b ->
              check tbool
                (Printf.sprintf "verdict of %s" n)
                (List.mem n (Engine.enabled_events c id))
                b
          | [], None -> Alcotest.failf "nullary %s undecided" n
          | _ :: _, None -> ()
          | _ :: _, Some _ -> Alcotest.failf "parameterized %s decided" n)
        par)
    ids;
  Pool.shutdown pool

(* The refinement checker must produce the same report with a pool as
   without — at jobs=1 trivially (same code path shape), and at jobs=4
   by the ordered branch-log merge. *)
let refinement_report pool =
  let mk () =
    let c = load counter_spec in
    (match Engine.create c ~cls:"COUNTER" ~key:(Value.String "probe") () with
    | Ok _ -> ()
    | Error r ->
        Alcotest.failf "create failed: %s" (Runtime_error.reason_to_string r));
    { Refinement.community = c; id = ident "probe" }
  in
  let tpl =
    match Community.find_template (mk ()).Refinement.community "COUNTER" with
    | Some t -> t
    | None -> Alcotest.fail "no COUNTER template"
  in
  Refinement.check ?pool
    ~impl:(Implementation.make ~abs_class:"COUNTER" ~conc_class:"COUNTER" ())
    ~abs:(mk ()) ~conc:(mk ())
    ~alphabet:(Refinement.candidates tpl)
    ~depth:3 ()

let test_refinement_identity () =
  let base = refinement_report None in
  let p1 = Pool.create ~jobs:1 in
  let p4 = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown p1;
      Pool.shutdown p4)
    (fun () ->
      List.iter
        (fun (label, pool) ->
          let r = refinement_report (Some pool) in
          check tbool (label ^ ": verdict") true
            (r.Refinement.verdict = base.Refinement.verdict);
          check tint (label ^ ": cases") base.Refinement.cases
            r.Refinement.cases;
          check tint (label ^ ": accepted") base.Refinement.accepted
            r.Refinement.accepted)
        [ ("jobs1", p1); ("jobs4", p4) ])

(* ------------------------------------------------------------------ *)
(* 4-domain stress against a mutating main engine                      *)
(* ------------------------------------------------------------------ *)

let test_stress () =
  let c, ids = society 10 in
  let batch = probe_batch ids in
  let view = View.freeze c in
  (* frozen-time truth, computed from a private thaw *)
  let expected =
    let pc = View.thaw view in
    Array.map (Engine.enabled pc) batch
  in
  let pool = Pool.create ~jobs:3 in
  let mismatches = Atomic.make 0 in
  let prober =
    Domain.spawn (fun () ->
        for _ = 1 to 20 do
          let got = Engine.enabled_batch_par ~pool view batch in
          if got <> expected then Atomic.incr mismatches
        done)
  in
  (* meanwhile the main engine mutates the source community *)
  for round = 1 to 40 do
    fire c ids.(round mod 10) "incr" []
  done;
  Domain.join prober;
  Pool.shutdown pool;
  check tint "stale view keeps answering frozen-time truth" 0
    (Atomic.get mismatches);
  check tbool "view invalidated by the mutations" false (View.valid view);
  (* a fresh view agrees with the mutated engine *)
  let view' = View.freeze c in
  let pool' = Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool')
    (fun () ->
      let got = Engine.enabled_batch_par ~pool:pool' view' batch in
      let expected' = Array.map (Engine.enabled c) batch in
      check tbool "fresh view matches fresh truth" true (got = expected'))

(* ------------------------------------------------------------------ *)
(* Speculative parallel commit                                          *)
(* ------------------------------------------------------------------ *)

(* [step_batch_par] promises bit-identity with the sequential loop:
   per-step results AND the final persisted image, for any batch and
   any pool size.  The reference runs on a clone of the same
   community. *)
let run_batch_identity name ~jobs steps_of =
  let c, ids = society 16 in
  let cref = Community.clone c in
  let steps = steps_of ids in
  let seq = Array.map (Engine.step cref) steps in
  let pool = Pool.create ~jobs in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let par = Engine.step_batch_par ~pool c steps in
      check tint (name ^ ": result count") (Array.length seq)
        (Array.length par);
      Array.iteri
        (fun i r ->
          check tbool (Printf.sprintf "%s: step %d identical" name i) true
            (r = par.(i)))
        seq;
      check tbool (name ^ ": final images identical") true
        (Persist.save c = Persist.save cref))

(* counter 0 holds n=0, so its decr is rejected inside the group *)
let disjoint_steps ids =
  Array.init 16 (fun i ->
      if i = 0 then Step.Fire (Event.make ids.(i) "decr" [])
      else Step.Fire (Event.make ids.(i) "add" [ Value.Int i ]))

let conflicting_steps ids =
  Array.init 16 (fun _ -> Step.Fire (Event.make ids.(1) "incr" []))

let mixed_steps ids =
  Array.concat
    [
      Array.init 9 (fun i -> Step.Fire (Event.make ids.(i + 1) "incr" []));
      [|
        Step.Create
          { cls = "COUNTER"; key = Value.String "fresh"; event = None; args = [] };
        Step.Fire (Event.make (ident "fresh") "incr" []);
        Step.Destroy { id = ids.(2); event = None; args = [] };
        Step.Fire (Event.make ids.(2) "incr" []);
      |];
      Array.init 9 (fun i -> Step.Fire (Event.make ids.(i + 3) "add" [ Value.Int 2 ]));
    ]

let test_commit_disjoint () =
  Engine.reset_spec_stats ();
  run_batch_identity "disjoint jobs=4" ~jobs:4 disjoint_steps;
  let stat name =
    match List.assoc_opt name (Engine.spec_stats_rows ()) with
    | Some n -> n
    | None -> Alcotest.failf "no stats row %s" name
  in
  check tint "one speculative batch" 1 (stat "speculative batches");
  check tint "one group" 1 (stat "speculative groups");
  check tint "fifteen commits" 15 (stat "speculative commits");
  check tint "one reject" 1 (stat "speculative rejects")

let test_commit_conflicting () =
  run_batch_identity "conflicting jobs=4" ~jobs:4 conflicting_steps

let test_commit_mixed () =
  run_batch_identity "mixed jobs=4" ~jobs:4 mixed_steps

let test_commit_jobs1 () =
  run_batch_identity "disjoint jobs=1" ~jobs:1 disjoint_steps;
  run_batch_identity "mixed jobs=1" ~jobs:1 mixed_steps

let () =
  Alcotest.run "parallel"
    [
      ( "view",
        [
          Alcotest.test_case "immutable under concurrent probes" `Quick
            test_view_immutable;
          Alcotest.test_case "invalidation" `Quick test_view_invalidation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "shutdown drains" `Quick test_pool_shutdown;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
        ] );
      ( "identity",
        [
          Alcotest.test_case "jobs=1 bit-identical" `Quick
            test_jobs1_identity;
          Alcotest.test_case "refinement report identical" `Quick
            test_refinement_identity;
        ] );
      ( "stress",
        [ Alcotest.test_case "4-domain stress" `Quick test_stress ] );
      ( "commit",
        [
          Alcotest.test_case "disjoint batch speculates" `Quick
            test_commit_disjoint;
          Alcotest.test_case "conflicting batch falls back" `Quick
            test_commit_conflicting;
          Alcotest.test_case "mixed batch stays ordered" `Quick
            test_commit_mixed;
          Alcotest.test_case "jobs=1 is the sequential loop" `Quick
            test_commit_jobs1;
        ] );
    ]
