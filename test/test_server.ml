(* The society server: JSON codec, wire protocol, structured errors,
   and the serve loop driven in-process over pipes. *)

let spec_src =
  {|
object class PERSON
  identification pname: string;
  template
    attributes Grade: integer;
    events
      birth born;
      death dies;
      promote(integer);
    valuation
      variables g: integer;
      [born] Grade = 1;
      [promote(g)] Grade = g;
end object class PERSON;

object class DEPT
  identification id: string;
  template
    attributes
      employees: set(|PERSON|);
    events
      birth establishment;
      death closure;
      hire(|PERSON|);
      fire(|PERSON|);
    valuation
      variables P: |PERSON|;
      [establishment] employees = {};
      [hire(P)] employees = insert(P, employees);
      [fire(P)] employees = remove(P, employees);
    permissions
      variables P: |PERSON|;
      { not(P in employees) } hire(P);
      { sometime(after(hire(P))) } fire(P);
end object class DEPT;
|}

let load_session () =
  match Troll.Session.load spec_src with
  | Ok s -> s
  | Error e -> Alcotest.failf "spec load failed: %s" (Troll.Error.to_string e)

let json : Json.t Alcotest.testable =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Json.to_string j))
    Json.equal

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let ada = Ident.make "PERSON" (Value.String "ada")

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)
(* ---------------------------------------------------------------- *)

let parse_ok s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse of %S failed: %s" s e

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("str", Json.String "line\nbreak \"quoted\" \\ tab\t");
        ("unicode", Json.String "caf\xc3\xa9");
        ("nested", Json.Obj [ ("empty", Json.List []) ]);
      ]
  in
  Alcotest.check json "print/parse identity" doc
    (parse_ok (Json.to_string doc))

let test_json_escapes () =
  Alcotest.check json "\\u escape" (Json.String "A") (parse_ok {|"A"|});
  Alcotest.check json "surrogate pair"
    (Json.String "\xf0\x9d\x84\x9e")
    (parse_ok {|"𝄞"|});
  Alcotest.check json "control escapes"
    (Json.String "\n\t\r")
    (parse_ok {|"\n\t\r"|})

let test_json_rejects () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "nul";
  bad {|{"a": 1} trailing|};
  bad {|{"a" 1}|};
  bad "[1,]"

(* ---------------------------------------------------------------- *)
(* Value codec                                                       *)
(* ---------------------------------------------------------------- *)

let value_round_trip v =
  match Protocol.value_of_json (Protocol.value_to_json v) with
  | Ok v' -> Alcotest.check value (Value.to_string v) v v'
  | Error e -> Alcotest.failf "decode of %s failed: %s" (Value.to_string v) e

let test_value_codec () =
  List.iter value_round_trip
    [
      Value.Undefined;
      Value.Bool true;
      Value.Int 7;
      Value.String "x";
      Value.Date 8114;
      Value.Money (Money.of_cents 1999);
      Value.Enum ("colour", "red");
      Value.Id ("PERSON", Value.String "ada");
      Value.set [ Value.Int 1; Value.Int 2 ];
      Value.List [ Value.Int 1; Value.String "mixed" ];
      Value.map [ (Value.String "k", Value.Int 1) ];
      Value.Tuple [ ("a", Value.Int 1); ("b", Value.Bool false) ];
      Value.set [ Value.Id ("D", Value.String "d1"); Value.Undefined ];
    ]

let test_value_rejects_float () =
  match Protocol.value_of_json (Json.Float 1.5) with
  | Ok _ -> Alcotest.fail "floats must not decode into the value universe"
  | Error _ -> ()

(* ---------------------------------------------------------------- *)
(* Structured errors through JSON frames                             *)
(* ---------------------------------------------------------------- *)

let wire_error : Protocol.Wire_error.t Alcotest.testable =
  Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf
        (Json.to_string (Protocol.Wire_error.to_json e)))
    Protocol.Wire_error.equal

let error_round_trip e =
  match Protocol.Wire_error.of_json (Protocol.Wire_error.to_json e) with
  | Ok e' -> Alcotest.check wire_error e.Protocol.Wire_error.code e e'
  | Error m -> Alcotest.failf "error frame decode failed: %s" m

let test_wire_error_round_trip () =
  error_round_trip (Protocol.Wire_error.make ~code:"overloaded" "queue full");
  error_round_trip
    (Protocol.Wire_error.make ~loc:(3, 14) ~code:"parse_error" "bad token")

let test_troll_error_codes () =
  (* a parse error keeps its location through the frame codec *)
  (match Troll.parse_spec "object class" with
  | Ok _ -> Alcotest.fail "truncated spec should not parse"
  | Error e ->
      Alcotest.(check string) "parse code" "parse_error" (Troll.Error.code e);
      let w = Protocol.Wire_error.of_error e in
      error_round_trip w;
      Alcotest.(check bool) "loc preserved" true
        (w.Protocol.Wire_error.loc <> None));
  (* runtime reasons map to stable snake_case codes *)
  Alcotest.(check string) "runtime code" "permission_denied"
    (Troll.Error.code
       (Troll.Error.Runtime
          (Runtime_error.Permission_denied
             (Event.make ada "hire" [], "not(P in employees)"))));
  Alcotest.(check string) "io code" "io_error"
    (Troll.Error.code (Troll.Error.Io "missing"))

(* ---------------------------------------------------------------- *)
(* Request decoding                                                  *)
(* ---------------------------------------------------------------- *)

let decode_req s =
  let env = Protocol.decode (parse_ok s) in
  match env.Protocol.request with
  | Ok r -> (env, r)
  | Error e -> Alcotest.failf "decode of %s failed: %s" s e

let test_decode_requests () =
  let _, r = decode_req {|{"op":"ping"}|} in
  Alcotest.(check string) "ping" "ping" (Protocol.op_name r);
  let env, r =
    decode_req
      {|{"id":7,"deadline_ms":250,"op":"fire","cls":"DEPT","key":"d","event":"hire","args":[{"$id":{"cls":"PERSON","key":"p"}}]}|}
  in
  Alcotest.check json "id" (Json.Int 7) env.Protocol.req_id;
  Alcotest.(check (option int)) "deadline" (Some 250) env.Protocol.deadline_ms;
  (match r with
  | Protocol.Step (Step.Fire ev) ->
      Alcotest.(check string) "event name" "hire" ev.Event.name
  | _ -> Alcotest.fail "expected a Fire step");
  let _, r =
    decode_req
      {|{"op":"batch","events":[{"cls":"PERSON","key":"p","event":"born"},{"cls":"PERSON","key":"p","event":"promote","args":[3]}]}|}
  in
  (match r with
  | Protocol.Step (Step.Seq [ _; _ ]) -> ()
  | _ -> Alcotest.fail "batch should decode to a two-event Seq");
  let _, r = decode_req {|{"op":"attr","cls":"DEPT","key":"d","attr":"employees"}|} in
  match r with
  | Protocol.Attr { attr = "employees"; _ } -> ()
  | _ -> Alcotest.fail "expected an Attr request"

let test_decode_rejects () =
  let bad s =
    let env = Protocol.decode (parse_ok s) in
    match env.Protocol.request with
    | Ok _ -> Alcotest.failf "%s should not decode" s
    | Error _ -> ()
  in
  bad {|{"id":1}|};
  bad {|{"op":"warp"}|};
  bad {|{"op":"fire","cls":"DEPT"}|};
  bad {|{"op":"fire","cls":"DEPT","key":"d","event":"hire","args":[1.5]}|};
  bad {|{"op":"restore"}|}

(* ---------------------------------------------------------------- *)
(* Step equivalence: the facade's one entry point                    *)
(* ---------------------------------------------------------------- *)

let expect_step what session step =
  match Troll.step session step with
  | Ok outcome -> outcome
  | Error r ->
      Alcotest.failf "%s rejected: %s" what (Runtime_error.reason_to_string r)

let test_step_create_fire () =
  let s = load_session () in
  let outcome =
    expect_step "create" s
      (Step.Create
         { cls = "PERSON"; key = Value.String "ada"; event = None; args = [] })
  in
  Alcotest.(check int) "one object created" 1
    (List.length outcome.Engine.created);
  ignore
    (expect_step "promote" s
       (Step.Fire (Event.make ada "promote" [ Value.Int 5 ])));
  match Troll.Session.attr s ada "Grade" with
  | Ok v -> Alcotest.check value "promoted grade" (Value.Int 5) v
  | Error e -> Alcotest.failf "attr failed: %s" (Troll.Error.to_string e)

let test_step_equivalent_to_engine () =
  (* Step.t requests and the direct engine entry points must drive the
     community identically, state for state *)
  let via_step = load_session () in
  let via_engine = load_session () in
  ignore
    (expect_step "create" via_step
       (Step.Create
          { cls = "PERSON"; key = Value.String "ada"; event = None; args = [] }));
  ignore
    (expect_step "seq" via_step
       (Step.Seq
          [
            Event.make ada "promote" [ Value.Int 2 ];
            Event.make ada "promote" [ Value.Int 9 ];
          ]));
  let c = Troll.Session.community via_engine in
  ignore
    (Engine.create c ~cls:"PERSON" ~key:(Value.String "ada") () : _ result);
  ignore
    (Engine.fire_seq c
       [
         Event.make ada "promote" [ Value.Int 2 ];
         Event.make ada "promote" [ Value.Int 9 ];
       ]
      : _ result);
  Alcotest.(check string) "identical persisted state"
    (Persist.save (Troll.Session.community via_step))
    (Persist.save c)

let test_step_rejection_reason () =
  let s = load_session () in
  ignore
    (expect_step "create" s
       (Step.Create
          { cls = "PERSON"; key = Value.String "ada"; event = None; args = [] }));
  match
    Troll.step s (Step.Fire (Event.make ada "promote" [ Value.Int 1 ]))
  with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "unexpected rejection: %s" (Runtime_error.code r)

(* ---------------------------------------------------------------- *)
(* The serve loop, driven over pipes                                 *)
(* ---------------------------------------------------------------- *)

(* Write the request lines up front, run [serve_fds] to completion,
   read every response.  Requests and responses both fit comfortably
   inside a pipe buffer. *)
let serve_script ?config ?(close_input = true) lines =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  let n = String.length payload in
  if n >= 65536 then Alcotest.fail "script too large for a pipe buffer";
  ignore (Unix.write_substring req_w payload 0 n);
  if close_input then Unix.close req_w;
  let session = load_session () in
  let server = Server.create ?config session in
  Server.serve_fds server req_r resp_w;
  Unix.close resp_w;
  if not close_input then Unix.close req_w;
  Unix.close req_r;
  let ic = Unix.in_channel_of_descr resp_r in
  let rec drain acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line -> drain (parse_ok line :: acc)
  in
  let responses = drain [] in
  close_in ic;
  (session, server, responses)

let by_id responses id =
  match
    List.find_opt (fun r -> Json.equal (Json.member "id" r) (Json.Int id))
      responses
  with
  | Some r -> r
  | None -> Alcotest.failf "no response with id %d" id

let check_ok what resp =
  Alcotest.(check bool) what true (Json.member "ok" resp = Json.Bool true)

let check_code what code resp =
  Alcotest.(check bool) (what ^ " is an error") true
    (Json.member "ok" resp = Json.Bool false);
  Alcotest.(check (option string)) (what ^ " code") (Some code)
    (Json.to_string_opt (Json.member "code" (Json.member "error" resp)))

let hire_frame ?deadline id p =
  Printf.sprintf
    {|{"id":%d%s,"op":"fire","cls":"DEPT","key":"d","event":"hire","args":[{"$id":{"cls":"PERSON","key":"%s"}}]}|}
    id
    (match deadline with
    | None -> ""
    | Some ms -> Printf.sprintf {|,"deadline_ms":%d|} ms)
    p

let setup_frames =
  [
    {|{"id":1,"op":"create","cls":"DEPT","key":"d"}|};
    {|{"id":2,"op":"create","cls":"PERSON","key":"ada"}|};
  ]

let test_serve_happy_path () =
  let _, _, responses =
    serve_script
      (setup_frames
      @ [
          hire_frame 3 "ada";
          {|{"id":4,"op":"attr","cls":"DEPT","key":"d","attr":"employees"}|};
          {|{"id":5,"op":"stats"}|};
        ])
  in
  Alcotest.(check int) "five responses" 5 (List.length responses);
  List.iter (fun id -> check_ok (string_of_int id) (by_id responses id))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.check json "hired set"
    (parse_ok {|{"$set":[{"$id":{"cls":"PERSON","key":"ada"}}]}|})
    (Json.member "value" (Json.member "result" (by_id responses 4)));
  let received =
    Json.member "received"
      (Json.member "server" (Json.member "result" (by_id responses 5)))
  in
  Alcotest.check json "stats counted every request" (Json.Int 5) received

let test_serve_permission_rejected () =
  let session, _, responses =
    serve_script
      (setup_frames
      @ [
          hire_frame 3 "ada";
          {|{"id":10,"op":"save"}|};
          hire_frame 4 "ada";
          {|{"id":11,"op":"save"}|};
        ])
  in
  check_code "re-hire" "permission_denied" (by_id responses 4);
  let state id =
    Json.to_string_opt (Json.member "state" (Json.member "result" (by_id responses id)))
  in
  Alcotest.(check (option string))
    "rejected request leaves the state bit-identical" (state 10) (state 11);
  (* and the in-process community agrees with the wire snapshot *)
  Alcotest.(check (option string)) "snapshot is live state"
    (Some (Persist.save (Troll.Session.community session)))
    (state 11)

let test_serve_malformed_frame () =
  let _, _, responses =
    serve_script
      [ "this is not json"; {|{"op":"fire","cls":7}|}; {|{"id":2,"op":"ping"}|} ]
  in
  Alcotest.(check int) "three responses" 3 (List.length responses);
  let errors =
    List.filter (fun r -> Json.member "ok" r = Json.Bool false) responses
  in
  Alcotest.(check int) "two bad_request answers" 2 (List.length errors);
  List.iter (fun r -> check_code "malformed" "bad_request" r) errors;
  check_ok "stream resynchronised" (by_id responses 2)

let test_serve_deadline_expiry () =
  let session, _, responses =
    serve_script
      (setup_frames
      @ [
          {|{"id":20,"op":"save"}|};
          hire_frame ~deadline:0 21 "ada";
          {|{"id":22,"op":"save"}|};
        ])
  in
  check_code "deadline" "deadline_expired" (by_id responses 21);
  let state id =
    Json.to_string_opt (Json.member "state" (Json.member "result" (by_id responses id)))
  in
  Alcotest.(check (option string))
    "expired request never touched the engine" (state 20) (state 22);
  Alcotest.(check (option string)) "snapshot is live state"
    (Some (Persist.save (Troll.Session.community session)))
    (state 22)

let test_serve_overload () =
  let config = { Server.default_config with Server.queue_capacity = 1 } in
  let _, _, responses =
    serve_script ~config
      [
        {|{"id":1,"op":"ping"}|};
        {|{"id":2,"op":"ping"}|};
        {|{"id":3,"op":"ping"}|};
      ]
  in
  (* all three frames arrive in one read: one is admitted, the rest
     bounce off the full queue *)
  check_ok "admitted" (by_id responses 1);
  check_code "second" "overloaded" (by_id responses 2);
  check_code "third" "overloaded" (by_id responses 3)

let test_serve_shutdown_drain () =
  (* input deliberately left open: the serve call must return because
     the shutdown drained, not because it saw EOF *)
  let _, _, responses =
    serve_script ~close_input:false
      (setup_frames
      @ [
          {|{"id":3,"op":"shutdown"}|};
          hire_frame 4 "ada";
        ])
  in
  Alcotest.(check int) "four responses" 4 (List.length responses);
  check_ok "shutdown acknowledged" (by_id responses 3);
  Alcotest.check json "draining flagged" (Json.Bool true)
    (Json.member "draining" (Json.member "result" (by_id responses 3)));
  (* the hire was admitted before the shutdown executed, so it drains *)
  check_ok "admitted request drained" (by_id responses 4)

(* NDJSON reassembly across short reads.  A forked writer delivers the
   script in two chunks with a pause in between, so the server's first
   read ends mid-frame — and the split point sits between the two bytes
   of a UTF-8 "é" (0xC3 0xA9) inside a key string, pinning that the
   framing layer buffers raw bytes and never decodes a partial read.
   The fire against PERSON("adé") can only succeed if the split frame
   reassembled with the é intact. *)
let test_serve_split_frame () =
  let payload =
    String.concat ""
      (List.map
         (fun l -> l ^ "\n")
         [
           {|{"id":1,"op":"create","cls":"DEPT","key":"d"}|};
           {|{"id":2,"op":"create","cls":"PERSON","key":"adé"}|};
           {|{"id":3,"op":"fire","cls":"DEPT","key":"d","event":"hire","args":[{"$id":{"cls":"PERSON","key":"adé"}}]}|};
         ])
  in
  (* split one byte after the first 0xC3: inside the é of frame 2 *)
  let split = String.index payload '\xc3' + 1 in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (* writer child: two delayed chunks, then EOF *)
      Unix.close req_r;
      Unix.close resp_r;
      Unix.close resp_w;
      ignore (Unix.write_substring req_w payload 0 split);
      Unix.sleepf 0.05;
      ignore
        (Unix.write_substring req_w payload split
           (String.length payload - split));
      Unix.close req_w;
      Unix._exit 0
  | writer ->
      Unix.close req_w;
      let session = load_session () in
      let server = Server.create session in
      Server.serve_fds server req_r resp_w;
      Unix.close resp_w;
      Unix.close req_r;
      let ic = Unix.in_channel_of_descr resp_r in
      let rec drain acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> drain (parse_ok line :: acc)
      in
      let responses = drain [] in
      close_in ic;
      ignore (Unix.waitpid [] writer);
      Alcotest.(check int) "three responses" 3 (List.length responses);
      check_ok "frame before the split" (by_id responses 1);
      check_ok "frame split mid-é reassembled" (by_id responses 2);
      check_ok "fire resolves the reassembled key" (by_id responses 3)

let test_serve_hello () =
  let _, _, responses =
    serve_script
      [
        {|{"id":1,"op":"hello","version":1}|};
        {|{"id":2,"op":"hello","version":1,"caps":["wal","shards"]}|};
        {|{"id":3,"op":"hello","version":99}|};
        {|{"id":4,"op":"ping"}|};
      ]
  in
  let r1 = by_id responses 1 in
  check_ok "hello" r1;
  Alcotest.check json "version echoed" (Json.Int 1)
    (Json.member "version" (Json.member "result" r1));
  (* no WAL, one job: the plain test server advertises only the
     always-on capabilities — the parallel batch op and pipelining *)
  Alcotest.check json "caps"
    (Json.List [ Json.String "steps"; Json.String "pipeline" ])
    (Json.member "caps" (Json.member "result" r1));
  check_ok "unknown client caps are ignored" (by_id responses 2);
  check_code "future version" "version_mismatch" (by_id responses 3);
  (* a failed handshake must not wedge the connection *)
  check_ok "connection survives the mismatch" (by_id responses 4)

let prepare_hire_frame id p =
  Printf.sprintf
    {|{"id":%d,"op":"prepare","step":{"op":"fire","cls":"DEPT","key":"d","event":"hire","args":[{"$id":{"cls":"PERSON","key":"%s"}}]}}|}
    id p

let test_serve_two_phase () =
  let _, _, responses =
    serve_script
      (setup_frames
      @ [
          {|{"id":3,"op":"save"}|};
          prepare_hire_frame 4 "ada";
          hire_frame 5 "ada";
          (* txn_pending: a transaction is open *)
          {|{"id":6,"op":"save"}|};
          (* txn_pending too *)
          {|{"id":7,"op":"abort"}|};
          {|{"id":8,"op":"save"}|};
          (* must match id 3 bit-identically *)
          prepare_hire_frame 9 "ada";
          {|{"id":10,"op":"commit"}|};
          {|{"id":11,"op":"commit"}|};
          (* no_txn: already resolved *)
          {|{"id":12,"op":"abort"}|};
          (* idempotent no-op *)
          {|{"id":13,"op":"attr","cls":"DEPT","key":"d","attr":"employees"}|};
          prepare_hire_frame 14 "ada";
          (* permission_denied: already hired — and no slot stays open *)
          {|{"id":15,"op":"ping"}|};
        ])
  in
  check_ok "prepare acks with the outcome" (by_id responses 4);
  Alcotest.(check bool) "prepared outcome lists the micro-step" true
    (Json.member "committed" (Json.member "result" (by_id responses 4))
    <> Json.Null);
  check_code "step while prepared" "txn_pending" (by_id responses 5);
  check_code "save while prepared" "txn_pending" (by_id responses 6);
  check_ok "abort" (by_id responses 7);
  Alcotest.check json "abort rolled something back" (Json.Bool true)
    (Json.member "aborted" (Json.member "result" (by_id responses 7)));
  let state id =
    Json.to_string_opt
      (Json.member "state" (Json.member "result" (by_id responses id)))
  in
  Alcotest.(check (option string))
    "aborted prepare leaves the state bit-identical" (state 3) (state 8);
  check_ok "second prepare" (by_id responses 9);
  Alcotest.check json "commit lands" (Json.Bool true)
    (Json.member "committed" (Json.member "result" (by_id responses 10)));
  check_code "commit without a transaction" "no_txn" (by_id responses 11);
  Alcotest.check json "abort without a transaction is a no-op"
    (Json.Bool false)
    (Json.member "aborted" (Json.member "result" (by_id responses 12)));
  Alcotest.check json "committed hire is observable"
    (parse_ok {|{"$set":[{"$id":{"cls":"PERSON","key":"ada"}}]}|})
    (Json.member "value" (Json.member "result" (by_id responses 13)));
  (* a rejected prepare leaves no open slot behind *)
  check_code "re-hire prepare" "permission_denied" (by_id responses 14);
  check_ok "connection still live" (by_id responses 15)

let test_serve_default_deadline () =
  let config =
    { Server.default_config with Server.default_deadline_ms = Some 0 }
  in
  let _, _, responses =
    serve_script ~config [ {|{"id":1,"op":"ping"}|} ]
  in
  check_code "config deadline applies" "deadline_expired" (by_id responses 1)

(* a pipelined connection's responses come back in request order *)
let test_serve_pipelined_fifo () =
  let _, _, responses =
    serve_script
      (setup_frames
      @ [
          hire_frame 3 "ada";
          {|{"id":4,"op":"save"}|};
          {|{"id":5,"op":"fire","cls":"DEPT","key":"d","event":"fire","args":[{"$id":{"cls":"PERSON","key":"ada"}}]}|};
          {|{"id":6,"op":"save"}|};
          {|{"id":7,"op":"ping"}|};
        ])
  in
  Alcotest.(check (list int))
    "responses in request order"
    [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.map
       (fun r ->
         match Json.to_int_opt (Json.member "id" r) with
         | Some i -> i
         | None -> Alcotest.fail "response without integer id")
       responses)

(* ---------------------------------------------------------------- *)
(* Backpressure over a real socket                                   *)
(* ---------------------------------------------------------------- *)

(* Fork a socket server; hand the test a connector, then tear the
   server down. *)
let with_socket_server ?config k =
  let path = Filename.temp_file "troll_serve" ".sock" in
  Unix.unlink path;
  let pid = Unix.fork () in
  if pid = 0 then begin
    let session = load_session () in
    let server = Server.create ?config session in
    (try Server.listen_unix server ~path with _ -> ());
    Unix._exit 0
  end;
  let connect () =
    let rec attempt i =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if i > 500 then Alcotest.fail "cannot connect to test server";
          Unix.sleepf 0.01;
          attempt (i + 1)
    in
    attempt 0
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () -> k connect)

let fd_write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* a buffered line reader over a raw fd, with a liveness timeout: if
   the serve loop were blocked on someone else's backlog, this fails
   instead of hanging the suite *)
let read_frame ?(timeout = 10.) buf fd =
  let chunk = Bytes.create 65536 in
  let rec loop () =
    let data = Buffer.contents buf in
    match String.index data '\n' with
    | nl ->
        let line = String.sub data 0 nl in
        Buffer.clear buf;
        Buffer.add_substring buf data (nl + 1) (String.length data - nl - 1);
        parse_ok line
    | exception Not_found ->
        (match Unix.select [ fd ] [] [] timeout with
        | [], _, _ -> Alcotest.fail "no response within the timeout"
        | _ -> ());
        let n = Unix.read fd chunk 0 65536 in
        if n = 0 then Alcotest.fail "server closed the connection";
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
  in
  loop ()

let rpc_fd buf fd line =
  fd_write_all fd (line ^ "\n");
  read_frame buf fd

let pipeline_stat r name =
  match
    Json.to_int_opt (Json.member name (Json.member "pipeline" (Json.member "result" r)))
  with
  | Some n -> n
  | None -> Alcotest.failf "stats carry no pipeline.%s" name

(* Tiny water marks so a client that stops reading trips the pause;
   the eviction window stays wide so nothing is dropped mid-test. *)
let backpressure_config =
  {
    Server.default_config with
    Server.out_high_water = 4096;
    Server.out_low_water = 512;
    Server.evict_after = 30.;
  }

let test_serve_slow_reader () =
  with_socket_server ~config:backpressure_config @@ fun connect ->
  let slow = connect () and normal = connect () in
  let sbuf = Buffer.create 256 and nbuf = Buffer.create 256 in
  (* fatten the state so save responses dwarf the high-water mark *)
  for i = 1 to 100 do
    check_ok "create"
      (rpc_fd sbuf slow
         (Printf.sprintf {|{"id":%d,"op":"create","cls":"PERSON","key":"p%03d"}|} i i))
  done;
  (* pipeline 200 saves and stop reading: the backlog must cross the
     high-water mark and pause this connection without blocking anyone *)
  let first_save = 1000 and n_saves = 200 in
  let script =
    String.concat ""
      (List.init n_saves (fun i ->
           Printf.sprintf {|{"id":%d,"op":"save"}|} (first_save + i) ^ "\n"))
  in
  fd_write_all slow script;
  (* the loop keeps serving the other connection promptly *)
  check_ok "other connection live" (rpc_fd nbuf normal {|{"id":1,"op":"ping"}|});
  let rec await_pause i =
    let stats = rpc_fd nbuf normal {|{"id":2,"op":"stats"}|} in
    if pipeline_stat stats "pauses" >= 1 then stats
    else if i > 100 then Alcotest.fail "high-water pause never recorded"
    else begin
      Unix.sleepf 0.02;
      await_pause (i + 1)
    end
  in
  ignore (await_pause 0);
  (* drain the slow reader — first a stretch one byte at a time (the
     server must resume partial writes intact), then normally *)
  let one = Bytes.create 1 in
  for _ = 1 to 2048 do
    match Unix.select [ slow ] [] [] 10. with
    | [], _, _ -> Alcotest.fail "no slow-reader byte within the timeout"
    | _ ->
        if Unix.read slow one 0 1 = 1 then Buffer.add_bytes sbuf one
        else Alcotest.fail "server closed the slow reader"
  done;
  let expected_ids = List.init n_saves (fun i -> first_save + i) in
  let states =
    List.map
      (fun id ->
        let r = read_frame sbuf slow in
        Alcotest.check json "slow-reader responses stay FIFO" (Json.Int id)
          (Json.member "id" r);
        check_ok "slow-reader response intact" r;
        match
          Json.to_string_opt (Json.member "state" (Json.member "result" r))
        with
        | Some s -> s
        | None -> Alcotest.fail "save response carries no state")
      expected_ids
  in
  (match states with
  | first :: rest ->
      List.iter
        (fun s ->
          Alcotest.(check int) "every dump identical" (String.length first)
            (String.length s))
        rest
  | [] -> ());
  let rec await_resume i =
    let stats = rpc_fd nbuf normal {|{"id":3,"op":"stats"}|} in
    if pipeline_stat stats "resumes" >= 1 then ()
    else if i > 100 then Alcotest.fail "low-water resume never recorded"
    else begin
      Unix.sleepf 0.02;
      await_resume (i + 1)
    end
  in
  await_resume 0;
  (* the paused connection is fully functional again *)
  check_ok "slow reader resumes service"
    (rpc_fd sbuf slow {|{"id":4000,"op":"ping"}|});
  check_ok "shutdown" (rpc_fd nbuf normal {|{"id":4,"op":"shutdown"}|});
  Unix.close slow;
  Unix.close normal

let test_serve_killed_with_backlog () =
  with_socket_server ~config:backpressure_config @@ fun connect ->
  let doomed = connect () in
  let dbuf = Buffer.create 256 in
  for i = 1 to 100 do
    check_ok "create"
      (rpc_fd dbuf doomed
         (Printf.sprintf {|{"id":%d,"op":"create","cls":"PERSON","key":"q%03d"}|} i i))
  done;
  (* pipeline a pile of saves and vanish: the server is left with a
     non-empty output buffer and a dead peer *)
  let script =
    String.concat ""
      (List.init 200 (fun i ->
           Printf.sprintf {|{"id":%d,"op":"save"}|} (1000 + i) ^ "\n"))
  in
  fd_write_all doomed script;
  Unix.close doomed;
  (* the loop survives and the dead session is reaped *)
  let normal = connect () in
  let nbuf = Buffer.create 256 in
  check_ok "loop alive after the kill"
    (rpc_fd nbuf normal {|{"id":1,"op":"ping"}|});
  let rec await_reap i =
    let stats = rpc_fd nbuf normal {|{"id":2,"op":"stats"}|} in
    if pipeline_stat stats "sessions" = 1 then ()
    else if i > 100 then Alcotest.fail "dead session never reaped"
    else begin
      Unix.sleepf 0.02;
      await_reap (i + 1)
    end
  in
  await_reap 0;
  check_ok "shutdown" (rpc_fd nbuf normal {|{"id":3,"op":"shutdown"}|});
  Unix.close normal

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "rejects" `Quick test_json_rejects;
        ] );
      ( "values",
        [
          Alcotest.test_case "codec round trip" `Quick test_value_codec;
          Alcotest.test_case "rejects floats" `Quick test_value_rejects_float;
        ] );
      ( "errors",
        [
          Alcotest.test_case "wire round trip" `Quick
            test_wire_error_round_trip;
          Alcotest.test_case "troll error codes" `Quick
            test_troll_error_codes;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "decode requests" `Quick test_decode_requests;
          Alcotest.test_case "decode rejects" `Quick test_decode_rejects;
        ] );
      ( "step",
        [
          Alcotest.test_case "create and fire" `Quick test_step_create_fire;
          Alcotest.test_case "engine entry points are equivalent" `Quick
            test_step_equivalent_to_engine;
          Alcotest.test_case "no spurious rejection" `Quick
            test_step_rejection_reason;
        ] );
      ( "serve",
        [
          Alcotest.test_case "happy path" `Quick test_serve_happy_path;
          Alcotest.test_case "permission rejected" `Quick
            test_serve_permission_rejected;
          Alcotest.test_case "malformed frame" `Quick
            test_serve_malformed_frame;
          Alcotest.test_case "deadline expiry" `Quick
            test_serve_deadline_expiry;
          Alcotest.test_case "overload" `Quick test_serve_overload;
          Alcotest.test_case "shutdown drain" `Quick
            test_serve_shutdown_drain;
          Alcotest.test_case "frame split across reads mid-UTF-8" `Quick
            test_serve_split_frame;
          Alcotest.test_case "default deadline" `Quick
            test_serve_default_deadline;
          Alcotest.test_case "hello handshake" `Quick test_serve_hello;
          Alcotest.test_case "prepare/commit/abort" `Quick
            test_serve_two_phase;
          Alcotest.test_case "pipelined responses stay FIFO" `Quick
            test_serve_pipelined_fifo;
          Alcotest.test_case "slow reader pauses and resumes" `Quick
            test_serve_slow_reader;
          Alcotest.test_case "peer killed with backlogged output" `Quick
            test_serve_killed_with_backlog;
        ] );
    ]
