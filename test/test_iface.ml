(** Interface classes (§5.1): projection authorization, derivation,
    selection dynamics, join views, and encapsulation of permissions. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let value = Alcotest.testable Value.pp Value.equal

let load src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.system s
  | Error e -> Alcotest.failf "load failed: %s" (Troll.Error.to_string e)

(* bridges from the removed string-error wrappers to the
   session/engine API *)
let fire sys target name args =
  Engine.fire sys.Troll.community (Event.make target name args)

let create_exn sys ~cls ~key ?event ?(args = []) () =
  match Engine.step sys.Troll.community (Step.Create { cls; key; event; args })
  with
  | Ok _ -> ()
  | Error r -> failwith (Runtime_error.reason_to_string r)

let attr_exn sys target name =
  match Troll.Session.attr (Troll.Session.of_system sys) target name with
  | Ok v -> v
  | Error e -> failwith (Troll.Error.to_string e)

let view (sys : Troll.system) name = List.assoc_opt name sys.Troll.views

let view_exn sys name =
  match view sys name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "no interface class %s" name)

let money u = Value.Money (Money.of_units u)

let person_key name =
  Value.Tuple [ ("Name", Value.String name); ("Birthdate", Value.Date 0) ]

let company () =
  let sys = load Paper_specs.company in
  let mk name salary dept =
    create_exn sys ~cls:"PERSON" ~key:(person_key name)
      ~args:[ money salary; Value.String dept ] ();
    Ident.make "PERSON" (person_key name)
  in
  (sys, mk)

let ok = function
  | Ok v -> v
  | Error r -> Alcotest.failf "unexpected: %s" (Runtime_error.reason_to_string r)

(* ------------------------------------------------------------------ *)
(* Projection                                                          *)
(* ------------------------------------------------------------------ *)

let test_projection_read () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let v = view_exn sys "SAL_EMPLOYEE" in
  let inst = [ ("PERSON", alice) ] in
  check value "projected attribute" (money 6000)
    (ok (Interface.attr v inst "Salary" []));
  check value "identification attribute" (Value.String "alice")
    (ok (Interface.attr v inst "Name" []))

let test_projection_hides () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let v = view_exn sys "SAL_EMPLOYEE" in
  let inst = [ ("PERSON", alice) ] in
  (match Interface.attr v inst "Dept" [] with
  | Error (Runtime_error.Unknown_attribute _) -> ()
  | _ -> Alcotest.fail "hidden attribute leaked");
  (* hidden event *)
  match Interface.fire v inst "move_dept" [ Value.String "Sales" ] with
  | Error (Runtime_error.Unknown_event _) -> ()
  | _ -> Alcotest.fail "hidden event fired"

let test_projection_fire () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let v = view_exn sys "SAL_EMPLOYEE" in
  let inst = [ ("PERSON", alice) ] in
  ignore (ok (Interface.fire v inst "ChangeSalary" [ money 6500 ]));
  check value "base state changed" (money 6500)
    (attr_exn sys alice "Salary")

let test_attr_and_event_names () =
  let sys, _ = company () in
  let v = view_exn sys "SAL_EMPLOYEE" in
  check (Alcotest.list Alcotest.string) "attrs"
    [ "Name"; "IncomeInYear"; "Salary" ]
    (Interface.attr_names v);
  check (Alcotest.list Alcotest.string) "events" [ "ChangeSalary" ]
    (Interface.event_names v)

(* ------------------------------------------------------------------ *)
(* Derivation                                                          *)
(* ------------------------------------------------------------------ *)

let test_parameterized_derived_attribute () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let v = view_exn sys "SAL_EMPLOYEE" in
  let inst = [ ("PERSON", alice) ] in
  check value "IncomeInYear(1991)" (money 81000)
    (ok (Interface.attr v inst "IncomeInYear" [ Value.Int 1991 ]));
  check value "IncomeInYear(1980) undefined" Value.Undefined
    (ok (Interface.attr v inst "IncomeInYear" [ Value.Int 1980 ]));
  (match Interface.attr v inst "IncomeInYear" [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity violation accepted")

let test_derived_attribute () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let v = view_exn sys "SAL_EMPLOYEE2" in
  let inst = [ ("PERSON", alice) ] in
  check value "Salary * 13.5" (money 81000)
    (ok (Interface.attr v inst "CurrentIncomePerYear" []))

let test_derived_event () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let v = view_exn sys "SAL_EMPLOYEE2" in
  let inst = [ ("PERSON", alice) ] in
  ignore (ok (Interface.fire v inst "IncreaseSalary" []));
  check value "Salary * 1.1" (money 6600) (attr_exn sys alice "Salary");
  (* repeated applications compound *)
  ignore (ok (Interface.fire v inst "IncreaseSalary" []));
  check value "compounds" (money 7260) (attr_exn sys alice "Salary")

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

let test_selection_membership () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let _bob = mk "bob" 3000 "Sales" in
  let v = view_exn sys "RESEARCH_EMPLOYEE" in
  check tint "only research staff" 1 (List.length (Interface.extension v));
  check tbool "alice is member" true
    (Interface.member v [ ("PERSON", alice) ]);
  (* membership follows the state *)
  ignore (fire sys alice "move_dept" [ Value.String "Sales" ]);
  check tbool "alice left the view" false
    (Interface.member v [ ("PERSON", alice) ]);
  check tint "extension empty" 0 (List.length (Interface.extension v))

let test_selection_gates_access () =
  let sys, mk = company () in
  let bob = mk "bob" 3000 "Sales" in
  let v = view_exn sys "RESEARCH_EMPLOYEE" in
  let inst = [ ("PERSON", bob) ] in
  (match Interface.attr v inst "Salary" [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-member observable");
  match Interface.fire v inst "ChangeSalary" [ money 9999 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-member manipulable"

(* ------------------------------------------------------------------ *)
(* Join views                                                          *)
(* ------------------------------------------------------------------ *)

let test_join_view () =
  let sys, mk = company () in
  let alice = mk "alice" 6000 "Research" in
  let bob = mk "bob" 3000 "Sales" in
  let research = Ident.make "DEPT" (Value.String "Research") in
  let sales = Ident.make "DEPT" (Value.String "Sales") in
  create_exn sys ~cls:"DEPT" ~key:research.Ident.key ();
  create_exn sys ~cls:"DEPT" ~key:sales.Ident.key ();
  let v = view_exn sys "WORKS_FOR" in
  check tint "empty before hiring" 0 (List.length (Interface.extension v));
  ignore (fire sys research "hire" [ Ident.to_value alice ]);
  ignore (fire sys sales "hire" [ Ident.to_value bob ]);
  check tint "one row per employment" 2 (List.length (Interface.extension v));
  (* derived attributes resolve through the bound instance variables *)
  let row_alice = [ ("P", alice); ("D", research) ] in
  check value "DeptName" (Value.String "Research")
    (ok (Interface.attr v row_alice "DeptName" []));
  check value "PersonName" (Value.String "alice")
    (ok (Interface.attr v row_alice "PersonName" []));
  (* cross pairs are not in the view *)
  check tbool "alice×Sales not a member" false
    (Interface.member v [ ("P", alice); ("D", sales) ]);
  (* tabulation gives the expected relation *)
  let rows = Interface.tabulate v in
  check tint "two tuples" 2 (List.length rows);
  ignore (fire sys research "fire" [ Ident.to_value alice ]);
  check tint "row disappears" 1 (List.length (Interface.tabulate v))

(* ------------------------------------------------------------------ *)
(* Permissions are encapsulated                                        *)
(* ------------------------------------------------------------------ *)

let test_view_respects_base_permissions () =
  let sys = load Paper_specs.employee_implementation in
  let key =
    Value.Tuple [ ("EmpName", Value.String "eve"); ("EmpBirth", Value.Date 0) ]
  in
  let v = view_exn sys "EMPL" in
  let inst = [ ("EMPL_IMPL", Ident.make "EMPL_IMPL" key) ] in
  (* creation through the view *)
  ignore (ok (Interface.fire v inst "HireEmployee" []));
  check value "initial salary through view" (Value.Int 0)
    (ok (Interface.attr v inst "Salary" []));
  ignore (ok (Interface.fire v inst "IncreaseSalary" [ Value.Int 5 ]));
  check value "updated" (Value.Int 5) (ok (Interface.attr v inst "Salary" []));
  (* death through the view; further updates rejected by the base *)
  ignore (ok (Interface.fire v inst "FireEmployee" []));
  match Interface.fire v inst "IncreaseSalary" [ Value.Int 5 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "event accepted on dead base object"

let test_view_unknown_interface () =
  let sys, _ = company () in
  check tbool "missing view" true (view sys "NOPE" = None)

let () =
  Alcotest.run "iface"
    [
      ( "projection",
        [
          Alcotest.test_case "read" `Quick test_projection_read;
          Alcotest.test_case "hiding" `Quick test_projection_hides;
          Alcotest.test_case "fire" `Quick test_projection_fire;
          Alcotest.test_case "name lists" `Quick test_attr_and_event_names;
        ] );
      ( "derivation",
        [
          Alcotest.test_case "derived attribute (×13.5)" `Quick
            test_derived_attribute;
          Alcotest.test_case "parameterized derived attribute" `Quick
            test_parameterized_derived_attribute;
          Alcotest.test_case "derived event (×1.1)" `Quick test_derived_event;
        ] );
      ( "selection",
        [
          Alcotest.test_case "membership dynamics" `Quick
            test_selection_membership;
          Alcotest.test_case "gates access" `Quick test_selection_gates_access;
        ] );
      ( "join",
        [ Alcotest.test_case "WORKS_FOR" `Quick test_join_view ] );
      ( "encapsulation",
        [
          Alcotest.test_case "base permissions enforced" `Quick
            test_view_respects_base_permissions;
          Alcotest.test_case "unknown interface" `Quick
            test_view_unknown_interface;
        ] );
    ]
