(** Temporal layer: reference trace semantics, incremental monitors, and
    their equivalence (the correctness basis of permission checking and
    of experiment E4). *)

let check = Alcotest.check
let tbool = Alcotest.bool

(* Atoms are indices into a boolean state vector. *)
let atom i (s : bool array) = s.(i)

let trace rows : bool array array = Array.of_list (List.map Array.of_list rows)

let eval_last tr f = Trace_eval.eval_last ~atom tr f

let f_a = Formula.Atom 0
let f_b = Formula.Atom 1

(* ------------------------------------------------------------------ *)
(* Reference semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_sometime () =
  let tr = trace [ [ true; false ]; [ false; false ]; [ false; false ] ] in
  check tbool "past occurrence seen" true (eval_last tr (Formula.Sometime f_a));
  check tbool "never occurred" false (eval_last tr (Formula.Sometime f_b));
  check tbool "includes present" true
    (eval_last (trace [ [ false; false ]; [ true; false ] ]) (Formula.Sometime f_a))

let test_always () =
  let tr = trace [ [ true; true ]; [ true; false ] ] in
  check tbool "held throughout" true (eval_last tr (Formula.Always f_a));
  check tbool "broken once" false (eval_last tr (Formula.Always f_b))

let test_previous () =
  let tr = trace [ [ true; false ]; [ false; false ] ] in
  check tbool "previous state" true (eval_last tr (Formula.Previous f_a));
  check tbool "previous at start is false" false
    (eval_last (trace [ [ true; true ] ]) (Formula.Previous f_a))

let test_since () =
  (* b held at instant 1, a held from then on *)
  let tr =
    trace [ [ false; false ]; [ false; true ]; [ true; false ]; [ true; false ] ]
  in
  check tbool "a since b" true (eval_last tr (Formula.Since (f_a, f_b)));
  (* a gap in a after b breaks since *)
  let tr2 =
    trace [ [ false; true ]; [ false; false ]; [ true; false ] ]
  in
  check tbool "gap breaks since" false (eval_last tr2 (Formula.Since (f_a, f_b)));
  (* ψ now satisfies since immediately *)
  check tbool "b now" true
    (eval_last (trace [ [ false; true ] ]) (Formula.Since (f_a, f_b)))

let test_connectives () =
  let tr = trace [ [ true; false ] ] in
  check tbool "not" false (eval_last tr (Formula.Not f_a));
  check tbool "and" false (eval_last tr (Formula.And (f_a, f_b)));
  check tbool "or" true (eval_last tr (Formula.Or (f_a, f_b)));
  check tbool "implies" false (eval_last tr (Formula.Implies (f_a, f_b)));
  check tbool "true" true (eval_last tr Formula.True);
  check tbool "false" false (eval_last tr Formula.False)

let test_nested () =
  (* sometime(previous a): a held at some non-final instant *)
  let tr = trace [ [ true; false ]; [ false; false ]; [ false; false ] ] in
  check tbool "sometime previous" true
    (eval_last tr (Formula.Sometime (Formula.Previous f_a)));
  (* the permission pattern of the paper: sometime(after(hire)) =>
     modelled as Sometime (Atom occurs) *)
  let tr2 = trace [ [ false; false ]; [ true; false ]; [ false; false ] ] in
  check tbool "sometime then query later" true
    (eval_last tr2 (Formula.Sometime f_a))

(* ------------------------------------------------------------------ *)
(* Formula utilities                                                   *)
(* ------------------------------------------------------------------ *)

let test_size_atoms () =
  let f = Formula.Implies (Formula.Sometime f_a, Formula.Not f_b) in
  check Alcotest.int "size" 5 (Formula.size f);
  check (Alcotest.list Alcotest.int) "atoms" [ 0; 1 ]
    (List.sort compare (Formula.atoms [] f));
  check tbool "is_temporal" true (Formula.is_temporal f);
  check tbool "propositional" false
    (Formula.is_temporal (Formula.And (f_a, f_b)))

let test_map () =
  let f = Formula.Sometime (Formula.And (f_a, f_b)) in
  let g = Formula.map (fun i -> i + 10) f in
  check (Alcotest.list Alcotest.int) "mapped atoms" [ 10; 11 ]
    (List.sort compare (Formula.atoms [] g))

(* ------------------------------------------------------------------ *)
(* Monitor vs reference semantics                                      *)
(* ------------------------------------------------------------------ *)

let monitor_value tr f =
  let c = Monitor.compile f in
  Monitor.value c (Monitor.run c ~atom tr)

let test_monitor_basic () =
  let tr = trace [ [ true; false ]; [ false; false ] ] in
  check tbool "monitor sometime" true (monitor_value tr (Formula.Sometime f_a));
  check tbool "monitor previous" true (monitor_value tr (Formula.Previous f_a));
  check tbool "monitor always false" false
    (monitor_value tr (Formula.Always f_a))

let test_monitor_stepwise () =
  (* stepping one state at a time matches evaluating each prefix *)
  let c = Monitor.compile (Formula.Sometime f_a) in
  let s1 = Monitor.step c ~atom_eval:(fun i -> [| false; true |].(i)) None in
  check tbool "after step 1" false (Monitor.value c s1);
  let s2 =
    Monitor.step c ~atom_eval:(fun i -> [| true; false |].(i)) (Some s1)
  in
  check tbool "after step 2" true (Monitor.value c s2);
  let s3 =
    Monitor.step c ~atom_eval:(fun i -> [| false; false |].(i)) (Some s2)
  in
  check tbool "latches" true (Monitor.value c s3);
  (* old states are unaffected (immutability supports rollback) *)
  check tbool "old state intact" false (Monitor.value c s1)

(* step_false is the engine's fast path for objects untouched by a step
   (engine.ml uses it in four places): it must agree with the general
   step on an all-false state, and when the truth vector is unchanged it
   must return the input state itself — the pointer reuse is what lets
   rollback keep old states and lets the engine skip re-allocating
   monitor vectors for idle objects. *)
let all_false = Monitor.step ~atom_eval:(fun _ -> false)

let test_step_false_pointer_reuse () =
  (* sometime(a) latches: once true, further all-false steps leave the
     vector fixed, so step_false must hand back the very same state *)
  let c = Monitor.compile (Formula.Sometime f_a) in
  let s0 = Monitor.step c ~atom_eval:(fun i -> [| true; false |].(i)) None in
  (* first all-false step flips the atom entry, so a fresh state *)
  let s1 = Monitor.step_false c s0 in
  check tbool "atom entry flipped: fresh state" true (not (s1 == s0));
  (* from here the vector is a fixpoint of all-false stepping *)
  let s2 = Monitor.step_false c s1 in
  check tbool "latched vector: state physically reused" true (s2 == s1);
  check tbool "latched verdict" true (Monitor.value c s2);
  (* previous(a) after a true instant: the vector does change, so a
     fresh state must come back and carry the right verdict *)
  let c' = Monitor.compile (Formula.Previous f_a) in
  let t1 = Monitor.step c' ~atom_eval:(fun i -> [| true; false |].(i)) None in
  let t2 = Monitor.step_false c' t1 in
  check tbool "changed vector: fresh state" true (not (t2 == t1));
  check tbool "previous now true" true (Monitor.value c' t2);
  check tbool "matches general step" (Monitor.value c' (all_false c' (Some t1)))
    (Monitor.value c' t2)

(* random formulas over two atoms *)
let gen_formula =
  let open QCheck.Gen in
  let atom = map (fun i -> Formula.Atom i) (int_range 0 1) in
  let rec gen n =
    if n = 0 then oneof [ atom; return Formula.True; return Formula.False ]
    else
      frequency
        [ (2, atom);
          (1, map (fun f -> Formula.Not f) (gen (n - 1)));
          (1, map2 (fun a b -> Formula.And (a, b)) (gen (n - 1)) (gen (n - 1)));
          (1, map2 (fun a b -> Formula.Or (a, b)) (gen (n - 1)) (gen (n - 1)));
          (1,
           map2 (fun a b -> Formula.Implies (a, b)) (gen (n - 1)) (gen (n - 1)));
          (1, map (fun f -> Formula.Sometime f) (gen (n - 1)));
          (1, map (fun f -> Formula.Always f) (gen (n - 1)));
          (1, map2 (fun a b -> Formula.Since (a, b)) (gen (n - 1)) (gen (n - 1)));
          (1, map (fun f -> Formula.Previous f) (gen (n - 1))) ]
  in
  gen 4

let gen_trace =
  QCheck.Gen.(
    list_size (int_range 1 25) (pair bool bool)
    |> map (fun rows -> trace (List.map (fun (a, b) -> [ a; b ]) rows)))

let pp_formula_int = Formula.pp (fun ppf i -> Format.fprintf ppf "a%d" i)

let prop_monitor_equals_trace_eval =
  QCheck.Test.make
    ~name:"monitor ≡ reference semantics on every prefix" ~count:1000
    (QCheck.make
       ~print:(fun (f, tr) ->
         Format.asprintf "%a on %d states" pp_formula_int f (Array.length tr))
       (QCheck.Gen.pair gen_formula gen_trace))
    (fun (f, tr) ->
      let c = Monitor.compile f in
      let state = ref None in
      let ok = ref true in
      Array.iteri
        (fun i s ->
          let st = Monitor.step c ~atom_eval:(fun a -> atom a s) !state in
          state := Some st;
          if Monitor.value c st <> Trace_eval.eval ~atom tr i f then ok := false)
        tr;
      !ok)

let prop_step_false_equals_step =
  QCheck.Test.make
    ~name:"step_false ≡ step on all-false states, with pointer reuse"
    ~count:500
    (QCheck.make
       ~print:(fun (f, tr) ->
         Format.asprintf "%a on %d states" pp_formula_int f (Array.length tr))
       (QCheck.Gen.pair gen_formula gen_trace))
    (fun (f, tr) ->
      let c = Monitor.compile f in
      (* run the random prefix, then trail three all-false instants *)
      let s = ref (Monitor.run c ~atom tr) in
      let ok = ref true in
      for _ = 1 to 3 do
        let fast = Monitor.step_false c !s in
        let slow = all_false c (Some !s) in
        if Monitor.state_to_bools fast <> Monitor.state_to_bools slow then
          ok := false;
        if Monitor.value c fast <> Monitor.value c slow then ok := false;
        (* unchanged vector must come back as the same pointer *)
        if Monitor.state_to_bools fast = Monitor.state_to_bools !s
           && not (fast == !s)
        then ok := false;
        s := fast
      done;
      !ok)

let prop_monitor_size_linear =
  QCheck.Test.make ~name:"compiled monitor linear in formula size" ~count:200
    (QCheck.make ~print:(Format.asprintf "%a" pp_formula_int) gen_formula)
    (fun f ->
      let c = Monitor.compile f in
      Monitor.length c = Formula.size f)

(* ------------------------------------------------------------------ *)
(* Parametric monitors                                                 *)
(* ------------------------------------------------------------------ *)

(* instance formula: sometime(atom k) where the atom checks whether the
   state (an int list) contains k *)
let param_monitor quantifier =
  Monitor.Param.make ~quantifier ~key_equal:Int.equal ~instance:(fun _k ->
      Monitor.compile (Formula.Sometime (Formula.Atom ())))

let test_param_forall () =
  let m = param_monitor `Forall in
  let step domain state insts =
    Monitor.Param.step m ~domain
      ~atom_eval:(fun k () -> List.mem k state)
      insts
  in
  (* empty domain: vacuously true *)
  check tbool "empty" true (Monitor.Param.value m Monitor.Param.empty_state);
  (* key 1 appears and is satisfied; key 2 appears later, never satisfied *)
  let s1 = step [ 1 ] [ 1 ] Monitor.Param.empty_state in
  check tbool "one satisfied instance" true (Monitor.Param.value m s1);
  let s2 = step [ 1; 2 ] [] s1 in
  check tbool "unsatisfied newcomer falsifies" false (Monitor.Param.value m s2);
  let s3 = step [ 1; 2 ] [ 2 ] s2 in
  check tbool "newcomer satisfied later" true (Monitor.Param.value m s3)

let test_param_exists () =
  let m = param_monitor `Exists in
  let step domain state insts =
    Monitor.Param.step m ~domain
      ~atom_eval:(fun k () -> List.mem k state)
      insts
  in
  check tbool "empty is false" false
    (Monitor.Param.value m Monitor.Param.empty_state);
  let s1 = step [ 1; 2 ] [] Monitor.Param.empty_state in
  check tbool "none satisfied" false (Monitor.Param.value m s1);
  let s2 = step [ 1; 2 ] [ 2 ] s1 in
  check tbool "one witness suffices" true (Monitor.Param.value m s2)

let test_param_spawn_once () =
  let m = param_monitor `Forall in
  let s1 =
    Monitor.Param.step m ~domain:[ 1; 1; 1 ]
      ~atom_eval:(fun _ () -> true)
      Monitor.Param.empty_state
  in
  check Alcotest.int "duplicate domain values spawn once" 1
    (Monitor.Param.cardinal s1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "temporal"
    [
      ( "trace-eval",
        [
          Alcotest.test_case "sometime" `Quick test_sometime;
          Alcotest.test_case "always" `Quick test_always;
          Alcotest.test_case "previous" `Quick test_previous;
          Alcotest.test_case "since" `Quick test_since;
          Alcotest.test_case "connectives" `Quick test_connectives;
          Alcotest.test_case "nesting" `Quick test_nested;
        ] );
      ( "formula",
        [
          Alcotest.test_case "size/atoms/is_temporal" `Quick test_size_atoms;
          Alcotest.test_case "map" `Quick test_map;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "basic operators" `Quick test_monitor_basic;
          Alcotest.test_case "stepwise + immutability" `Quick
            test_monitor_stepwise;
          Alcotest.test_case "step_false pointer reuse" `Quick
            test_step_false_pointer_reuse;
        ] );
      ( "monitor-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_monitor_equals_trace_eval;
            prop_step_false_equals_step;
            prop_monitor_size_linear;
          ] );
      ( "parametric",
        [
          Alcotest.test_case "forall spawning" `Quick test_param_forall;
          Alcotest.test_case "exists spawning" `Quick test_param_exists;
          Alcotest.test_case "spawn deduplication" `Quick test_param_spawn_once;
        ] );
    ]
