(* The generative fuzzing layer: seed determinism of the generator,
   a small tier-1 oracle run (the large run lives under the @fuzz
   alias), shrinker minimisation against a planted predicate, corpus
   round-trips, and replay of committed counterexamples. *)

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

(* ---------------------------------------------------------------- *)
(* Generator determinism and well-formedness                         *)
(* ---------------------------------------------------------------- *)

let gen_src seed iter =
  Genspec.render (Genspec.generate (Rng.split (Rng.make2 seed iter)))

let test_generator_deterministic () =
  for i = 0 to 9 do
    check tstr
      (Printf.sprintf "same (seed, iter) = same source (iter %d)" i)
      (gen_src 7 i) (gen_src 7 i)
  done;
  (* different iterations draw different specs at least once *)
  check tbool "iterations differ" true
    (List.exists (fun i -> gen_src 7 i <> gen_src 7 0) [ 1; 2; 3 ])

let test_generated_specs_load () =
  for i = 0 to 19 do
    let src = gen_src 11 i in
    match Troll.Session.load src with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "iteration %d failed to load: %s\n%s" i
          (Troll.Error.to_string e) src
  done

let test_trace_deterministic () =
  let trace seed iter =
    let rng = Rng.make2 seed iter in
    let model = Genspec.generate (Rng.split rng) in
    match Troll.Session.load (Genspec.render model) with
    | Error e -> Alcotest.failf "load: %s" (Troll.Error.to_string e)
    | Ok s ->
        let len = Rng.range rng 15 40 in
        Gentrace.generate rng model (Troll.Session.community s) ~len
        |> List.map Step.to_string
  in
  check (Alcotest.list tstr) "same (seed, iter) = same trace" (trace 3 5)
    (trace 3 5)

(* ---------------------------------------------------------------- *)
(* Small deterministic oracle run (tier-1; @fuzz runs 500)           *)
(* ---------------------------------------------------------------- *)

let test_fuzz_small () =
  let outcome = Fuzz.run ~seed:42 ~iters:25 ~shrink:true () in
  match outcome.Fuzz.failure with
  | None -> check tint "iterations" 25 outcome.Fuzz.iterations
  | Some f ->
      Alcotest.failf "iteration %d failed oracle %s: %s\nshrunk spec:\n%s"
        f.Fuzz.f_iter f.Fuzz.f_oracle f.Fuzz.f_detail f.Fuzz.f_shrunk_spec

(* ---------------------------------------------------------------- *)
(* Shrinker                                                          *)
(* ---------------------------------------------------------------- *)

(* Plant a synthetic failure: "the trace fires C0.ev0".  The shrinker
   must reduce the trace to one such step and the spec to the one class
   the step mentions. *)
let test_shrinker_minimises () =
  let rng = Rng.make2 99 4 in
  let model = Genspec.generate (Rng.split rng) in
  match Troll.Session.load (Genspec.render model) with
  | Error e -> Alcotest.failf "load: %s" (Troll.Error.to_string e)
  | Ok s ->
      let trace =
        Gentrace.generate rng model (Troll.Session.community s) ~len:30
      in
      (* plain Fire only, so the surviving step mentions exactly C0 *)
      let fires_marker = function
        | Step.Fire e ->
            e.Event.target.Ident.cls = "C0" && e.Event.name = "ev0"
        | _ -> false
      in
      if not (List.exists fires_marker trace) then
        Alcotest.fail "seed draws no C0.ev0 step; pick another seed"
      else
        let pred _ t = List.exists fires_marker t in
        let model', trace' = Shrink.shrink ~pred model trace in
        check tbool "still fails" true (pred model' trace');
        check tint "trace reduced to the one step" 1 (List.length trace');
        check tint "classes reduced to the one mentioned" 1
          (List.length model'.Genspec.s_classes)

(* ---------------------------------------------------------------- *)
(* Corpus round-trip and replay                                      *)
(* ---------------------------------------------------------------- *)

let test_corpus_round_trip () =
  let rng = Rng.make2 5 0 in
  let model = Genspec.generate (Rng.split rng) in
  let src = Genspec.render model in
  match Troll.Session.load src with
  | Error e -> Alcotest.failf "load: %s" (Troll.Error.to_string e)
  | Ok s ->
      let trace =
        Gentrace.generate rng model (Troll.Session.community s) ~len:12
      in
      let path = Filename.temp_file "troll_corpus" ".fuzz" in
      Corpus.write ~path ~seed:5 ~iter:0 ~oracle:"dispatch" ~detail:"round trip"
        ~src ~trace;
      let result = Corpus.read path in
      Sys.remove path;
      (match result with
      | Error e -> Alcotest.failf "corpus read failed: %s" e
      | Ok (src', trace') ->
          check tstr "spec round-trips" src src';
          check
            (Alcotest.list tstr)
            "trace round-trips"
            (List.map Step.to_string trace)
            (List.map Step.to_string trace'))

(* Committed counterexamples under test/corpus are regressions: their
   bug is fixed, so every oracle must pass on them now. *)
let test_corpus_replay () =
  let dir = "corpus" in
  let files =
    if Sys.file_exists dir && Sys.is_directory dir then
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".fuzz")
      |> List.sort compare
    else []
  in
  List.iter
    (fun file ->
      match Corpus.read (Filename.concat dir file) with
      | Error e -> Alcotest.failf "%s: %s" file e
      | Ok (src, trace) -> (
          match Oracle.check_all src trace with
          | Ok () -> ()
          | Error f ->
              Alcotest.failf "%s: oracle %s failed: %s" file f.Oracle.oracle
                f.Oracle.detail))
    files

(* ---------------------------------------------------------------- *)
(* Oracle sanity: a known-good hand-written pair passes              *)
(* ---------------------------------------------------------------- *)

let test_oracles_on_dept () =
  let src =
    {|
object class PERSON
  identification pname: string;
  template
    attributes Grade: integer;
    events
      birth born;
      death dies;
      promote(integer);
    valuation
      variables g: integer;
      [born] Grade = 1;
      [promote(g)] Grade = g;
end object class PERSON;
|}
  in
  let p name = Ident.make "PERSON" (Value.String name) in
  let trace =
    [
      Step.Create { cls = "PERSON"; key = Value.String "a"; event = None; args = [] };
      Step.Fire (Event.make (p "a") "promote" [ Value.Int 3 ]);
      Step.Fire (Event.make (p "ghost") "promote" [ Value.Int 1 ]);
      Step.Destroy { id = p "a"; event = None; args = [] };
    ]
  in
  match Oracle.check_all src trace with
  | Ok () -> ()
  | Error f -> Alcotest.failf "oracle %s failed: %s" f.Oracle.oracle f.Oracle.detail

let () =
  Alcotest.run "fuzz"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "generated specs load" `Quick
            test_generated_specs_load;
          Alcotest.test_case "trace deterministic" `Quick
            test_trace_deterministic;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "hand-written pair passes" `Quick
            test_oracles_on_dept;
          Alcotest.test_case "25 seeded iterations" `Quick test_fuzz_small;
        ] );
      ( "shrinker",
        [ Alcotest.test_case "minimises a planted failure" `Quick test_shrinker_minimises ] );
      ( "corpus",
        [
          Alcotest.test_case "round trip" `Quick test_corpus_round_trip;
          Alcotest.test_case "replay committed counterexamples" `Quick
            test_corpus_replay;
        ] );
    ]
