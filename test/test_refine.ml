(** Stepwise refinement (§5.2): obligation generation, candidate
    synthesis, and the bounded lock-step simulation on correct and
    deliberately broken implementations. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let load src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.community s
  | Error e -> Alcotest.failf "load failed: %s" (Troll.Error.to_string e)

let key name =
  Value.Tuple [ ("EmpName", Value.String name); ("EmpBirth", Value.Date 0) ]

let employee_pair () =
  let abs = load Paper_specs.employee_abstract in
  let conc = load Paper_specs.employee_implementation in
  (match Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") () with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "abs create: %s" (Runtime_error.reason_to_string r));
  (match Engine.create conc ~cls:"EMPL_IMPL" ~key:(key "eve") () with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "conc create: %s" (Runtime_error.reason_to_string r));
  ( { Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") },
    { Refinement.community = conc; id = Ident.make "EMPL_IMPL" (key "eve") } )

let impl = Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPL_IMPL" ()

let alphabet =
  [
    { Refinement.ev_name = "IncreaseSalary"; ev_args = [ Value.Int 100 ] };
    { Refinement.ev_name = "FireEmployee"; ev_args = [] };
  ]

(* ------------------------------------------------------------------ *)
(* Implementation mapping                                              *)
(* ------------------------------------------------------------------ *)

let test_mapping_defaults () =
  check Alcotest.string "unmapped event keeps name" "IncreaseSalary"
    (Implementation.map_event impl "IncreaseSalary");
  let renamed =
    Implementation.make ~abs_class:"A" ~conc_class:"B"
      ~event_map:[ ("raise", "bump") ]
      ~attr_map:[ ("Salary", "Pay") ]
      ()
  in
  check Alcotest.string "mapped event" "bump"
    (Implementation.map_event renamed "raise");
  check Alcotest.string "mapped attr" "Pay"
    (Implementation.map_attr renamed "Salary")

let test_observed_attrs () =
  let abs = load Paper_specs.employee_abstract in
  let tpl = Community.template_exn abs "EMPLOYEE" in
  let obs = Implementation.observed_attrs impl tpl in
  check tbool "Salary observed" true (List.mem_assoc "Salary" obs);
  let hiding =
    Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPL_IMPL"
      ~hidden:[ "Salary" ] ()
  in
  check tbool "hidden attr dropped" false
    (List.mem_assoc "Salary" (Implementation.observed_attrs hiding tpl))

(* ------------------------------------------------------------------ *)
(* Obligations                                                         *)
(* ------------------------------------------------------------------ *)

let test_obligations_generated () =
  let abs = load Paper_specs.employee_abstract in
  let conc = load Paper_specs.employee_implementation in
  let obs =
    Obligation.generate impl
      ~abs_tpl:(Community.template_exn abs "EMPLOYEE")
      ~conc_tpl:(Community.template_exn conc "EMPL_IMPL")
  in
  (* 3 events × (enabled + effect) = 6, no permissions on the abstract
     side, no missing counterparts *)
  check tint "six obligations" 6 (List.length obs);
  check tbool "all unchecked initially" true
    (List.for_all (fun ob -> ob.Obligation.ob_status = Obligation.Unchecked) obs)

let test_obligations_missing_counterpart () =
  let abs = load Paper_specs.employee_abstract in
  let obs =
    Obligation.generate
      (Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPLOYEE"
         ~event_map:[ ("IncreaseSalary", "Nonexistent") ]
         ())
      ~abs_tpl:(Community.template_exn abs "EMPLOYEE")
      ~conc_tpl:(Community.template_exn abs "EMPLOYEE")
  in
  check tbool "missing counterpart reported" true
    (List.exists
       (fun ob -> ob.Obligation.ob_kind = Obligation.Birth_death)
       obs)

(* ------------------------------------------------------------------ *)
(* Candidate synthesis                                                 *)
(* ------------------------------------------------------------------ *)

let test_candidates () =
  let abs = load Paper_specs.employee_abstract in
  let tpl = Community.template_exn abs "EMPLOYEE" in
  let cands = Refinement.candidates tpl in
  (* no birth events among candidates *)
  check tbool "no birth" true
    (List.for_all
       (fun (c : Refinement.candidate) -> c.Refinement.ev_name <> "HireEmployee")
       cands);
  check tbool "death present" true
    (List.exists
       (fun (c : Refinement.candidate) -> c.Refinement.ev_name = "FireEmployee")
       cands);
  (* parameterized events got argument combinations *)
  check tbool "increase has args" true
    (List.exists
       (fun (c : Refinement.candidate) ->
         c.Refinement.ev_name = "IncreaseSalary" && c.Refinement.ev_args <> [])
       cands)

let test_default_pool () =
  check tint "bool pool" 2 (List.length (Refinement.default_pool Vtype.Bool));
  check tbool "enum pool covers constants" true
    (List.length (Refinement.default_pool (Vtype.Enum ("G", [ "a"; "b"; "c" ]))) = 3);
  check tbool "tuple pool nonempty" true
    (Refinement.default_pool
       (Vtype.Tuple [ ("a", Vtype.Int); ("b", Vtype.Bool) ])
    <> [])

(* ------------------------------------------------------------------ *)
(* The §5.2 refinement                                                 *)
(* ------------------------------------------------------------------ *)

let test_employee_refines () =
  let abs, conc = employee_pair () in
  let report = Refinement.check ~impl ~abs ~conc ~alphabet ~depth:3 () in
  (match report.Refinement.verdict with
  | Ok () -> ()
  | Error cx ->
      Alcotest.failf "refinement failed: %s"
        (Format.asprintf "%a" Refinement.pp_counterexample cx));
  check tbool "cases explored" true (report.Refinement.cases > 0);
  (* exercised obligations were marked *)
  check tbool "some obligations exercised" true
    (List.exists
       (fun ob ->
         match ob.Obligation.ob_status with
         | Obligation.Exercised _ -> true
         | _ -> false)
       report.Refinement.obligations)

let test_exploration_grows_with_depth () =
  let r1 =
    let abs, conc = employee_pair () in
    Refinement.check ~impl ~abs ~conc ~alphabet ~depth:2 ()
  in
  let r2 =
    let abs, conc = employee_pair () in
    Refinement.check ~impl ~abs ~conc ~alphabet ~depth:4 ()
  in
  check tbool "deeper explores more" true
    (r2.Refinement.cases > r1.Refinement.cases)

let broken_effect = {|
object class EMPLOYEE_BAD
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n + n;
end object class EMPLOYEE_BAD;
|}

let test_broken_effect_detected () =
  let abs = load Paper_specs.employee_abstract in
  let conc = load broken_effect in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_BAD" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:(Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPLOYEE_BAD" ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:{ Refinement.community = conc; id = Ident.make "EMPLOYEE_BAD" (key "eve") }
      ~alphabet ~depth:2 ()
  in
  match report.Refinement.verdict with
  | Error cx ->
      check tbool "observation mismatch named" true
        (String.length cx.Refinement.reason > 0);
      check tbool "violated obligation recorded" true
        (List.exists
           (fun ob ->
             match ob.Obligation.ob_status with
             | Obligation.Violated _ -> true
             | _ -> false)
           report.Refinement.obligations)
  | Ok () -> Alcotest.fail "broken effect not detected"

let too_strict = {|
object class EMPLOYEE_STRICT
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
    permissions
      variables n: integer;
      { Salary > 0 } IncreaseSalary(n);
end object class EMPLOYEE_STRICT;
|}

let test_too_strict_detected () =
  (* implementation rejects an event the specification allows *)
  let abs = load Paper_specs.employee_abstract in
  let conc = load too_strict in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_STRICT" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:
        (Implementation.make ~abs_class:"EMPLOYEE"
           ~conc_class:"EMPLOYEE_STRICT" ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = conc;
          id = Ident.make "EMPLOYEE_STRICT" (key "eve") }
      ~alphabet ~depth:2 ()
  in
  match report.Refinement.verdict with
  | Error cx ->
      check tbool "enabledness mismatch" true
        (String.length cx.Refinement.reason > 0)
  | Ok () -> Alcotest.fail "over-strict implementation not detected"

let too_permissive = {|
object class EMPLOYEE_LOOSE
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
end object class EMPLOYEE_LOOSE;
|}

let abs_with_permission = {|
object class EMPLOYEE
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
    permissions
      variables n: integer;
      { Salary < 200 } IncreaseSalary(n);
end object class EMPLOYEE;
|}

let test_too_permissive_detected () =
  (* the spec forbids raises beyond a bound; the implementation ignores
     the permission — the property-preservation direction catches it *)
  let abs = load abs_with_permission in
  let conc = load too_permissive in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_LOOSE" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:
        (Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPLOYEE_LOOSE"
           ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = conc;
          id = Ident.make "EMPLOYEE_LOOSE" (key "eve") }
      ~alphabet ~depth:4 ()
  in
  match report.Refinement.verdict with
  | Error _ ->
      check tbool "permission-preservation obligation violated" true
        (List.exists
           (fun ob ->
             ob.Obligation.ob_kind = Obligation.Permission_preserved
             &&
             match ob.Obligation.ob_status with
             | Obligation.Violated _ -> true
             | _ -> false)
           report.Refinement.obligations)
  | Ok () -> Alcotest.fail "over-permissive implementation not detected"

let missing_death_effect = {|
object class EMPLOYEE_UNDEAD
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
end object class EMPLOYEE_UNDEAD;
|}

let test_lifecycle_divergence_detected () =
  (* concrete FireEmployee is not a death event: life cycles diverge *)
  let abs = load Paper_specs.employee_abstract in
  let conc = load missing_death_effect in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_UNDEAD" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:
        (Implementation.make ~abs_class:"EMPLOYEE"
           ~conc_class:"EMPLOYEE_UNDEAD" ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = conc;
          id = Ident.make "EMPLOYEE_UNDEAD" (key "eve") }
      ~alphabet ~depth:2 ()
  in
  match report.Refinement.verdict with
  | Error cx ->
      check tbool "life-cycle divergence named" true
        (String.length cx.Refinement.reason > 0)
  | Ok () -> Alcotest.fail "life-cycle divergence not detected"

let () =
  Alcotest.run "refine"
    [
      ( "mapping",
        [
          Alcotest.test_case "defaults and renames" `Quick
            test_mapping_defaults;
          Alcotest.test_case "observed attributes" `Quick test_observed_attrs;
        ] );
      ( "obligations",
        [
          Alcotest.test_case "generation" `Quick test_obligations_generated;
          Alcotest.test_case "missing counterpart" `Quick
            test_obligations_missing_counterpart;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "synthesis" `Quick test_candidates;
          Alcotest.test_case "value pools" `Quick test_default_pool;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "EMPLOYEE over emp_rel holds" `Quick
            test_employee_refines;
          Alcotest.test_case "exploration grows with depth" `Quick
            test_exploration_grows_with_depth;
          Alcotest.test_case "wrong effect detected" `Quick
            test_broken_effect_detected;
          Alcotest.test_case "over-strict detected" `Quick
            test_too_strict_detected;
          Alcotest.test_case "over-permissive detected" `Quick
            test_too_permissive_detected;
          Alcotest.test_case "life-cycle divergence detected" `Quick
            test_lifecycle_divergence_detected;
        ] );
    ]
