(** Stepwise refinement (§5.2): obligation generation, candidate
    synthesis, and the bounded lock-step simulation on correct and
    deliberately broken implementations. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let load src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.community s
  | Error e -> Alcotest.failf "load failed: %s" (Troll.Error.to_string e)

let key name =
  Value.Tuple [ ("EmpName", Value.String name); ("EmpBirth", Value.Date 0) ]

let employee_pair () =
  let abs = load Paper_specs.employee_abstract in
  let conc = load Paper_specs.employee_implementation in
  (match Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") () with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "abs create: %s" (Runtime_error.reason_to_string r));
  (match Engine.create conc ~cls:"EMPL_IMPL" ~key:(key "eve") () with
  | Ok _ -> ()
  | Error r -> Alcotest.failf "conc create: %s" (Runtime_error.reason_to_string r));
  ( { Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") },
    { Refinement.community = conc; id = Ident.make "EMPL_IMPL" (key "eve") } )

let impl = Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPL_IMPL" ()

let alphabet =
  [
    { Refinement.ev_name = "IncreaseSalary"; ev_args = [ Value.Int 100 ] };
    { Refinement.ev_name = "FireEmployee"; ev_args = [] };
  ]

(* ------------------------------------------------------------------ *)
(* Implementation mapping                                              *)
(* ------------------------------------------------------------------ *)

let test_mapping_defaults () =
  check Alcotest.string "unmapped event keeps name" "IncreaseSalary"
    (Implementation.map_event impl "IncreaseSalary");
  let renamed =
    Implementation.make ~abs_class:"A" ~conc_class:"B"
      ~event_map:[ ("raise", "bump") ]
      ~attr_map:[ ("Salary", "Pay") ]
      ()
  in
  check Alcotest.string "mapped event" "bump"
    (Implementation.map_event renamed "raise");
  check Alcotest.string "mapped attr" "Pay"
    (Implementation.map_attr renamed "Salary")

let test_observed_attrs () =
  let abs = load Paper_specs.employee_abstract in
  let tpl = Community.template_exn abs "EMPLOYEE" in
  let obs = Implementation.observed_attrs impl tpl in
  check tbool "Salary observed" true (List.mem_assoc "Salary" obs);
  let hiding =
    Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPL_IMPL"
      ~hidden:[ "Salary" ] ()
  in
  check tbool "hidden attr dropped" false
    (List.mem_assoc "Salary" (Implementation.observed_attrs hiding tpl))

(* ------------------------------------------------------------------ *)
(* Obligations                                                         *)
(* ------------------------------------------------------------------ *)

let test_obligations_generated () =
  let abs = load Paper_specs.employee_abstract in
  let conc = load Paper_specs.employee_implementation in
  let obs =
    Obligation.generate impl
      ~abs_tpl:(Community.template_exn abs "EMPLOYEE")
      ~conc_tpl:(Community.template_exn conc "EMPL_IMPL")
  in
  (* 3 events × (enabled + effect) = 6, no permissions on the abstract
     side, no missing counterparts *)
  check tint "six obligations" 6 (List.length obs);
  check tbool "all unchecked initially" true
    (List.for_all (fun ob -> ob.Obligation.ob_status = Obligation.Unchecked) obs)

let test_obligations_missing_counterpart () =
  let abs = load Paper_specs.employee_abstract in
  let obs =
    Obligation.generate
      (Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPLOYEE"
         ~event_map:[ ("IncreaseSalary", "Nonexistent") ]
         ())
      ~abs_tpl:(Community.template_exn abs "EMPLOYEE")
      ~conc_tpl:(Community.template_exn abs "EMPLOYEE")
  in
  check tbool "missing counterpart reported" true
    (List.exists
       (fun ob -> ob.Obligation.ob_kind = Obligation.Birth_death)
       obs)

(* ------------------------------------------------------------------ *)
(* Candidate synthesis                                                 *)
(* ------------------------------------------------------------------ *)

let test_candidates () =
  let abs = load Paper_specs.employee_abstract in
  let tpl = Community.template_exn abs "EMPLOYEE" in
  let cands = Refinement.candidates tpl in
  (* no birth events among candidates *)
  check tbool "no birth" true
    (List.for_all
       (fun (c : Refinement.candidate) -> c.Refinement.ev_name <> "HireEmployee")
       cands);
  check tbool "death present" true
    (List.exists
       (fun (c : Refinement.candidate) -> c.Refinement.ev_name = "FireEmployee")
       cands);
  (* parameterized events got argument combinations *)
  check tbool "increase has args" true
    (List.exists
       (fun (c : Refinement.candidate) ->
         c.Refinement.ev_name = "IncreaseSalary" && c.Refinement.ev_args <> [])
       cands)

let test_default_pool () =
  check tint "bool pool" 2 (List.length (Refinement.default_pool Vtype.Bool));
  check tbool "enum pool covers constants" true
    (List.length (Refinement.default_pool (Vtype.Enum ("G", [ "a"; "b"; "c" ]))) = 3);
  check tbool "tuple pool nonempty" true
    (Refinement.default_pool
       (Vtype.Tuple [ ("a", Vtype.Int); ("b", Vtype.Bool) ])
    <> [])

(* ------------------------------------------------------------------ *)
(* The §5.2 refinement                                                 *)
(* ------------------------------------------------------------------ *)

let test_employee_refines () =
  let abs, conc = employee_pair () in
  let report = Refinement.check ~impl ~abs ~conc ~alphabet ~depth:3 () in
  (match report.Refinement.verdict with
  | Ok () -> ()
  | Error cx ->
      Alcotest.failf "refinement failed: %s"
        (Format.asprintf "%a" Refinement.pp_counterexample cx));
  check tbool "cases explored" true (report.Refinement.cases > 0);
  (* exercised obligations were marked *)
  check tbool "some obligations exercised" true
    (List.exists
       (fun ob ->
         match ob.Obligation.ob_status with
         | Obligation.Exercised _ -> true
         | _ -> false)
       report.Refinement.obligations)

let test_exploration_grows_with_depth () =
  let r1 =
    let abs, conc = employee_pair () in
    Refinement.check ~impl ~abs ~conc ~alphabet ~depth:2 ()
  in
  let r2 =
    let abs, conc = employee_pair () in
    Refinement.check ~impl ~abs ~conc ~alphabet ~depth:4 ()
  in
  check tbool "deeper explores more" true
    (r2.Refinement.cases > r1.Refinement.cases)

let broken_effect = {|
object class EMPLOYEE_BAD
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n + n;
end object class EMPLOYEE_BAD;
|}

let test_broken_effect_detected () =
  let abs = load Paper_specs.employee_abstract in
  let conc = load broken_effect in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_BAD" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:(Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPLOYEE_BAD" ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:{ Refinement.community = conc; id = Ident.make "EMPLOYEE_BAD" (key "eve") }
      ~alphabet ~depth:2 ()
  in
  match report.Refinement.verdict with
  | Error cx ->
      check tbool "observation mismatch named" true
        (String.length cx.Refinement.reason > 0);
      check tbool "violated obligation recorded" true
        (List.exists
           (fun ob ->
             match ob.Obligation.ob_status with
             | Obligation.Violated _ -> true
             | _ -> false)
           report.Refinement.obligations)
  | Ok () -> Alcotest.fail "broken effect not detected"

let too_strict = {|
object class EMPLOYEE_STRICT
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
    permissions
      variables n: integer;
      { Salary > 0 } IncreaseSalary(n);
end object class EMPLOYEE_STRICT;
|}

let test_too_strict_detected () =
  (* implementation rejects an event the specification allows *)
  let abs = load Paper_specs.employee_abstract in
  let conc = load too_strict in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_STRICT" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:
        (Implementation.make ~abs_class:"EMPLOYEE"
           ~conc_class:"EMPLOYEE_STRICT" ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = conc;
          id = Ident.make "EMPLOYEE_STRICT" (key "eve") }
      ~alphabet ~depth:2 ()
  in
  match report.Refinement.verdict with
  | Error cx ->
      check tbool "enabledness mismatch" true
        (String.length cx.Refinement.reason > 0)
  | Ok () -> Alcotest.fail "over-strict implementation not detected"

let too_permissive = {|
object class EMPLOYEE_LOOSE
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
end object class EMPLOYEE_LOOSE;
|}

let abs_with_permission = {|
object class EMPLOYEE
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
    permissions
      variables n: integer;
      { Salary < 200 } IncreaseSalary(n);
end object class EMPLOYEE;
|}

let test_too_permissive_detected () =
  (* the spec forbids raises beyond a bound; the implementation ignores
     the permission — the property-preservation direction catches it *)
  let abs = load abs_with_permission in
  let conc = load too_permissive in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_LOOSE" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:
        (Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPLOYEE_LOOSE"
           ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = conc;
          id = Ident.make "EMPLOYEE_LOOSE" (key "eve") }
      ~alphabet ~depth:4 ()
  in
  match report.Refinement.verdict with
  | Error _ ->
      check tbool "permission-preservation obligation violated" true
        (List.exists
           (fun ob ->
             ob.Obligation.ob_kind = Obligation.Permission_preserved
             &&
             match ob.Obligation.ob_status with
             | Obligation.Violated _ -> true
             | _ -> false)
           report.Refinement.obligations)
  | Ok () -> Alcotest.fail "over-permissive implementation not detected"

let missing_death_effect = {|
object class EMPLOYEE_UNDEAD
  identification EmpName: string; EmpBirth: date;
  template
    attributes Salary: integer;
    events
      birth HireEmployee;
      FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n;
end object class EMPLOYEE_UNDEAD;
|}

let test_lifecycle_divergence_detected () =
  (* concrete FireEmployee is not a death event: life cycles diverge *)
  let abs = load Paper_specs.employee_abstract in
  let conc = load missing_death_effect in
  ignore (Engine.create abs ~cls:"EMPLOYEE" ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:"EMPLOYEE_UNDEAD" ~key:(key "eve") ());
  let report =
    Refinement.check
      ~impl:
        (Implementation.make ~abs_class:"EMPLOYEE"
           ~conc_class:"EMPLOYEE_UNDEAD" ())
      ~abs:{ Refinement.community = abs; id = Ident.make "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = conc;
          id = Ident.make "EMPLOYEE_UNDEAD" (key "eve") }
      ~alphabet ~depth:2 ()
  in
  match report.Refinement.verdict with
  | Error cx ->
      check tbool "life-cycle divergence named" true
        (String.length cx.Refinement.reason > 0)
  | Ok () -> Alcotest.fail "life-cycle divergence not detected"

(* ------------------------------------------------------------------ *)
(* Certificates, memoization, and the independent validator            *)
(* ------------------------------------------------------------------ *)

(* every example spec pair in this file, correct and broken alike *)
let spec_pairs =
  [
    ( "employee",
      Paper_specs.employee_abstract, "EMPLOYEE",
      Paper_specs.employee_implementation, "EMPL_IMPL" );
    ("broken-effect", Paper_specs.employee_abstract, "EMPLOYEE",
     broken_effect, "EMPLOYEE_BAD");
    ("too-strict", Paper_specs.employee_abstract, "EMPLOYEE",
     too_strict, "EMPLOYEE_STRICT");
    ("too-permissive", abs_with_permission, "EMPLOYEE",
     too_permissive, "EMPLOYEE_LOOSE");
    ("undead", Paper_specs.employee_abstract, "EMPLOYEE",
     missing_death_effect, "EMPLOYEE_UNDEAD");
  ]

let run_pair ?pool ?record (_, abs_src, abs_cls, conc_src, conc_cls) ~depth =
  let abs = load abs_src and conc = load conc_src in
  ignore (Engine.create abs ~cls:abs_cls ~key:(key "eve") ());
  ignore (Engine.create conc ~cls:conc_cls ~key:(key "eve") ());
  Refinement.check ?pool ?record
    ~impl:(Implementation.make ~abs_class:abs_cls ~conc_class:conc_cls ())
    ~abs:{ Refinement.community = abs; id = Ident.make abs_cls (key "eve") }
    ~conc:{ Refinement.community = conc; id = Ident.make conc_cls (key "eve") }
    ~alphabet ~depth ()

let make_builder ~depth (_, abs_src, abs_cls, conc_src, conc_cls) =
  Certificate.builder ~abs_src ~conc_src
    ~impl:(Implementation.make ~abs_class:abs_cls ~conc_class:conc_cls ())
    ~abs_key:(key "eve") ~conc_key:(key "eve")
    ~alphabet:
      (List.map
         (fun (c : Refinement.candidate) ->
           (c.Refinement.ev_name, c.Refinement.ev_args))
         alphabet)
    ~depth ()

let employee = List.hd spec_pairs

let employee_cert ~depth =
  let b = make_builder ~depth employee in
  let report = run_pair ~record:b employee ~depth in
  (match report.Refinement.verdict with
  | Ok () -> ()
  | Error cx ->
      Alcotest.failf "employee refinement failed: %s"
        (Format.asprintf "%a" Refinement.pp_counterexample cx));
  Certificate.finish b

let test_cert_roundtrip () =
  let enc = Certificate.encode (employee_cert ~depth:3) in
  match Certificate.decode enc with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok cert' ->
      check tbool "emit . decode . emit is the identity" true
        (String.equal (Certificate.encode cert') enc)

let test_recorded_report_identical () =
  (* recording must not change the verdict: on every example pair the
     reports render bit-identically with and without a builder *)
  List.iter
    (fun pair ->
      let name, _, _, _, _ = pair in
      let plain = run_pair pair ~depth:3 in
      let recorded = run_pair ~record:(make_builder ~depth:3 pair) pair ~depth:3 in
      check Alcotest.string
        (Printf.sprintf "%s: recorded report equals plain" name)
        (Format.asprintf "%a" Refinement.pp_report plain)
        (Format.asprintf "%a" Refinement.pp_report recorded))
    spec_pairs

let test_parallel_cert_identical () =
  let seq = Certificate.encode (employee_cert ~depth:4) in
  let pool = Pool.create ~jobs:4 in
  let par =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        let b = make_builder ~depth:4 employee in
        ignore (run_pair ~pool ~record:b employee ~depth:4);
        Certificate.encode (Certificate.finish b))
  in
  check tbool "parallel certificate bit-identical to sequential" true
    (String.equal seq par)

let with_memo_dir k =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "troll_memo_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> k dir)

let test_memo_warm_recheck () =
  with_memo_dir @@ fun dir ->
  let cold_b = make_builder ~depth:3 employee in
  let cold = run_pair ~record:cold_b employee ~depth:3 in
  (match Certificate.save_memo cold_b ~dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save_memo: %s" e);
  let warm_b = make_builder ~depth:3 employee in
  (match Certificate.load_memo warm_b ~dir with
  | Ok n -> check tbool "memo pairs loaded" true (n > 0)
  | Error e -> Alcotest.failf "load_memo: %s" e);
  let warm = run_pair ~record:warm_b employee ~depth:3 in
  check tbool "warm verdict holds" true (warm.Refinement.verdict = Ok ());
  check tbool "warm re-check examines fewer cases" true
    (warm.Refinement.cases < cold.Refinement.cases);
  check Alcotest.string "warm certificate bit-identical"
    (Certificate.encode (Certificate.finish cold_b))
    (Certificate.encode (Certificate.finish warm_b));
  (* a deeper warm re-check extends the table and still validates *)
  let deep_b = make_builder ~depth:5 employee in
  (match Certificate.load_memo deep_b ~dir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "load_memo (deep): %s" e);
  ignore (run_pair ~record:deep_b employee ~depth:5);
  match Validator.validate (Certificate.finish deep_b) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deep warm certificate rejected: %s" e

let test_validator_accepts () =
  match Validator.validate (employee_cert ~depth:3) with
  | Ok st ->
      check tbool "edges replayed" true (st.Validator.v_edges > 0);
      check tbool "nodes visited" true (st.Validator.v_nodes > 0)
  | Error e -> Alcotest.failf "genuine certificate rejected: %s" e

let test_validator_accepts_failing_cert () =
  (* an honest certificate of a *failed* check also validates *)
  let pair = List.nth spec_pairs 1 in
  let b = make_builder ~depth:2 pair in
  let report = run_pair ~record:b pair ~depth:2 in
  check tbool "broken pair fails" true (report.Refinement.verdict <> Ok ());
  match Validator.validate (Certificate.finish b) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "honest failing certificate rejected: %s" e

let expect_reject what cert =
  match Validator.validate cert with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "validator accepted a certificate with %s" what

let test_tamper_flipped_verdict () =
  let cert = employee_cert ~depth:3 in
  match cert.Certificate.edges with
  | [] -> Alcotest.fail "certificate has no edges"
  | e :: rest ->
      let verdict =
        match e.Certificate.e_verdict with
        | Certificate.E_ok _ -> Certificate.E_stuck
        | _ -> Certificate.E_ok e.Certificate.e_pre
      in
      let e' =
        {
          e with
          Certificate.e_verdict = verdict;
          e_oblig = Certificate.oblig_of_verdict e.Certificate.e_event verdict;
        }
      in
      expect_reject "a flipped verdict"
        { cert with Certificate.edges = e' :: rest }

let test_tamper_corrupted_digest () =
  (* rewrite one digest consistently everywhere, so only replay can
     tell: the structure is intact but the state is not the claimed one *)
  let cert = employee_cert ~depth:3 in
  let target = cert.Certificate.root.Certificate.p_abs in
  let fake =
    String.map
      (fun c -> if c = target.[0] then (if c = 'f' then '0' else 'f') else c)
      target
  in
  let swap d = if String.equal d target then fake else d in
  let swap_pair (p : Certificate.pair) =
    { Certificate.p_abs = swap p.Certificate.p_abs; p_conc = p.Certificate.p_conc }
  in
  expect_reject "a corrupted digest"
    {
      cert with
      Certificate.root = swap_pair cert.Certificate.root;
      nodes = List.map (fun (p, d) -> (swap_pair p, d)) cert.Certificate.nodes;
      edges =
        List.map
          (fun (e : Certificate.edge) ->
            {
              e with
              Certificate.e_pre = swap_pair e.Certificate.e_pre;
              e_verdict =
                (match e.Certificate.e_verdict with
                | Certificate.E_ok p -> Certificate.E_ok (swap_pair p)
                | v -> v);
            })
          cert.Certificate.edges;
    }

let test_tamper_dropped_edge () =
  let cert = employee_cert ~depth:3 in
  match cert.Certificate.edges with
  | [] -> Alcotest.fail "certificate has no edges"
  | _ :: rest -> expect_reject "a dropped edge" { cert with Certificate.edges = rest }

let test_framing_rejects_corruption () =
  let enc = Certificate.encode (employee_cert ~depth:2) in
  let corrupt = enc ^ "trailing garbage" in
  (match Certificate.decode corrupt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decode accepted a lengthened body");
  let flipped = Bytes.of_string enc in
  let mid = String.length enc / 2 in
  Bytes.set flipped mid (if Bytes.get flipped mid = 'x' then 'y' else 'x');
  match Certificate.decode (Bytes.to_string flipped) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decode accepted a flipped byte"

let () =
  Alcotest.run "refine"
    [
      ( "mapping",
        [
          Alcotest.test_case "defaults and renames" `Quick
            test_mapping_defaults;
          Alcotest.test_case "observed attributes" `Quick test_observed_attrs;
        ] );
      ( "obligations",
        [
          Alcotest.test_case "generation" `Quick test_obligations_generated;
          Alcotest.test_case "missing counterpart" `Quick
            test_obligations_missing_counterpart;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "synthesis" `Quick test_candidates;
          Alcotest.test_case "value pools" `Quick test_default_pool;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "EMPLOYEE over emp_rel holds" `Quick
            test_employee_refines;
          Alcotest.test_case "exploration grows with depth" `Quick
            test_exploration_grows_with_depth;
          Alcotest.test_case "wrong effect detected" `Quick
            test_broken_effect_detected;
          Alcotest.test_case "over-strict detected" `Quick
            test_too_strict_detected;
          Alcotest.test_case "over-permissive detected" `Quick
            test_too_permissive_detected;
          Alcotest.test_case "life-cycle divergence detected" `Quick
            test_lifecycle_divergence_detected;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "round-trip bit-identical" `Quick
            test_cert_roundtrip;
          Alcotest.test_case "recording leaves the report unchanged" `Quick
            test_recorded_report_identical;
          Alcotest.test_case "parallel emits the sequential certificate"
            `Quick test_parallel_cert_identical;
          Alcotest.test_case "warm memo re-check" `Quick
            test_memo_warm_recheck;
          Alcotest.test_case "frame corruption rejected" `Quick
            test_framing_rejects_corruption;
        ] );
      ( "validator",
        [
          Alcotest.test_case "accepts genuine certificate" `Quick
            test_validator_accepts;
          Alcotest.test_case "accepts honest failing certificate" `Quick
            test_validator_accepts_failing_cert;
          Alcotest.test_case "rejects flipped verdict" `Quick
            test_tamper_flipped_verdict;
          Alcotest.test_case "rejects corrupted digest" `Quick
            test_tamper_corrupted_digest;
          Alcotest.test_case "rejects dropped edge" `Quick
            test_tamper_dropped_edge;
        ] );
    ]
