(** End-to-end integration: every paper example through the full public
    pipeline (parse → check → compile → animate), the script language,
    and cross-cutting flows. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let value = Alcotest.testable Value.pp Value.equal

let load src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.system s
  | Error e -> Alcotest.failf "load failed: %s" (Troll.Error.to_string e)

let accepted = function Ok _ -> true | Error _ -> false

(* bridges from the removed string-error wrappers to the
   session/engine API: the tests below animate a [Troll.system] *)
let fire sys target name args =
  Engine.fire sys.Troll.community (Event.make target name args)

let create_exn sys ~cls ~key ?event ?(args = []) () =
  match Engine.step sys.Troll.community (Step.Create { cls; key; event; args })
  with
  | Ok _ -> ()
  | Error r -> failwith (Runtime_error.reason_to_string r)

let attr_exn sys target name =
  match Troll.Session.attr (Troll.Session.of_system sys) target name with
  | Ok v -> v
  | Error e -> failwith (Troll.Error.to_string e)

let eval sys src =
  Result.map_error Troll.Error.to_string
    (Troll.Session.eval (Troll.Session.of_system sys) src)

let extension sys cls =
  Ident.Set.elements (Community.extension sys.Troll.community cls)

let view_exn sys name =
  match List.assoc_opt name sys.Troll.views with
  | Some v -> v
  | None -> failwith (Printf.sprintf "no interface class %s" name)

(* ------------------------------------------------------------------ *)
(* §4 DEPT: the full promotion / closure story                        *)
(* ------------------------------------------------------------------ *)

let test_dept_story () =
  let sys = load Paper_specs.dept in
  let alice = Troll.ident "PERSON" (Value.String "alice") in
  let sales = Troll.ident "DEPT" (Value.String "sales") in
  create_exn sys ~cls:"PERSON" ~key:(Value.String "alice") ();
  create_exn sys ~cls:"DEPT" ~key:(Value.String "sales")
    ~args:[ Value.Date 7749 ] ();
  check value "est_date observed" (Value.Date 7749)
    (attr_exn sys sales "est_date");
  check tbool "fire before hire" false
    (accepted (fire sys sales "fire" [ Ident.to_value alice ]));
  check tbool "hire" true
    (accepted (fire sys sales "hire" [ Ident.to_value alice ]));
  check tbool "closure blocked" false
    (accepted (fire sys sales "closure" []));
  check tbool "fire" true
    (accepted (fire sys sales "fire" [ Ident.to_value alice ]));
  check tbool "closure" true (accepted (fire sys sales "closure" []));
  (* the department is gone *)
  check tbool "dept dead" true
    (Community.living sys.Troll.community sales = None);
  check tint "extension empty" 0 (List.length (extension sys "DEPT"))

let test_dept_eval_interface () =
  let sys = load Paper_specs.dept in
  create_exn sys ~cls:"PERSON" ~key:(Value.String "p") ();
  create_exn sys ~cls:"DEPT" ~key:(Value.String "d")
    ~args:[ Value.Date 0 ] ();
  let d = Troll.ident "DEPT" (Value.String "d") in
  ignore (fire sys d "hire" [ Ident.to_value (Troll.ident "PERSON" (Value.String "p")) ]);
  (match eval sys {|DEPT("d").employees|} with
  | Ok (Value.Set [ _ ]) -> ()
  | Ok v -> Alcotest.failf "unexpected %s" (Value.to_string v)
  | Error e -> Alcotest.fail e);
  (match eval sys {|card(DEPT("d").employees)|} with
  | Ok (Value.Int 1) -> ()
  | _ -> Alcotest.fail "card");
  match eval sys {|PERSON("p") in DEPT("d").employees|} with
  | Ok (Value.Bool true) -> ()
  | _ -> Alcotest.fail "membership"

(* ------------------------------------------------------------------ *)
(* Scripts                                                             *)
(* ------------------------------------------------------------------ *)

let run_script sys src =
  let outcome = Script.run_string sys src in
  match outcome.Script.failed with
  | None -> outcome.Script.output
  | Some e -> Alcotest.failf "script failed: %s" e

let test_script_full_flow () =
  let sys = load Paper_specs.dept in
  let out =
    run_script sys
      {|
        new PERSON("bob") born;
        new DEPT("hr") establishment(d"1990-01-01");
        DEPT("hr").hire(PERSON("bob"));
        show DEPT("hr").employees;
        expect reject DEPT("hr").closure;
        DEPT("hr").fire(PERSON("bob"));
        DEPT("hr").closure;
      |}
  in
  check tint "seven outputs" 7 (List.length out)

let test_script_seq_atomicity () =
  let sys = load Paper_specs.dept in
  let outcome =
    Script.run_string sys
      {|
        new PERSON("bob") born;
        new DEPT("hr") establishment(d"1990-01-01");
        expect reject seq DEPT("hr").hire(PERSON("bob")); DEPT("hr").closure end;
        expect reject DEPT("hr").fire(PERSON("bob"));
      |}
  in
  check tbool "script succeeded" true (outcome.Script.failed = None)

let test_script_view_and_active () =
  let sys = load Paper_specs.library in
  let out =
    run_script sys
      {|
        new BOOK("i1") acquire("SICP", science);
        new MEMBER("kim") join_library;
        MEMBER("kim").borrow(BOOK("i1"));
        show BOOK("i1").OnLoan;
        new LibraryClock(tuple()) start_clock(d"1991-06-01");
        active 100;
        show LibraryClock.Today;
      |}
  in
  check tbool "clock ticked 7 times" true
    (List.exists (fun l -> l = "active: 7 event(s)") out);
  check tbool "date advanced" true
    (List.exists (fun l -> l = "LibraryClock.Today = 1991-06-08") out)

let test_script_goal_command () =
  let config =
    { Community.default_config with Community.record_history = true }
  in
  let sys =
    match Troll.Session.load ~config Paper_specs.dept with
    | Ok s -> Troll.Session.system s
    | Error e -> Alcotest.fail (Troll.Error.to_string e)
  in
  let out =
    run_script sys
      {|
        new PERSON("p") born;
        PERSON("p").promote(7);
        goal PERSON("p"): Grade >= 5;
        goal PERSON("p"): Grade >= 100;
        trace PERSON("p");
      |}
  in
  check tbool "achieved goal reported" true
    (List.exists
       (fun l ->
         String.length l > 0
         && (let rec f i =
               i + 8 <= String.length l
               && (String.sub l i 8 = "achieved" || f (i + 1))
             in
             f 0))
       out);
  check tbool "missed goal reported" true
    (List.exists
       (fun l ->
         let rec f i =
           i + 12 <= String.length l
           && (String.sub l i 12 = "NOT achieved" || f (i + 1))
         in
         f 0)
       out)

let test_script_parse_error_reported () =
  let sys = load Paper_specs.dept in
  let outcome = Script.run_string sys "new ;" in
  check tbool "reported" true (outcome.Script.failed <> None)

(* ------------------------------------------------------------------ *)
(* Troll API surface                                                   *)
(* ------------------------------------------------------------------ *)

let test_load_reports_check_errors () =
  match
    Troll.Session.load
      "object class X identification k: FROB; template events birth b; end \
       object class X;"
  with
  | Error e ->
      let e = Troll.Error.to_string e in
      check tbool "mentions unknown type" true
        (let rec find i =
           i + 4 <= String.length e
           && (String.sub e i 4 = "FROB" || find (i + 1))
         in
         find 0)
  | Ok _ -> Alcotest.fail "ill-typed spec loaded"

let test_load_reports_parse_errors () =
  match Troll.Session.load "object object object" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage loaded"

let test_pretty_roundtrip_via_api () =
  match Troll.parse_spec Paper_specs.company with
  | Error e -> Alcotest.fail (Troll.Error.to_string e)
  | Ok spec -> (
      let printed = Troll.pretty spec in
      match Troll.parse_spec printed with
      | Ok spec2 ->
          check Alcotest.string "stable" printed (Troll.pretty spec2)
      | Error e ->
          Alcotest.failf "reparse failed: %s" (Troll.Error.to_string e))

let test_warnings_carried () =
  let sys =
    load
      {|
object class NOBIRTH
  identification id: string;
  template
    events go;
end object class NOBIRTH;
|}
  in
  check tbool "warning kept" true (sys.Troll.diagnostics <> [])

(* ------------------------------------------------------------------ *)
(* The whole company flow through the public API                       *)
(* ------------------------------------------------------------------ *)

let test_company_flow () =
  let sys = load Paper_specs.company in
  let key name =
    Value.Tuple [ ("Name", Value.String name); ("Birthdate", Value.Date 0) ]
  in
  create_exn sys ~cls:"PERSON" ~key:(key "alice")
    ~args:[ Value.Money (Money.of_units 6000); Value.String "Research" ] ();
  create_exn sys ~cls:"DEPT" ~key:(Value.String "Research") ();
  let alice = Ident.make "PERSON" (key "alice") in
  let dept = Troll.ident "DEPT" (Value.String "Research") in
  ignore (fire sys dept "hire" [ Ident.to_value alice ]);
  ignore (fire sys dept "new_manager" [ Ident.to_value alice ]);
  (* phase created with inherited + own structure *)
  let mgr = Ident.as_class "MANAGER" alice in
  check tbool "manager aspect alive" true
    (Community.living sys.Troll.community mgr <> None);
  check tint "manager extension" 1 (List.length (extension sys "MANAGER"));
  (* view over base reflects updates made through the phase *)
  let v = view_exn sys "SAL_EMPLOYEE" in
  ignore (fire sys mgr "ChangeSalary" [ Value.Money (Money.of_units 9000) ]);
  (match Interface.attr v [ ("PERSON", alice) ] "Salary" [] with
  | Ok m -> check value "view sees phase update" (Value.Money (Money.of_units 9000)) m
  | Error r -> Alcotest.failf "%s" (Runtime_error.reason_to_string r));
  (* person death kills observability through views *)
  ignore (fire sys dept "fire" [ Ident.to_value alice ]);
  ignore (Engine.destroy sys.Troll.community ~id:alice ~event:"dies" ());
  check tbool "view membership gone" false
    (Interface.member v [ ("PERSON", alice) ])

(* ------------------------------------------------------------------ *)
(* emp_rel flows                                                       *)
(* ------------------------------------------------------------------ *)

let test_emp_rel_permissions () =
  let sys = load Paper_specs.employee_implementation in
  let rel = Ident.singleton "emp_rel" in
  let insert n s =
    fire sys rel "InsertEmp" [ Value.String n; Value.Date 0; Value.Int s ]
  in
  check tbool "first insert" true (accepted (insert "ada" 100));
  check tbool "duplicate key rejected" false (accepted (insert "ada" 200));
  check tbool "update existing" true
    (accepted
       (fire sys rel "UpdateSalary"
          [ Value.String "ada"; Value.Date 0; Value.Int 150 ]));
  check tbool "update missing rejected" false
    (accepted
       (fire sys rel "UpdateSalary"
          [ Value.String "bob"; Value.Date 0; Value.Int 150 ]));
  (* CloseEmpRel requires an empty relation *)
  check tbool "close nonempty rejected" false
    (accepted (fire sys rel "CloseEmpRel" []));
  ignore (fire sys rel "DeleteEmp" [ Value.String "ada"; Value.Date 0 ]);
  check tbool "close empty" true (accepted (fire sys rel "CloseEmpRel" []))

let test_change_salary_transaction () =
  let sys = load Paper_specs.employee_implementation in
  let rel = Ident.singleton "emp_rel" in
  ignore
    (fire sys rel "InsertEmp"
       [ Value.String "ada"; Value.Date 0; Value.Int 100 ]);
  (match
     fire sys rel "ChangeSalary"
       [ Value.String "ada"; Value.Date 0; Value.Int 900 ]
   with
  | Ok o -> check tint "three micro-steps" 3 (List.length o.Engine.committed)
  | Error r -> Alcotest.failf "%s" (Runtime_error.reason_to_string r));
  match eval sys "emp_rel.Emps" with
  | Ok (Value.Set [ Value.Tuple fields ]) ->
      check value "salary updated" (Value.Int 900)
        (Option.value ~default:Value.Undefined
           (List.assoc_opt "esalary" fields))
  | _ -> Alcotest.fail "unexpected relation state"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "integration"
    [
      ( "dept",
        [
          Alcotest.test_case "promotion/closure story" `Quick test_dept_story;
          Alcotest.test_case "eval interface" `Quick test_dept_eval_interface;
        ] );
      ( "script",
        [
          Alcotest.test_case "full flow" `Quick test_script_full_flow;
          Alcotest.test_case "seq atomicity" `Quick test_script_seq_atomicity;
          Alcotest.test_case "views and active" `Quick
            test_script_view_and_active;
          Alcotest.test_case "goal command" `Quick test_script_goal_command;
          Alcotest.test_case "parse errors" `Quick
            test_script_parse_error_reported;
        ] );
      ( "api",
        [
          Alcotest.test_case "check errors surfaced" `Quick
            test_load_reports_check_errors;
          Alcotest.test_case "parse errors surfaced" `Quick
            test_load_reports_parse_errors;
          Alcotest.test_case "pretty round-trip" `Quick
            test_pretty_roundtrip_via_api;
          Alcotest.test_case "warnings carried" `Quick test_warnings_carried;
        ] );
      ( "company",
        [ Alcotest.test_case "end-to-end flow" `Quick test_company_flow ] );
      ( "employee",
        [
          Alcotest.test_case "emp_rel permissions" `Quick
            test_emp_rel_permissions;
          Alcotest.test_case "ChangeSalary transaction" `Quick
            test_change_salary_transaction;
        ] );
    ]
