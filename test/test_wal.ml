(** Durability: effect records, the write-ahead log, snapshots and crash
    recovery.

    The invariant under test throughout: after any crash at a commit
    boundary, [Wal.recover] restores a state whose [Persist.save] is
    bit-identical to a clean sequential run of the committed prefix. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let load_spec src =
  match Compile.load src with
  | Ok (c, _) -> c
  | Error e -> Alcotest.failf "load failed: %s" e

let digest = Digest.to_hex (Digest.string Paper_specs.dept)

let temp_dir () =
  let path = Filename.temp_file "troll_wal" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let alice = Ident.make "PERSON" (Value.String "alice")
let d = Ident.make "DEPT" (Value.String "d")

(** One deterministic commit per call, in a fixed script; [run_steps c k]
    executes the first [k]. *)
let script =
  [|
    (fun c -> ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "alice") ()));
    (fun c ->
      ignore
        (Engine.create c ~cls:"DEPT" ~key:(Value.String "d")
           ~args:[ Value.Date 7749 ] ()));
    (fun c -> ignore (Engine.fire c (Event.make d "hire" [ Ident.to_value alice ])));
    (fun c -> ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "bob") ()));
    (fun c -> ignore (Engine.fire c (Event.make d "fire" [ Ident.to_value alice ])));
    (fun c -> ignore (Engine.fire c (Event.make d "hire" [ Ident.to_value alice ])));
  |]

let n_steps = Array.length script

let run_steps c k =
  for i = 0 to k - 1 do
    script.(i) c
  done

(** [Persist.save] of a clean sequential run of the first [k] steps. *)
let clean_save k =
  let c = load_spec Paper_specs.dept in
  run_steps c k;
  Persist.save c

let recover_save dir =
  let c = load_spec Paper_specs.dept in
  match Wal.recover ~dir ~spec_digest:digest c with
  | Ok r -> (r, Persist.save c)
  | Error m -> Alcotest.failf "recover: %s" m

(* ------------------------------------------------------------------ *)
(* Effect delta + codec                                                *)
(* ------------------------------------------------------------------ *)

let test_effect_roundtrip () =
  let c = load_spec Paper_specs.dept in
  let effs = ref [] in
  c.Community.commit_hook <- Some (fun j -> effs := Effect_log.delta c j :: !effs);
  run_steps c n_steps;
  c.Community.commit_hook <- None;
  check tint "one delta per commit" n_steps (List.length !effs);
  (* codec round-trips every batch *)
  List.iter
    (fun batch ->
      match Effect_log.decode (Effect_log.encode batch) with
      | Ok batch' ->
          check tint "same number of effects" (List.length batch)
            (List.length batch')
      | Error m -> Alcotest.failf "decode: %s" m)
    !effs;
  (* replaying all deltas in order rebuilds the state bit-identically *)
  let c2 = load_spec Paper_specs.dept in
  List.iter
    (fun batch ->
      match Effect_log.apply c2 batch with
      | Ok () -> ()
      | Error m -> Alcotest.failf "apply: %s" m)
    (List.rev !effs);
  check tstr "replayed state is bit-identical" (Persist.save c) (Persist.save c2)

let test_commit_hook_skips_rollbacks () =
  let c = load_spec Paper_specs.dept in
  let fired = ref 0 in
  c.Community.commit_hook <- Some (fun _ -> incr fired);
  ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "alice") ());
  check tint "commit fires the hook" 1 !fired;
  (* probes always roll back: no hook *)
  Txn.probe c (fun () ->
      ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "ghost") ()));
  check tint "probe does not fire the hook" 1 !fired;
  (* a failing event rolls back: no hook *)
  (match Engine.fire c (Event.make d "closure" []) with
  | Ok _ -> Alcotest.fail "closure on a non-existent DEPT should fail"
  | Error _ -> ());
  check tint "rollback does not fire the hook" 1 !fired

(* ------------------------------------------------------------------ *)
(* WAL round trip, torn tails, corruption                              *)
(* ------------------------------------------------------------------ *)

let test_wal_roundtrip () =
  with_dir (fun dir ->
      let c = load_spec Paper_specs.dept in
      let t =
        match Wal.attach ~dir ~spec_digest:digest c with
        | Ok (t, None) -> t
        | Ok (_, Some _) -> Alcotest.fail "fresh dir claimed to recover"
        | Error m -> Alcotest.failf "attach: %s" m
      in
      run_steps c n_steps;
      check tint "one record per commit" n_steps (Wal.depth t);
      Wal.detach t;
      let r, saved = recover_save dir in
      check tint "all records replayed" n_steps r.Wal.r_replayed;
      check tbool "no torn tail" false r.Wal.r_torn_dropped;
      check tstr "bit-identical state" (clean_save n_steps) saved)

let test_wal_torn_final_record () =
  with_dir (fun dir ->
      let c = load_spec Paper_specs.dept in
      let t =
        match Wal.attach ~dir ~spec_digest:digest c with
        | Ok (t, _) -> t
        | Error m -> Alcotest.failf "attach: %s" m
      in
      run_steps c n_steps;
      Wal.detach t;
      (* tear the final record mid-frame: drop its trailing newline and
         the last two payload bytes *)
      let log = Filename.concat dir "wal.log" in
      let size = (Unix.stat log).Unix.st_size in
      Unix.truncate log (size - 3);
      let r, saved = recover_save dir in
      check tbool "torn tail dropped" true r.Wal.r_torn_dropped;
      check tint "all but the torn record replayed" (n_steps - 1) r.Wal.r_replayed;
      check tstr "state = committed prefix" (clean_save (n_steps - 1)) saved)

let test_wal_crc_corruption () =
  with_dir (fun dir ->
      let c = load_spec Paper_specs.dept in
      let t =
        match Wal.attach ~dir ~spec_digest:digest c with
        | Ok (t, _) -> t
        | Error m -> Alcotest.failf "attach: %s" m
      in
      run_steps c n_steps;
      Wal.detach t;
      (* flip one payload byte of the final (complete) record: the frame
         is structurally intact, so this must fail as corruption, not be
         dropped as a torn tail *)
      let log = Filename.concat dir "wal.log" in
      let size = (Unix.stat log).Unix.st_size in
      let fd = Unix.openfile log [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (size - 2) Unix.SEEK_SET);
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      let c2 = load_spec Paper_specs.dept in
      match Wal.recover ~dir ~spec_digest:digest c2 with
      | Error m ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          check tbool "reported as CRC mismatch" true (contains m "CRC")
      | Ok _ -> Alcotest.fail "recovered from a corrupt record")

let test_wal_rejects_wrong_spec () =
  with_dir (fun dir ->
      let c = load_spec Paper_specs.dept in
      let t =
        match Wal.attach ~dir ~spec_digest:digest c with
        | Ok (t, _) -> t
        | Error m -> Alcotest.failf "attach: %s" m
      in
      run_steps c 2;
      Wal.detach t;
      let c2 = load_spec Paper_specs.dept in
      match Wal.recover ~dir ~spec_digest:"0000deadbeef" c2 with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted a different specification's WAL")

(* ------------------------------------------------------------------ *)
(* Snapshots and compaction                                            *)
(* ------------------------------------------------------------------ *)

let test_snapshot_only_recovery () =
  with_dir (fun dir ->
      let c = load_spec Paper_specs.dept in
      let t =
        match Wal.attach ~dir ~spec_digest:digest c with
        | Ok (t, _) -> t
        | Error m -> Alcotest.failf "attach: %s" m
      in
      run_steps c n_steps;
      (* compaction folds everything into the snapshot and empties the
         log: recovery replays nothing *)
      Wal.snapshot t;
      check tint "log empty after compaction" 0 (Wal.depth t);
      Wal.detach t;
      let r, saved = recover_save dir in
      check tint "nothing to replay" 0 r.Wal.r_replayed;
      check tstr "snapshot alone restores the state" (clean_save n_steps) saved)

let test_compaction_preserves_monitors () =
  with_dir (fun dir ->
      let c = load_spec Paper_specs.dept in
      (* snapshot_every = 1: every commit batch triggers a compaction, so
         the recovered state comes entirely from snapshots *)
      let t =
        match Wal.attach ~dir ~spec_digest:digest ~snapshot_every:1 c with
        | Ok (t, _) -> t
        | Error m -> Alcotest.failf "attach: %s" m
      in
      run_steps c 4 (* up to: alice hired, bob created *);
      Wal.detach t;
      let c2 = load_spec Paper_specs.dept in
      (match Wal.recover ~dir ~spec_digest:digest c2 with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "recover: %s" m);
      check tstr "bit-identical through compaction" (clean_save 4)
        (Persist.save c2);
      (* the temporal permission monitors survived compaction: alice was
         hired sometime-before, bob was not *)
      let bob = Ident.make "PERSON" (Value.String "bob") in
      check tbool "alice fireable after recovery" true
        (match Engine.fire c2 (Event.make d "fire" [ Ident.to_value alice ]) with
        | Ok _ -> true
        | Error _ -> false);
      check tbool "bob still not fireable" true
        (match Engine.fire c2 (Event.make d "fire" [ Ident.to_value bob ]) with
        | Error (Runtime_error.Permission_denied _) -> true
        | _ -> false))

let test_attach_resumes () =
  with_dir (fun dir ->
      (* first process *)
      let c = load_spec Paper_specs.dept in
      let t =
        match Wal.attach ~dir ~spec_digest:digest c with
        | Ok (t, _) -> t
        | Error m -> Alcotest.failf "attach: %s" m
      in
      run_steps c 3;
      Wal.detach t;
      (* second process: attach recovers, then continues the script *)
      let c2 = load_spec Paper_specs.dept in
      let t2, recovered =
        match Wal.attach ~dir ~spec_digest:digest c2 with
        | Ok (t2, Some r) -> (t2, r)
        | Ok (_, None) -> Alcotest.fail "non-empty dir not recovered"
        | Error m -> Alcotest.failf "re-attach: %s" m
      in
      check tint "records replayed on re-attach" 3 recovered.Wal.r_replayed;
      for i = 3 to n_steps - 1 do
        script.(i) c2
      done;
      Wal.detach t2;
      (* third process: the full script must be there *)
      let _, saved = recover_save dir in
      check tstr "state spans both attachments" (clean_save n_steps) saved)

(* ------------------------------------------------------------------ *)
(* Crash recovery: kill -9 at a commit boundary                        *)
(* ------------------------------------------------------------------ *)

let test_kill_recover () =
  with_dir (fun dir ->
      let k = 4 in
      let expected = clean_save k in
      match Unix.fork () with
      | 0 ->
          (* child: run the first [k] commits under the WAL, then die
             hard at the commit boundary — no atexit, no flush *)
          let code =
            let c = load_spec Paper_specs.dept in
            match Wal.attach ~dir ~spec_digest:digest ~fsync:`Batch c with
            | Ok _ ->
                run_steps c k;
                Unix.kill (Unix.getpid ()) Sys.sigkill;
                0
            | Error _ -> 1
          in
          Unix._exit code
      | pid -> (
          match Unix.waitpid [] pid with
          | _, Unix.WSIGNALED s when s = Sys.sigkill ->
              let r, saved = recover_save dir in
              check tint "all committed records survived" k r.Wal.r_replayed;
              check tstr "bit-identical to the pre-kill committed state"
                expected saved
          | _, _ -> Alcotest.fail "child was not killed as intended"))

let test_atomic_save_file () =
  with_dir (fun dir ->
      let c = load_spec Paper_specs.dept in
      run_steps c 3;
      let path = Filename.concat dir "state.trs" in
      Persist.save_file c path;
      (* overwrite: the previous contents are replaced wholesale *)
      run_steps c 1;
      script.(3) c;
      Persist.save_file c path;
      let c2 = load_spec Paper_specs.dept in
      (match Persist.load_file c2 path with
      | Ok () -> ()
      | Error m -> Alcotest.failf "load_file: %s" m);
      check tstr "atomic save round-trips" (Persist.save c) (Persist.save c2);
      (* no temp droppings left behind *)
      check tbool "no temp files remain" true
        (Array.for_all
           (fun f -> not (Filename.check_suffix f ".tmp"))
           (Sys.readdir dir)))

let () =
  Alcotest.run "wal"
    [
      ( "effect-log",
        [
          Alcotest.test_case "delta + codec + replay round-trip" `Quick
            test_effect_roundtrip;
          Alcotest.test_case "hook fires on commit only" `Quick
            test_commit_hook_skips_rollbacks;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append + recover round-trip" `Quick
            test_wal_roundtrip;
          Alcotest.test_case "torn final record dropped cleanly" `Quick
            test_wal_torn_final_record;
          Alcotest.test_case "CRC corruption detected" `Quick
            test_wal_crc_corruption;
          Alcotest.test_case "wrong specification rejected" `Quick
            test_wal_rejects_wrong_spec;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "empty WAL + snapshot-only recovery" `Quick
            test_snapshot_only_recovery;
          Alcotest.test_case "compaction preserves monitor states" `Quick
            test_compaction_preserves_monitors;
          Alcotest.test_case "attach resumes a previous WAL" `Quick
            test_attach_resumes;
        ] );
      ( "crash",
        [
          Alcotest.test_case "kill -9 at a commit boundary" `Quick
            test_kill_recover;
          Alcotest.test_case "save_file is atomic" `Quick test_atomic_save_file;
        ] );
    ]
