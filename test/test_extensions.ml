(** Extensions beyond the paper's core: Graphviz export (the conclusion's
    "graphical notations"), liveness-goal auditing, syntactical reuse of
    specification texts — plus whole-engine invariant properties under
    random event walks. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let contains s fragment =
  let rec find i =
    i + String.length fragment <= String.length s
    && (String.sub s i (String.length fragment) = fragment || find (i + 1))
  in
  find 0

let load ?config src =
  match Compile.load ?config src with
  | Ok (c, _) -> c
  | Error e -> Alcotest.failf "load failed: %s" e

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dot_schema () =
  let c = load Paper_specs.company in
  let templates =
    Hashtbl.fold (fun _ tpl acc -> tpl :: acc) c.Community.templates []
  in
  let s = Dot.schema_of_templates templates in
  let dot = Dot.of_schema s in
  check tbool "valid header" true (contains dot "digraph inheritance_schema");
  check tbool "manager node" true (contains dot "\"MANAGER\"");
  check tbool "phase edge" true (contains dot "\"MANAGER\" -> \"PERSON\"");
  check tbool "balanced braces" true (contains dot "}")

let test_dot_escaping () =
  let s = Schema.create () in
  Schema.add_template s
    { Template.t_name = "A\"B"; t_kind = `Class; t_id_fields = [];
      t_view_of = None; t_spec_of = None; t_attrs = []; t_events = [];
      t_valuations = []; t_callings = []; t_perms = []; t_constraints = [];
      t_vars = []; t_slots = None; t_staged = None };
  check tbool "quotes escaped" true (contains (Dot.of_schema s) "A\\\"B")

let test_dot_community () =
  let s = Schema.create () in
  let tpl name =
    { Template.t_name = name; t_kind = `Class; t_id_fields = [];
      t_view_of = None; t_spec_of = None; t_attrs = []; t_events = [];
      t_valuations = []; t_callings = []; t_perms = []; t_constraints = [];
      t_vars = []; t_slots = None; t_staged = None }
  in
  Schema.add_template s (tpl "computer");
  Schema.add_template s (tpl "el_device");
  Schema.add_edge s ~sub:"computer" ~super:"el_device" Sigmap.empty;
  Schema.add_template s (tpl "cpu");
  let com = Community_diagram.create s in
  let sun = Community_diagram.add_object com ~key:(Value.String "SUN") "computer" in
  let cyy = Community_diagram.add_object com ~key:(Value.String "CYY") "cpu" in
  ignore (Community_diagram.add_interaction com ~src:sun ~dst:cyy ());
  let dot = Dot.of_community com in
  check tbool "inheritance dashed" true (contains dot "style=dashed");
  check tbool "interaction edge" true
    (contains dot "\"\\\"SUN\\\" • computer\" -> \"\\\"CYY\\\" • cpu\"")

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let liveness_community () =
  let config =
    { Community.default_config with Community.record_history = true }
  in
  let c =
    load ~config
      {|
object class TASK
  identification id: string;
  template
    attributes done_count: integer;
    events birth start; finish_one; undo_one;
    valuation
      [start] done_count = 0;
      [finish_one] done_count = done_count + 1;
      [undo_one] done_count = done_count - 1;
end object class TASK;
|}
  in
  ignore (Engine.create c ~cls:"TASK" ~key:(Value.String "t") ());
  (c, Ident.make "TASK" (Value.String "t"))

let test_liveness_achieved () =
  let c, id = liveness_community () in
  let o = Community.object_exn c id in
  ignore (Engine.fire c (Event.make id "finish_one" []));
  ignore (Engine.fire c (Event.make id "finish_one" []));
  ignore (Engine.fire c (Event.make id "undo_one" []));
  (* goal: at some point, two tasks were done *)
  match Liveness.audit_string c o "done_count >= 2" with
  | Error e -> Alcotest.fail e
  | Ok v ->
      check tbool "achieved" true v.Liveness.achieved;
      check tbool "not maintained" false v.Liveness.maintained;
      check tbool "not holding now" false v.Liveness.holds_now;
      check tint "four states" 4 v.Liveness.states_checked

let test_liveness_maintained () =
  let c, id = liveness_community () in
  let o = Community.object_exn c id in
  ignore (Engine.fire c (Event.make id "finish_one" []));
  match Liveness.audit_string c o "done_count >= 0" with
  | Error e -> Alcotest.fail e
  | Ok v ->
      check tbool "maintained" true v.Liveness.maintained;
      check tbool "achieved implies maintained here" true v.Liveness.achieved

let test_liveness_not_achieved () =
  let c, id = liveness_community () in
  let o = Community.object_exn c id in
  match Liveness.audit_string c o "done_count >= 5" with
  | Error e -> Alcotest.fail e
  | Ok v ->
      check tbool "not achieved" false v.Liveness.achieved;
      check tbool "pp says NOT" true
        (contains (Format.asprintf "%a" Liveness.pp_verdict v) "NOT achieved")

let test_liveness_rejects_temporal () =
  let c, id = liveness_community () in
  let o = Community.object_exn c id in
  match Liveness.audit_string c o "sometime(done_count > 0)" with
  | Error e -> check tbool "explains" true (contains e "state formulas")
  | Ok _ -> Alcotest.fail "temporal goal accepted"

let test_liveness_class_audit () =
  let c, id = liveness_community () in
  ignore (Engine.fire c (Event.make id "finish_one" []));
  let goal =
    match Parser.formula_of_string "done_count > 0" with
    | Ok f -> f
    | Error _ -> assert false
  in
  let report = Liveness.audit_class c ~cls:"TASK" goal in
  check tint "one member" 1 (List.length report);
  check tbool "achieved" true (snd (List.hd report)).Liveness.achieved

(* ------------------------------------------------------------------ *)
(* Reuse                                                               *)
(* ------------------------------------------------------------------ *)

(* a generic container template, instantiated twice *)
let container_lib = {|
object class CONTAINER
  identification cid: string;
  template
    attributes Contents: set(string); Capacity: integer;
    events
      birth create_container(integer);
      death destroy_container;
      put_item(string);
      take_item(string);
    valuation
      variables x: string; n: integer;
      [create_container(n)] Contents = {};
      [create_container(n)] Capacity = n;
      [put_item(x)] Contents = insert(x, Contents);
      [take_item(x)] Contents = remove(x, Contents);
    permissions
      variables x: string;
      { card(Contents) < Capacity } put_item(x);
      { x in Contents } take_item(x);
end object class CONTAINER;
|}

let test_reuse_instantiation () =
  let r =
    Reuse.renaming
      ~classes:[ ("CONTAINER", "PARTS_BIN") ]
      ~attrs:[ ("Contents", "Parts"); ("Capacity", "Slots") ]
      ~events:[ ("put_item", "stock"); ("take_item", "pick") ]
      ()
  in
  match Reuse.instantiate_string r container_lib with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
      (* the instance is checkable and runnable under the new names *)
      check (Alcotest.list Alcotest.string) "checks cleanly" []
        (List.map Check_error.to_string (Typecheck.errors spec));
      match Compile.spec spec with
      | Error e -> Alcotest.fail (Compile.error_to_string e)
      | Ok (c, _) ->
          let id = Ident.make "PARTS_BIN" (Value.String "b1") in
          (match
             Engine.create c ~cls:"PARTS_BIN" ~key:(Value.String "b1")
               ~args:[ Value.Int 2 ] ()
           with
          | Ok _ -> ()
          | Error r -> Alcotest.fail (Runtime_error.reason_to_string r));
          (match Engine.fire c (Event.make id "stock" [ Value.String "bolt" ]) with
          | Ok _ -> ()
          | Error r -> Alcotest.fail (Runtime_error.reason_to_string r));
          let o = Community.object_exn c id in
          check tbool "renamed attribute live" true
            (Value.equal
               (Eval.read_attr c o "Parts" [])
               (Value.set [ Value.String "bolt" ])))

let test_reuse_two_instances_coexist () =
  let inst1 =
    Reuse.instantiate_string
      (Reuse.renaming ~classes:[ ("CONTAINER", "ARCHIVE") ] ())
      container_lib
  in
  let inst2 =
    Reuse.instantiate_string
      (Reuse.renaming ~classes:[ ("CONTAINER", "WAREHOUSE") ] ())
      container_lib
  in
  match (inst1, inst2) with
  | Ok a, Ok b -> (
      let spec = a @ b in
      check tbool "combined spec checks" true (Typecheck.errors spec = []);
      match Compile.spec spec with
      | Ok (c, _) ->
          check tbool "both classes exist" true
            (Community.is_class c "ARCHIVE" && Community.is_class c "WAREHOUSE")
      | Error e -> Alcotest.fail (Compile.error_to_string e))
  | _ -> Alcotest.fail "instantiation failed"

let test_reuse_permissions_survive () =
  let r = Reuse.renaming ~classes:[ ("CONTAINER", "BOX") ] () in
  match Reuse.instantiate_string r container_lib with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
      match Compile.spec spec with
      | Error e -> Alcotest.fail (Compile.error_to_string e)
      | Ok (c, _) -> (
          let id = Ident.make "BOX" (Value.String "b") in
          ignore
            (Engine.create c ~cls:"BOX" ~key:(Value.String "b")
               ~args:[ Value.Int 1 ] ());
          ignore (Engine.fire c (Event.make id "put_item" [ Value.String "x" ]));
          (* capacity permission survived the renaming *)
          match Engine.fire c (Event.make id "put_item" [ Value.String "y" ]) with
          | Error (Runtime_error.Permission_denied _) -> ()
          | _ -> Alcotest.fail "capacity permission lost"))

let test_reuse_pretty_parses () =
  let r =
    Reuse.renaming ~classes:[ ("CONTAINER", "SHELF") ]
      ~events:[ ("put_item", "shelve") ] ()
  in
  match Reuse.instantiate_string r container_lib with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
      match Parser.spec (Pretty.spec_to_string spec) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "instance not re-parseable: %s" (Parse_error.to_string e))

(* ------------------------------------------------------------------ *)
(* Whole-engine invariants under random walks                          *)
(* ------------------------------------------------------------------ *)

(* Drive the library system with arbitrary event sequences; whatever is
   accepted or rejected, these invariants must hold afterwards:
   1. a book is OnLoan iff exactly one living member holds it;
   2. class extensions contain exactly the living objects;
   3. every living object's static constraints hold (vacuous here) and
      attribute reads never raise. *)
let prop_library_invariants =
  QCheck.Test.make ~name:"engine: library invariants under random walks"
    ~count:60
    (QCheck.make
       ~print:(fun l ->
         String.concat ";" (List.map (fun (a, b, c) ->
             Printf.sprintf "%d.%d.%d" a b c) l))
       QCheck.Gen.(
         list_size (int_range 1 30)
           (triple (int_range 0 5) (int_range 0 1) (int_range 0 1))))
    (fun actions ->
      let c = load Paper_specs.library in
      let book i = Ident.make "BOOK" (Value.String (Printf.sprintf "b%d" i)) in
      let member i =
        Ident.make "MEMBER" (Value.String (Printf.sprintf "m%d" i))
      in
      ignore
        (Engine.create c ~cls:"BOOK" ~key:(Value.String "b0")
           ~args:[ Value.String "B0"; Value.Enum ("Genre", "fiction") ] ());
      ignore
        (Engine.create c ~cls:"BOOK" ~key:(Value.String "b1")
           ~args:[ Value.String "B1"; Value.Enum ("Genre", "poetry") ] ());
      ignore (Engine.create c ~cls:"MEMBER" ~key:(Value.String "m0") ());
      ignore (Engine.create c ~cls:"MEMBER" ~key:(Value.String "m1") ());
      List.iter
        (fun (action, b, m) ->
          let ev =
            match action with
            | 0 -> Event.make (member m) "borrow" [ Ident.to_value (book b) ]
            | 1 ->
                Event.make (member m) "bring_back" [ Ident.to_value (book b) ]
            | 2 -> Event.make (member m) "fine" [ Value.Money 100 ]
            | 3 -> Event.make (member m) "pay" [ Value.Money 100 ]
            | 4 -> Event.make (member m) "leave" []
            | _ -> Event.make (book b) "discard" []
          in
          match Engine.fire c ev with Ok _ | Error _ -> ())
        actions;
      (* invariant 1: loan consistency *)
      let holders b =
        List.length
          (List.filter
             (fun m ->
               match Community.living c m with
               | Some o -> (
                   match Eval.read_attr c o "Borrowed" [] with
                   | Value.Set xs ->
                       List.exists (Value.equal (Ident.to_value b)) xs
                   | _ -> false)
               | None -> false)
             [ member 0; member 1 ])
      in
      let loan_ok b =
        match Community.living c b with
        | Some o -> (
            match Eval.read_attr c o "OnLoan" [] with
            | Value.Bool true -> holders b = 1
            | Value.Bool false -> holders b = 0
            | _ -> false)
        | None -> holders b = 0
      in
      (* invariant 2: extensions = living objects *)
      let ext_ok cls =
        Ident.Set.for_all
          (fun id -> Community.living c id <> None)
          (Community.extension c cls)
      in
      loan_ok (book 0) && loan_ok (book 1) && ext_ok "BOOK"
      && ext_ok "MEMBER")

(* Rollback safety: interleave accepted and rejected transactions; a
   rejected transaction must leave the observable state bit-identical. *)
let prop_rollback_is_identity =
  QCheck.Test.make ~name:"engine: rejected transactions change nothing"
    ~count:60
    (QCheck.make
       ~print:(fun l -> String.concat "" (List.map string_of_int l))
       QCheck.Gen.(list_size (int_range 1 15) (int_range 0 3)))
    (fun actions ->
      let c = load Paper_specs.dept in
      let p = Ident.make "PERSON" (Value.String "p") in
      let d = Ident.make "DEPT" (Value.String "d") in
      ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "p") ());
      ignore
        (Engine.create c ~cls:"DEPT" ~key:(Value.String "d")
           ~args:[ Value.Date 0 ] ());
      let observe () =
        let o = Community.object_exn c d in
        ( Eval.read_attr c o "employees" [],
          Ident.Set.cardinal (Community.extension c "DEPT"),
          o.Obj_state.steps )
      in
      List.for_all
        (fun action ->
          let ev =
            match action with
            | 0 -> Event.make d "hire" [ Ident.to_value p ]
            | 1 -> Event.make d "fire" [ Ident.to_value p ]
            | 2 -> Event.make d "closure" []
            | _ -> Event.make d "hire" [ Ident.to_value p ]
          in
          let before = observe () in
          match Engine.fire c ev with
          | Ok _ -> true
          | Error _ ->
              let after = observe () in
              before = after)
        actions)

(* ------------------------------------------------------------------ *)
(* Trace inspection                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_entries () =
  let c, id = liveness_community () in
  let o = Community.object_exn c id in
  ignore (Engine.fire c (Event.make id "finish_one" []));
  ignore (Engine.fire c (Event.make id "finish_one" []));
  let entries = Trace.of_object o in
  check tint "three steps (birth + two)" 3 (List.length entries);
  check tint "length agrees" 3 (Trace.length o);
  let first = List.hd entries in
  check tint "oldest first" 0 first.Trace.step;
  check tbool "birth recorded" true
    (List.exists
       (fun (e : Event.t) -> e.Event.name = "start")
       first.Trace.events);
  check tbool "post-state recorded" true
    (List.assoc_opt "done_count" first.Trace.attrs = Some (Value.Int 0));
  (* filtering by event name *)
  check tint "occurrences" 2 (List.length (Trace.occurrences o "finish_one"));
  check tint "no such event" 0 (List.length (Trace.occurrences o "undo_one"));
  (* rendering *)
  check tbool "pp mentions steps" true
    (contains (Trace.to_string o) "step 2")

let test_trace_without_history () =
  let c = load Paper_specs.dept in
  ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "p") ());
  let o = Community.object_exn c (Ident.make "PERSON" (Value.String "p")) in
  check tint "no recording configured" 0
    (List.length (Trace.of_object o))

(* Determinism: the same event sequence on two fresh communities yields
   bit-identical state (using the persistence dump as a canonical
   fingerprint — attribute maps, life cycles and monitor states). *)
let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine: runs are deterministic" ~count:50
    (QCheck.make
       ~print:(fun l -> String.concat "" (List.map string_of_int l))
       QCheck.Gen.(list_size (int_range 1 20) (int_range 0 4)))
    (fun actions ->
      let run () =
        let c = load Paper_specs.dept in
        let p = Ident.make "PERSON" (Value.String "p") in
        let d = Ident.make "DEPT" (Value.String "d") in
        ignore (Engine.create c ~cls:"PERSON" ~key:(Value.String "p") ());
        ignore
          (Engine.create c ~cls:"DEPT" ~key:(Value.String "d")
             ~args:[ Value.Date 0 ] ());
        List.iter
          (fun a ->
            let ev =
              match a with
              | 0 -> Event.make d "hire" [ Ident.to_value p ]
              | 1 -> Event.make d "fire" [ Ident.to_value p ]
              | 2 -> Event.make d "new_manager" [ Ident.to_value p ]
              | 3 -> Event.make d "closure" []
              | _ -> Event.make p "promote" [ Value.Int 3 ]
            in
            match Engine.fire c ev with Ok _ | Error _ -> ())
          actions;
        Persist.save c
      in
      String.equal (run ()) (run ()))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "extensions"
    [
      ( "dot",
        [
          Alcotest.test_case "schema export" `Quick test_dot_schema;
          Alcotest.test_case "escaping" `Quick test_dot_escaping;
          Alcotest.test_case "community export" `Quick test_dot_community;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "achieved" `Quick test_liveness_achieved;
          Alcotest.test_case "maintained" `Quick test_liveness_maintained;
          Alcotest.test_case "not achieved" `Quick test_liveness_not_achieved;
          Alcotest.test_case "temporal goals rejected" `Quick
            test_liveness_rejects_temporal;
          Alcotest.test_case "class-wide audit" `Quick
            test_liveness_class_audit;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "instantiation runs" `Quick
            test_reuse_instantiation;
          Alcotest.test_case "two instances coexist" `Quick
            test_reuse_two_instances_coexist;
          Alcotest.test_case "permissions survive" `Quick
            test_reuse_permissions_survive;
          Alcotest.test_case "instances re-parse" `Quick
            test_reuse_pretty_parses;
        ] );
      ( "trace",
        [
          Alcotest.test_case "entries" `Quick test_trace_entries;
          Alcotest.test_case "without history" `Quick
            test_trace_without_history;
        ] );
      ( "invariant-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_library_invariants; prop_rollback_is_identity;
            prop_engine_deterministic ] );
    ]
