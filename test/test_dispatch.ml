(** Differential testing of compiled dispatch (satellite of the staged
    evaluator work): every scenario runs twice — once with
    [compiled_dispatch] on (the default) and once against the
    interpreted reference semantics — and the two runs must agree on
    script output, acceptance/rejection of every step, the exact error
    of every rejected step, and the bit-identical [Persist.save] image
    of the final community. *)

let check = Alcotest.check

let interpreted_config =
  { Community.default_config with Community.compiled_dispatch = false }

let load_pair src =
  let load config =
    match Troll.Session.load ~config src with
    | Ok s -> Troll.Session.system s
    | Error e -> Alcotest.failf "load failed: %s" (Troll.Error.to_string e)
  in
  (load Community.default_config, load interpreted_config)

(* bridges from the removed string-error wrappers to the engine API:
   every scenario below animates both systems of a [load_pair] *)
let fire sys target name args =
  Engine.fire sys.Troll.community (Event.make target name args)

let fire_seq sys events = Engine.fire_seq sys.Troll.community events
let fire_sync sys events = Engine.fire_sync sys.Troll.community events

let create sys ~cls ~key ?event ?(args = []) () =
  Engine.step sys.Troll.community (Step.Create { cls; key; event; args })

(** Run a script under both modes; output, first failure and persisted
    image must agree. *)
let diff_script name src script =
  let compiled, interp = load_pair src in
  let oc = Script.run_string compiled script in
  let oi = Script.run_string interp script in
  check
    Alcotest.(list string)
    (name ^ ": script output") oi.Script.output oc.Script.output;
  check
    Alcotest.(option string)
    (name ^ ": script failure") oi.Script.failed oc.Script.failed;
  check Alcotest.string (name ^ ": persisted image")
    (Persist.save interp.Troll.community)
    (Persist.save compiled.Troll.community)

(** Apply the same step sequence to both modes; each step must be
    accepted by both or rejected by both with the same error, and the
    final persisted images must be bit-identical. *)
let diff_steps name src (steps : (Troll.system -> Engine.step_result) list) =
  let compiled, interp = load_pair src in
  List.iteri
    (fun i f ->
      match (f compiled, f interp) with
      | Ok _, Ok _ -> ()
      | Error a, Error b ->
          check Alcotest.string
            (Printf.sprintf "%s: step %d error code" name i)
            (Runtime_error.reason_to_string b)
            (Runtime_error.reason_to_string a)
      | Ok _, Error r ->
          Alcotest.failf "%s: step %d accepted compiled, rejected interpreted (%s)"
            name i
            (Runtime_error.reason_to_string r)
      | Error r, Ok _ ->
          Alcotest.failf "%s: step %d rejected compiled (%s), accepted interpreted"
            name i
            (Runtime_error.reason_to_string r))
    steps;
  check Alcotest.string (name ^ ": persisted image")
    (Persist.save interp.Troll.community)
    (Persist.save compiled.Troll.community)

(* ------------------------------------------------------------------ *)
(* Example specifications, golden scenarios                            *)
(* ------------------------------------------------------------------ *)

(** §4 DEPT: permissions (state, indexed and class-quantified), the
    global interaction, and the full promotion / closure story —
    including the rejections along the way. *)
let test_dept_story () =
  let alice = Troll.ident "PERSON" (Value.String "alice") in
  let bob = Troll.ident "PERSON" (Value.String "bob") in
  let sales = Troll.ident "DEPT" (Value.String "sales") in
  diff_steps "dept" Paper_specs.dept
    [
      (fun s -> create s ~cls:"PERSON" ~key:(Value.String "alice") ());
      (fun s -> create s ~cls:"PERSON" ~key:(Value.String "bob") ());
      (fun s ->
        create s ~cls:"DEPT" ~key:(Value.String "sales")
          ~args:[ Value.Date 7749 ] ());
      (* birth of an already-living object *)
      (fun s ->
        create s ~cls:"DEPT" ~key:(Value.String "sales")
          ~args:[ Value.Date 7750 ] ());
      (* indexed permission: fire before any hire *)
      (fun s -> fire s sales "fire" [ Ident.to_value alice ]);
      (fun s -> fire s sales "hire" [ Ident.to_value alice ]);
      (* state permission: hiring a current employee *)
      (fun s -> fire s sales "hire" [ Ident.to_value alice ]);
      (fun s -> fire s sales "hire" [ Ident.to_value bob ]);
      (* global interaction: new_manager calls become_manager *)
      (fun s -> fire s sales "new_manager" [ Ident.to_value alice ]);
      (* quantified permission: closure while employees never fired *)
      (fun s -> fire s sales "closure" []);
      (fun s -> fire s sales "fire" [ Ident.to_value alice ]);
      (fun s -> fire s sales "fire" [ Ident.to_value bob ]);
      (fun s -> fire s sales "closure" []);
      (* events on the dead department *)
      (fun s -> fire s sales "hire" [ Ident.to_value bob ]);
      (* unknown event name *)
      (fun s -> fire s alice "promote_wrong" [ Value.Int 2 ]);
    ]

(** Company: phase birth (MANAGER view of PERSON), a phase-local static
    constraint, and death propagation to living phases. *)
let test_company_phases () =
  let key name = Value.Tuple [ ("Name", Value.String name);
                               ("Birthdate", Value.Date 0) ] in
  let pid name = Troll.ident "PERSON" (key name) in
  let mid name = Troll.ident "MANAGER" (key name) in
  diff_steps "company" Paper_specs.company
    [
      (fun s -> create s ~cls:"CAR" ~key:(Value.String "X-1") ());
      (fun s ->
        create s ~cls:"PERSON" ~key:(key "ada")
          ~args:[ Value.Money 9000; Value.String "R1" ] ());
      (* phase birth through the base event *)
      (fun s -> fire s (pid "ada") "become_manager" []);
      (fun s ->
        fire s (mid "ada") "assign_official_car"
          [ Ident.to_value (Troll.ident "CAR" (Value.String "X-1")) ]);
      (* the MANAGER static constraint rejects a low salary *)
      (fun s -> fire s (pid "ada") "ChangeSalary" [ Value.Money 4 ]);
      (fun s -> fire s (pid "ada") "ChangeSalary" [ Value.Money 9500 ]);
      (* death of the base aspect kills the phase *)
      (fun s -> fire s (pid "ada") "dies" []);
      (fun s -> fire s (mid "ada") "assign_official_car"
          [ Ident.to_value (Troll.ident "CAR" (Value.String "X-1")) ]);
    ]

(** emp_rel: interface-level permissions and the multi-micro-step
    ChangeSalary transaction. *)
let test_emp_rel () =
  let rel = Ident.singleton "emp_rel" in
  let insert n s sys =
    fire sys rel "InsertEmp" [ Value.String n; Value.Date 0; Value.Int s ]
  in
  diff_steps "emp_rel" Paper_specs.employee_implementation
    [
      insert "ada" 100;
      insert "ada" 200;
      (* duplicate key *)
      (fun s ->
        fire s rel "UpdateSalary"
          [ Value.String "ada"; Value.Date 0; Value.Int 150 ]);
      (fun s ->
        fire s rel "UpdateSalary"
          [ Value.String "bob"; Value.Date 0; Value.Int 150 ]);
      (* transaction calling: expands to three micro-steps *)
      (fun s ->
        fire s rel "ChangeSalary"
          [ Value.String "ada"; Value.Date 0; Value.Int 900 ]);
      (fun s -> fire s rel "CloseEmpRel" []);
      (* nonempty *)
      (fun s -> fire s rel "DeleteEmp" [ Value.String "ada"; Value.Date 0 ]);
      (fun s -> fire s rel "CloseEmpRel" []);
    ]

(** Library: scripts with views, the active clock, and event sharing. *)
let test_library_script () =
  diff_script "library" Paper_specs.library
    {|
      new BOOK("i1") acquire("SICP", science);
      new MEMBER("kim") join_library;
      MEMBER("kim").borrow(BOOK("i1"));
      show BOOK("i1").OnLoan;
      new LibraryClock(tuple()) start_clock(d"1991-06-01");
      active 100;
      show LibraryClock.Today;
      MEMBER("kim").return(BOOK("i1"));
      show BOOK("i1").OnLoan;
    |}

(** The dept script flow, including a show after every mutation. *)
let test_dept_script () =
  diff_script "dept script" Paper_specs.dept
    {|
      new PERSON("bob") born;
      new DEPT("hr") establishment(d"1990-01-01");
      DEPT("hr").hire(PERSON("bob"));
      show DEPT("hr").employees;
      DEPT("hr").new_manager(PERSON("bob"));
      show PERSON("bob").Grade;
      PERSON("bob").promote(7);
      show PERSON("bob").Grade;
    |}

(* ------------------------------------------------------------------ *)
(* Targeted semantics: conflicts, constraints, sync sharing            *)
(* ------------------------------------------------------------------ *)

(** Two valuation rules of the same event writing one attribute: a
    conflict exactly when the written values differ.  The duplicated
    target also disables the staged distinct-slot shortcut, so this
    exercises the hashtable conflict path under both modes. *)
let conflict_spec =
  {|
object class GADGET
  identification gid: string;
  template
    attributes n: integer; mark: integer;
    events birth make; death break; clash(integer, integer); bump;
    valuation
      variables a: integer; b: integer;
      [make] n = 0;
      [make] mark = 0;
      [bump] n = n + 1;
      [clash(a, b)] n = a;
      [clash(a, b)] n = b;
      [clash(a, b)] mark = a;
    constraints
      static n <= 3;
end object class GADGET;
|}

let test_conflicts_and_statics () =
  let g = Troll.ident "GADGET" (Value.String "g") in
  diff_steps "conflict" conflict_spec
    [
      (fun s -> create s ~cls:"GADGET" ~key:(Value.String "g") ());
      (* agreeing writes: no conflict *)
      (fun s -> fire s g "clash" [ Value.Int 2; Value.Int 2 ]);
      (* diverging writes: valuation conflict *)
      (fun s -> fire s g "clash" [ Value.Int 1; Value.Int 2 ]);
      (fun s -> fire s g "bump" []);
      (* static constraint violation *)
      (fun s -> fire s g "clash" [ Value.Int 9; Value.Int 9 ]);
      (fun s -> fire s g "break" []);
    ]

let temporal_spec =
  {|
object class ARM
  identification id: string;
  template
    attributes armed: bool;
    events birth init; arm; disarm; ping;
    valuation
      [init] armed = false;
      [arm] armed = true;
      [disarm] armed = false;
    constraints
      sometime(armed) => armed;
end object class ARM;
|}

let test_temporal_constraint () =
  let x = Troll.ident "ARM" (Value.String "x") in
  diff_steps "temporal" temporal_spec
    [
      (fun s -> create s ~cls:"ARM" ~key:(Value.String "x") ());
      (* quiescent steps before arming: monitors advance, nothing holds *)
      (fun s -> fire s x "ping" []);
      (fun s -> fire s x "arm" []);
      (* quiescent steps after arming keep the obligation *)
      (fun s -> fire s x "ping" []);
      (fun s -> fire s x "disarm" []);
      (fun s -> fire s x "ping" []);
    ]

(** Event sharing: two events in one synchronous step, and an atomic
    sequence whose failing tail rolls back the whole transaction. *)
let test_sync_and_seq () =
  let g = Troll.ident "GADGET" (Value.String "g") in
  diff_steps "sync/seq" conflict_spec
    [
      (fun s -> create s ~cls:"GADGET" ~key:(Value.String "g") ());
      (fun s ->
        fire_sync s
          [ Event.make g "clash" [ Value.Int 2; Value.Int 2 ];
            Event.make g "bump" [] ]);
      (* same-attribute disagreement across shared events *)
      (fun s ->
        fire_sync s
          [ Event.make g "clash" [ Value.Int 1; Value.Int 1 ];
            Event.make g "clash" [ Value.Int 2; Value.Int 2 ] ]);
      (* atomic sequence: the violating tail aborts the accepted head *)
      (fun s ->
        fire_seq s
          [ Event.make g "bump" []; Event.make g "clash" [ Value.Int 9; Value.Int 9 ] ]);
      (fun s -> fire s g "bump" []);
    ]

(* ------------------------------------------------------------------ *)
(* Static footprints (speculative parallel commit)                     *)
(* ------------------------------------------------------------------ *)

(** ACCT events stay footprint-local; XACCT's static constraint reads
    another object, so every one of its events must escape. *)
let footprint_spec =
  {|
object class BANK
  identification bid: string;
  template
    attributes Cap: integer;
    events birth openbank; death closebank;
    valuation [openbank] Cap = 1000;
end object class BANK;

object class ACCT
  identification aid: string;
  template
    attributes bal: integer; lim: integer; flag: bool;
    events birth mk; death rm;
      deposit(integer); withdraw(integer); audit; toggle; probe;
    valuation
      variables a: integer;
      [mk] bal = 0;
      [mk] lim = 100;
      [mk] flag = false;
      [deposit(a)] bal = bal + a;
      [withdraw(a)] bal = bal - a;
      [toggle] flag = true;
      [probe] bal = if false then lim else bal fi;
    permissions
      variables a: integer;
      { bal - a >= lim } withdraw(a);
      { sometime(after(toggle)) } audit;
end object class ACCT;

object class XACCT
  identification xid: string;
  template
    attributes xbal: integer;
    events birth xmk; xset(integer);
    valuation
      variables a: integer;
      [xmk] xbal = 0;
      [xset(a)] xbal = a;
    constraints
      static xbal <= BANK("hq").Cap;
end object class XACCT;
|}

let footprint_fixture () =
  match Troll.Session.load footprint_spec with
  | Error e -> Alcotest.failf "load failed: %s" (Troll.Error.to_string e)
  | Ok s ->
      let c = Troll.Session.community s in
      let fp cls name =
        match Community.find_template c cls with
        | None -> Alcotest.failf "no template %s" cls
        | Some tpl -> (tpl, Dispatch.footprint (Dispatch.template_index c tpl) name)
      in
      fp

let slots tpl names =
  List.map
    (fun n ->
      match Template.slot_of tpl n with
      | Some i -> i
      | None -> Alcotest.failf "no slot %s" n)
    names
  |> List.sort_uniq compare

let check_local name (tpl, fp) ~reads ~writes =
  match fp with
  | Dispatch.FP_escape why -> Alcotest.failf "%s escaped: %s" name why
  | Dispatch.FP_local { fp_reads; fp_writes; fp_extensions } ->
      check Alcotest.(list int) (name ^ ": reads") (slots tpl reads)
        (Array.to_list fp_reads);
      check Alcotest.(list int) (name ^ ": writes") (slots tpl writes)
        (Array.to_list fp_writes);
      check Alcotest.bool (name ^ ": extensions") false fp_extensions

let check_escape name (_, fp) =
  match fp with
  | Dispatch.FP_escape _ -> ()
  | Dispatch.FP_local _ -> Alcotest.failf "%s unexpectedly local" name

let test_footprints () =
  let fp = footprint_fixture () in
  (* valuation-only: reads and writes its own slot *)
  check_local "deposit" (fp "ACCT" "deposit") ~reads:[ "bal" ] ~writes:[ "bal" ];
  (* state-guarded permission joins the guard's reads *)
  check_local "withdraw" (fp "ACCT" "withdraw") ~reads:[ "bal"; "lim" ]
    ~writes:[ "bal" ];
  (* temporal permission rides the per-object monitor: still local *)
  check_local "audit" (fp "ACCT" "audit") ~reads:[] ~writes:[];
  check_local "toggle" (fp "ACCT" "toggle") ~reads:[] ~writes:[ "flag" ];
  (* deliberate over-approximation: the dead [if false] branch still
     contributes [lim] to the read set *)
  check_local "probe" (fp "ACCT" "probe") ~reads:[ "bal"; "lim" ]
    ~writes:[ "bal" ];
  (* births and deaths always escape *)
  check_escape "mk" (fp "ACCT" "mk");
  check_escape "rm" (fp "ACCT" "rm");
  (* a constraint referencing another object poisons the template *)
  check_escape "xset" (fp "XACCT" "xset");
  check_escape "unknown event" (fp "ACCT" "no_such_event")

let () =
  Alcotest.run "dispatch-differential"
    [
      ( "examples",
        [
          Alcotest.test_case "dept story" `Quick test_dept_story;
          Alcotest.test_case "dept script" `Quick test_dept_script;
          Alcotest.test_case "company phases" `Quick test_company_phases;
          Alcotest.test_case "emp_rel transactions" `Quick test_emp_rel;
          Alcotest.test_case "library script" `Quick test_library_script;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "valuation conflicts and statics" `Quick
            test_conflicts_and_statics;
          Alcotest.test_case "temporal constraint" `Quick
            test_temporal_constraint;
          Alcotest.test_case "sync sharing and seq rollback" `Quick
            test_sync_and_seq;
        ] );
      ( "footprints",
        [ Alcotest.test_case "static event footprints" `Quick test_footprints ] );
    ]
