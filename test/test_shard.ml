(** Sharded object societies: partition maps, the two-phase coordinator
    and its failure paths, and the sharded-session differential.

    The invariants under test: classes that can interact within one
    synchronous step are never split across shards; a cross-shard step
    either commits on every owner or leaves every owner bit-identical
    (by [Persist.save]) to its pre-step state; and a sharded session
    run of a trace agrees with a single-engine run on every error code
    and on the final merged state dump. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let tstrs = Alcotest.(list string)

(* Two structurally identical but fully independent counter classes —
   two interaction groups, so any 2-shard map can separate them. *)
let cells =
  {|
object class CELLA
  identification name: string;
  template
    attributes Total: integer;
    events
      birth init;
      death drop;
      add(integer);
    valuation
      variables n: integer;
      [init] Total = 0;
      [add(n)] Total = Total + n;
    permissions
      variables n: integer;
      { Total + n >= 0 } add(n);
end object class CELLA;

object class CELLB
  identification name: string;
  template
    attributes Total: integer;
    events
      birth init;
      death drop;
      add(integer);
    valuation
      variables n: integer;
      [init] Total = 0;
      [add(n)] Total = Total + n;
    permissions
      variables n: integer;
      { Total + n >= 0 } add(n);
end object class CELLB;
|}

let load_spec src =
  match Compile.load src with
  | Ok (c, _) -> c
  | Error e -> Alcotest.failf "load failed: %s" e

let ok_map = function
  | Ok m -> m
  | Error e -> Alcotest.failf "map rejected: %s" e

let err_map what = function
  | Ok _ -> Alcotest.failf "%s: map unexpectedly accepted" what
  | Error _ -> ()

let a = Ident.make "CELLA" (Value.String "x")
let b = Ident.make "CELLB" (Value.String "x")
let add id n = Event.make id "add" [ Value.Int n ]

let create cls =
  Step.Create { cls; key = Value.String "x"; event = None; args = [] }

let born c =
  List.iter
    (fun cls ->
      match Engine.step c (create cls) with
      | Ok _ -> ()
      | Error r -> Alcotest.failf "create %s: %s" cls (Runtime_error.reason_to_string r))
    [ "CELLA"; "CELLB" ]

(* ------------------------------------------------------------------ *)
(* Class groups and partition maps                                     *)
(* ------------------------------------------------------------------ *)

let test_groups_independent () =
  let c = load_spec cells in
  Alcotest.(check (list (list string)))
    "each independent class is its own group"
    [ [ "CELLA" ]; [ "CELLB" ] ]
    (Shard.groups c)

let test_groups_interacting () =
  (* dept.trl's global interaction DEPT.new_manager >> PERSON.become_manager
     forces both classes into one group *)
  let c = load_spec Paper_specs.dept in
  Alcotest.(check (list (list string)))
    "globally interacting classes are one group"
    [ [ "DEPT"; "PERSON" ] ] (Shard.groups c)

let test_auto_round_trip () =
  let c = load_spec cells in
  let map = Shard.auto c ~shards:2 in
  check tint "two shards" 2 (Shard.shards map);
  check tstr "wire form" "classes:2:CELLA=0,CELLB=1" (Shard.to_string map);
  let map' = ok_map (Shard.of_string c (Shard.to_string map)) in
  check tstr "of_string/to_string round-trip" (Shard.to_string map)
    (Shard.to_string map')

let test_map_validation () =
  let c = load_spec cells in
  err_map "unknown class"
    (Shard.of_classes c ~shards:2 [ ("CELLA", 0); ("CELLB", 1); ("GHOST", 0) ]);
  err_map "missing class" (Shard.of_classes c ~shards:2 [ ("CELLA", 0) ]);
  err_map "shard id out of range"
    (Shard.of_classes c ~shards:2 [ ("CELLA", 0); ("CELLB", 2) ]);
  let dept = load_spec Paper_specs.dept in
  err_map "interaction group split across shards"
    (Shard.of_classes dept ~shards:2 [ ("DEPT", 0); ("PERSON", 1) ])

let test_by_hash () =
  let c = load_spec cells in
  let map = ok_map (Shard.by_hash c ~shards:3) in
  check tstr "wire form" "hash:3" (Shard.to_string map);
  (* one identity's shard is stable, whatever its class *)
  let sa =
    match Shard.owner_ident map a with
    | Ok k -> k
    | Error r -> Alcotest.failf "owner: %s" (Runtime_error.reason_to_string r)
  in
  check tbool "owner in range" true (sa >= 0 && sa < 3);
  let dept = load_spec Paper_specs.dept in
  err_map "cross-identity interactions reject hash partitioning"
    (Shard.by_hash dept ~shards:2)

(* ------------------------------------------------------------------ *)
(* Step splitting                                                      *)
(* ------------------------------------------------------------------ *)

let split_exn map step =
  match Shard.split map step with
  | Ok parts -> parts
  | Error r -> Alcotest.failf "split: %s" (Runtime_error.reason_to_string r)

let test_split () =
  let c = load_spec cells in
  let map = Shard.auto c ~shards:2 in
  (match split_exn map (Step.Sync [ add a 1; add b 2 ]) with
  | [ (0, Step.Sync [ ea ]); (1, Step.Sync [ eb ]) ] ->
      check tstr "shard 0 keeps CELLA" "CELLA" ea.Event.target.Ident.cls;
      check tstr "shard 1 keeps CELLB" "CELLB" eb.Event.target.Ident.cls
  | parts ->
      Alcotest.failf "unexpected split: %s"
        (String.concat "; "
           (List.map
              (fun (k, s) -> Printf.sprintf "%d:%s" k (Step.to_string s))
              parts)));
  (* first-occurrence shard order, not numeric order *)
  (match split_exn map (Step.Sync [ add b 2; add a 1 ]) with
  | (1, _) :: (0, _) :: [] -> ()
  | _ -> Alcotest.fail "expected first-occurrence order [1; 0]");
  (* a step with no events routes to shard 0 *)
  (match split_exn map (Step.Txn []) with
  | [ (0, Step.Txn []) ] -> ()
  | _ -> Alcotest.fail "empty step should route to shard 0");
  match Shard.split map (Step.Fire (add (Ident.make "GHOST" (Value.String "x")) 1)) with
  | Error (Runtime_error.Unknown_class "GHOST") -> ()
  | _ -> Alcotest.fail "unknown class should fail the split"

(* ------------------------------------------------------------------ *)
(* The two-phase coordinator                                           *)
(* ------------------------------------------------------------------ *)

(** Two live cells plus the partition map routing between them. *)
let two_cells () =
  let facade = load_spec cells in
  let map = Shard.auto facade ~shards:2 in
  let c0 = load_spec cells and c1 = load_spec cells in
  born c0;
  born c1;
  (map, c0, c1)

let total c id =
  match Eval.read_attr c (Community.object_exn c id) "Total" [] with
  | Value.Int n -> n
  | v -> Alcotest.failf "Total: %s" (Value.to_string v)

let test_coordinate_commit () =
  let map, c0, c1 = two_cells () in
  let parts = [| Shard.local_participant c0; Shard.local_participant c1 |] in
  (match Shard.coordinate map parts (Step.Sync [ add a 5; add b 7 ]) with
  | Ok { Engine.committed; _ } ->
      check tint "one micro-step per shard" 2 (List.length committed)
  | Error r -> Alcotest.failf "coordinate: %s" (Runtime_error.reason_to_string r));
  check tint "CELLA committed on shard 0" 5 (total c0 a);
  check tint "CELLB committed on shard 1" 7 (total c1 b)

let test_coordinate_rejection_rolls_back_all () =
  let map, c0, c1 = two_cells () in
  let parts = [| Shard.local_participant c0; Shard.local_participant c1 |] in
  let s0 = Persist.save c0 and s1 = Persist.save c1 in
  (* shard 0's half prepares fine; shard 1's violates the permission
     guard, so the coordinator must abort the prepared shard 0 *)
  (match Shard.coordinate map parts (Step.Sync [ add a 5; add b (-100) ]) with
  | Error (Runtime_error.Permission_denied _) -> ()
  | Error r ->
      Alcotest.failf "expected permission_denied, got %s"
        (Runtime_error.reason_to_string r)
  | Ok _ -> Alcotest.fail "guard violation unexpectedly committed");
  check tstr "shard 0 rolled back bit-identically" s0 (Persist.save c0);
  check tstr "shard 1 rolled back bit-identically" s1 (Persist.save c1)

let test_coordinate_shard_death_mid_2pc () =
  let map, c0, c1 = two_cells () in
  (* shard 1 dies between receiving the prepare and voting: its proxy
     reports Shard_unavailable.  Shard 0 has already acked its prepare;
     the coordinator must abort it and no commit may ever arrive. *)
  let commits = ref 0 in
  let p0 = Shard.local_participant c0 in
  let p0 = { p0 with Shard.pt_commit = (fun () -> incr commits; p0.Shard.pt_commit ()) } in
  let dead =
    {
      Shard.pt_step = (fun _ -> Error (Runtime_error.Shard_unavailable 1));
      pt_prepare = (fun _ -> Error (Runtime_error.Shard_unavailable 1));
      pt_commit = ignore;
      pt_abort = ignore;
    }
  in
  let s0 = Persist.save c0 in
  (match Shard.coordinate map [| p0; dead |] (Step.Sync [ add a 5; add b 7 ]) with
  | Error (Runtime_error.Shard_unavailable 1) -> ()
  | Error r ->
      Alcotest.failf "expected shard_unavailable, got %s"
        (Runtime_error.reason_to_string r)
  | Ok _ -> Alcotest.fail "step committed despite a dead participant");
  check tint "commit never arrived on the survivor" 0 !commits;
  check tstr "survivor rolled back bit-identically" s0 (Persist.save c0);
  ignore c1

let test_coordinate_unknown_shard () =
  let map, c0, _c1 = two_cells () in
  (* the participant array is short one shard: routing CELLB's owner
     (shard 1) must fail with Unknown_shard, and the known shard must
     stay untouched even in a cross-shard step *)
  let parts = [| Shard.local_participant c0 |] in
  let s0 = Persist.save c0 in
  (match Shard.coordinate map parts (Step.Fire (add b 1)) with
  | Error (Runtime_error.Unknown_shard 1) -> ()
  | _ -> Alcotest.fail "expected unknown_shard on the single-owner path");
  (match Shard.coordinate map parts (Step.Sync [ add a 1; add b 1 ]) with
  | Error (Runtime_error.Unknown_shard 1) -> ()
  | _ -> Alcotest.fail "expected unknown_shard on the cross-shard path");
  check tstr "known shard untouched" s0 (Persist.save c0)

(* ------------------------------------------------------------------ *)
(* The sharded session differential                                    *)
(* ------------------------------------------------------------------ *)

(** A mixed deterministic trace: births, single-shard steps, cross-shard
    syncs, a guaranteed rejection, a death. *)
let trace =
  [
    create "CELLA";
    create "CELLB";
    Step.Fire (add a 3);
    Step.Fire (add b 4);
    Step.Sync [ add a 2; add b 5 ];
    Step.Fire (add a (-100));  (* permission_denied *)
    Step.Sync [ add a (-1); add b (-100) ];  (* rejected cross-shard *)
    Step.Seq [ add a 1; add a 1 ];
    Step.Destroy { id = b; event = None; args = [] };
  ]

let code_of = function
  | Ok _ -> "ok"
  | Error r -> Runtime_error.code r

let session_exn what = function
  | Ok s -> s
  | Error e -> Alcotest.failf "%s: %s" what (Troll.Error.to_string e)

let test_sharded_session_differential () =
  let sharded = session_exn "load_sharded" (Troll.Session.load_sharded ~shards:2 cells) in
  let single = session_exn "load" (Troll.Session.load cells) in
  check tint "shard_count" 2 (Troll.Session.shard_count sharded);
  check tbool "shard_map present" true
    (Option.is_some (Troll.Session.shard_map sharded));
  check tbool "single session has no map" true
    (Option.is_none (Troll.Session.shard_map single));
  List.iteri
    (fun i step ->
      let rs = Troll.Session.step sharded step in
      let r1 = Troll.Session.step single step in
      check tstr
        (Printf.sprintf "step %d: same error code" i)
        (code_of r1) (code_of rs))
    trace;
  check tstrs "same extension"
    (List.map Ident.to_string (Troll.Session.extension single "CELLA"))
    (List.map Ident.to_string (Troll.Session.extension sharded "CELLA"));
  (* the merged dump must be bit-identical to the single-engine dump *)
  check tstr "merged save is bit-identical" (Troll.Session.save single)
    (Troll.Session.save sharded)

let test_sharded_session_explicit_map () =
  (* same trace under the flipped explicit map — the partitioning must
     not show through in the final state either *)
  let sharded =
    session_exn "load_sharded"
      (Troll.Session.load_sharded ~shards:2 ~map:"classes:2:CELLA=1,CELLB=0"
         cells)
  in
  let single = session_exn "load" (Troll.Session.load cells) in
  List.iter
    (fun step ->
      ignore (Troll.Session.step sharded step);
      ignore (Troll.Session.step single step))
    trace;
  check tstr "flipped map, same merged save" (Troll.Session.save single)
    (Troll.Session.save sharded)

let test_sharded_session_bad_map () =
  match Troll.Session.load_sharded ~shards:2 ~map:"classes:2:CELLA=0" cells with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete map unexpectedly accepted"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shard"
    [
      ( "maps",
        [
          Alcotest.test_case "independent classes, singleton groups" `Quick
            test_groups_independent;
          Alcotest.test_case "interacting classes, one group" `Quick
            test_groups_interacting;
          Alcotest.test_case "auto map wire round-trip" `Quick
            test_auto_round_trip;
          Alcotest.test_case "validation errors" `Quick test_map_validation;
          Alcotest.test_case "identity-hash partitioning" `Quick test_by_hash;
        ] );
      ( "split",
        [ Alcotest.test_case "per-shard decomposition" `Quick test_split ] );
      ( "coordinate",
        [
          Alcotest.test_case "cross-shard commit" `Quick test_coordinate_commit;
          Alcotest.test_case "rejection aborts every prepared shard" `Quick
            test_coordinate_rejection_rolls_back_all;
          Alcotest.test_case "shard death mid-2PC aborts the survivor" `Quick
            test_coordinate_shard_death_mid_2pc;
          Alcotest.test_case "unknown shard id" `Quick
            test_coordinate_unknown_shard;
        ] );
      ( "session",
        [
          Alcotest.test_case "sharded = single on a mixed trace" `Quick
            test_sharded_session_differential;
          Alcotest.test_case "flipped explicit map, same state" `Quick
            test_sharded_session_explicit_map;
          Alcotest.test_case "incomplete map rejected" `Quick
            test_sharded_session_bad_map;
        ] );
    ]
