(** The §3 formal layer: template morphisms, aspects, inheritance
    schemas (specialization/abstraction construction) and community
    diagrams (incorporation, aggregation, interfacing, sharing). *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* Small templates built directly (no spec text needed). *)
let attr name ty =
  { Template.at_name = name; at_type = ty; at_params = [];
    at_derived = None; at_constant = false }

let event ?(kind = Ast.Ev_normal) name params =
  { Template.ed_name = name; ed_params = params; ed_kind = kind;
    ed_active = false; ed_born_by = None }

let template name ~attrs ~events =
  { Template.t_name = name; t_kind = `Class; t_id_fields = [];
    t_view_of = None; t_spec_of = None; t_attrs = attrs; t_events = events;
    t_valuations = []; t_callings = []; t_perms = []; t_constraints = [];
    t_vars = []; t_slots = None; t_staged = None }

(* The paper's example 3.2 hierarchy *)
let el_device =
  template "el_device"
    ~attrs:[ attr "is_on" Vtype.Bool ]
    ~events:[ event "switch_on" []; event "switch_off" [] ]

let calculator =
  template "calculator"
    ~attrs:[ attr "display" Vtype.Int ]
    ~events:[ event "compute" [] ]

let computer =
  template "computer"
    ~attrs:[ attr "is_on" Vtype.Bool; attr "display" Vtype.Int;
             attr "os" Vtype.String ]
    ~events:
      [ event "switch_on" []; event "switch_off" []; event "compute" [];
        event "boot" [] ]

let thing = template "thing" ~attrs:[] ~events:[]

let workstation =
  template "workstation"
    ~attrs:(computer.Template.t_attrs @ [ attr "netaddr" Vtype.String ])
    ~events:computer.Template.t_events

let personal_c =
  template "personal_c" ~attrs:computer.Template.t_attrs
    ~events:computer.Template.t_events

(* ------------------------------------------------------------------ *)
(* Sigmap and template morphisms                                       *)
(* ------------------------------------------------------------------ *)

let test_identity_map () =
  let m = Sigmap.identity_on computer el_device in
  check (Alcotest.option tstr) "attr mapped" (Some "is_on")
    (Sigmap.map_attr m "is_on");
  check (Alcotest.option tstr) "own attr unmapped" None
    (Sigmap.map_attr m "os");
  check (Alcotest.option tstr) "event mapped" (Some "switch_on")
    (Sigmap.map_event m "switch_on")

let test_sigmap_compose () =
  let f = Sigmap.make ~attrs:[ ("a", "b") ] ~events:[ ("e", "f") ] () in
  let g = Sigmap.make ~attrs:[ ("b", "c") ] ~events:[ ("f", "g") ] () in
  let fg = Sigmap.compose f g in
  check (Alcotest.option tstr) "attrs compose" (Some "c")
    (Sigmap.map_attr fg "a");
  check (Alcotest.option tstr) "events compose" (Some "g")
    (Sigmap.map_event fg "e")

let test_projection_wellformed () =
  let m = Template_morphism.projection ~src:computer ~dst:el_device in
  check (Alcotest.list tstr) "no violations" []
    (Template_morphism.violations m);
  check tbool "surjective (example 3.4)" true
    (Template_morphism.is_surjective m)

let test_morphism_violations () =
  (* mapping is_on to display mismatches bool/int *)
  let bad =
    Template_morphism.make ~src:computer ~dst:calculator
      (Sigmap.make ~attrs:[ ("is_on", "display") ] ())
  in
  check tbool "type violation" true
    (Template_morphism.violations bad <> []);
  (* missing target item *)
  let ghost =
    Template_morphism.make ~src:computer ~dst:el_device
      (Sigmap.make ~attrs:[ ("os", "ghost") ] ())
  in
  check tbool "missing target" true (Template_morphism.violations ghost <> [])

let test_morphism_polarity () =
  let birth_t =
    template "B" ~attrs:[] ~events:[ event ~kind:Ast.Ev_birth "go" [] ]
  in
  let normal_t = template "N" ~attrs:[] ~events:[ event "go" [] ] in
  let m =
    Template_morphism.make ~src:birth_t ~dst:normal_t
      (Sigmap.make ~events:[ ("go", "go") ] ())
  in
  check tbool "polarity violation" true (Template_morphism.violations m <> [])

let test_morphism_not_surjective () =
  let m = Template_morphism.projection ~src:el_device ~dst:computer in
  (* el_device cannot cover computer's extra items *)
  check tbool "not surjective" false (Template_morphism.is_surjective m)

let test_morphism_compose () =
  let f = Template_morphism.projection ~src:workstation ~dst:computer in
  let g = Template_morphism.projection ~src:computer ~dst:el_device in
  (match Template_morphism.compose f g with
  | Some fg ->
      check tstr "src" "workstation" fg.Template_morphism.src.Template.t_name;
      check tstr "dst" "el_device" fg.Template_morphism.dst.Template.t_name;
      check (Alcotest.list tstr) "wellformed" []
        (Template_morphism.violations fg)
  | None -> Alcotest.fail "endpoints meet");
  check tbool "mismatched endpoints" true
    (Template_morphism.compose g f = None)

(* ------------------------------------------------------------------ *)
(* Aspects                                                             *)
(* ------------------------------------------------------------------ *)

let test_aspect_kind () =
  let sun = Value.String "SUN" in
  let pxx = Value.String "PXX" in
  let a1 = Aspect.make (Ident.make "computer" sun) computer in
  let a2 = Aspect.make (Ident.make "el_device" sun) el_device in
  let a3 = Aspect.make (Ident.make "el_device" pxx) el_device in
  (* same identity, different template: inheritance (example 3.1) *)
  check tbool "inheritance" true
    (Aspect.kind (Aspect.morphism ~src:a1 ~dst:a2 ()) = Aspect.Inheritance);
  (* different identities: interaction *)
  check tbool "interaction" true
    (Aspect.kind (Aspect.morphism ~src:a1 ~dst:a3 ()) = Aspect.Interaction)

(* ------------------------------------------------------------------ *)
(* Inheritance schemas                                                 *)
(* ------------------------------------------------------------------ *)

let example_schema () =
  (* example 3.2, built top-down by specialization *)
  let s = Schema.create () in
  Schema.add_template s thing;
  Schema.specialize s el_device
    ~supers:[ ("thing", Sigmap.identity_on el_device thing) ];
  Schema.specialize s calculator
    ~supers:[ ("thing", Sigmap.identity_on calculator thing) ];
  (* multiple inheritance (example 3.5) *)
  Schema.specialize s computer
    ~supers:
      [ ("el_device", Sigmap.identity_on computer el_device);
        ("calculator", Sigmap.identity_on computer calculator) ];
  Schema.specialize s workstation
    ~supers:[ ("computer", Sigmap.identity_on workstation computer) ];
  Schema.specialize s personal_c
    ~supers:[ ("computer", Sigmap.identity_on personal_c computer) ];
  s

let test_schema_build () =
  let s = example_schema () in
  check tint "six templates" 6 (Schema.size s);
  check (Alcotest.list tstr) "direct supers of computer"
    [ "calculator"; "el_device" ]
    (List.sort compare (Schema.direct_supers s "computer"));
  check (Alcotest.list tstr) "ancestors of workstation"
    [ "calculator"; "computer"; "el_device"; "thing" ]
    (List.sort compare (Schema.ancestors s "workstation"));
  check (Alcotest.list tstr) "descendants of thing"
    [ "calculator"; "computer"; "el_device"; "personal_c"; "workstation" ]
    (List.sort compare (Schema.descendants s "thing"))

let test_schema_abstraction () =
  (* growing upward (example 3.6): sensitive as abstraction of computer *)
  let s = example_schema () in
  let sensitive = template "sensitive" ~attrs:[] ~events:[] in
  Schema.abstract s sensitive
    ~subs:[ ("computer", Sigmap.identity_on computer sensitive) ];
  check tbool "computer is sensitive" true
    (List.mem "sensitive" (Schema.ancestors s "computer"));
  check tbool "workstation inherits it" true
    (List.mem "sensitive" (Schema.ancestors s "workstation"))

let test_schema_cycles_rejected () =
  let s = example_schema () in
  (match
     Schema.add_edge s ~sub:"thing" ~super:"workstation" Sigmap.empty
   with
  | exception Schema.Schema_error _ -> ()
  | () -> Alcotest.fail "cycle accepted");
  match Schema.add_edge s ~sub:"thing" ~super:"thing" Sigmap.empty with
  | exception Schema.Schema_error _ -> ()
  | () -> Alcotest.fail "self-loop accepted"

let test_schema_duplicate_edge () =
  let s = example_schema () in
  match
    Schema.add_edge s ~sub:"computer" ~super:"el_device"
      (Sigmap.identity_on computer el_device)
  with
  | exception Schema.Schema_error _ -> ()
  | () -> Alcotest.fail "duplicate edge accepted"

let test_schema_illformed_morphism_rejected () =
  let s = Schema.create () in
  Schema.add_template s computer;
  Schema.add_template s calculator;
  match
    Schema.add_edge s ~sub:"computer" ~super:"calculator"
      (Sigmap.make ~attrs:[ ("is_on", "display") ] ())
  with
  | exception Schema.Schema_error _ -> ()
  | () -> Alcotest.fail "ill-typed schema morphism accepted"

let test_aspects_closure () =
  let s = example_schema () in
  let aspects = Schema.aspects_of s ~key:(Value.String "SUN") "workstation" in
  check tint "aspect per ancestor + self" 5 (List.length aspects);
  check tbool "same key everywhere" true
    (List.for_all
       (fun (a : Aspect.t) ->
         Value.equal a.Aspect.id.Ident.key (Value.String "SUN"))
       aspects);
  let morphs =
    Schema.inheritance_morphisms s ~key:(Value.String "SUN") "workstation"
  in
  check tbool "all inheritance" true
    (List.for_all (fun m -> Aspect.kind m = Aspect.Inheritance) morphs);
  (* one morphism per edge on paths upward: ws→comp, comp→dev, comp→calc,
     dev→thing, calc→thing *)
  check tint "five morphisms" 5 (List.length morphs)

let test_topological () =
  let s = example_schema () in
  let order = Schema.topological s in
  check tint "all nodes" 6 (List.length order);
  let pos n =
    let rec go i = function
      | [] -> -1
      | x :: r -> if String.equal x n then i else go (i + 1) r
    in
    go 0 order
  in
  List.iter
    (fun e ->
      check tbool
        (Printf.sprintf "%s before %s" e.Schema.e_super e.Schema.e_sub)
        true
        (pos e.Schema.e_super < pos e.Schema.e_sub))
    (Schema.edges s)

(* random DAG property: aspects_of size = 1 + |ancestors| *)
let prop_aspects_size =
  QCheck.Test.make ~name:"schema: aspect closure size" ~count:100
    (QCheck.make
       ~print:(fun edges -> string_of_int (List.length edges))
       QCheck.Gen.(
         list_size (int_range 0 30)
           (pair (int_range 0 14) (int_range 0 14))))
    (fun edges ->
      let s = Schema.create () in
      for i = 0 to 14 do
        Schema.add_template s
          (template (Printf.sprintf "T%d" i) ~attrs:[] ~events:[])
      done;
      List.iter
        (fun (a, b) ->
          if a <> b then
            let sub = Printf.sprintf "T%d" a
            and super = Printf.sprintf "T%d" b in
            try Schema.add_edge s ~sub ~super Sigmap.empty
            with Schema.Schema_error _ -> ())
        edges;
      List.for_all
        (fun i ->
          let name = Printf.sprintf "T%d" i in
          List.length (Schema.aspects_of s ~key:(Value.Int 0) name)
          = 1 + List.length (Schema.ancestors s name))
        [ 0; 5; 14 ])

(* ------------------------------------------------------------------ *)
(* Community diagrams                                                  *)
(* ------------------------------------------------------------------ *)

let powsply = template "powsply" ~attrs:[] ~events:[ event "switch_on" [] ]
let cpu = template "cpu" ~attrs:[] ~events:[ event "switch_on" [] ]
let cable = template "cable" ~attrs:[] ~events:[ event "switch_on" [] ]

let full_schema () =
  let s = example_schema () in
  List.iter (Schema.add_template s) [ powsply; cpu; cable ];
  s

let test_community_closure () =
  let com = Community_diagram.create (full_schema ()) in
  let _sun = Community_diagram.add_object com ~key:(Value.String "SUN") "workstation" in
  (* closed under inheritance: all five aspects are present *)
  check tint "aspects" 5 (Community_diagram.size com);
  (* adding again is idempotent *)
  let _ = Community_diagram.add_object com ~key:(Value.String "SUN") "workstation" in
  check tint "idempotent" 5 (Community_diagram.size com)

let test_aggregation_example_3_9 () =
  let com = Community_diagram.create (full_schema ()) in
  let pxx = Community_diagram.add_object com ~key:(Value.String "PXX") "powsply" in
  let cyy = Community_diagram.add_object com ~key:(Value.String "CYY") "cpu" in
  let ms =
    Community_diagram.aggregate com ~whole_key:(Value.String "SUN")
      ~whole_tpl:"computer" ~parts:[ pxx; cyy ]
  in
  check tint "two part morphisms" 2 (List.length ms);
  check tbool "all interactions" true
    (List.for_all (fun m -> Aspect.kind m = Aspect.Interaction) ms);
  (* the whole was closed under inheritance too *)
  check tbool "device aspect present" true
    (Community_diagram.find_aspect com ~key:(Value.String "SUN") "el_device"
    <> None)

let test_sharing_example_3_7 () =
  let com = Community_diagram.create (full_schema ()) in
  let pxx = Community_diagram.add_object com ~key:(Value.String "PXX") "powsply" in
  let cyy = Community_diagram.add_object com ~key:(Value.String "CYY") "cpu" in
  let cbz = Community_diagram.add_object com ~key:(Value.String "CBZ") "cable" in
  let ms = Community_diagram.share com ~shared:cbz ~sharers:[ pxx; cyy ] in
  check tint "two sharer morphisms" 2 (List.length ms);
  check tint "one sharing diagram" 1
    (List.length (Community_diagram.sharing_diagrams com cbz));
  check tint "cable has two neighbours" 2
    (List.length (Community_diagram.neighbours com cbz))

let test_interfacing_example_3_8 () =
  let com = Community_diagram.create (full_schema ()) in
  let base = Community_diagram.add_object com ~key:(Value.String "DB") "thing" in
  let m =
    Community_diagram.interface com ~iface_key:(Value.String "VIEW")
      ~iface_tpl:"thing" ~base ()
  in
  (* new identity: an interaction, not an inheritance *)
  check tbool "interfacing creates a new object" true
    (Aspect.kind m = Aspect.Interaction)

let test_inheritance_morphism_rejected_as_interaction () =
  let com = Community_diagram.create (full_schema ()) in
  let _ = Community_diagram.add_object com ~key:(Value.String "SUN") "computer" in
  let a = Community_diagram.require_aspect com ~key:(Value.String "SUN") "computer" in
  let b = Community_diagram.require_aspect com ~key:(Value.String "SUN") "el_device" in
  match Community_diagram.add_interaction com ~src:a ~dst:b () with
  | exception Community_diagram.Community_error _ -> ()
  | _ -> Alcotest.fail "same-identity interaction accepted"

let test_part_must_exist () =
  let com = Community_diagram.create (full_schema ()) in
  let ghost = Aspect.make (Ident.make "cpu" (Value.String "?")) cpu in
  match
    Community_diagram.incorporate com ~whole_key:(Value.String "SUN")
      ~whole_tpl:"computer" ~part:ghost ()
  with
  | exception Community_diagram.Community_error _ -> ()
  | _ -> Alcotest.fail "incorporated a part outside the community"

(* ------------------------------------------------------------------ *)
(* Behavioural checking (example 3.4 made executable)                  *)
(* ------------------------------------------------------------------ *)

let el_device_spec = {|
object class EL_DEVICE
  identification id: string;
  template
    attributes is_on: bool;
    events birth assemble; switch_on; switch_off;
    valuation
      [assemble] is_on = false;
      [switch_on] is_on = true;
      [switch_off] is_on = false;
    permissions
      { is_on = false } switch_on;
      { is_on = true } switch_off;
end object class EL_DEVICE;
|}

let computer_spec = {|
object class COMPUTER
  identification id: string;
  template
    attributes is_on: bool; booted: bool;
    events birth assemble; switch_on; switch_off; boot;
    valuation
      [assemble] is_on = false;
      [assemble] booted = false;
      [switch_on] is_on = true;
      [switch_off] is_on = false;
      [switch_off] booted = false;
      [boot] booted = true;
    permissions
      { is_on = false } switch_on;
      { is_on = true } switch_off;
      { is_on = true and booted = false } boot;
end object class COMPUTER;
|}

let broken_computer_spec = {|
object class BROKEN
  identification id: string;
  template
    attributes is_on: bool;
    events birth assemble; switch_on; switch_off;
    valuation
      [assemble] is_on = false;
      [switch_on] is_on = true;
      [switch_off] is_on = false;
    permissions
      { is_on = false } switch_on;
      { is_on = false } switch_off;
end object class BROKEN;
|}

let load_one spec cls =
  match Compile.load spec with
  | Error e -> Alcotest.fail e
  | Ok (c, _) -> (
      match Engine.create c ~cls ~key:(Value.String "x") () with
      | Ok _ ->
          ( { Refinement.community = c; id = Ident.make cls (Value.String "x") },
            Community.template_exn c cls )
      | Error r -> Alcotest.failf "%s" (Runtime_error.reason_to_string r))

let test_behaviour_containment () =
  (* "a computer IS An electronic device": the computer provides every
     el_device behaviour *)
  let sub_side, computer_tpl = load_one computer_spec "COMPUTER" in
  let super_side, el_device_tpl = load_one el_device_spec "EL_DEVICE" in
  let m = Template_morphism.projection ~src:computer_tpl ~dst:el_device_tpl in
  check tbool "surjective" true (Template_morphism.is_surjective m);
  match Behaviour.check m ~sub_side ~super_side ~depth:4 () with
  | Error e -> Alcotest.fail e
  | Ok report -> (
      match report.Refinement.verdict with
      | Ok () -> check tbool "cases explored" true (report.Refinement.cases > 0)
      | Error cx ->
          Alcotest.failf "containment failed: %s"
            (Format.asprintf "%a" Refinement.pp_counterexample cx))

let test_behaviour_violation_detected () =
  (* BROKEN permits switch_off while off — not an el_device behaviour *)
  let sub_side, broken_tpl = load_one broken_computer_spec "BROKEN" in
  let super_side, el_device_tpl = load_one el_device_spec "EL_DEVICE" in
  let m = Template_morphism.projection ~src:broken_tpl ~dst:el_device_tpl in
  match Behaviour.check m ~sub_side ~super_side ~depth:3 () with
  | Error e -> Alcotest.fail e
  | Ok report -> (
      match report.Refinement.verdict with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "protocol violation not detected")

let test_behaviour_requires_surjectivity () =
  let _, el_device_tpl = load_one el_device_spec "EL_DEVICE" in
  let _, computer_tpl = load_one computer_spec "COMPUTER" in
  (* the reverse projection misses computer-only items *)
  let m = Template_morphism.projection ~src:el_device_tpl ~dst:computer_tpl in
  match Behaviour.implementation_of m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-surjective morphism accepted"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "morphism"
    [
      ( "template-morphisms",
        [
          Alcotest.test_case "identity sigmap" `Quick test_identity_map;
          Alcotest.test_case "sigmap composition" `Quick test_sigmap_compose;
          Alcotest.test_case "projection (3.4)" `Quick
            test_projection_wellformed;
          Alcotest.test_case "violations" `Quick test_morphism_violations;
          Alcotest.test_case "birth/death polarity" `Quick
            test_morphism_polarity;
          Alcotest.test_case "surjectivity" `Quick test_morphism_not_surjective;
          Alcotest.test_case "composition" `Quick test_morphism_compose;
        ] );
      ( "aspects",
        [ Alcotest.test_case "inheritance vs interaction" `Quick
            test_aspect_kind ] );
      ( "schema",
        [
          Alcotest.test_case "example 3.2 construction" `Quick
            test_schema_build;
          Alcotest.test_case "abstraction upward" `Quick
            test_schema_abstraction;
          Alcotest.test_case "cycles rejected" `Quick
            test_schema_cycles_rejected;
          Alcotest.test_case "duplicate edges rejected" `Quick
            test_schema_duplicate_edge;
          Alcotest.test_case "ill-formed morphisms rejected" `Quick
            test_schema_illformed_morphism_rejected;
          Alcotest.test_case "aspect closure" `Quick test_aspects_closure;
          Alcotest.test_case "topological order" `Quick test_topological;
        ] );
      ( "schema-properties",
        [ QCheck_alcotest.to_alcotest prop_aspects_size ] );
      ( "behaviour",
        [
          Alcotest.test_case "containment holds (3.4)" `Quick
            test_behaviour_containment;
          Alcotest.test_case "protocol violation detected" `Quick
            test_behaviour_violation_detected;
          Alcotest.test_case "surjectivity required" `Quick
            test_behaviour_requires_surjectivity;
        ] );
      ( "community",
        [
          Alcotest.test_case "closure under inheritance" `Quick
            test_community_closure;
          Alcotest.test_case "aggregation (3.9)" `Quick
            test_aggregation_example_3_9;
          Alcotest.test_case "sharing (3.7)" `Quick test_sharing_example_3_7;
          Alcotest.test_case "interfacing (3.8)" `Quick
            test_interfacing_example_3_8;
          Alcotest.test_case "interaction needs distinct ids" `Quick
            test_inheritance_morphism_rejected_as_interaction;
          Alcotest.test_case "parts must exist" `Quick test_part_must_exist;
        ] );
    ]
