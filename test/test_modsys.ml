(** Modules and societies (§6): three-level schema well-formedness,
    import/export visibility, linking, and an end-to-end compiled
    two-module society communicating via global interactions. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let parse src =
  match Parser.spec src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %s" (Parse_error.to_string e)

let society_of src = fst (Society.of_spec (parse src))

let contains s fragment =
  let rec find i =
    i + String.length fragment <= String.length s
    && (String.sub s i (String.length fragment) = fragment || find (i + 1))
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* a calendar module exporting a clock interface — the paper's shared
   system-clock example of §6.1 *)
let calendar_mod = {|
module Calendar
  conceptual schema
    object TheClock
      template
        attributes Today: date;
        events birth start_clock; tick;
        valuation
          [start_clock] Today = d"1991-01-01";
          [tick] Today = Today + 1;
    end object TheClock;
    interface class CLOCK_READ
      encapsulating TheClock;
      attributes Today: date;
    end interface class CLOCK_READ;
  external schema time = (CLOCK_READ, TheClock);
end module Calendar;
|}

let payroll_mod = {|
module Payroll
  import Calendar.time;
  conceptual schema
    object class WORKER
      identification wname: string;
      template
        attributes Hired: date;
        events birth hire; check_date;
        valuation
          [hire] Hired = TheClock.Today;
    end object class WORKER;
  external schema staff = (WORKER);
end module Payroll;
|}

(* ------------------------------------------------------------------ *)
(* Schema3                                                             *)
(* ------------------------------------------------------------------ *)

let module_of src =
  match parse src with
  | [ Ast.D_module m ] -> Schema3.of_ast m
  | _ -> Alcotest.fail "expected one module"

let test_names_and_exports () =
  let m = module_of calendar_mod in
  check (Alcotest.list Alcotest.string) "conceptual names"
    [ "CLOCK_READ"; "TheClock" ]
    (List.sort compare (Schema3.conceptual_names m));
  check tbool "export resolves" true (Schema3.exports m "time" <> None);
  check tbool "unknown schema" true (Schema3.exports m "nope" = None)

let test_validate_export_unknown_name () =
  let m =
    module_of
      {|
module M
  conceptual schema
    object class X
      identification k: string;
      template events birth b;
    end object class X;
  external schema s = (X, GHOST);
end module M;
|}
  in
  let diags = Schema3.validate m in
  check tint "one diagnostic" 1 (List.length diags);
  check tbool "names GHOST" true (contains (List.hd diags) "GHOST")

let test_validate_conceptual_uses_internal () =
  let m =
    module_of
      {|
module M
  conceptual schema
    object class X
      identification k: string;
      template
        attributes helper: |IMPL|;
        events birth b;
    end object class X;
  internal schema
    object class IMPL
      identification k: string;
      template events birth b;
    end object class IMPL;
end module M;
|}
  in
  check tbool "layering violation reported" true
    (List.exists (fun d -> contains d "internal name IMPL") (Schema3.validate m))

let test_internal_may_use_conceptual () =
  let m =
    module_of
      {|
module M
  conceptual schema
    object class X
      identification k: string;
      template events birth b;
    end object class X;
  internal schema
    object class XI
      identification k: string;
      template
        attributes up: |X|;
        events birth b;
    end object class XI;
  external schema s = (X);
end module M;
|}
  in
  check (Alcotest.list Alcotest.string) "clean" [] (Schema3.validate m)

let test_referenced_classes () =
  let m = module_of payroll_mod in
  let refs =
    Schema3.referenced_classes
      ~known:(fun n -> String.equal n "TheClock")
      (m.Schema3.md_conceptual @ m.Schema3.md_internal)
  in
  check tbool "TheClock referenced" true (List.mem "TheClock" refs);
  check tbool "builtins excluded" true (not (List.mem "date" refs))

(* ------------------------------------------------------------------ *)
(* Society                                                             *)
(* ------------------------------------------------------------------ *)

let test_society_validates () =
  let s = society_of (calendar_mod ^ payroll_mod) in
  check (Alcotest.list Alcotest.string) "no diagnostics" []
    (Society.validate s)

let test_import_unknown_module () =
  let s =
    society_of
      {|
module M
  import Ghost.stuff;
  conceptual schema
    object class X
      identification k: string;
      template events birth b;
    end object class X;
end module M;
|}
  in
  check tbool "unknown module reported" true
    (List.exists (fun d -> contains d "unknown module Ghost") (Society.validate s))

let test_import_unknown_schema () =
  let s =
    society_of
      (calendar_mod
     ^ {|
module M
  import Calendar.secrets;
  conceptual schema
    object class X
      identification k: string;
      template events birth b;
    end object class X;
end module M;
|})
  in
  check tbool "unknown schema reported" true
    (List.exists
       (fun d -> contains d "unknown external schema Calendar.secrets")
       (Society.validate s))

let test_visibility_enforced () =
  (* Payroll without the import must not see TheClock *)
  let broken =
    {|
module Payroll
  conceptual schema
    object class WORKER
      identification wname: string;
      template
        attributes Hired: date;
        events birth hire;
        valuation
          [hire] Hired = TheClock.Today;
    end object class WORKER;
end module Payroll;
|}
  in
  let s = society_of (calendar_mod ^ broken) in
  check tbool "invisible name reported" true
    (List.exists
       (fun d -> contains d "neither declared nor imported")
       (Society.validate s))

let test_link_order () =
  let s = society_of (payroll_mod ^ calendar_mod) in
  match Society.link s with
  | Error ds -> Alcotest.failf "link failed: %s" (String.concat "; " ds)
  | Ok decls ->
      (* imported module's declarations come first despite source order *)
      let names = List.map Ast.decl_name decls in
      let pos n =
        let rec go i = function
          | [] -> -1
          | x :: r -> if String.equal x n then i else go (i + 1) r
        in
        go 0 names
      in
      check tbool "Calendar before Payroll" true
        (pos "TheClock" < pos "WORKER")

let test_society_compile_and_run () =
  let s = society_of (calendar_mod ^ payroll_mod) in
  match Society.compile s with
  | Error ds -> Alcotest.failf "compile failed: %s" (String.concat "; " ds)
  | Ok (community, views) ->
      (* the single clock was instantiated; tick it twice *)
      let clock = Ident.singleton "TheClock" in
      ignore (Engine.fire community (Event.make clock "tick" []));
      ignore (Engine.fire community (Event.make clock "tick" []));
      (* a worker hired now records the (cross-module) clock's date *)
      ignore
        (Engine.create community ~cls:"WORKER" ~key:(Value.String "w1") ());
      let w = Community.object_exn community (Ident.make "WORKER" (Value.String "w1")) in
      let hired = Eval.read_attr community w "Hired" [] in
      check (Alcotest.testable Value.pp Value.equal) "date from Calendar"
        (Value.Date (Date_adt.add_days (Option.get (Date_adt.of_string "1991-01-01")) 2))
        hired;
      (* the exported view is available under module.schema *)
      let time_views = List.assoc "Calendar.time" views in
      check tint "one interface exported" 1 (List.length time_views);
      let clock_view = List.hd time_views in
      (match Interface.attr clock_view [ ("TheClock", clock) ] "Today" [] with
      | Ok (Value.Date _) -> ()
      | _ -> Alcotest.fail "view read failed")

let test_mixed_spec_through_troll_load () =
  (* Session.load links modules transparently *)
  match Troll.Session.load (calendar_mod ^ payroll_mod) with
  | Error e -> Alcotest.failf "load: %s" (Troll.Error.to_string e)
  | Ok s ->
      check tbool "clock exists" true
        (Community.living (Troll.Session.community s)
           (Ident.singleton "TheClock")
        <> None)

let () =
  Alcotest.run "modsys"
    [
      ( "schema3",
        [
          Alcotest.test_case "names and exports" `Quick test_names_and_exports;
          Alcotest.test_case "export of unknown name" `Quick
            test_validate_export_unknown_name;
          Alcotest.test_case "conceptual must not use internal" `Quick
            test_validate_conceptual_uses_internal;
          Alcotest.test_case "internal may use conceptual" `Quick
            test_internal_may_use_conceptual;
          Alcotest.test_case "reference analysis" `Quick
            test_referenced_classes;
        ] );
      ( "society",
        [
          Alcotest.test_case "validates" `Quick test_society_validates;
          Alcotest.test_case "unknown module" `Quick
            test_import_unknown_module;
          Alcotest.test_case "unknown schema" `Quick test_import_unknown_schema;
          Alcotest.test_case "visibility enforced" `Quick
            test_visibility_enforced;
          Alcotest.test_case "link order" `Quick test_link_order;
          Alcotest.test_case "compile and run" `Quick
            test_society_compile_and_run;
          Alcotest.test_case "through Session.load" `Quick
            test_mixed_spec_through_troll_load;
        ] );
    ]
