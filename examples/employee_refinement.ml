(** §5.2 end-to-end: formal implementation of [EMPLOYEE] over the
    relation object [emp_rel], hidden behind the [EMPL] interface, and
    the bounded refinement check with its proof obligations.

    Run with [dune exec examples/employee_refinement.exe]. *)

(* bridges from the removed string-error wrappers to the
   session/engine API *)
let load_exn src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.system s
  | Error e -> failwith (Troll.Error.to_string e)

let fire sys target name args =
  Engine.fire sys.Troll.community (Event.make target name args)

let create_exn sys ~cls ~key ?event ?(args = []) () =
  match Engine.step sys.Troll.community (Step.Create { cls; key; event; args })
  with
  | Ok _ -> ()
  | Error r -> failwith (Runtime_error.reason_to_string r)

let attr_exn sys target name =
  match Troll.Session.attr (Troll.Session.of_system sys) target name with
  | Ok v -> v
  | Error e -> failwith (Troll.Error.to_string e)

let view_exn (sys : Troll.system) name =
  match List.assoc_opt name sys.Troll.views with
  | Some v -> v
  | None -> failwith (Printf.sprintf "no interface class %s" name)

let key name =
  Value.Tuple [ ("EmpName", Value.String name); ("EmpBirth", Value.Date 0) ]

let () =
  print_endline "== stepwise refinement: EMPLOYEE over emp_rel ==";

  (* Abstract side. *)
  let abs_sys = load_exn Paper_specs.employee_abstract in
  let ada_abs = Troll.ident "EMPLOYEE" (key "ada") in
  create_exn abs_sys ~cls:"EMPLOYEE" ~key:ada_abs.Ident.key ();

  (* Concrete side: emp_rel (created automatically as a single object),
     EMPL_IMPL on top, EMPL hiding the implementation. *)
  let conc_sys = load_exn Paper_specs.employee_implementation in
  let ada_conc = Troll.ident "EMPL_IMPL" (key "ada") in
  create_exn conc_sys ~cls:"EMPL_IMPL" ~key:ada_conc.Ident.key ();

  print_endline "\n-- driving both sides through the EMPL interface --";
  let empl = view_exn conc_sys "EMPL" in
  let inst = [ ("EMPL_IMPL", ada_conc) ] in
  (match Interface.fire empl inst "IncreaseSalary" [ Value.Int 700 ] with
  | Ok _ -> ()
  | Error r -> Printf.printf "  %s\n" (Runtime_error.reason_to_string r));
  ignore (fire abs_sys ada_abs "IncreaseSalary" [ Value.Int 700 ]);
  let show side sys id =
    Printf.printf "  %-9s Salary = %s\n" side
      (Value.to_string (attr_exn sys id "Salary"))
  in
  show "abstract" abs_sys ada_abs;
  show "concrete" conc_sys ada_conc;
  (match Interface.attr empl inst "Salary" [] with
  | Ok v -> Printf.printf "  %-9s Salary = %s (through EMPL)\n" "interface" (Value.to_string v)
  | Error r -> print_endline (Runtime_error.reason_to_string r));
  Printf.printf "  emp_rel.Emps = %s\n"
    (Value.to_string
       (attr_exn conc_sys (Ident.singleton "emp_rel") "Emps"));

  (* Transaction calling inside emp_rel: ChangeSalary >> (DeleteEmp;
     InsertEmp) runs as one atomic unit. *)
  print_endline "\n-- transaction calling --";
  (match
     fire conc_sys (Ident.singleton "emp_rel") "ChangeSalary"
       [ Value.String "ada"; Value.Date 0; Value.Int 1200 ]
   with
  | Ok o ->
      Printf.printf "  ChangeSalary expanded to %d micro-step(s):\n"
        (List.length o.Engine.committed);
      List.iter
        (fun step ->
          Printf.printf "    [%s]\n"
            (String.concat "; " (List.map Event.to_string step)))
        o.Engine.committed
  | Error r -> Printf.printf "  %s\n" (Runtime_error.reason_to_string r));
  ignore (fire abs_sys ada_abs "IncreaseSalary" [ Value.Int 500 ]);
  show "abstract" abs_sys ada_abs;
  show "concrete" conc_sys ada_conc;

  (* Bounded refinement check, on fresh communities. *)
  print_endline "\n-- bounded refinement check --";
  let abs_sys = load_exn Paper_specs.employee_abstract in
  let conc_sys = load_exn Paper_specs.employee_implementation in
  create_exn abs_sys ~cls:"EMPLOYEE" ~key:(key "eve") ();
  create_exn conc_sys ~cls:"EMPL_IMPL" ~key:(key "eve") ();
  let impl =
    Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPL_IMPL" ()
  in
  let alphabet =
    [
      { Refinement.ev_name = "IncreaseSalary"; ev_args = [ Value.Int 100 ] };
      { Refinement.ev_name = "IncreaseSalary"; ev_args = [ Value.Int 250 ] };
      { Refinement.ev_name = "FireEmployee"; ev_args = [] };
    ]
  in
  let report =
    Refinement.check ~impl
      ~abs:
        { Refinement.community = abs_sys.Troll.community;
          id = Troll.ident "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = conc_sys.Troll.community;
          id = Troll.ident "EMPL_IMPL" (key "eve") }
      ~alphabet ~depth:4 ()
  in
  Format.printf "%a@." Refinement.pp_report report;

  (* A deliberately broken implementation: mapping IncreaseSalary to an
     event that doubles instead of adding is caught immediately. *)
  print_endline "-- detecting a broken refinement --";
  let broken = {|
object class EMPLOYEE_BAD
  identification
    EmpName: string;
    EmpBirth: date;
  template
    attributes
      Salary: integer;
    events
      birth HireEmployee;
      death FireEmployee;
      IncreaseSalary(integer);
    valuation
      variables n: integer;
      [HireEmployee] Salary = 0;
      [IncreaseSalary(n)] Salary = Salary + n + 1;
end object class EMPLOYEE_BAD;
|}
  in
  let bad_sys = load_exn broken in
  create_exn bad_sys ~cls:"EMPLOYEE_BAD" ~key:(key "eve") ();
  let abs_sys = load_exn Paper_specs.employee_abstract in
  create_exn abs_sys ~cls:"EMPLOYEE" ~key:(key "eve") ();
  let impl_bad =
    Implementation.make ~abs_class:"EMPLOYEE" ~conc_class:"EMPLOYEE_BAD" ()
  in
  let report =
    Refinement.check ~impl:impl_bad
      ~abs:
        { Refinement.community = abs_sys.Troll.community;
          id = Troll.ident "EMPLOYEE" (key "eve") }
      ~conc:
        { Refinement.community = bad_sys.Troll.community;
          id = Troll.ident "EMPLOYEE_BAD" (key "eve") }
      ~alphabet ~depth:3 ()
  in
  match report.Refinement.verdict with
  | Ok () -> print_endline "  (unexpected: broken refinement passed)"
  | Error cx ->
      Format.printf "  counterexample: %a@." Refinement.pp_counterexample cx
