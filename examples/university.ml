(** A modular university information system: the §6 three-level schema
    architecture with two communicating modules, plus the supporting
    machinery around the core — syntactical reuse of a library template,
    Graphviz export of the inheritance schema, and liveness auditing.

    Run with [dune exec examples/university.exe]. *)

(* The Registry module owns students and courses and exports a reporting
   interface; the Teaching module imports it and enrols students through
   the exported classes. *)
let registry_module = {|
module Registry
  conceptual schema
    object class STUDENT
      identification sid: string;
      template
        attributes Credits: integer; Enrolled: set(string);
        events
          birth matriculate;
          death graduate;
          enrol(string);
          complete(string, integer);
        valuation
          variables c: string; n: integer;
          [matriculate] Credits = 0;
          [matriculate] Enrolled = {};
          [enrol(c)] Enrolled = insert(c, Enrolled);
          [complete(c, n)] Enrolled = remove(c, Enrolled);
          [complete(c, n)] Credits = Credits + n;
        permissions
          variables c: string; n: integer;
          { not(c in Enrolled) } enrol(c);
          { c in Enrolled } complete(c, n);
          { Credits >= 180 and isempty(Enrolled) } graduate;
    end object class STUDENT;
    interface class TRANSCRIPT
      encapsulating STUDENT;
      attributes sid: string; Credits: integer;
    end interface class TRANSCRIPT;
  external schema records = (STUDENT, TRANSCRIPT);
end module Registry;
|}

let teaching_module = {|
module Teaching
  import Registry.records;
  conceptual schema
    object class COURSE
      identification code: string;
      template
        attributes Takers: set(|STUDENT|);
        events
          birth offer;
          death cancel;
          admit(|STUDENT|);
          pass(|STUDENT|, integer);
        valuation
          variables S: |STUDENT|; n: integer;
          [offer] Takers = {};
          [admit(S)] Takers = insert(S, Takers);
          [pass(S, n)] Takers = remove(S, Takers);
        permissions
          variables S: |STUDENT|; n: integer;
          { not(S in Takers) } admit(S);
          { S in Takers } pass(S, n);
        calling
          variables S: |STUDENT|; n: integer;
          admit(S) >> STUDENT(S).enrol(self.code);
          pass(S, n) >> STUDENT(S).complete(self.code, n);
    end object class COURSE;
  external schema catalogue = (COURSE);
end module Teaching;
|}

let show_result label = function
  | Ok (_ : Engine.outcome) -> Printf.printf "  %-40s accepted\n" label
  | Error r ->
      Printf.printf "  %-40s REJECTED (%s)\n" label
        (Runtime_error.reason_to_string r)

let () =
  print_endline "== university: modules, reuse, dot, liveness ==";

  (* ---- society validation and linking -------------------------- *)
  let spec =
    match Troll.parse_spec (registry_module ^ teaching_module) with
    | Ok s -> s
    | Error e -> failwith (Troll.Error.to_string e)
  in
  let society, _rest = Society.of_spec spec in
  (match Society.validate society with
  | [] -> print_endline "society validates: imports and exports line up"
  | ds -> List.iter print_endline ds);

  let config =
    { Community.default_config with Community.record_history = true }
  in
  let community, views =
    match Society.compile ~config society with
    | Ok (c, v) -> (c, v)
    | Error ds -> failwith (String.concat "; " ds)
  in

  (* ---- cross-module event calling ------------------------------ *)
  print_endline "\n-- cross-module calling (Teaching drives Registry) --";
  let ada = Ident.make "STUDENT" (Value.String "s-ada") in
  let fp = Ident.make "COURSE" (Value.String "FP101") in
  ignore (Engine.create community ~cls:"STUDENT" ~key:ada.Ident.key ());
  ignore (Engine.create community ~cls:"COURSE" ~key:fp.Ident.key ());
  show_result "FP101 admits ada"
    (Engine.fire community (Event.make fp "admit" [ Ident.to_value ada ]));
  show_result "FP101 admits ada again"
    (Engine.fire community (Event.make fp "admit" [ Ident.to_value ada ]));
  let o = Community.object_exn community ada in
  Printf.printf "  ada.Enrolled = %s\n"
    (Value.to_string (Eval.read_attr community o "Enrolled" []));
  show_result "graduation (too few credits)"
    (Engine.destroy community ~id:ada ());
  show_result "FP101 passes ada with 180 credits"
    (Engine.fire community
       (Event.make fp "pass" [ Ident.to_value ada; Value.Int 180 ]));
  Printf.printf "  ada.Credits  = %s\n"
    (Value.to_string (Eval.read_attr community o "Credits" []));

  (* ---- the exported view ---------------------------------------- *)
  (match List.assoc_opt "Registry.records" views with
  | Some [ transcript ] ->
      print_endline "\n-- Registry.records exports TRANSCRIPT --";
      List.iter
        (fun row -> Printf.printf "  %s\n" (Value.to_string row))
        (Interface.tabulate transcript)
  | _ -> print_endline "  (no view exported?)");

  (* ---- liveness audit ------------------------------------------- *)
  print_endline "\n-- liveness audit over ada's recorded history --";
  List.iter
    (fun goal ->
      match Liveness.audit_string community o goal with
      | Ok v -> Format.printf "  %a@." Liveness.pp_verdict v
      | Error e -> Printf.printf "  %s\n" e)
    [ "Credits >= 180"; "card(Enrolled) <= 1"; "Credits >= 500" ];
  show_result "graduation (requirements met)"
    (Engine.destroy community ~id:ada ());

  (* ---- syntactical reuse ---------------------------------------- *)
  print_endline "\n-- reuse: instantiating STUDENT as a generic template --";
  let renaming =
    Reuse.renaming
      ~classes:[ ("STUDENT", "APPRENTICE") ]
      ~events:[ ("matriculate", "sign_on"); ("graduate", "certify") ]
      ()
  in
  (match
     Reuse.instantiate_string renaming
       {|
object class STUDENT
  identification sid: string;
  template
    attributes Credits: integer;
    events birth matriculate; death graduate; award(integer);
    valuation
      variables n: integer;
      [matriculate] Credits = 0;
      [award(n)] Credits = Credits + n;
end object class STUDENT;
|}
   with
  | Ok inst ->
      Printf.printf "  instance checks: %B\n" (Typecheck.errors inst = []);
      print_endline "  instantiated declaration:";
      print_endline
        (String.concat "\n"
           (List.map (fun l -> "    " ^ l)
              (String.split_on_char '\n'
                 (String.concat "\n"
                    (List.filteri (fun i _ -> i < 4)
                       (String.split_on_char '\n'
                          (Pretty.spec_to_string inst)))))))
  | Error e -> print_endline e);

  (* ---- graphviz export ------------------------------------------ *)
  print_endline "\n-- inheritance schema as dot --";
  let templates =
    Hashtbl.fold (fun _ tpl acc -> tpl :: acc) community.Community.templates []
  in
  print_string (Dot.of_schema (Dot.schema_of_templates templates))
