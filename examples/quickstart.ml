(** Quickstart: load the paper's DEPT specification (§4), animate its
    life cycle, and watch temporal permissions at work.

    Run with [dune exec examples/quickstart.exe]. *)

(* bridges from the removed string-error wrappers to the
   session/engine API *)
let load_exn src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.system s
  | Error e -> failwith (Troll.Error.to_string e)

let fire sys target name args =
  Engine.fire sys.Troll.community (Event.make target name args)

let create_exn sys ~cls ~key ?event ?(args = []) () =
  match Engine.step sys.Troll.community (Step.Create { cls; key; event; args })
  with
  | Ok _ -> ()
  | Error r -> failwith (Runtime_error.reason_to_string r)

let attr_exn sys target name =
  match Troll.Session.attr (Troll.Session.of_system sys) target name with
  | Ok v -> v
  | Error e -> failwith (Troll.Error.to_string e)

let extension (sys : Troll.system) cls =
  Ident.Set.elements (Community.extension sys.Troll.community cls)

let print_result label = function
  | Ok (_ : Engine.outcome) -> Printf.printf "  %-34s accepted\n" label
  | Error r ->
      Printf.printf "  %-34s REJECTED (%s)\n" label
        (Runtime_error.reason_to_string r)

let () =
  print_endline "== TROLL quickstart: the DEPT class from the paper ==";
  let sys = load_exn Paper_specs.dept in

  (* Create a person and a department. *)
  let alice = Troll.ident "PERSON" (Value.String "alice") in
  let sales = Troll.ident "DEPT" (Value.String "sales") in
  create_exn sys ~cls:"PERSON" ~key:(Value.String "alice") ();
  let date = Option.get (Date_adt.of_string "1991-03-21") in
  create_exn sys ~cls:"DEPT" ~key:(Value.String "sales")
    ~args:[ Value.Date date ] ();
  Printf.printf "created %s and %s\n" (Ident.to_string alice)
    (Ident.to_string sales);

  (* Permissions: fire(P) needs sometime(after(hire(P))). *)
  print_endline "\n-- temporal permissions --";
  print_result "fire alice (never hired)"
    (fire sys sales "fire" [ Ident.to_value alice ]);
  print_result "hire alice"
    (fire sys sales "hire" [ Ident.to_value alice ]);
  print_result "hire alice again (in employees)"
    (fire sys sales "hire" [ Ident.to_value alice ]);
  print_result "closure (alice not yet fired)"
    (fire sys sales "closure" []);
  print_result "fire alice"
    (fire sys sales "fire" [ Ident.to_value alice ]);
  print_result "closure (all employees fired)"
    (fire sys sales "closure" []);

  (* Observations. *)
  print_endline "\n-- observations --";
  let rnd = Troll.ident "DEPT" (Value.String "rnd") in
  create_exn sys ~cls:"DEPT" ~key:(Value.String "rnd")
    ~args:[ Value.Date date ] ();
  (match fire sys rnd "new_manager" [ Ident.to_value alice ] with
  | Ok outcome ->
      print_endline
        "new_manager called become_manager synchronously (event calling):";
      List.iter
        (fun step ->
          List.iter
            (fun e -> Printf.printf "    %s\n" (Event.to_string e))
            step)
        outcome.Engine.committed
  | Error r -> Printf.printf "unexpected: %s\n" (Runtime_error.reason_to_string r));
  Printf.printf "rnd.manager     = %s\n"
    (Value.to_string (attr_exn sys rnd "manager"));
  Printf.printf "rnd.est_date    = %s\n"
    (Value.to_string (attr_exn sys rnd "est_date"));
  Printf.printf "PERSON extension = %s\n"
    (String.concat ", " (List.map Ident.to_string (extension sys "PERSON")));

  (* The same session as an animation script. *)
  print_endline "\n-- script interface --";
  let sys2 = load_exn Paper_specs.dept in
  let outcome =
    Script.run_string sys2
      {|
        new PERSON("bob") born;
        new DEPT("hr") establishment(d"1990-01-01");
        DEPT("hr").hire(PERSON("bob"));
        expect reject DEPT("hr").closure;
        DEPT("hr").fire(PERSON("bob"));
        DEPT("hr").closure;
        show DEPT("hr").employees;
      |}
  in
  List.iter (fun l -> Printf.printf "  %s\n" l) outcome.Script.output;
  match outcome.Script.failed with
  | None -> print_endline "script finished"
  | Some e -> Printf.printf "script FAILED: %s\n" e
