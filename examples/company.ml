(** The company information system: phases ([MANAGER] as a role of
    [PERSON]), the complex object [TheCompany], global interactions and
    the interface classes of §5.1 — projection, derivation, selection
    and join views.

    Run with [dune exec examples/company.exe]. *)

(* bridges from the removed string-error wrappers to the
   session/engine API *)
let load_exn src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.system s
  | Error e -> failwith (Troll.Error.to_string e)

let fire sys target name args =
  Engine.fire sys.Troll.community (Event.make target name args)

let create_exn sys ~cls ~key ?event ?(args = []) () =
  match Engine.step sys.Troll.community (Step.Create { cls; key; event; args })
  with
  | Ok _ -> ()
  | Error r -> failwith (Runtime_error.reason_to_string r)

let attr_exn sys target name =
  match Troll.Session.attr (Troll.Session.of_system sys) target name with
  | Ok v -> v
  | Error e -> failwith (Troll.Error.to_string e)

let view_exn (sys : Troll.system) name =
  match List.assoc_opt name sys.Troll.views with
  | Some v -> v
  | None -> failwith (Printf.sprintf "no interface class %s" name)

let show label v = Printf.printf "  %-28s = %s\n" label (Value.to_string v)

let person_key name birth =
  Value.Tuple [ ("Name", Value.String name); ("Birthdate", Value.Date birth) ]

let () =
  print_endline "== company: phases, aggregation, interfaces ==";
  let sys = load_exn Paper_specs.company in
  let money u = Value.Money (Money.of_units u) in

  (* People. *)
  let d0 = Option.get (Date_adt.of_string "1960-05-01") in
  let alice = Troll.ident "PERSON" (person_key "alice" d0) in
  let bob = Troll.ident "PERSON" (person_key "bob" d0) in
  create_exn sys ~cls:"PERSON" ~key:alice.Ident.key
    ~args:[ money 6000; Value.String "Research" ] ();
  create_exn sys ~cls:"PERSON" ~key:bob.Ident.key
    ~args:[ money 3000; Value.String "Sales" ] ();

  (* Departments and the company as a complex object. *)
  let research = Troll.ident "DEPT" (Value.String "Research") in
  let sales = Troll.ident "DEPT" (Value.String "Sales") in
  create_exn sys ~cls:"DEPT" ~key:research.Ident.key ();
  create_exn sys ~cls:"DEPT" ~key:sales.Ident.key ();
  let company = Ident.singleton "TheCompany" in
  create_exn sys ~cls:"TheCompany" ~key:company.Ident.key
    ~args:[ Value.Date (Option.get (Date_adt.of_string "1991-01-02")) ] ();
  List.iter
    (fun d -> ignore (fire sys company "add_dept" [ Ident.to_value d ]))
    [ research; sales ];
  show "TheCompany.depts" (attr_exn sys company "depts");

  ignore (fire sys research "hire" [ Ident.to_value alice ]);
  ignore (fire sys sales "hire" [ Ident.to_value bob ]);

  (* Promotion: new_manager calls become_manager, which births the
     MANAGER phase of the same identity. *)
  print_endline "\n-- phases (roles) --";
  (match fire sys research "new_manager" [ Ident.to_value alice ] with
  | Ok o ->
      Printf.printf "  promotion step: %s\n"
        (String.concat ", "
           (List.map Event.to_string (List.concat o.Engine.committed)))
  | Error r -> Printf.printf "  REJECTED: %s\n" (Runtime_error.reason_to_string r));
  let alice_mgr = Ident.as_class "MANAGER" alice in
  let car = Troll.ident "CAR" (Value.String "BS-XY-12") in
  create_exn sys ~cls:"CAR" ~key:car.Ident.key ();
  ignore (fire sys alice_mgr "assign_official_car" [ Ident.to_value car ]);
  show "alice(as MANAGER).OfficialCar" (attr_exn sys alice_mgr "OfficialCar");
  (* inherited attribute through the phase *)
  show "alice(as MANAGER).Salary" (attr_exn sys alice_mgr "Salary");

  (* bob earns too little to become a manager: the MANAGER constraint
     [Salary >= 5.000] rejects the phase birth, and atomicity rolls the
     whole promotion back. *)
  (match fire sys sales "new_manager" [ Ident.to_value bob ] with
  | Ok _ -> print_endline "  bob promoted (unexpected!)"
  | Error r ->
      Printf.printf "  bob's promotion rejected: %s\n"
        (Runtime_error.reason_to_string r));
  show "Sales.manager (unchanged)" (attr_exn sys sales "manager");

  (* Interfaces. *)
  print_endline "\n-- interfaces (views) --";
  let sal = view_exn sys "SAL_EMPLOYEE" in
  let inst_alice = [ ("PERSON", alice) ] in
  (match Interface.attr sal inst_alice "Salary" [] with
  | Ok v -> show "SAL_EMPLOYEE(alice).Salary" v
  | Error r -> print_endline (Runtime_error.reason_to_string r));
  (* the view hides Dept *)
  (match Interface.attr sal inst_alice "Dept" [] with
  | Ok _ -> print_endline "  view leaked a hidden attribute!"
  | Error _ ->
      print_endline "  SAL_EMPLOYEE(alice).Dept      hidden (projection)");

  let sal2 = view_exn sys "SAL_EMPLOYEE2" in
  (match Interface.attr sal2 inst_alice "CurrentIncomePerYear" [] with
  | Ok v -> show "yearly income (derived *13.5)" v
  | Error r -> print_endline (Runtime_error.reason_to_string r));
  (match Interface.fire sal2 inst_alice "IncreaseSalary" [] with
  | Ok _ -> show "Salary after IncreaseSalary" (attr_exn sys alice "Salary")
  | Error r -> print_endline (Runtime_error.reason_to_string r));

  let research_view = view_exn sys "RESEARCH_EMPLOYEE" in
  Printf.printf "  RESEARCH_EMPLOYEE extension: %d member(s)\n"
    (List.length (Interface.extension research_view));
  List.iter
    (fun row -> Printf.printf "    %s\n" (Value.to_string row))
    (Interface.tabulate research_view);

  print_endline "\n-- join view WORKS_FOR --";
  let works_for = view_exn sys "WORKS_FOR" in
  List.iter
    (fun row -> Printf.printf "    %s\n" (Value.to_string row))
    (Interface.tabulate works_for)
