(** A lending library: enumerations, state-based and temporal
    permissions, synchronised event calling across objects, and an
    *active* clock whose autonomy is bounded by a permission.

    Run with [dune exec examples/library_system.exe]. *)

(* bridges from the removed string-error wrappers to the
   session/engine API *)
let load_exn src =
  match Troll.Session.load src with
  | Ok s -> Troll.Session.system s
  | Error e -> failwith (Troll.Error.to_string e)

let fire sys target name args =
  Engine.fire sys.Troll.community (Event.make target name args)

let create_exn sys ~cls ~key ?event ?(args = []) () =
  match Engine.step sys.Troll.community (Step.Create { cls; key; event; args })
  with
  | Ok _ -> ()
  | Error r -> failwith (Runtime_error.reason_to_string r)

let attr_exn sys target name =
  match Troll.Session.attr (Troll.Session.of_system sys) target name with
  | Ok v -> v
  | Error e -> failwith (Troll.Error.to_string e)

let eval sys src =
  Result.map_error Troll.Error.to_string
    (Troll.Session.eval (Troll.Session.of_system sys) src)

let run_active ?(fuel = 1000) (sys : Troll.system) =
  Engine.run_active sys.Troll.community ~fuel

let result label = function
  | Ok (_ : Engine.outcome) -> Printf.printf "  %-38s accepted\n" label
  | Error r ->
      Printf.printf "  %-38s REJECTED (%s)\n" label
        (Runtime_error.reason_to_string r)

let () =
  print_endline "== library: active objects and synchronisation ==";
  let sys = load_exn Paper_specs.library in

  (* Stock and membership. *)
  let sicp = Troll.ident "BOOK" (Value.String "0-262-01153-0") in
  let tao = Troll.ident "BOOK" (Value.String "0-201-03801-3") in
  create_exn sys ~cls:"BOOK" ~key:sicp.Ident.key
    ~args:[ Value.String "SICP"; Value.Enum ("Genre", "science") ] ();
  create_exn sys ~cls:"BOOK" ~key:tao.Ident.key
    ~args:[ Value.String "TAOCP"; Value.Enum ("Genre", "science") ] ();
  let kim = Troll.ident "MEMBER" (Value.String "kim") in
  create_exn sys ~cls:"MEMBER" ~key:kim.Ident.key ();

  print_endline "\n-- borrowing synchronises MEMBER and BOOK --";
  result "kim borrows SICP"
    (fire sys kim "borrow" [ Ident.to_value sicp ]);
  Printf.printf "  SICP.OnLoan   = %s\n"
    (Value.to_string (attr_exn sys sicp "OnLoan"));
  Printf.printf "  kim.Borrowed  = %s\n"
    (Value.to_string (attr_exn sys kim "Borrowed"));

  (* The calling rule makes the permission of the called event gate the
     whole step: lending an on-loan book is impossible through any
     member. *)
  let lee = Troll.ident "MEMBER" (Value.String "lee") in
  create_exn sys ~cls:"MEMBER" ~key:lee.Ident.key ();
  result "lee borrows SICP (already on loan)"
    (fire sys lee "borrow" [ Ident.to_value sicp ]);
  result "lee borrows TAOCP"
    (fire sys lee "borrow" [ Ident.to_value tao ]);

  print_endline "\n-- permissions on leaving --";
  result "lee leaves with a book out" (Engine.destroy sys.Troll.community ~id:lee ());
  ignore (fire sys lee "fine" [ Value.Money (Money.of_cents 250) ]);
  result "lee returns TAOCP"
    (fire sys lee "bring_back" [ Ident.to_value tao ]);
  result "lee leaves with fines unpaid" (Engine.destroy sys.Troll.community ~id:lee ());
  result "lee pays too much"
    (fire sys lee "pay" [ Value.Money (Money.of_cents 300) ]);
  result "lee pays 2.50"
    (fire sys lee "pay" [ Value.Money (Money.of_cents 250) ]);
  result "lee leaves" (Engine.destroy sys.Troll.community ~id:lee ());

  print_endline "\n-- the active clock --";
  let clock = Ident.singleton "LibraryClock" in
  create_exn sys ~cls:"LibraryClock" ~key:clock.Ident.key
    ~args:[ Value.Date (Option.get (Date_adt.of_string "1991-06-01")) ] ();
  (* tick is active but its permission allows at most 7 ticks between
     audits: the engine runs it to quiescence. *)
  let fired = run_active sys ~fuel:100 in
  Printf.printf "  active run fired %d tick(s)\n" (List.length fired);
  Printf.printf "  Today = %s\n"
    (Value.to_string (attr_exn sys clock "Today"));
  ignore (fire sys clock "audit" []);
  let fired = run_active sys ~fuel:100 in
  Printf.printf "  after audit, %d more tick(s)\n" (List.length fired);
  Printf.printf "  Today = %s\n"
    (Value.to_string (attr_exn sys clock "Today"));

  print_endline "\n-- genre query over the extension --";
  (match eval sys "BOOK" with
  | Ok v -> Printf.printf "  extension BOOK = %s\n" (Value.to_string v)
  | Error e -> print_endline e);
  match
    eval sys "count(BOOK)"
  with
  | Ok v -> Printf.printf "  count(BOOK)    = %s\n" (Value.to_string v)
  | Error e -> print_endline e
