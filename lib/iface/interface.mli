(** Object (class) interfaces — §5.1.

    An interface gives a *restricted access path* to existing objects:
    projected attributes/events, derived attributes (query algebra over
    the encapsulated state), derived events (calling into base events),
    [selection where] sub-populations, and join views over several
    encapsulated classes.  Interfaces never copy objects — internal
    identity is preserved, and every manipulation executes the
    encapsulated object's own events under its own permissions; what
    the view adds is authorization. *)

type t

(** An instance of the view: one living object per encapsulated class,
    keyed by the declared instance variable (or the class name when no
    variable was declared). *)
type instance = (string * Ident.t) list

val make : Community.t -> Ast.iface_decl -> t
val name : t -> string

val attr_names : t -> string list
(** Visible attributes, in declaration order. *)

val event_names : t -> string list

val member : t -> instance -> bool
(** Alive and passing the selection. *)

val extension : t -> instance list
(** Current extension: the (Cartesian, for join views) combinations of
    living instances passing the selection. *)

val attr :
  t -> instance -> string -> Value.t list ->
  (Value.t, Runtime_error.reason) result
(** Read a view attribute (projection or derivation); unlisted
    attributes are invisible, non-members unobservable. *)

val fire :
  t -> instance -> string -> Value.t list -> Engine.step_result
(** Fire a view event: projections execute the base event directly;
    derived events expand their calling rule as an atomic transaction.
    Creation through the view is allowed (birth events on unborn
    instances); unlisted events are rejected. *)

val enabled : t -> instance -> string -> Value.t list -> bool
(** Would firing this view event be accepted right now?  Probed via
    {!Txn.probe} (always rolled back); the community is untouched. *)

val enabled_events : t -> instance -> string list
(** The parameterless view events currently enabled on an instance. *)

val tabulate : t -> Algebra.rel
(** The view as a relation: one tuple per instance over the
    parameterless visible attributes. *)
