(** Object (class) interfaces — §5.1.

    An interface class gives a *restricted access path* to existing
    objects: it projects attributes and events, derives new attributes
    (query algebra over the encapsulated state) and new events (calling
    into base events), selects a sub-population ([selection where …])
    and — with several encapsulated classes — forms join views such as
    the paper's [WORKS_FOR].

    Interfaces never copy objects: internal identity is preserved, and
    every manipulation routed through a view executes the encapsulated
    object's own events under its own permissions.  What the view adds
    is authorization: only the listed attributes can be observed and
    only the listed events can be fired. *)

open Runtime_error

type t = {
  decl : Ast.iface_decl;
  community : Community.t;
}

(** An instance of the view: one living object per encapsulated class,
    keyed by the declared instance variable (or the class name when no
    variable was declared). *)
type instance = (string * Ident.t) list

let make community (decl : Ast.iface_decl) : t = { decl; community }

let name t = t.decl.Ast.if_name

let enc_bindings t : (string * string) list =
  (* (binding name, class) *)
  List.map
    (fun (cls, var) -> ((match var with Some v -> v | None -> cls), cls))
    t.decl.Ast.if_encapsulating

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

let env_of_instance (inst : instance) : Env.t =
  Env.of_list (List.map (fun (n, id) -> (n, Ident.to_value id)) inst)

(** The object playing the role of [self] inside the view's rules: the
    instance of the first encapsulated class. *)
let self_object t (inst : instance) : Obj_state.t option =
  match inst with
  | (_, id) :: _ -> Community.find_object t.community id
  | [] -> None

let selection_holds t (inst : instance) : bool =
  match t.decl.Ast.if_selection with
  | None -> true
  | Some sel -> (
      let env = env_of_instance inst in
      match
        Eval.formula_state t.community ~env ~self:(self_object t inst) sel
      with
      | b -> b
      | exception Error (Eval_error _) -> false)

(** Is the instance currently a member of the view (alive and selected)? *)
let member t (inst : instance) : bool =
  List.for_all
    (fun (_, id) -> Community.living t.community id <> None)
    inst
  && selection_holds t inst

(** Enumerate the current extension of the view: the (Cartesian, for
    join views) combinations of living instances that pass the
    selection. *)
let extension t : instance list =
  let bindings = enc_bindings t in
  let rec combos = function
    | [] -> [ [] ]
    | (bname, cls) :: rest ->
        let members = Ident.Set.elements (Community.extension t.community cls) in
        List.concat_map
          (fun id -> List.map (fun tail -> (bname, id) :: tail) (combos rest))
          members
  in
  List.filter (selection_holds t) (combos bindings)

(* ------------------------------------------------------------------ *)
(* Attribute access                                                    *)
(* ------------------------------------------------------------------ *)

let find_attr_decl t aname =
  List.find_opt
    (fun (a : Ast.iface_attr) -> String.equal a.Ast.ia_name aname)
    t.decl.Ast.if_attributes

let find_event_decl t ename =
  List.find_opt
    (fun (e : Ast.iface_event) -> String.equal e.Ast.ie_name ename)
    t.decl.Ast.if_events

let find_derivation t aname =
  List.find_opt
    (fun (d : Ast.derivation_rule) -> String.equal d.Ast.d_attr aname)
    t.decl.Ast.if_derivation

(** Read a view attribute of an instance.  Projected attributes read the
    encapsulated object's attribute; derived ones evaluate their
    derivation rule.  Attributes not listed in the interface are
    invisible (authorization). *)
let attr t (inst : instance) (aname : string) (args : Value.t list) :
    (Value.t, reason) result =
  match find_attr_decl t aname with
  | None ->
      Error (Unknown_attribute (name t, aname))
  | Some decl -> (
      if not (member t inst) then Error (Not_alive (snd (List.hd inst)))
      else
        let env = env_of_instance inst in
        let self = self_object t inst in
        try
          if decl.Ast.ia_derived then
            match find_derivation t aname with
            | None -> Error (Eval_error (aname ^ ": no derivation rule"))
            | Some rule ->
                let env =
                  List.fold_left2
                    (fun env p v -> Env.bind p v env)
                    env rule.Ast.d_params args
                in
                Ok (Eval.expr t.community ~env ~self rule.Ast.d_rhs)
          else
            (* projection: the encapsulated object that declares it *)
            let rec search : instance -> (Value.t, reason) result = function
              | [] -> Error (Unknown_attribute (name t, aname))
              | (_, id) :: rest -> (
                  match Community.find_object t.community id with
                  | None -> search rest
                  | Some o -> (
                      match Eval.read_attr t.community o aname args with
                      | v -> Ok v
                      | exception Error (Unknown_attribute _) -> search rest))
            in
            search inst
        with
        | Error r -> Error r
        | Invalid_argument _ ->
            Error (Eval_error (aname ^ ": wrong number of arguments")))

(** All visible attribute names of the view. *)
let attr_names t =
  List.map (fun (a : Ast.iface_attr) -> a.Ast.ia_name) t.decl.Ast.if_attributes

let event_names t =
  List.map (fun (e : Ast.iface_event) -> e.Ast.ie_name) t.decl.Ast.if_events

(* ------------------------------------------------------------------ *)
(* Event firing                                                        *)
(* ------------------------------------------------------------------ *)

(** Fire a view event on an instance.

    - projected events execute the base object's event directly (its
      permissions still apply);
    - derived events expand their calling rule: the called base events
      run as one atomic transaction, so
      [IncreaseSalary >> ChangeSalary(Salary * 1.1)] performs the
      restricted update the view offers.

    Events not listed in the interface are rejected. *)
let fire t (inst : instance) (ename : string) (args : Value.t list) :
    Engine.step_result =
  match find_event_decl t ename with
  | None -> Error (Unknown_event (name t, ename))
  | Some decl -> (
      (* Creation through the view is allowed: when the instance is not
         (fully) alive yet, the membership check is deferred to the
         engine, which only accepts birth events on unborn objects. *)
      let all_alive =
        List.for_all
          (fun (_, id) -> Community.living t.community id <> None)
          inst
      in
      if all_alive && not (selection_holds t inst) then
        Error
          (match inst with
          | (_, id) :: _ -> Not_alive id
          | [] -> Eval_error "empty view instance")
      else
        let env = env_of_instance inst in
        let self = self_object t inst in
        if not decl.Ast.ie_derived then
          (* projection: fire on the encapsulated object declaring it *)
          let rec search : instance -> Engine.step_result = function
            | [] -> Error (Unknown_event (name t, ename))
            | (_, id) :: rest -> (
                let tpl = Community.find_template t.community id.Ident.cls in
                match
                  Option.bind tpl (fun tp -> Template.find_event tp ename)
                with
                | Some _ -> Engine.fire t.community (Event.make id ename args)
                | None -> (
                    (* event may live higher in the inheritance chain *)
                    match
                      Engine.locate_event t.community
                        (Event.make id ename args)
                    with
                    | ev -> Engine.fire t.community ev
                    | exception Error (Unknown_event _) -> search rest))
          in
          search inst
        else
          (* derived: expand the calling rule *)
          let rules =
            List.filter
              (fun (r : Ast.calling_rule) ->
                String.equal r.Ast.i_caller.Ast.ev_name ename)
              t.decl.Ast.if_calling
          in
          match rules with
          | [] -> Error (Eval_error (ename ^ ": no calling rule"))
          | rule :: _ -> (
              (* bind the caller's formal parameters *)
              let vars =
                List.concat_map (fun (ns, _) -> ns) t.decl.Ast.if_variables
              in
              match
                Eval.match_args t.community ~env ~self ~vars
                  rule.Ast.i_caller.Ast.ev_args args
              with
              | None ->
                  Error (Eval_error (ename ^ ": arguments do not match"))
              | Some env -> (
                  let guard_ok =
                    match rule.Ast.i_guard with
                    | None -> true
                    | Some g -> Eval.formula_state t.community ~env ~self g
                  in
                  if not guard_ok then
                    Error
                      (Permission_denied
                         ( Event.make
                             (match inst with
                             | (_, id) :: _ -> id
                             | [] -> Ident.singleton (name t))
                             ename args,
                           "view calling guard" ))
                  else
                    try
                      let events =
                        List.map
                          (fun term ->
                            Engine.resolve_called t.community ~env ~self term)
                          rule.Ast.i_called
                      in
                      Engine.fire_seq t.community events
                    with Error r -> Error r)))

(* ------------------------------------------------------------------ *)
(* Enabledness                                                         *)
(* ------------------------------------------------------------------ *)

(** Would firing this view event be accepted right now?  The attempt
    runs for real — authorization, selection, calling guards, the base
    objects' own permissions — inside {!Txn.probe}, which always rolls
    back, so the community is untouched. *)
let enabled t (inst : instance) (ename : string) (args : Value.t list) : bool
    =
  match Txn.probe t.community (fun () -> fire t inst ename args) with
  | Ok _ -> true
  | Error _ -> false

(** The parameterless view events (projected and derived) currently
    enabled on an instance — what an animator would offer as next steps
    through this access path. *)
let enabled_events t (inst : instance) : string list =
  List.filter_map
    (fun (e : Ast.iface_event) ->
      if e.Ast.ie_params = [] && enabled t inst e.Ast.ie_name [] then
        Some e.Ast.ie_name
      else None)
    t.decl.Ast.if_events

(* ------------------------------------------------------------------ *)
(* Tabulation (view as a relation)                                     *)
(* ------------------------------------------------------------------ *)

(** Materialise the view as a relation: one tuple per instance with all
    parameterless visible attributes — the shape a salary-report
    subsystem would consume from [SAL_EMPLOYEE]. *)
let tabulate t : Algebra.rel =
  let attrs =
    List.filter
      (fun (a : Ast.iface_attr) -> a.Ast.ia_params = [])
      t.decl.Ast.if_attributes
  in
  let row inst =
    Value.Tuple
      (List.map
         (fun (a : Ast.iface_attr) ->
           ( a.Ast.ia_name,
             match attr t inst a.Ast.ia_name [] with
             | Ok v -> v
             | Error _ -> Value.Undefined ))
         attrs)
  in
  List.sort_uniq Value.compare (List.map row (extension t))
