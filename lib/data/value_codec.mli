(** A compact, total, self-delimiting text codec for {!Value.t}, used by
    the persistence layer.  [decode (encode v) = Ok v] for every
    canonical value (property-tested). *)

val encode : Value.t -> string

val encode_buf : Buffer.t -> Value.t -> unit
(** [encode] into an existing buffer — the allocation-free form the
    WAL's commit path streams through. *)

val add_int : Buffer.t -> int -> unit
(** Append an integer's decimal digits without the [string_of_int]
    allocation (shared by the effect-log and WAL framers). *)

val decode : string -> (Value.t, string) result
(** Rejects malformed and trailing input. *)
