(** A compact, total, self-delimiting text codec for {!Value.t}, used by
    the persistence layer.  The encoding is prefix-based:

    {v
      B0 B1          booleans          U        undefined
      I<n>;          integer           D<n>;    date (days)
      M<n>;          money (cents)     S<k>:…   string of k bytes
      E<k>:…<k>:…    enum (name, constant)
      J<k>:…<v>      surrogate (class name, key value)
      *<n>[v…]       set               L<n>[v…]  list
      P<n>[k v …]    map               T<n>[<k>:name v …]  tuple
    v}

    [decode (encode v) = Ok v] for every canonical value (checked by a
    qcheck property). *)

(* Direct buffer writes throughout — this codec sits on the WAL's
   commit path (one call per touched attribute), where [Printf]'s
   format interpretation dominated the encoding cost (E16). *)

(* [string_of_int] allocates a fresh string per call; writing the
   digits directly is measurable with dozens of integers per record. *)
let rec add_pos buf n =
  if n >= 10 then add_pos buf (n / 10);
  Buffer.add_char buf (Char.unsafe_chr (Char.code '0' + (n mod 10)))

let add_int buf n =
  if n < 0 then Buffer.add_string buf (string_of_int n) (* min_int-safe *)
  else add_pos buf n

let add_tagged_int buf tag n =
  Buffer.add_char buf tag;
  add_int buf n;
  Buffer.add_char buf ';'

let add_counted buf s =
  add_int buf (String.length s);
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_sized buf tag n =
  Buffer.add_char buf tag;
  add_int buf n;
  Buffer.add_char buf '['

let rec encode_buf buf (v : Value.t) =
  match v with
  | Value.Bool false -> Buffer.add_string buf "B0"
  | Value.Bool true -> Buffer.add_string buf "B1"
  | Value.Int i -> add_tagged_int buf 'I' i
  | Value.Date d -> add_tagged_int buf 'D' d
  | Value.Money m -> add_tagged_int buf 'M' m
  | Value.String s ->
      Buffer.add_char buf 'S';
      add_counted buf s
  | Value.Enum (name, c) ->
      Buffer.add_char buf 'E';
      add_counted buf name;
      add_counted buf c
  | Value.Id (cls, key) ->
      Buffer.add_char buf 'J';
      add_counted buf cls;
      encode_buf buf key
  | Value.Set xs ->
      add_sized buf '*' (List.length xs);
      List.iter (encode_buf buf) xs;
      Buffer.add_char buf ']'
  | Value.List xs ->
      add_sized buf 'L' (List.length xs);
      List.iter (encode_buf buf) xs;
      Buffer.add_char buf ']'
  | Value.Map kvs ->
      add_sized buf 'P' (List.length kvs);
      List.iter
        (fun (k, v) ->
          encode_buf buf k;
          encode_buf buf v)
        kvs;
      Buffer.add_char buf ']'
  | Value.Tuple fields ->
      add_sized buf 'T' (List.length fields);
      List.iter
        (fun (n, v) ->
          add_counted buf n;
          encode_buf buf v)
        fields;
      Buffer.add_char buf ']'
  | Value.Undefined -> Buffer.add_char buf 'U'

let encode (v : Value.t) : string =
  let buf = Buffer.create 64 in
  encode_buf buf v;
  Buffer.contents buf

exception Bad of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> raise (Bad "unexpected end of input")

let expect c ch =
  let got = next c in
  if got <> ch then raise (Bad (Printf.sprintf "expected %c, got %c" ch got))

(* read digits (optionally signed) up to a terminator character, which is
   consumed *)
let read_int_until c term =
  let start = c.pos in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  while match peek c with Some ('0' .. '9') -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  let n =
    try int_of_string (String.sub c.s start (c.pos - start))
    with _ -> raise (Bad "malformed integer")
  in
  expect c term;
  n

let read_sized_string c =
  let k = read_int_until c ':' in
  if c.pos + k > String.length c.s then raise (Bad "truncated string");
  let s = String.sub c.s c.pos k in
  c.pos <- c.pos + k;
  s

let rec decode_cursor c : Value.t =
  match next c with
  | 'B' -> (
      match next c with
      | '0' -> Value.Bool false
      | '1' -> Value.Bool true
      | ch -> raise (Bad (Printf.sprintf "bad boolean %c" ch)))
  | 'I' -> Value.Int (read_int_until c ';')
  | 'D' -> Value.Date (read_int_until c ';')
  | 'M' -> Value.Money (read_int_until c ';')
  | 'S' -> Value.String (read_sized_string c)
  | 'E' ->
      let name = read_sized_string c in
      let const = read_sized_string c in
      Value.Enum (name, const)
  | 'J' ->
      let cls = read_sized_string c in
      Value.Id (cls, decode_cursor c)
  | '*' ->
      let n = read_int_until c '[' in
      let xs = List.init n (fun _ -> decode_cursor c) in
      expect c ']';
      Value.set xs
  | 'L' ->
      let n = read_int_until c '[' in
      let xs = List.init n (fun _ -> decode_cursor c) in
      expect c ']';
      Value.List xs
  | 'P' ->
      let n = read_int_until c '[' in
      let kvs =
        List.init n (fun _ ->
            let k = decode_cursor c in
            let v = decode_cursor c in
            (k, v))
      in
      expect c ']';
      Value.map kvs
  | 'T' ->
      let n = read_int_until c '[' in
      let fields =
        List.init n (fun _ ->
            let name = read_sized_string c in
            (name, decode_cursor c))
      in
      expect c ']';
      Value.Tuple fields
  | 'U' -> Value.Undefined
  | ch -> raise (Bad (Printf.sprintf "unknown tag %c" ch))

let decode (s : string) : (Value.t, string) result =
  let c = { s; pos = 0 } in
  match decode_cursor c with
  | v ->
      if c.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing input at %d" c.pos)
  | exception Bad m -> Error m
