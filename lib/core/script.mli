(** The animation script language (used by [trollc run] / [trollc repl]
    and the examples).

    {v
      new DEPT("sales") establishment(d"1991-03-21");
      DEPT("sales").hire(PERSON("alice"));
      seq DEPT("s").fire(P); DEPT("s").closure end;   -- atomic transaction
      par DEPT("a").raise(10); DEPT("b").raise(5) end; -- independent steps
      show DEPT("sales").employees;
      view SAL_EMPLOYEE;                               -- tabulate a view
      expect reject DEPT("sales").closure;
      active 10;                                       -- run active events
    v} *)

type cmd =
  | C_new of string * Ast.expr * (string * Ast.expr list) option
      (** class, key expression, optional birth event with arguments *)
  | C_fire of Ast.event_term
  | C_seq of Ast.event_term list  (** atomic transaction *)
  | C_par of Ast.event_term list
      (** independent steps, committed through the speculative parallel
          engine ({!Engine.step_batch_par}); bit-identical to firing
          them one by one, the script fails on the first rejection *)
  | C_show of Ast.expr
  | C_trace of Ast.obj_ref
      (** recorded life cycle (needs [record_history]) *)
  | C_goal of Ast.obj_ref * Ast.formula
      (** liveness audit: [goal CLASS(key): formula] *)
  | C_view of string
  | C_active of int
  | C_expect_reject of cmd

type script = cmd list

val parse : string -> (script, string) result

type outcome = {
  output : string list;
  failed : string option;  (** the first failure, if any *)
}

val run : Troll.system -> script -> outcome
(** Execute; stops at the first failure ([expect reject] inverts). *)

val run_string : Troll.system -> string -> outcome
