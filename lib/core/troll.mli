(** TROLL — the umbrella API.

    The pipeline is
    {v source —parse→ Ast.spec —check→ diagnostics
              —compile→ Community (+ views) —animate→ Engine v}
    and every lower layer stays accessible ([Parser], [Typecheck],
    [Compile], [Engine], [Community], [Interface], [Refinement],
    [Schema], [Society], [Persist], …).

    The primary API is {!Session}: a handle over a loaded system with
    structured errors ({!Error.t}) and the single animation entry point
    {!step} (every firing shape is a {!Step.t}).  A session is either a
    single engine or — following the paper's §6 modularization into
    societies connected only by event import — a set of shard cells
    routed through a partition map ({!Session.load_sharded}). *)

type system = {
  spec : Ast.spec;
  community : Community.t;
  views : (string * Interface.t) list;  (** interface classes by name *)
  diagnostics : Check_error.t list;  (** warnings from checking *)
}

(** {1 Structured errors} *)

module Error : sig
  (** Everything the facade can report, with structure preserved:
      parse errors keep their source location, checking errors their
      diagnostic, engine rejections their {!Runtime_error.reason}. *)

  type t =
    | Parse of Parse_error.t  (** syntax error, with location *)
    | Check of Check_error.t  (** static checking error, with location *)
    | Link of string list  (** society linking diagnostics *)
    | Runtime of Runtime_error.reason  (** rejection or engine error *)
    | Io of string  (** file system trouble *)

  val code : t -> string
  (** Stable machine-facing code: ["parse_error"], ["check_error"],
      ["link_error"], ["io_error"], or the {!Runtime_error.code} of the
      wrapped reason (["permission_denied"], …). *)

  val message : t -> string
  (** The human-facing text, without location prefix. *)

  val loc : t -> Loc.t option
  (** Source location, when the error carries one. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** {1 Sessions}

    A session is the unit of service: one loaded specification, its
    community and views, animated through {!step}.  The society server
    ([lib/server]) holds exactly one session and decodes every wire
    request against it. *)

module Session : sig
  type t

  val load : ?config:Community.config -> string -> (t, Error.t) result
  (** Parse, check and compile; single objects with parameterless birth
      events are instantiated, interface classes become ready views, and
      module declarations are linked through the society layer.
      Checking errors abort; warnings are carried in
      [diagnostics]. *)

  val load_file : ?config:Community.config -> string -> (t, Error.t) result

  val of_system : system -> t
  (** Wrap an already-loaded system (e.g. one built by hand through
      [Compile]). *)

  val load_sharded :
    ?config:Community.config ->
    shards:int ->
    ?map:string ->
    string ->
    (t, Error.t) result
  (** In-process sharded session: one full engine cell per shard, every
      step routed through {!Shard.coordinate} (cross-shard steps commit
      by two-phase protocol on {!Txn} savepoints).  [map] is a partition
      map in {!Shard.to_string}'s wire form, validated against the
      specification; by default {!Shard.auto} spreads the class groups
      round-robin.  Each single object is instantiated only in its
      owning cell.  Partition errors report as [Error.Link]. *)

  val load_shard_cell :
    ?config:Community.config ->
    map:string ->
    shard:int ->
    string ->
    (t, Error.t) result
  (** One shard's slice as a plain single-engine session: the full
      schema, but single objects instantiated only when shard [shard]
      owns them under [map].  This is what each shard server process of
      [trollc shard] runs behind the NDJSON protocol. *)

  val system : t -> system
  val community : t -> Community.t
  (** For a sharded session this is the facade community: the schema
      without live instances (shard cells hold those). *)

  val spec : t -> Ast.spec
  val diagnostics : t -> Check_error.t list

  val shard_map : t -> Shard.map option
  (** [None] for a single-engine session. *)

  val shard_count : t -> int
  (** [1] for a single-engine session. *)

  (** {2 Animation} *)

  val step : t -> Step.t -> Engine.step_result
  (** Execute one step request as one atomic transaction — the single
      entry point behind [fire]/[fire_seq]/[fire_sync]/[create]. *)

  val attr : t -> Ident.t -> string -> (Value.t, Error.t) result
  (** Observe an attribute (derived attributes are computed; inherited
      ones delegate to base aspects). *)

  val eval : t -> string -> (Value.t, Error.t) result
  (** Evaluate an expression in global scope, e.g.
      [{|DEPT("d").manager|}].  Unsupported on a sharded session
      (global scope spans shards). *)

  val extension : t -> string -> Ident.t list
  (** Living members of a class (union over the shards when sharded). *)

  val run_active : ?fuel:int -> t -> Event.t list
  (** Fire enabled active events to quiescence; returns them in order
      (shard order when sharded — active events never cross shards, by
      the partition invariant). *)

  val save : t -> string
  (** {!Persist.save} of the session's state.  For a sharded session
      the disjoint per-shard dumps are merged; since dumps are ordered
      by object identity, the result is bit-identical to the dump of an
      equivalent single-engine session. *)

  val view : t -> string -> Interface.t option
  val views : t -> (string * Interface.t) list
end

val parse_spec : string -> (Ast.spec, Error.t) result
(** Parse a specification source text, keeping the error location. *)

val step : Session.t -> Step.t -> Engine.step_result
(** = {!Session.step}. *)

(** {1 Front end} *)

val check : Ast.spec -> Check_error.t list
(** Static diagnostics (errors and warnings). *)

val pretty : Ast.spec -> string
(** Canonical concrete syntax (re-parseable). *)

val ident : string -> Value.t -> Ident.t
