(** TROLL — the umbrella API.

    The pipeline is
    {v source —parse→ Ast.spec —check→ diagnostics
              —compile→ Community (+ views) —animate→ Engine v}
    and every lower layer stays accessible ([Parser], [Typecheck],
    [Compile], [Engine], [Community], [Interface], [Refinement],
    [Schema], [Society], [Persist], …).

    The primary API is {!Session}: a handle over a loaded system with
    structured errors ({!Error.t}) and the single animation entry point
    {!step} (every firing shape is a {!Step.t}).  The string-error
    functions at the end of this interface are deprecated wrappers kept
    for source compatibility. *)

type system = {
  spec : Ast.spec;
  community : Community.t;
  views : (string * Interface.t) list;  (** interface classes by name *)
  diagnostics : Check_error.t list;  (** warnings from checking *)
}

(** {1 Structured errors} *)

module Error : sig
  (** Everything the facade can report, with structure preserved:
      parse errors keep their source location, checking errors their
      diagnostic, engine rejections their {!Runtime_error.reason}. *)

  type t =
    | Parse of Parse_error.t  (** syntax error, with location *)
    | Check of Check_error.t  (** static checking error, with location *)
    | Link of string list  (** society linking diagnostics *)
    | Runtime of Runtime_error.reason  (** rejection or engine error *)
    | Io of string  (** file system trouble *)

  val code : t -> string
  (** Stable machine-facing code: ["parse_error"], ["check_error"],
      ["link_error"], ["io_error"], or the {!Runtime_error.code} of the
      wrapped reason (["permission_denied"], …). *)

  val message : t -> string
  (** The human-facing text, without location prefix. *)

  val loc : t -> Loc.t option
  (** Source location, when the error carries one. *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

(** {1 Sessions}

    A session is the unit of service: one loaded specification, its
    community and views, animated through {!step}.  The society server
    ([lib/server]) holds exactly one session and decodes every wire
    request against it. *)

module Session : sig
  type t

  val load : ?config:Community.config -> string -> (t, Error.t) result
  (** Parse, check and compile; single objects with parameterless birth
      events are instantiated, interface classes become ready views, and
      module declarations are linked through the society layer.
      Checking errors abort; warnings are carried in
      [diagnostics]. *)

  val load_file : ?config:Community.config -> string -> (t, Error.t) result

  val of_system : system -> t
  (** Wrap an already-loaded system (e.g. one built by hand through
      [Compile]). *)

  val system : t -> system
  val community : t -> Community.t
  val spec : t -> Ast.spec
  val diagnostics : t -> Check_error.t list

  (** {2 Animation} *)

  val step : t -> Step.t -> Engine.step_result
  (** Execute one step request as one atomic transaction — the single
      entry point behind [fire]/[fire_seq]/[fire_sync]/[create]. *)

  val attr : t -> Ident.t -> string -> (Value.t, Error.t) result
  (** Observe an attribute (derived attributes are computed; inherited
      ones delegate to base aspects). *)

  val eval : t -> string -> (Value.t, Error.t) result
  (** Evaluate an expression in global scope, e.g.
      [{|DEPT("d").manager|}]. *)

  val extension : t -> string -> Ident.t list
  (** Living members of a class. *)

  val run_active : ?fuel:int -> t -> Event.t list
  (** Fire enabled active events to quiescence; returns them in
      order. *)

  val view : t -> string -> Interface.t option
  val views : t -> (string * Interface.t) list
end

val parse_spec : string -> (Ast.spec, Error.t) result
(** Parse a specification source text, keeping the error location. *)

val step : Session.t -> Step.t -> Engine.step_result
(** = {!Session.step}. *)

(** {1 Front end} *)

val check : Ast.spec -> Check_error.t list
(** Static diagnostics (errors and warnings). *)

val pretty : Ast.spec -> string
(** Canonical concrete syntax (re-parseable). *)

val ident : string -> Value.t -> Ident.t

(** {1 Deprecated string-error wrappers}

    Source-compatible forerunners of the {!Session} API; each flattens
    its structured error to a string.  New code should use {!Session}
    and {!step}. *)

val parse : string -> (Ast.spec, string) result
(** @deprecated Use {!parse_spec}. *)

val load : ?config:Community.config -> string -> (system, string) result
(** @deprecated Use {!Session.load}. *)

val load_exn : ?config:Community.config -> string -> system
val load_file : ?config:Community.config -> string -> (system, string) result
(** @deprecated Use {!Session.load_file}. *)

val create :
  system ->
  cls:string ->
  key:Value.t ->
  ?event:string ->
  ?args:Value.t list ->
  unit ->
  Engine.step_result
(** Fire the class's birth event ([event] defaults to the unique one).
    Delegates to {!step} with a [Step.Create]. *)

val create_exn :
  system ->
  cls:string ->
  key:Value.t ->
  ?event:string ->
  ?args:Value.t list ->
  unit ->
  unit

val fire : system -> Ident.t -> string -> Value.t list -> Engine.step_result
(** Fire one event, with its synchronous calling closure; rejected steps
    leave the community unchanged.  Delegates to {!step}. *)

val fire_seq : system -> Event.t list -> Engine.step_result
(** An atomic transaction of events.  Delegates to {!step}. *)

val fire_sync : system -> Event.t list -> Engine.step_result
(** Several events in one synchronous step (event sharing).  Delegates
    to {!step}. *)

val attr : system -> Ident.t -> string -> (Value.t, string) result
(** @deprecated Use {!Session.attr}. *)

val attr_exn : system -> Ident.t -> string -> Value.t

val eval : system -> string -> (Value.t, string) result
(** @deprecated Use {!Session.eval}. *)

val extension : system -> string -> Ident.t list
(** Living members of a class. *)

val run_active : ?fuel:int -> system -> Event.t list
(** Fire enabled active events to quiescence; returns them in order. *)

val view : system -> string -> Interface.t option
val view_exn : system -> string -> Interface.t
