(** TROLL — the umbrella API.

    A reproduction of the language and system of Saake, Jungclaus &
    Ehrich, "Object-Oriented Specification and Stepwise Refinement"
    (1991).  The pipeline is

    {v  source —parse→ Ast.spec —check→ diagnostics
               —compile→ Community (+ interface views) —animate→ Engine v}

    Quickstart (the session API):
    {[
      match Troll.Session.load source with
      | Error e -> prerr_endline (Troll.Error.to_string e)
      | Ok s ->
          let dept = Troll.ident "DEPT" (Value.String "sales") in
          (match
             Troll.step s
               (Step.Create
                  { cls = "DEPT"; key = Value.String "sales";
                    event = None; args = [ Value.Date 7779 ] })
           with
          | Ok _ -> ...
          | Error reason -> ...)
    ]}

    The lower layers remain fully accessible: [Parser], [Typecheck],
    [Compile], [Engine], [Community], [Interface], [Refinement],
    [Schema], [Society], … *)

type system = {
  spec : Ast.spec;
  community : Community.t;
  views : (string * Interface.t) list;  (** interface classes by name *)
  diagnostics : Check_error.t list;  (** warnings from checking *)
}

(* ------------------------------------------------------------------ *)
(* Structured errors                                                   *)
(* ------------------------------------------------------------------ *)

module Error = struct
  type t =
    | Parse of Parse_error.t
    | Check of Check_error.t
    | Link of string list
    | Runtime of Runtime_error.reason
    | Io of string

  let code = function
    | Parse _ -> "parse_error"
    | Check _ -> "check_error"
    | Link _ -> "link_error"
    | Runtime r -> Runtime_error.code r
    | Io _ -> "io_error"

  let message = function
    | Parse e -> e.Parse_error.message
    | Check e -> e.Check_error.message
    | Link diags -> String.concat "; " diags
    | Runtime r -> Runtime_error.reason_to_string r
    | Io m -> m

  let loc = function
    | Parse e -> Some e.Parse_error.loc
    | Check e -> Some e.Check_error.loc
    | Link _ | Runtime _ | Io _ -> None

  let pp ppf = function
    | Parse e -> Parse_error.pp ppf e
    | Check e -> Check_error.pp ppf e
    | Link diags ->
        Format.fprintf ppf "link error: %s" (String.concat "; " diags)
    | Runtime r -> Runtime_error.pp_reason ppf r
    | Io m -> Format.fprintf ppf "io error: %s" m

  let to_string e = Format.asprintf "%a" pp e
end

(* ------------------------------------------------------------------ *)
(* Front end                                                           *)
(* ------------------------------------------------------------------ *)

(** Parse a specification source text, keeping the error structure. *)
let parse_spec (source : string) : (Ast.spec, Error.t) result =
  match Parser.spec source with
  | Ok spec -> Ok spec
  | Error e -> Error (Error.Parse e)

(** Statically check a parsed specification. *)
let check = Typecheck.check

(** Pretty-print a specification back to concrete syntax. *)
let pretty = Pretty.spec_to_string

(** Parse, check and compile a specification; single objects are
    instantiated, interface classes become ready-to-use views.  Checking
    errors abort; warnings are carried in the result. *)
let load_system ?(config = Community.default_config) (source : string) :
    (system, Error.t) result =
  match parse_spec source with
  | Error e -> Error e
  | Ok spec -> (
      let diagnostics = check spec in
      match List.filter Check_error.is_error diagnostics with
      | e :: _ -> Error (Error.Check e)
      | [] -> (
          (* modules link through the society layer; plain declarations
             compile directly *)
          let society, rest = Society.of_spec spec in
          let linked =
            if society.Society.modules = [] then Ok rest
            else
              match Society.link society with
              | Ok module_decls -> Ok (module_decls @ rest)
              | Error diags -> Error (Error.Link diags)
          in
          match linked with
          | Error e -> Error e
          | Ok decls -> (
              match Compile.spec ~config decls with
              | Error e ->
                  (* a compile error is a late static diagnostic *)
                  Error
                    (Error.Check
                       (Check_error.error "%s" (Compile.error_to_string e)))
              | Ok (community, iface_decls) -> (
                  match Compile.instantiate_singles community with
                  | Error r -> Error (Error.Runtime r)
                  | Ok () ->
                      let views =
                        List.map
                          (fun (d : Ast.iface_decl) ->
                            (d.Ast.if_name, Interface.make community d))
                          iface_decls
                      in
                      Ok { spec; community; views; diagnostics }))))

let read_file_res path : (string, Error.t) result =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let source = really_input_string ic n in
    close_in ic;
    source
  with
  | source -> Ok source
  | exception Sys_error m -> Error (Error.Io m)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type t = { sys : system }

  let of_system sys = { sys }

  let load ?config source = Result.map of_system (load_system ?config source)

  let load_file ?config path =
    match read_file_res path with
    | Error e -> Error e
    | Ok source -> load ?config source

  let system s = s.sys
  let community s = s.sys.community
  let spec s = s.sys.spec
  let diagnostics s = s.sys.diagnostics

  let step s req = Engine.step s.sys.community req

  let attr s target name : (Value.t, Error.t) result =
    match Community.find_object s.sys.community target with
    | None -> Error (Error.Runtime (Runtime_error.Unknown_object target))
    | Some o -> (
        match Eval.read_attr s.sys.community o name [] with
        | v -> Ok v
        | exception Runtime_error.Error r -> Error (Error.Runtime r))

  let eval s (source : string) : (Value.t, Error.t) result =
    match Parser.expr_of_string source with
    | Error e -> Error (Error.Parse e)
    | Ok e -> (
        match Eval.expr s.sys.community ~env:Env.empty ~self:None e with
        | v -> Ok v
        | exception Runtime_error.Error r -> Error (Error.Runtime r))

  let extension s cls =
    Ident.Set.elements (Community.extension s.sys.community cls)

  let run_active ?(fuel = 1000) s = Engine.run_active s.sys.community ~fuel
  let view s name = List.assoc_opt name s.sys.views
  let views s = s.sys.views
end

let step = Session.step

(* ------------------------------------------------------------------ *)
(* Animation                                                           *)
(* ------------------------------------------------------------------ *)

let ident cls key = Ident.make cls key

let create sys ~cls ~key ?event ?(args = []) () =
  Engine.step sys.community (Step.Create { cls; key; event; args })

let create_exn sys ~cls ~key ?event ?args () =
  match create sys ~cls ~key ?event ?args () with
  | Ok _ -> ()
  | Error r -> failwith (Runtime_error.reason_to_string r)

(** Fire one event (with its synchronous calling closure). *)
let fire sys target name args =
  Engine.step sys.community (Step.Fire (Event.make target name args))

(** Fire a sequence of events as one atomic transaction. *)
let fire_seq sys events = Engine.step sys.community (Step.Seq events)

(** Fire several events simultaneously (event sharing). *)
let fire_sync sys events = Engine.step sys.community (Step.Sync events)

(** Living members of a class. *)
let extension sys cls =
  Ident.Set.elements (Community.extension sys.community cls)

(** Run enabled active events to quiescence (bounded by [fuel]). *)
let run_active ?(fuel = 1000) sys = Engine.run_active sys.community ~fuel

(** Look up an interface view by name. *)
let view sys name = List.assoc_opt name sys.views

let view_exn sys name =
  match view sys name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "no interface class %s" name)

(* ------------------------------------------------------------------ *)
(* Deprecated string-error wrappers                                    *)
(* ------------------------------------------------------------------ *)

let parse source = Result.map_error Error.to_string (parse_spec source)

let load ?config source =
  Result.map_error Error.to_string (load_system ?config source)

let load_exn ?config source =
  match load ?config source with Ok s -> s | Error e -> failwith e

let load_file ?config path =
  match read_file_res path with
  | Error e -> Error (Error.to_string e)
  | Ok source -> load ?config source

let attr sys target name : (Value.t, string) result =
  Result.map_error Error.to_string
    (Session.attr (Session.of_system sys) target name)

let attr_exn sys target name =
  match attr sys target name with Ok v -> v | Error e -> failwith e

let eval sys source : (Value.t, string) result =
  Result.map_error Error.to_string
    (Session.eval (Session.of_system sys) source)
