(** TROLL — the umbrella API.

    A reproduction of the language and system of Saake, Jungclaus &
    Ehrich, "Object-Oriented Specification and Stepwise Refinement"
    (1991).  The pipeline is

    {v  source —parse→ Ast.spec —check→ diagnostics
               —compile→ Community (+ interface views) —animate→ Engine v}

    Quickstart (the session API):
    {[
      match Troll.Session.load source with
      | Error e -> prerr_endline (Troll.Error.to_string e)
      | Ok s ->
          let dept = Troll.ident "DEPT" (Value.String "sales") in
          (match
             Troll.step s
               (Step.Create
                  { cls = "DEPT"; key = Value.String "sales";
                    event = None; args = [ Value.Date 7779 ] })
           with
          | Ok _ -> ...
          | Error reason -> ...)
    ]}

    The lower layers remain fully accessible: [Parser], [Typecheck],
    [Compile], [Engine], [Community], [Interface], [Refinement],
    [Schema], [Society], … *)

type system = {
  spec : Ast.spec;
  community : Community.t;
  views : (string * Interface.t) list;  (** interface classes by name *)
  diagnostics : Check_error.t list;  (** warnings from checking *)
}

(* ------------------------------------------------------------------ *)
(* Structured errors                                                   *)
(* ------------------------------------------------------------------ *)

module Error = struct
  type t =
    | Parse of Parse_error.t
    | Check of Check_error.t
    | Link of string list
    | Runtime of Runtime_error.reason
    | Io of string

  let code = function
    | Parse _ -> "parse_error"
    | Check _ -> "check_error"
    | Link _ -> "link_error"
    | Runtime r -> Runtime_error.code r
    | Io _ -> "io_error"

  let message = function
    | Parse e -> e.Parse_error.message
    | Check e -> e.Check_error.message
    | Link diags -> String.concat "; " diags
    | Runtime r -> Runtime_error.reason_to_string r
    | Io m -> m

  let loc = function
    | Parse e -> Some e.Parse_error.loc
    | Check e -> Some e.Check_error.loc
    | Link _ | Runtime _ | Io _ -> None

  let pp ppf = function
    | Parse e -> Parse_error.pp ppf e
    | Check e -> Check_error.pp ppf e
    | Link diags ->
        Format.fprintf ppf "link error: %s" (String.concat "; " diags)
    | Runtime r -> Runtime_error.pp_reason ppf r
    | Io m -> Format.fprintf ppf "io error: %s" m

  let to_string e = Format.asprintf "%a" pp e
end

(* ------------------------------------------------------------------ *)
(* Front end                                                           *)
(* ------------------------------------------------------------------ *)

(** Parse a specification source text, keeping the error structure. *)
let parse_spec (source : string) : (Ast.spec, Error.t) result =
  match Parser.spec source with
  | Ok spec -> Ok spec
  | Error e -> Error (Error.Parse e)

(** Statically check a parsed specification. *)
let check = Typecheck.check

(** Pretty-print a specification back to concrete syntax. *)
let pretty = Pretty.spec_to_string

(** Parse, check and compile a specification; single objects are
    instantiated ([singles = false] defers that to the shard loaders),
    interface classes become ready-to-use views.  Checking errors abort;
    warnings are carried in the result. *)
let load_system ?(config = Community.default_config) ?(singles = true)
    (source : string) : (system, Error.t) result =
  match parse_spec source with
  | Error e -> Error e
  | Ok spec -> (
      let diagnostics = check spec in
      match List.filter Check_error.is_error diagnostics with
      | e :: _ -> Error (Error.Check e)
      | [] -> (
          (* modules link through the society layer; plain declarations
             compile directly *)
          let society, rest = Society.of_spec spec in
          let linked =
            if society.Society.modules = [] then Ok rest
            else
              match Society.link society with
              | Ok module_decls -> Ok (module_decls @ rest)
              | Error diags -> Error (Error.Link diags)
          in
          match linked with
          | Error e -> Error e
          | Ok decls -> (
              match Compile.spec ~config decls with
              | Error e ->
                  (* a compile error is a late static diagnostic *)
                  Error
                    (Error.Check
                       (Check_error.error "%s" (Compile.error_to_string e)))
              | Ok (community, iface_decls) -> (
                  let instantiated =
                    if singles then Compile.instantiate_singles community
                    else Ok ()
                  in
                  match instantiated with
                  | Error r -> Error (Error.Runtime r)
                  | Ok () ->
                      let views =
                        List.map
                          (fun (d : Ast.iface_decl) ->
                            (d.Ast.if_name, Interface.make community d))
                          iface_decls
                      in
                      Ok { spec; community; views; diagnostics }))))

let read_file_res path : (string, Error.t) result =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let source = really_input_string ic n in
    close_in ic;
    source
  with
  | source -> Ok source
  | exception Sys_error m -> Error (Error.Io m)

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

module Session = struct
  (** A sharded session keeps one full engine cell per shard plus the
      facade system ([sys]): the facade's community holds no live
      instance state of its own — it is the schema the partition map is
      validated against and the scratch space {!save} merges the
      per-shard dumps into. *)
  type backend =
    | Single
    | Sharded of {
        map : Shard.map;
        cells : system array;
        parts : Shard.participant array;
      }

  type t = { sys : system; backend : backend }

  let of_system sys = { sys; backend = Single }

  let load ?config source =
    Result.map of_system (load_system ?config source)

  let load_file ?config path =
    match read_file_res path with
    | Error e -> Error e
    | Ok source -> load ?config source

  let partition_error m = Error.Link [ "partition: " ^ m ]

  (** Instantiate exactly the single objects shard [k] owns. *)
  let instantiate_owned map k community =
    Compile.instantiate_singles community ~only:(fun name ->
        Shard.owner_ident map (Ident.singleton name) = Ok k)

  let load_sharded ?config ~shards ?map source =
    match load_system ?config source with
    | Error e -> Error e
    | Ok facade -> (
        let map_r =
          match map with
          | None -> Ok (Shard.auto facade.community ~shards)
          | Some s -> Shard.of_string facade.community s
        in
        match map_r with
        | Error m -> Error (partition_error m)
        | Ok map -> (
            let n = Shard.shards map in
            let rec build k acc =
              if k = n then Ok (List.rev acc)
              else
                match load_system ?config ~singles:false source with
                | Error e -> Error e
                | Ok cell -> (
                    match instantiate_owned map k cell.community with
                    | Error r -> Error (Error.Runtime r)
                    | Ok () -> build (k + 1) (cell :: acc))
            in
            match build 0 [] with
            | Error e -> Error e
            | Ok cells ->
                let cells = Array.of_list cells in
                let parts =
                  Array.map
                    (fun cell -> Shard.local_participant cell.community)
                    cells
                in
                Ok { sys = facade; backend = Sharded { map; cells; parts } }))

  let load_shard_cell ?config ~map:map_s ~shard source =
    match load_system ?config ~singles:false source with
    | Error e -> Error e
    | Ok sys -> (
        match Shard.of_string sys.community map_s with
        | Error m -> Error (partition_error m)
        | Ok map ->
            if shard < 0 || shard >= Shard.shards map then
              Error (Error.Runtime (Runtime_error.Unknown_shard shard))
            else (
              match instantiate_owned map shard sys.community with
              | Error r -> Error (Error.Runtime r)
              | Ok () -> Ok { sys; backend = Single }))

  let system s = s.sys
  let community s = s.sys.community
  let spec s = s.sys.spec
  let diagnostics s = s.sys.diagnostics

  let shard_map s =
    match s.backend with Single -> None | Sharded { map; _ } -> Some map

  let shard_count s =
    match s.backend with
    | Single -> 1
    | Sharded { map; _ } -> Shard.shards map

  let step s req =
    match s.backend with
    | Single -> Engine.step s.sys.community req
    | Sharded { map; parts; _ } -> Shard.coordinate map parts req

  let attr_in community target name : (Value.t, Error.t) result =
    match Community.find_object community target with
    | None -> Error (Error.Runtime (Runtime_error.Unknown_object target))
    | Some o -> (
        match Eval.read_attr community o name [] with
        | v -> Ok v
        | exception Runtime_error.Error r -> Error (Error.Runtime r))

  let attr s target name : (Value.t, Error.t) result =
    match s.backend with
    | Single -> attr_in s.sys.community target name
    | Sharded { map; cells; _ } -> (
        match Shard.owner_ident map target with
        | Error r -> Error (Error.Runtime r)
        | Ok k when k < 0 || k >= Array.length cells ->
            Error (Error.Runtime (Runtime_error.Unknown_shard k))
        | Ok k -> attr_in cells.(k).community target name)

  let eval s (source : string) : (Value.t, Error.t) result =
    match s.backend with
    | Sharded _ ->
        Error
          (Error.Runtime
             (Runtime_error.Unsupported
                "global evaluation is not available on a sharded session"))
    | Single -> (
        match Parser.expr_of_string source with
        | Error e -> Error (Error.Parse e)
        | Ok e -> (
            match Eval.expr s.sys.community ~env:Env.empty ~self:None e with
            | v -> Ok v
            | exception Runtime_error.Error r -> Error (Error.Runtime r)))

  let extension s cls =
    match s.backend with
    | Single -> Ident.Set.elements (Community.extension s.sys.community cls)
    | Sharded { cells; _ } ->
        Ident.Set.elements
          (Array.fold_left
             (fun acc cell ->
               Ident.Set.union acc (Community.extension cell.community cls))
             Ident.Set.empty cells)

  let run_active ?(fuel = 1000) s =
    match s.backend with
    | Single -> Engine.run_active s.sys.community ~fuel
    | Sharded { cells; _ } ->
        Array.to_list cells
        |> List.concat_map (fun cell ->
               Engine.run_active cell.community ~fuel)

  let save s =
    match s.backend with
    | Single -> Persist.save s.sys.community
    | Sharded { cells; _ } ->
        (* per-shard extensions are disjoint, and {!Persist.save} orders
           objects by identity, so the merged dump is independent of the
           partition *)
        let facade = s.sys.community in
        Community.reset_instance_state facade;
        Array.iter
          (fun cell ->
            match
              Persist.load ~reset:false facade (Persist.save cell.community)
            with
            | Ok () -> ()
            | Error m -> invalid_arg ("Session.save: shard merge: " ^ m))
          cells;
        Persist.save facade

  let view s name = List.assoc_opt name s.sys.views
  let views s = s.sys.views
end

let step = Session.step

(* ------------------------------------------------------------------ *)
(* Identities                                                          *)
(* ------------------------------------------------------------------ *)

let ident cls key = Ident.make cls key
