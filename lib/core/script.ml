(** A small animation script language for driving loaded specifications
    from the CLI and the examples.

    {v
      new DEPT("sales") establishment(d"1991-03-21");
      DEPT("sales").hire(PERSON("alice"));
      seq DEPT("s").fire(P); DEPT("s").closure end;   -- atomic transaction
      par DEPT("a").raise(10); DEPT("b").raise(5) end; -- independent steps
      show DEPT("sales").employees;
      view SAL_EMPLOYEE;                               -- tabulate a view
      expect reject DEPT("sales").closure;
      active 10;                                       -- run active events
    v}

    Statements are separated by [';'].  [expect reject] asserts that the
    following statement is rejected by the specification (and fails the
    script if it is accepted).  [par] fires each event as its own step
    through the speculative parallel commit engine
    ({!Engine.step_batch_par}, pool sized by [--jobs]); the results are
    bit-identical to firing them one by one. *)

type cmd =
  | C_new of string * Ast.expr * (string * Ast.expr list) option
      (** class, key expression, optional birth event with args *)
  | C_fire of Ast.event_term
  | C_seq of Ast.event_term list  (** atomic transaction *)
  | C_par of Ast.event_term list
      (** independent steps, speculatively committed in parallel *)
  | C_show of Ast.expr
  | C_trace of Ast.obj_ref  (** recorded life cycle of an object *)
  | C_goal of Ast.obj_ref * Ast.formula  (** liveness audit of a goal *)
  | C_view of string
  | C_active of int
  | C_expect_reject of cmd

type script = cmd list

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse (source : string) : (script, string) result =
  match Lexer.tokenize source with
  | exception Lexer.Error e ->
      Error (Parse_error.to_string (Parse_error.of_lexer_error e))
  | toks -> (
      let st = { Parser.toks = Array.of_list toks; pos = 0 } in
      let tok () = (st.Parser.toks.(st.Parser.pos)).Lexer.tok in
      let advance () =
        if st.Parser.pos < Array.length st.Parser.toks - 1 then
          st.Parser.pos <- st.Parser.pos + 1
      in
      let expect_semi () =
        match tok () with
        | Token.SEMI -> advance ()
        | t ->
            Parse_error.raise_at Loc.dummy "expected ';' (found %s)"
              (Token.to_string t)
      in
      let rec command () : cmd =
        match tok () with
        | Token.IDENT "new" ->
            advance ();
            let cls =
              match tok () with
              | Token.IDENT c ->
                  advance ();
                  c
              | t ->
                  Parse_error.raise_at Loc.dummy "expected class name, got %s"
                    (Token.to_string t)
            in
            (match tok () with
            | Token.LPAREN -> ()
            | t ->
                Parse_error.raise_at Loc.dummy "expected '(', got %s"
                  (Token.to_string t));
            advance ();
            let key = Parser.parse_expr st in
            (match tok () with
            | Token.RPAREN -> advance ()
            | t ->
                Parse_error.raise_at Loc.dummy "expected ')', got %s"
                  (Token.to_string t));
            let birth =
              match tok () with
              | Token.IDENT ev ->
                  advance ();
                  let args =
                    match tok () with
                    | Token.LPAREN -> Parser.parse_paren_args st
                    | _ -> []
                  in
                  Some (ev, args)
              | _ -> None
            in
            C_new (cls, key, birth)
        | Token.IDENT "show" ->
            advance ();
            C_show (Parser.parse_expr st)
        | Token.IDENT "goal" -> (
            advance ();
            let e = Parser.parse_expr st in
            let r =
              match e.Ast.e with
              | Ast.E_apply (cls, [ key ]) -> Ast.OR_instance (cls, key)
              | Ast.E_var name -> Ast.OR_name name
              | _ ->
                  Parse_error.raise_at Loc.dummy
                    "goal expects CLASS(key) or an object name"
            in
            match tok () with
            | Token.COLON ->
                advance ();
                C_goal (r, Parser.parse_formula st)
            | t ->
                Parse_error.raise_at Loc.dummy
                  "expected ':' before the goal formula, got %s"
                  (Token.to_string t))
        | Token.IDENT "trace" -> (
            advance ();
            let e = Parser.parse_expr st in
            match e.Ast.e with
            | Ast.E_apply (cls, [ key ]) ->
                C_trace (Ast.OR_instance (cls, key))
            | Ast.E_var name -> C_trace (Ast.OR_name name)
            | _ ->
                Parse_error.raise_at Loc.dummy
                  "trace expects CLASS(key) or an object name")
        | Token.KW "view" | Token.IDENT "view" ->
            advance ();
            let name =
              match tok () with
              | Token.IDENT n ->
                  advance ();
                  n
              | t ->
                  Parse_error.raise_at Loc.dummy "expected view name, got %s"
                    (Token.to_string t)
            in
            C_view name
        | Token.KW "active" | Token.IDENT "active" -> (
            advance ();
            match tok () with
            | Token.INT n ->
                advance ();
                C_active n
            | _ -> C_active 1000)
        | Token.IDENT "expect" ->
            advance ();
            (match tok () with
            | Token.IDENT "reject" -> advance ()
            | t ->
                Parse_error.raise_at Loc.dummy
                  "expected 'reject' after 'expect', got %s"
                  (Token.to_string t));
            C_expect_reject (command ())
        | Token.IDENT (("seq" | "par") as kw) ->
            advance ();
            let rec events acc =
              let ev = Parser.parse_event_term st in
              match tok () with
              | Token.SEMI -> (
                  advance ();
                  match tok () with
                  | Token.KW "end" ->
                      advance ();
                      List.rev (ev :: acc)
                  | _ -> events (ev :: acc))
              | Token.KW "end" ->
                  advance ();
                  List.rev (ev :: acc)
              | t ->
                  Parse_error.raise_at Loc.dummy
                    "expected ';' or 'end' in %s, got %s" kw
                    (Token.to_string t)
            in
            let evs = events [] in
            if kw = "seq" then C_seq evs else C_par evs
        | _ -> C_fire (Parser.parse_event_term st)
      in
      let rec commands acc =
        match tok () with
        | Token.EOF -> List.rev acc
        | _ ->
            let c = command () in
            expect_semi ();
            commands (c :: acc)
      in
      match commands [] with
      | cmds -> Ok cmds
      | exception Parse_error.E e -> Error (Parse_error.to_string e))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type outcome = { output : string list; failed : string option }

let resolve_event sys (term : Ast.event_term) : Event.t =
  let env = Env.empty in
  Engine.resolve_called sys.Troll.community ~env ~self:None term

let rec exec_cmd sys (cmd : cmd) : (string list, string) result =
  match cmd with
  | C_new (cls, key_expr, birth) -> (
      let key = Eval.expr sys.Troll.community ~env:Env.empty ~self:None key_expr in
      let event, args =
        match birth with
        | Some (ev, arg_exprs) ->
            ( Some ev,
              List.map
                (Eval.expr sys.Troll.community ~env:Env.empty ~self:None)
                arg_exprs )
        | None -> (None, [])
      in
      match
        Engine.step sys.Troll.community (Step.Create { cls; key; event; args })
      with
      | Ok _ -> Ok [ Printf.sprintf "created %s(%s)" cls (Value.to_string key) ]
      | Error r -> Error (Runtime_error.reason_to_string r))
  | C_fire term -> (
      let ev = resolve_event sys term in
      match Engine.fire sys.Troll.community ev with
      | Ok o ->
          Ok
            [ Printf.sprintf "ok: %s"
                (String.concat "; "
                   (List.map
                      (fun step ->
                        String.concat ", " (List.map Event.to_string step))
                      o.Engine.committed)) ]
      | Error r -> Error (Runtime_error.reason_to_string r))
  | C_seq terms -> (
      let evs = List.map (resolve_event sys) terms in
      match Engine.fire_seq sys.Troll.community evs with
      | Ok _ -> Ok [ Printf.sprintf "ok: transaction of %d" (List.length evs) ]
      | Error r -> Error (Runtime_error.reason_to_string r))
  | C_par terms -> (
      let evs = List.map (resolve_event sys) terms in
      let steps = Array.of_list (List.map (fun ev -> Step.Fire ev) evs) in
      let results = Engine.step_batch_par sys.Troll.community steps in
      let first_failure = ref None in
      Array.iteri
        (fun i r ->
          match (r, !first_failure) with
          | Error reason, None -> first_failure := Some (i, reason)
          | _ -> ())
        results;
      match !first_failure with
      | Some (i, reason) ->
          Error
            (Printf.sprintf "parallel step %d: %s" i
               (Runtime_error.reason_to_string reason))
      | None ->
          Ok [ Printf.sprintf "ok: parallel batch of %d" (Array.length steps) ])
  | C_show e -> (
      match Eval.expr sys.Troll.community ~env:Env.empty ~self:None e with
      | v -> Ok [ Printf.sprintf "%s = %s" (Pretty.expr_to_string e) (Value.to_string v) ]
      | exception Runtime_error.Error r ->
          Error (Runtime_error.reason_to_string r))
  | C_trace r -> (
      let id =
        Eval.resolve_ref sys.Troll.community ~env:Env.empty ~self:None r
      in
      match Community.find_object sys.Troll.community id with
      | None -> Error (Printf.sprintf "unknown object %s" (Ident.to_string id))
      | Some o ->
          if o.Obj_state.history = [] then
            Ok
              [ Printf.sprintf
                  "%s: no recorded history (enable record_history)"
                  (Ident.to_string id) ]
          else Ok (String.split_on_char '\n' (Trace.to_string o)))
  | C_goal (r, goal) -> (
      let id =
        Eval.resolve_ref sys.Troll.community ~env:Env.empty ~self:None r
      in
      match Community.find_object sys.Troll.community id with
      | None -> Error (Printf.sprintf "unknown object %s" (Ident.to_string id))
      | Some o ->
          if Template.is_temporal_ast goal then
            Error "liveness goals are state formulas (no temporal operators)"
          else
            Ok
              [ Format.asprintf "%a" Liveness.pp_verdict
                  (Liveness.audit sys.Troll.community o goal) ])
  | C_view name -> (
      match List.assoc_opt name sys.Troll.views with
      | None -> Error (Printf.sprintf "no interface class %s" name)
      | Some v ->
          let rows = Interface.tabulate v in
          Ok
            (Printf.sprintf "%s: %d row(s)" name (List.length rows)
            :: List.map (fun r -> "  " ^ Value.to_string r) rows))
  | C_active fuel ->
      let fired = Engine.run_active sys.Troll.community ~fuel in
      Ok
        (Printf.sprintf "active: %d event(s)" (List.length fired)
        :: List.map (fun e -> "  " ^ Event.to_string e) fired)
  | C_expect_reject inner -> (
      match exec_safe sys inner with
      | Ok _ -> Error "expected rejection, but the statement was accepted"
      | Error r -> Ok [ Printf.sprintf "rejected as expected: %s" r ])

(** Like {!exec_cmd} but turning evaluation exceptions (unknown names,
    unresolvable targets) into script errors. *)
and exec_safe sys cmd =
  try exec_cmd sys cmd
  with Runtime_error.Error r -> Error (Runtime_error.reason_to_string r)

(** Run a script; stops at the first failure. *)
let run sys (cmds : script) : outcome =
  let rec go acc = function
    | [] -> { output = List.rev acc; failed = None }
    | cmd :: rest -> (
        match exec_safe sys cmd with
        | Ok lines -> go (List.rev_append lines acc) rest
        | Error e -> { output = List.rev acc; failed = Some e })
  in
  go [] cmds

let run_string sys source : outcome =
  match parse source with
  | Ok cmds -> run sys cmds
  | Error e -> { output = []; failed = Some e }
