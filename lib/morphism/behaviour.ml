(** Behavioural checking of template morphisms.

    Structure preservation ({!Template_morphism.violations}) is static;
    the paper's behavioural requirement — "we would expect that a
    computer's behaviour *contains* that of an el_device: also a
    computer is bound to the protocol of switching on before being able
    to switch off" (example 3.4) — is operational.  This module makes it
    executable by reducing a morphism [h : sub → super] to a refinement
    problem: the *super* template plays the abstract side, the *sub*
    template the implementing side, events and attributes related by
    the inverse of [h].  {!Refinement.check} then explores whether every
    behaviour the general template admits is provided by the special
    one, with agreeing observations. *)

(** Invert a morphism's signature map.  Requires well-formedness and
    surjectivity (each target item must have a preimage; with several
    preimages the first is used). *)
let implementation_of (m : Template_morphism.t) :
    (Implementation.t, string) result =
  match Template_morphism.violations m with
  | v :: _ -> Error ("ill-formed morphism: " ^ v)
  | [] ->
      if not (Template_morphism.is_surjective m) then
        Error "morphism is not surjective: some target items have no preimage"
      else
        let invert pairs =
          List.fold_left
            (fun acc (src, dst) ->
              if List.mem_assoc dst acc then acc else (dst, src) :: acc)
            [] pairs
        in
        Ok
          (Implementation.make
             ~abs_class:m.Template_morphism.dst.Template.t_name
             ~conc_class:m.Template_morphism.src.Template.t_name
             ~event_map:(invert m.Template_morphism.map.Sigmap.event_map)
             ~attr_map:(invert m.Template_morphism.map.Sigmap.attr_map)
             ())

(** Check a morphism behaviourally: [sub_side] and [super_side] must
    hold living instances of the morphism's source and target templates
    (in corresponding states); the alphabet defaults to the candidates
    of the *target* (general) template. *)
let check (m : Template_morphism.t) ~(sub_side : Refinement.side)
    ~(super_side : Refinement.side) ?alphabet ~(depth : int) () :
    (Refinement.report, string) result =
  match implementation_of m with
  | Error e -> Error e
  | Ok impl ->
      let alphabet =
        match alphabet with
        | Some a -> a
        | None -> Refinement.candidates m.Template_morphism.dst
      in
      Ok (Refinement.check ~impl ~abs:super_side ~conc:sub_side ~alphabet ~depth ())
