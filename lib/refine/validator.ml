(** Independent certificate validation.

    {!Refinement.check} searches; this module only *replays*.  Starting
    from nothing but the certificate — which embeds both specification
    sources, the instance coordinates, the implementation mapping and
    the candidate alphabet — it recompiles the two communities, recreates
    the probe instances, and replays every recorded edge under nested
    {!Txn.probe} scopes, checking that state digests, enabledness on
    both sides, observation agreement and the discharged obligation all
    match the certificate's claims.  Structural checks force the claimed
    depth coverage (root explored to the stated bound, every non-frontier
    node carrying one edge per candidate, every accepted edge landing on
    a node explored at most one level shallower), so a wrong checker —
    or a tampered certificate: a flipped verdict, a corrupted digest, a
    dropped edge — can no longer silently answer yes. *)

type stats = {
  v_nodes : int;  (** state-pair nodes visited during replay *)
  v_edges : int;  (** edges replayed under probes *)
}

exception Reject of string

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

let short p = try String.sub p 0 8 with Invalid_argument _ -> p

let pp_pair (p : Certificate.pair) =
  Printf.sprintf "(%s,%s)" (short p.Certificate.p_abs)
    (short p.Certificate.p_conc)

(* mirrors Refinement's observation comparison — deliberately
   re-implemented here so the validator shares no verdict-forming code
   with the search *)
let observe_mismatch ~(impl : Implementation.t) ~abs_tpl abs_c abs_id conc_c
    conc_id =
  let alive c id =
    match Community.living c id with Some _ -> true | None -> false
  in
  let abs_alive = alive abs_c abs_id and conc_alive = alive conc_c conc_id in
  if abs_alive <> conc_alive then Some "life cycle diverges"
  else if not abs_alive then None
  else
    List.find_map
      (fun (abs_a, conc_a) ->
        let read c id a =
          try Eval.read_attr c (Community.object_exn c id) a []
          with Runtime_error.Error _ -> Value.Undefined
        in
        let va = read abs_c abs_id abs_a and vc = read conc_c conc_id conc_a in
        if Value.equal va vc then None else Some abs_a)
      (Implementation.observed_attrs impl abs_tpl)

let validate (cert : Certificate.t) : (stats, string) result =
  try
    let impl =
      Implementation.make ~event_map:cert.Certificate.event_map
        ~attr_map:cert.Certificate.attr_map ~hidden:cert.Certificate.hidden
        ~abs_class:cert.Certificate.abs_class
        ~conc_class:cert.Certificate.conc_class ()
    in
    (* ---- structure -------------------------------------------------- *)
    let nodes : (string, Certificate.pair * int) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun (p, d) ->
        let k = Certificate.node_key p in
        if Hashtbl.mem nodes k then reject "duplicate node %s" (pp_pair p);
        if d < 0 then reject "negative depth on node %s" (pp_pair p);
        Hashtbl.replace nodes k (p, d))
      cert.Certificate.nodes;
    let edges : (string, Certificate.edge) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (e : Certificate.edge) ->
        let k = Certificate.edge_key e in
        if Hashtbl.mem edges k then reject "duplicate edge %s" k;
        if not (Hashtbl.mem nodes (Certificate.node_key e.Certificate.e_pre))
        then
          reject "edge from unknown node %s" (pp_pair e.Certificate.e_pre);
        if
          not
            (List.exists
               (fun (n, args) ->
                 String.equal n e.Certificate.e_event
                 && List.length args = List.length e.Certificate.e_args
                 && List.for_all2 Value.equal args e.Certificate.e_args)
               cert.Certificate.alphabet)
        then reject "edge event %s outside the alphabet" e.Certificate.e_event;
        Hashtbl.replace edges k e)
      cert.Certificate.edges;
    let node_depth p =
      match Hashtbl.find_opt nodes (Certificate.node_key p) with
      | Some (_, d) -> d
      | None -> reject "pair %s is not a node" (pp_pair p)
    in
    let root_depth = node_depth cert.Certificate.root in
    if cert.Certificate.holds then begin
      if root_depth < cert.Certificate.depth then
        reject "root explored to depth %d, certificate claims %d" root_depth
          cert.Certificate.depth;
      (* every non-frontier node must discharge every candidate, and
         every accepted edge must land at most one level shallower —
         together these force the claimed depth coverage from the root
         down, so dropping an edge or demoting a node is caught here *)
      Hashtbl.iter
        (fun _ (p, d) ->
          if d > 0 then
            List.iter
              (fun (n, args) ->
                let probe_edge =
                  {
                    Certificate.e_pre = p;
                    e_event = n;
                    e_args = args;
                    e_oblig = "";
                    e_verdict = Certificate.E_stuck;
                  }
                in
                match Hashtbl.find_opt edges (Certificate.edge_key probe_edge) with
                | Some e -> (
                    match e.Certificate.e_verdict with
                    | Certificate.E_ok post ->
                        if node_depth post < d - 1 then
                          reject
                            "accepted edge from %s (depth %d) lands on %s \
                             explored only to %d"
                            (pp_pair p) d (pp_pair post) (node_depth post)
                    | Certificate.E_stuck -> ()
                    | Certificate.E_missing _ | Certificate.E_escape _
                    | Certificate.E_obs _ ->
                        reject
                          "certificate claims the refinement holds but edge \
                           %s/%s records a violation"
                          (pp_pair p) n)
                | None ->
                    reject "node %s (depth %d) has no edge for candidate %s"
                      (pp_pair p) d n)
              cert.Certificate.alphabet)
        nodes
    end
    else if cert.Certificate.fail_reason = None then
      reject "failing certificate carries no counterexample reason";
    (* ---- rebuild the two sides from the embedded sources ------------ *)
    let compile what src =
      match Compile.load src with
      | Ok (c, _) -> c
      | Error m -> reject "%s specification does not compile: %s" what m
    in
    let abs_c = compile "abstract" cert.Certificate.abs_src in
    let conc_c = compile "concrete" cert.Certificate.conc_src in
    let abs_tpl =
      match Community.find_template abs_c cert.Certificate.abs_class with
      | Some t -> t
      | None -> reject "unknown abstract class %s" cert.Certificate.abs_class
    in
    if Community.find_template conc_c cert.Certificate.conc_class = None then
      reject "unknown implementing class %s" cert.Certificate.conc_class;
    let create what c cls key args =
      match Engine.create c ~cls ~key ~args () with
      | Ok _ -> ()
      | Error r ->
          reject "cannot recreate the %s instance: %s" what
            (Runtime_error.reason_to_string r)
    in
    create "abstract" abs_c cert.Certificate.abs_class cert.Certificate.abs_key
      cert.Certificate.abs_args;
    create "concrete" conc_c cert.Certificate.conc_class
      cert.Certificate.conc_key cert.Certificate.conc_args;
    let abs_id =
      Ident.make cert.Certificate.abs_class cert.Certificate.abs_key
    and conc_id =
      Ident.make cert.Certificate.conc_class cert.Certificate.conc_key
    in
    let digest_pair () =
      {
        Certificate.p_abs = View.state_digest abs_c;
        p_conc = View.state_digest conc_c;
      }
    in
    let actual_root = digest_pair () in
    if actual_root <> cert.Certificate.root then
      reject "root digest mismatch: expected %s, replayed %s"
        (pp_pair cert.Certificate.root) (pp_pair actual_root);
    (* ---- replay ----------------------------------------------------- *)
    let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let replayed = ref 0 in
    let rec walk (p : Certificate.pair) =
      let k = Certificate.node_key p in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.replace visited k ();
        List.iter
          (fun (n, args) ->
            let key_edge =
              {
                Certificate.e_pre = p;
                e_event = n;
                e_args = args;
                e_oblig = "";
                e_verdict = Certificate.E_stuck;
              }
            in
            match Hashtbl.find_opt edges (Certificate.edge_key key_edge) with
            | Some e -> replay p e
            | None -> ())
          cert.Certificate.alphabet
      end
    and replay (p : Certificate.pair) (e : Certificate.edge) =
      incr replayed;
      if
        not
          (String.equal e.Certificate.e_oblig
             (Certificate.oblig_of_verdict e.Certificate.e_event
                e.Certificate.e_verdict))
      then
        reject "edge %s/%s claims obligation %s, verdict discharges %s"
          (pp_pair p) e.Certificate.e_event e.Certificate.e_oblig
          (Certificate.oblig_of_verdict e.Certificate.e_event
             e.Certificate.e_verdict);
      Txn.probe abs_c (fun () ->
          Txn.probe conc_c (fun () ->
              let abs_r =
                Engine.fire abs_c
                  (Event.make abs_id e.Certificate.e_event
                     e.Certificate.e_args)
              in
              let conc_r =
                Engine.fire conc_c
                  (Event.make conc_id
                     (Implementation.map_event impl e.Certificate.e_event)
                     e.Certificate.e_args)
              in
              let claims what =
                reject "edge %s/%s claims %s but replay disagrees" (pp_pair p)
                  e.Certificate.e_event what
              in
              match (e.Certificate.e_verdict, abs_r, conc_r) with
              | Certificate.E_ok post, Ok _, Ok _ -> (
                  match
                    observe_mismatch ~impl ~abs_tpl abs_c abs_id conc_c
                      conc_id
                  with
                  | Some attr ->
                      reject
                        "edge %s/%s claims equal observations but %s differs"
                        (pp_pair p) e.Certificate.e_event attr
                  | None ->
                      let actual = digest_pair () in
                      if actual <> post then
                        reject
                          "post-state digest mismatch on edge %s/%s: \
                           certificate %s, replay %s"
                          (pp_pair p) e.Certificate.e_event (pp_pair post)
                          (pp_pair actual);
                      walk post)
              | Certificate.E_ok _, _, _ -> claims "joint acceptance"
              | Certificate.E_stuck, Error _, Error _ -> ()
              | Certificate.E_stuck, _, _ -> claims "joint rejection"
              | Certificate.E_missing _, Ok _, Error _ -> ()
              | Certificate.E_missing _, _, _ ->
                  claims "a rejection only on the implementation side"
              | Certificate.E_escape _, Error _, Ok _ -> ()
              | Certificate.E_escape _, _, _ ->
                  claims "an acceptance the specification forbids"
              | Certificate.E_obs _, Ok _, Ok _ -> (
                  match
                    observe_mismatch ~impl ~abs_tpl abs_c abs_id conc_c
                      conc_id
                  with
                  | Some _ -> ()
                  | None ->
                      claims "an observation mismatch (observations agree)")
              | Certificate.E_obs _, _, _ ->
                  claims "joint acceptance with differing observations"))
    in
    walk cert.Certificate.root;
    if Hashtbl.length visited <> Hashtbl.length nodes then
      reject "%d of %d nodes are unreachable from the root"
        (Hashtbl.length nodes - Hashtbl.length visited)
        (Hashtbl.length nodes);
    if !replayed <> Hashtbl.length edges then
      reject "%d of %d edges were never replayed"
        (Hashtbl.length edges - !replayed)
        (Hashtbl.length edges);
    Ok { v_nodes = Hashtbl.length visited; v_edges = !replayed }
  with
  | Reject m -> Error m
  | Runtime_error.Error r -> Error (Runtime_error.reason_to_string r)

let validate_string (s : string) : (stats, string) result =
  match Certificate.decode s with
  | Error m -> Error m
  | Ok cert -> validate cert
