(** Bounded refinement checking by lock-step simulation — the
    executable form of §5.2's correctness criterion.

    Drive the abstract instance and its implementation with
    corresponding events over all traces up to depth [k], requiring
    equal enabledness in both directions (missing behaviour /
    unpreserved permissions) and equal observations after every jointly
    accepted step.  The trace tree has at most |alphabet|^k branches
    (only jointly-accepted steps recurse); with a {!Certificate.builder}
    attached, visited (abstract, concrete) state pairs are memoized by
    {!View.state_digest}, so cost is bounded by the number of distinct
    reachable pairs times the alphabet — experiment E7 measures the raw
    bounded growth, E19 the depth memoization unlocks. *)

type candidate = { ev_name : string; ev_args : Value.t list }

type counterexample = {
  trace : candidate list;  (** accepted prefix *)
  failing : candidate;
  reason : string;
}

type report = {
  verdict : (unit, counterexample) result;
  cases : int;  (** (event, state) pairs examined *)
  accepted : int;  (** steps both sides accepted *)
  obligations : Obligation.t list;
      (** the §5.2 proof obligations, marked exercised/violated *)
}

val pp_candidate : Format.formatter -> candidate -> unit
val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_report : Format.formatter -> report -> unit

val default_pool : Vtype.t -> Value.t list
(** Small value pools per type, for synthesising candidate events. *)

val candidates :
  ?pool:(Vtype.t -> Value.t list) ->
  ?max_per_event:int ->
  Template.t ->
  candidate list
(** Candidate events of a template: every non-birth event with argument
    combinations drawn from the pool. *)

type side = { community : Community.t; id : Ident.t }

val check :
  ?pool:Pool.t ->
  ?record:Certificate.builder ->
  impl:Implementation.t ->
  abs:side ->
  conc:side ->
  alphabet:candidate list ->
  depth:int ->
  unit ->
  report
(** Both instances must be alive and in corresponding states.  The
    communities are left unchanged: every branch runs speculatively
    under {!Txn.probe} and is journal-rolled back in place.

    With a [pool] of more than one domain, the top-level alphabet
    branches run in parallel on domain-private thaws of frozen {!View}s
    of the two communities, merged back in alphabet order — the report
    is identical to the sequential one (and the sources untouched
    either way).

    With [record], the simulation relation is recorded into the
    certificate builder (finish it with {!Certificate.finish} after the
    call), and the builder's node table memoizes visited state pairs: a
    pair already explored at an equal or greater remaining depth — in
    this run or loaded via {!Certificate.load_memo} — is skipped, which
    both bounds converging state spaces and makes warm re-checks
    examine strictly fewer cases.  Parallel branches record into
    private sinks merged in alphabet order; on successful checks the
    certificate is bit-identical to the sequential one, though [cases]
    may be higher because branches cannot see each other's memo
    entries. *)
