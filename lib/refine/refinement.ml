(** Bounded refinement checking by lock-step simulation.

    The correctness criterion of §5.2 — every property of the abstract
    specification is derivable from the implementation — is made
    executable as bounded trace simulation: drive the abstract instance
    and its implementation with corresponding events, to a depth [k],
    over a finite candidate alphabet, and require

    - equal *enabledness*: an event accepted by the abstract object must
      be accepted by the implementation, and (for property preservation)
      an event rejected by the abstract object must be rejected by the
      implementation;
    - equal *observations*: after every accepted step, each observed
      abstract attribute equals its mapped concrete attribute.

    The exploration branches over every candidate event at every depth.
    Each branch runs speculatively under {!Txn.probe} and is
    journal-rolled back in place — O(touched state) per branch instead
    of the former per-branch [Community.clone].  The tree has at most
    |alphabet|^k branches, but only jointly-accepted steps recurse, and
    with a {!Certificate.builder} attached the visited-pair memo table
    collapses every trace that converges on an already-explored
    (abstract, concrete) state pair — cost is then bounded by the number
    of *distinct* reachable pairs times the alphabet, not by the trace
    count (experiment E7 measures the raw bounded growth, E19 the depth
    unlocked by memoization). *)

type candidate = { ev_name : string; ev_args : Value.t list }

type counterexample = {
  trace : candidate list;  (** accepted prefix *)
  failing : candidate;
  reason : string;
}

type report = {
  verdict : (unit, counterexample) result;
  cases : int;  (** (event, state) pairs examined *)
  accepted : int;  (** steps both sides accepted *)
  obligations : Obligation.t list;
}

let pp_candidate ppf c =
  if c.ev_args = [] then Format.pp_print_string ppf c.ev_name
  else
    Format.fprintf ppf "%s(%a)" c.ev_name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Value.pp)
      c.ev_args

let pp_counterexample ppf cx =
  Format.fprintf ppf "after [%a], event %a: %s"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_candidate)
    cx.trace pp_candidate cx.failing cx.reason

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

(** Small value pools per type, for synthesising candidate events. *)
let rec default_pool (ty : Vtype.t) : Value.t list =
  match ty with
  | Vtype.Bool -> [ Value.Bool true; Value.Bool false ]
  | Vtype.Int | Vtype.Nat -> [ Value.Int 0; Value.Int 1; Value.Int 42 ]
  | Vtype.String -> [ Value.String "a"; Value.String "b" ]
  | Vtype.Date -> [ Value.Date 0; Value.Date 7305 ]
  | Vtype.Money -> [ Value.Money (Money.of_units 100) ]
  | Vtype.Enum (n, cs) -> List.map (fun c -> Value.Enum (n, c)) cs
  | Vtype.Id cls -> [ Value.Id (cls, Value.String "x") ]
  | Vtype.Set _ -> [ Value.Set [] ]
  | Vtype.List _ -> [ Value.List [] ]
  | Vtype.Map _ -> [ Value.map [] ]
  | Vtype.Tuple fields ->
      (* one representative tuple from the first pool element of each
         field *)
      let rec build = function
        | [] -> [ [] ]
        | (n, t) :: rest ->
            let vs =
              match default_pool t with v :: _ -> [ v ] | [] -> []
            in
            List.concat_map
              (fun v -> List.map (fun tl -> (n, v) :: tl) (build rest))
              vs
      in
      List.map (fun fs -> Value.Tuple fs) (build fields)
  | Vtype.Any -> [ Value.Int 0 ]

(** Candidate events of a template: every non-birth event, with argument
    combinations drawn from [pool] (the Cartesian product, capped at
    [max_per_event]). *)
let candidates ?(pool = default_pool) ?(max_per_event = 8)
    (tpl : Template.t) : candidate list =
  List.concat_map
    (fun (ed : Template.event_def) ->
      if ed.Template.ed_kind = Ast.Ev_birth then []
      else
        let rec combos = function
          | [] -> [ [] ]
          | ty :: rest ->
              List.concat_map
                (fun v -> List.map (fun tl -> v :: tl) (combos rest))
                (pool ty)
        in
        let all = combos ed.Template.ed_params in
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: r -> x :: take (n - 1) r
        in
        List.map
          (fun args -> { ev_name = ed.Template.ed_name; ev_args = args })
          (take max_per_event all))
    tpl.Template.t_events

(* ------------------------------------------------------------------ *)
(* Lock-step exploration                                               *)
(* ------------------------------------------------------------------ *)

type side = { community : Community.t; id : Ident.t }

let fire_candidate (s : side) ~(name : string) (c : candidate) =
  Engine.fire s.community (Event.make s.id name c.ev_args)

(** What one top-level branch of the exploration did, recorded privately
    so branches can run on separate domains and be merged back in
    alphabet order — the merged report is bit-identical to the
    sequential DFS (branch [i]'s whole subtree precedes branch [i+1]'s
    in DFS order, so the first counterexample in branch order is the
    first in DFS order, and everything after it is discarded exactly as
    the sequential run never would have executed it). *)
type mark = M_exercised of string | M_violated of string * string

type branch_log = {
  mutable bo_cases : int;
  mutable bo_accepted : int;
  mutable bo_marks : mark list;  (** newest first *)
  mutable bo_cex : counterexample option;
}

let new_log () =
  { bo_cases = 0; bo_accepted = 0; bo_marks = []; bo_cex = None }

(** Check the implementation [impl] by bounded lock-step simulation.

    [abs]/[conc] give the communities and instance identities of the two
    sides (the instances must already be alive and in corresponding
    states).  [alphabet] lists the candidate events in abstract terms;
    each is mapped through [impl] for the concrete side.  [depth] bounds
    the trace length.

    With a [pool] of more than one domain, the top-level alphabet
    branches are explored in parallel, each against domain-private
    thaws of frozen views of the two communities ({!View}); the source
    communities are never touched.  The report is the same either
    way.

    With [record], every visited (abstract, concrete) state pair and
    every examined case is recorded into the certificate builder, whose
    node table doubles as a memo: a pair already explored at an equal or
    greater remaining depth (in this run, or loaded from a persisted
    memo) is skipped, so converging traces are examined once.  Parallel
    branches record into private sinks merged back in alphabet order —
    the certificate is the same as the sequential one on successful
    checks (branches cannot see each other's memo entries, so [cases]
    may be higher than the sequential count). *)
let check ?(pool : Pool.t option) ?(record : Certificate.builder option)
    ~(impl : Implementation.t) ~(abs : side) ~(conc : side)
    ~(alphabet : candidate list) ~(depth : int) () : report =
  let abs_tpl =
    Community.template_exn abs.community impl.Implementation.abs_class
  in
  let conc_tpl =
    Community.template_exn conc.community impl.Implementation.conc_class
  in
  let obligations = Obligation.generate impl ~abs_tpl ~conc_tpl in
  let exception Cex of counterexample in
  let observe_mismatch abs_c conc_c =
    (* life-cycle stage must agree; attribute observations are only
       meaningful while both sides are alive *)
    let alive c id =
      match Community.living c id with Some _ -> true | None -> false
    in
    let abs_alive = alive abs_c abs.id and conc_alive = alive conc_c conc.id in
    if abs_alive <> conc_alive then
      Some
        (Printf.sprintf "life cycle diverges: abstract %s, concrete %s"
           (if abs_alive then "alive" else "not alive")
           (if conc_alive then "alive" else "not alive"))
    else if not abs_alive then None
    else
    List.find_map
      (fun (abs_a, conc_a) ->
        let va =
          try
            Eval.read_attr abs_c (Community.object_exn abs_c abs.id) abs_a []
          with Runtime_error.Error _ -> Value.Undefined
        in
        let vc =
          try
            Eval.read_attr conc_c
              (Community.object_exn conc_c conc.id)
              conc_a []
          with Runtime_error.Error _ -> Value.Undefined
        in
        if Value.equal va vc then None
        else
          Some
            (Printf.sprintf "observation %s: abstract %s vs concrete %s"
               abs_a (Value.to_string va) (Value.to_string vc)))
      (Implementation.observed_attrs impl abs_tpl)
  in
  let mark_ex log id = log.bo_marks <- M_exercised id :: log.bo_marks in
  let mark_vi log id reason =
    log.bo_marks <- M_violated (id, reason) :: log.bo_marks
  in
  let digest_pair abs_c conc_c =
    {
      Certificate.p_abs = View.state_digest abs_c;
      p_conc = View.state_digest conc_c;
    }
  in
  (* [snk]/[pre] are [Some] exactly when recording: the certificate sink
     and the digest pair of the state the exploration currently sits in *)
  let record_edge snk pre (cand : candidate) verdict =
    match (snk, pre) with
    | Some s, Some p ->
        Certificate.add_edge s
          {
            Certificate.e_pre = p;
            e_event = cand.ev_name;
            e_args = cand.ev_args;
            e_oblig = Certificate.oblig_of_verdict cand.ev_name verdict;
            e_verdict = verdict;
          }
    | _ -> ()
  in
  let rec explore_cand log snk pre (abs_c : Community.t)
      (conc_c : Community.t) trace d (cand : candidate) =
    log.bo_cases <- log.bo_cases + 1;
    (* each branch — the two speculative firings plus the whole subtree
       below them — runs under nested probe scopes and is
       journal-rolled back in place before the next candidate; a
       counterexample propagates out through the rollbacks *)
    Txn.probe abs_c (fun () ->
        Txn.probe conc_c (fun () ->
            let abs_r =
              fire_candidate { community = abs_c; id = abs.id }
                ~name:cand.ev_name cand
            in
            let conc_name = Implementation.map_event impl cand.ev_name in
            let conc_r =
              fire_candidate { community = conc_c; id = conc.id }
                ~name:conc_name cand
            in
            match (abs_r, conc_r) with
            | Ok _, Ok _ -> (
                log.bo_accepted <- log.bo_accepted + 1;
                mark_ex log (Printf.sprintf "enabled-%s" cand.ev_name);
                match observe_mismatch abs_c conc_c with
                | Some reason ->
                    record_edge snk pre cand (Certificate.E_obs reason);
                    mark_vi log
                      (Printf.sprintf "effect-%s" cand.ev_name)
                      reason;
                    raise
                      (Cex { trace = List.rev trace; failing = cand; reason })
                | None ->
                    let post =
                      match (snk, pre) with
                      | Some _, Some _ ->
                          let post = digest_pair abs_c conc_c in
                          record_edge snk pre cand (Certificate.E_ok post);
                          Some post
                      | _ -> None
                    in
                    mark_ex log (Printf.sprintf "effect-%s" cand.ev_name);
                    explore log snk post abs_c conc_c (cand :: trace) (d - 1))
            | Ok _, Error r ->
                let reason =
                  Printf.sprintf
                    "abstract side accepts but implementation rejects (%s)"
                    (Runtime_error.reason_to_string r)
                in
                record_edge snk pre cand (Certificate.E_missing reason);
                mark_vi log (Printf.sprintf "enabled-%s" cand.ev_name) reason;
                raise (Cex { trace = List.rev trace; failing = cand; reason })
            | Error r, Ok _ ->
                let reason =
                  Printf.sprintf
                    "implementation accepts an event the specification \
                     forbids (abstract rejection: %s)"
                    (Runtime_error.reason_to_string r)
                in
                record_edge snk pre cand (Certificate.E_escape reason);
                mark_vi log (Printf.sprintf "perm-%s" cand.ev_name) reason;
                raise (Cex { trace = List.rev trace; failing = cand; reason })
            | Error _, Error _ ->
                (* both reject: permission preserved on this case *)
                record_edge snk pre cand Certificate.E_stuck;
                mark_ex log (Printf.sprintf "perm-%s" cand.ev_name)))
  and explore log snk pre abs_c conc_c trace d =
    if d <= 0 then
      (* frontier pair: still a certificate node, or accepted edges at
         the last level would reference a node that was never recorded *)
      match (snk, pre) with
      | Some s, Some p -> Certificate.note_frontier s p
      | _ -> ()
    else
      let proceed =
        match (snk, pre) with
        | Some s, Some p -> Certificate.enter s p ~depth:d
        | _ -> true
      in
      if proceed then
        List.iter
          (fun cand -> explore_cand log snk pre abs_c conc_c trace d cand)
          alphabet
  in
  let quiescent =
    abs.community.Community.journal = None
    && conc.community.Community.journal = None
  in
  let root_pair =
    match record with
    | Some b ->
        let p = digest_pair abs.community conc.community in
        Certificate.note_root b p;
        Some p
    | None -> None
  in
  let logs =
    match pool with
    | Some p
      when Pool.jobs p > 1 && depth > 0
           && List.length alphabet > 1
           && quiescent ->
        (* one task per top-level alphabet branch, each on domain-private
           thaws; when both sides share one community the view (and thus
           the thaw) is shared too, preserving the aliasing *)
        let proceed =
          match (record, root_pair) with
          | Some b, Some rp ->
              Certificate.enter (Certificate.sink b) rp ~depth
          | _ -> true
        in
        if not proceed then [ new_log () ]
        else begin
          let abs_view = View.freeze abs.community in
          let conc_view =
            if conc.community == abs.community then abs_view
            else View.freeze conc.community
          in
          let cands = Array.of_list alphabet in
          let logs = Array.init (Array.length cands) (fun _ -> new_log ()) in
          let snks =
            match record with
            | Some b ->
                Some
                  (Array.init (Array.length cands) (fun _ ->
                       Certificate.branch_sink b))
            | None -> None
          in
          Pool.run p ~n:(Array.length cands) (fun i ->
              let abs_c = View.thaw_cached abs_view in
              let conc_c =
                if conc_view == abs_view then abs_c
                else View.thaw_cached conc_view
              in
              let log = logs.(i) in
              let snk = Option.map (fun a -> a.(i)) snks in
              match
                explore_cand log snk root_pair abs_c conc_c [] depth
                  cands.(i)
              with
              | () -> ()
              | exception Cex cx -> log.bo_cex <- Some cx);
          (* merge branch certificates in alphabet order, stopping where
             the report merge below stops — at the first branch with a
             counterexample *)
          (match (record, snks) with
          | Some b, Some a ->
              (try
                 Array.iteri
                   (fun i s ->
                     Certificate.merge b s;
                     if logs.(i).bo_cex <> None then raise Exit)
                   a
               with Exit -> ())
          | _ -> ());
          Array.to_list logs
        end
    | _ ->
        let log = new_log () in
        let snk = Option.map Certificate.sink record in
        (match explore log snk root_pair abs.community conc.community [] depth with
        | () -> ()
        | exception Cex cx -> log.bo_cex <- Some cx);
        [ log ]
  in
  (* merge strictly in alphabet order, stopping at the first branch that
     found a counterexample (later branches were never part of the
     sequential exploration) *)
  let cases = ref 0 and accepted = ref 0 in
  let verdict = ref (Ok ()) in
  (try
     List.iter
       (fun log ->
         cases := !cases + log.bo_cases;
         accepted := !accepted + log.bo_accepted;
         List.iter
           (function
             | M_exercised id -> Obligation.mark_exercised obligations ~id
             | M_violated (id, reason) ->
                 Obligation.mark_violated obligations ~id ~reason)
           (List.rev log.bo_marks);
         match log.bo_cex with
         | Some cx ->
             verdict := Error cx;
             raise Exit
         | None -> ())
       logs
   with Exit -> ());
  (match (record, !verdict) with
  | Some b, Error cx ->
      Certificate.note_failed b
        (Format.asprintf "%a" pp_counterexample cx)
  | _ -> ());
  { verdict = !verdict; cases = !cases; accepted = !accepted; obligations }

let pp_report ppf r =
  (match r.verdict with
  | Ok () ->
      Format.fprintf ppf
        "refinement holds up to bound (%d cases, %d accepted steps)@,"
        r.cases r.accepted
  | Error cx ->
      Format.fprintf ppf "refinement FAILS: %a@," pp_counterexample cx);
  List.iter (fun ob -> Format.fprintf ppf "  %a@," Obligation.pp ob)
    r.obligations
