(** Refinement certificates: the simulation relation {!Refinement.check}
    discovers, reified as a checkable artifact (§5.2 made first-class).

    A certificate is a graph over hashed (abstract, concrete) state
    pairs ({!View.state_digest} of both communities): one node per pair
    visited, carrying the maximum remaining depth it was explored at,
    and one edge per (pair, candidate event) carrying the both-sides
    verdict and the proof obligation it discharges.  The specification
    sources, class/key/creation coordinates, implementation mapping and
    candidate alphabet are embedded, so {!Validator.validate} can replay
    every edge from nothing but the certificate.

    The node table doubles as the checker's memo table, and
    {!save_memo}/{!load_memo} persist it (keyed by {!spec_key}) so a
    re-check of the same problem instance only explores the frontier an
    earlier run did not certify.

    Serialized in the house CRC-framed text-codec style
    ([effect_log.ml]/[wal.ml]): a [troll-cert 1|<bytes>|<crc32>] header
    line framing [|]-separated single-line records, values via
    {!Value_codec}, sources as byte-counted blocks.  {!encode} is
    canonical (nodes and edges sorted), so emit → {!decode} → emit is
    bit-identical. *)

type pair = { p_abs : string; p_conc : string }
(** State digests of the two sides, {!View.state_digest} hex. *)

type everdict =
  | E_ok of pair  (** jointly accepted, observations agree; the post pair *)
  | E_stuck  (** jointly rejected: permission preserved on this case *)
  | E_missing of string  (** abstract accepts, implementation rejects *)
  | E_escape of string  (** implementation accepts what the spec forbids *)
  | E_obs of string  (** jointly accepted but an observation differs *)

type edge = {
  e_pre : pair;
  e_event : string;  (** abstract event name *)
  e_args : Value.t list;
  e_oblig : string;  (** obligation id this edge discharges or violates *)
  e_verdict : everdict;
}

type t = {
  abs_src : string;
  conc_src : string;
  abs_class : string;
  conc_class : string;
  abs_key : Value.t;
  conc_key : Value.t;
  abs_args : Value.t list;
  conc_args : Value.t list;
  event_map : (string * string) list;
  attr_map : (string * string) list;
  hidden : string list;
  depth : int;
  alphabet : (string * Value.t list) list;
  root : pair;
  nodes : (pair * int) list;
      (** max remaining depth each pair was explored at; 0 = frontier *)
  edges : edge list;
  holds : bool;
  fail_reason : string option;
}

val encode : t -> string
val decode : string -> (t, string) result

val oblig_of_verdict : string -> everdict -> string
(** The obligation id an edge on the given abstract event discharges —
    the checker records it, the validator recomputes it. *)

val node_key : pair -> string
val edge_key : edge -> string
(** Canonical table keys (used for sorting and deduplication). *)

(** {1 Recording}

    A [builder] accumulates the graph while {!Refinement.check} runs.
    The sequential path records through the builder's shared {!sink};
    each parallel branch task records into a private {!branch_sink}
    (seeded with the tables as they stood at dispatch) and is
    {!merge}d back — the union is deterministic, so parallel and
    sequential runs emit bit-identical certificates on successful
    checks. *)

type builder
type sink

val builder :
  abs_src:string ->
  conc_src:string ->
  impl:Implementation.t ->
  abs_key:Value.t ->
  conc_key:Value.t ->
  ?abs_args:Value.t list ->
  ?conc_args:Value.t list ->
  alphabet:(string * Value.t list) list ->
  depth:int ->
  unit ->
  builder

val sink : builder -> sink
val branch_sink : builder -> sink
val merge : builder -> sink -> unit

val enter : sink -> pair -> depth:int -> bool
(** [true]: first visit at this remaining depth budget (or a deeper
    budget than any before) — explore, the node is recorded.  [false]:
    the pair was already explored at an equal or greater remaining
    depth — skip the whole subtree.  Recording happens on entry, so
    state-graph cycles terminate. *)

val note_frontier : sink -> pair -> unit
(** Record a pair reached with no remaining depth budget (at depth 0,
    if absent) so accepted edges never reference a missing node. *)

val add_edge : sink -> edge -> unit
val skips : sink -> int
(** Subtrees skipped by {!enter} (memo hits). *)

val note_root : builder -> pair -> unit
val note_failed : builder -> string -> unit
val finish : builder -> t

(** {1 Persisted memo} *)

val spec_key : builder -> string
(** Digest of the whole problem instance (sources, classes, keys,
    creation arguments, mapping, alphabet — everything except the
    depth).  Keys the persisted memo file; any edit to either
    specification changes it, so a stale table is never reused. *)

val memo_path : dir:string -> key:string -> string

val load_memo : builder -> dir:string -> (int, string) result
(** Seed the builder's tables from [dir]'s memo for this {!spec_key}.
    [Ok n]: [n] pairs loaded ([0] when no file matches — including a
    file written for a different problem instance).  [Error]: the file
    exists for this key but is corrupt. *)

val save_memo : builder -> dir:string -> (unit, string) result
(** Persist the tables (atomic write, directory created if missing).
    A failed search saves nothing: its table stops mid-node and does
    not certify "no violation below this pair". *)

val loaded_pairs : builder -> int

val pp_summary : Format.formatter -> t -> unit
