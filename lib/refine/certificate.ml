(** Refinement certificates: the simulation relation as a checkable
    artifact.

    {!Refinement.check} answers yes/no; a certificate reifies *why* — the
    explicit simulation relation in the style of Boogie's [refMap] and
    seL4's state-correspondence relations: hashed (abstract, concrete)
    state-pair nodes ({!View.state_digest} on both communities), one edge
    per (pair, candidate event) with the both-sides verdict and the §5.2
    obligation it discharges, plus everything a validator needs to replay
    the evidence from scratch (both specification sources, the class /
    key / creation-argument coordinates, the implementation mapping and
    the candidate alphabet).

    The node table doubles as the checker's memo table: {!enter} skips a
    pair already explored at the same or greater remaining depth, and
    {!save_memo}/{!load_memo} persist the (node, edge) graph keyed by a
    digest of the whole problem instance, so a re-check only explores the
    frontier beyond what an earlier run already certified.

    Serialization follows the house text-codec pattern
    ([effect_log.ml]/[wal.ml]): [|]-separated single-line records, a
    byte-length + CRC-32 framed body, {!Value_codec} for values, and a
    [Bad]-exception decoder surfaced as a [result]. *)

type pair = { p_abs : string; p_conc : string }

type everdict =
  | E_ok of pair  (** jointly accepted, observations agree; the post pair *)
  | E_stuck  (** jointly rejected: permission preserved on this case *)
  | E_missing of string  (** abstract accepts, implementation rejects *)
  | E_escape of string  (** implementation accepts what the spec forbids *)
  | E_obs of string  (** jointly accepted but an observation differs *)

type edge = {
  e_pre : pair;
  e_event : string;  (** abstract event name *)
  e_args : Value.t list;
  e_oblig : string;  (** obligation id this edge discharges or violates *)
  e_verdict : everdict;
}

type t = {
  abs_src : string;
  conc_src : string;
  abs_class : string;
  conc_class : string;
  abs_key : Value.t;
  conc_key : Value.t;
  abs_args : Value.t list;
  conc_args : Value.t list;
  event_map : (string * string) list;
  attr_map : (string * string) list;
  hidden : string list;
  depth : int;
  alphabet : (string * Value.t list) list;
  root : pair;
  nodes : (pair * int) list;  (** max remaining depth each pair was explored at *)
  edges : edge list;
  holds : bool;
  fail_reason : string option;
}

(* ------------------------------------------------------------------ *)
(* Field escaping                                                      *)
(* ------------------------------------------------------------------ *)

(* Value_codec strings are length-counted raw bytes, and counterexample
   reasons are free text — either may contain the record separators.
   Canonical percent-escaping of exactly the four metacharacters keeps
   every field single-line and pipe-free, and emit∘parse bit-identical. *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let esc (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '%' -> Buffer.add_string b "%25"
      | '|' -> Buffer.add_string b "%7C"
      | '\n' -> Buffer.add_string b "%0A"
      | '\r' -> Buffer.add_string b "%0D"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unesc (s : string) : string =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' then
       if !i + 2 < n then begin
         (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
         | Some c -> Buffer.add_char b (Char.chr c)
         | None -> fail "bad escape in %S" s);
         i := !i + 2
       end
       else fail "truncated escape in %S" s
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let enc_value v = esc (Value_codec.encode v)

let dec_value s =
  match Value_codec.decode (unesc s) with
  | Ok v -> v
  | Error m -> fail "bad value: %s" m

let enc_args args = enc_value (Value.List args)

let dec_args s =
  match dec_value s with
  | Value.List l -> l
  | _ -> fail "argument field is not a list"

(* ------------------------------------------------------------------ *)
(* Canonical keys and ordering                                         *)
(* ------------------------------------------------------------------ *)

let node_key p = p.p_abs ^ "," ^ p.p_conc
let edge_key (e : edge) =
  node_key e.e_pre ^ "," ^ e.e_event ^ "," ^ enc_args e.e_args

let sort_nodes ns =
  List.sort (fun (a, _) (b, _) -> compare (node_key a) (node_key b)) ns

let sort_edges es =
  List.sort (fun a b -> compare (edge_key a) (edge_key b)) es

(** The obligation id an edge with this verdict discharges (or violates)
    — {!Refinement.check} marks exactly these ids, and the validator
    recomputes them independently. *)
let oblig_of_verdict (event : string) = function
  | E_ok _ | E_obs _ -> "effect-" ^ event
  | E_stuck | E_escape _ -> "perm-" ^ event
  | E_missing _ -> "enabled-" ^ event

(* ------------------------------------------------------------------ *)
(* Emit                                                                *)
(* ------------------------------------------------------------------ *)

let add_line buf fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    fmt

let emit_node buf (p, d) = add_line buf "node|%s|%s|%d" p.p_abs p.p_conc d

let emit_edge buf (e : edge) =
  let head =
    Printf.sprintf "edge|%s|%s|%s|%s|%s" e.e_pre.p_abs e.e_pre.p_conc
      (esc e.e_event) (enc_args e.e_args) (esc e.e_oblig)
  in
  match e.e_verdict with
  | E_ok post -> add_line buf "%s|ok|%s|%s" head post.p_abs post.p_conc
  | E_stuck -> add_line buf "%s|stuck" head
  | E_missing r -> add_line buf "%s|missing|%s" head (esc r)
  | E_escape r -> add_line buf "%s|escape|%s" head (esc r)
  | E_obs r -> add_line buf "%s|obs|%s" head (esc r)

let frame magic body =
  Printf.sprintf "%s|%d|%08x\n%s" magic (String.length body)
    (Wal.crc32 body land 0xffffffff)
    body

let cert_magic = "troll-cert 1"
let memo_magic = "troll-memo 1"

let encode (t : t) : string =
  let buf = Buffer.create 4096 in
  add_line buf "impl|%s|%s|%s|%s|%s|%s|%d|%d" (esc t.abs_class)
    (esc t.conc_class) (enc_value t.abs_key) (enc_value t.conc_key)
    (enc_args t.abs_args) (enc_args t.conc_args) t.depth
    (if t.holds then 1 else 0);
  (match t.fail_reason with
  | None -> ()
  | Some r -> add_line buf "fail|%s" (esc r));
  List.iter (fun (a, c) -> add_line buf "emap|%s|%s" (esc a) (esc c))
    t.event_map;
  List.iter (fun (a, c) -> add_line buf "amap|%s|%s" (esc a) (esc c))
    t.attr_map;
  List.iter (fun a -> add_line buf "hide|%s" (esc a)) t.hidden;
  List.iter (fun (n, args) -> add_line buf "cand|%s|%s" (esc n) (enc_args args))
    t.alphabet;
  add_line buf "abs-src|%d" (String.length t.abs_src);
  Buffer.add_string buf t.abs_src;
  Buffer.add_char buf '\n';
  add_line buf "conc-src|%d" (String.length t.conc_src);
  Buffer.add_string buf t.conc_src;
  Buffer.add_char buf '\n';
  add_line buf "root|%s|%s" t.root.p_abs t.root.p_conc;
  List.iter (emit_node buf) (sort_nodes t.nodes);
  List.iter (emit_edge buf) (sort_edges t.edges);
  frame cert_magic (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Parse                                                               *)
(* ------------------------------------------------------------------ *)

(** A cursor over the body: plain line reads plus exact-byte block reads
    for the embedded sources (which line splitting would mangle). *)
type cursor = { src : string; mutable pos : int }

let at_end cur = cur.pos >= String.length cur.src

let read_line cur =
  if at_end cur then fail "unexpected end of certificate";
  let nl =
    match String.index_from_opt cur.src cur.pos '\n' with
    | Some i -> i
    | None -> fail "unterminated line"
  in
  let line = String.sub cur.src cur.pos (nl - cur.pos) in
  cur.pos <- nl + 1;
  line

let read_block cur n =
  if cur.pos + n + 1 > String.length cur.src then fail "truncated source block";
  let s = String.sub cur.src cur.pos n in
  if cur.src.[cur.pos + n] <> '\n' then fail "source block not newline-terminated";
  cur.pos <- cur.pos + n + 1;
  s

let int_of s =
  match int_of_string_opt s with Some n -> n | None -> fail "bad integer %S" s

let parse_pair da dc = { p_abs = da; p_conc = dc }

let parse_edge_fields = function
  | da :: dc :: name :: args :: oblig :: code :: rest ->
      let verdict =
        match (code, rest) with
        | "ok", [ pa; pc ] -> E_ok (parse_pair pa pc)
        | "stuck", [] -> E_stuck
        | "missing", [ r ] -> E_missing (unesc r)
        | "escape", [ r ] -> E_escape (unesc r)
        | "obs", [ r ] -> E_obs (unesc r)
        | _ -> fail "bad edge verdict %S" code
      in
      {
        e_pre = parse_pair da dc;
        e_event = unesc name;
        e_args = dec_args args;
        e_oblig = unesc oblig;
        e_verdict = verdict;
      }
  | _ -> fail "malformed edge line"

let unframe magic (s : string) : string =
  let nl =
    match String.index_opt s '\n' with
    | Some i -> i
    | None -> fail "missing header line"
  in
  match String.split_on_char '|' (String.sub s 0 nl) with
  | [ m; len; crc ] when String.equal m magic ->
      let body = String.sub s (nl + 1) (String.length s - nl - 1) in
      if String.length body <> int_of len then
        fail "body length differs from header";
      if Printf.sprintf "%08x" (Wal.crc32 body land 0xffffffff) <> crc then
        fail "CRC mismatch";
      body
  | m :: _ -> fail "unknown header %S (wanted %s)" m magic
  | [] -> fail "empty header"

let decode (s : string) : (t, string) result =
  try
    let cur = { src = unframe cert_magic s; pos = 0 } in
    let abs_class, conc_class, abs_key, conc_key, abs_args, conc_args, depth,
        holds =
      match String.split_on_char '|' (read_line cur) with
      | [ "impl"; ac; cc; ak; ck; aa; ca; d; h ] ->
          ( unesc ac,
            unesc cc,
            dec_value ak,
            dec_value ck,
            dec_args aa,
            dec_args ca,
            int_of d,
            int_of h <> 0 )
      | _ -> fail "first record is not impl"
    in
    let fail_reason = ref None in
    let event_map = ref [] and attr_map = ref [] and hidden = ref [] in
    let alphabet = ref [] in
    let abs_src = ref None and conc_src = ref None in
    let root = ref None in
    let nodes = ref [] and edges = ref [] in
    while not (at_end cur) do
      match String.split_on_char '|' (read_line cur) with
      | [ "fail"; r ] -> fail_reason := Some (unesc r)
      | [ "emap"; a; c ] -> event_map := (unesc a, unesc c) :: !event_map
      | [ "amap"; a; c ] -> attr_map := (unesc a, unesc c) :: !attr_map
      | [ "hide"; a ] -> hidden := unesc a :: !hidden
      | [ "cand"; n; args ] -> alphabet := (unesc n, dec_args args) :: !alphabet
      | [ "abs-src"; n ] -> abs_src := Some (read_block cur (int_of n))
      | [ "conc-src"; n ] -> conc_src := Some (read_block cur (int_of n))
      | [ "root"; da; dc ] -> root := Some (parse_pair da dc)
      | [ "node"; da; dc; d ] ->
          nodes := (parse_pair da dc, int_of d) :: !nodes
      | "edge" :: rest -> edges := parse_edge_fields rest :: !edges
      | _ -> fail "malformed certificate line"
    done;
    let require what = function Some x -> x | None -> fail "missing %s" what in
    Ok
      {
        abs_src = require "abs-src" !abs_src;
        conc_src = require "conc-src" !conc_src;
        abs_class;
        conc_class;
        abs_key;
        conc_key;
        abs_args;
        conc_args;
        event_map = List.rev !event_map;
        attr_map = List.rev !attr_map;
        hidden = List.rev !hidden;
        depth;
        alphabet = List.rev !alphabet;
        root = require "root" !root;
        nodes = List.rev !nodes;
        edges = List.rev !edges;
        holds;
        fail_reason = !fail_reason;
      }
  with Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Builder: recording sink + memo table                                *)
(* ------------------------------------------------------------------ *)

(** One node/edge table set.  The builder owns the shared one
    (sequential exploration); each parallel branch task writes a private
    copy that is merged back in alphabet order. *)
type sink = {
  s_nodes : (string, pair * int) Hashtbl.t;  (* node_key -> (pair, max depth) *)
  s_edges : (string, edge) Hashtbl.t;  (* edge_key -> edge *)
  mutable s_skips : int;
}

let new_sink () =
  { s_nodes = Hashtbl.create 64; s_edges = Hashtbl.create 64; s_skips = 0 }

type builder = {
  b_abs_src : string;
  b_conc_src : string;
  b_impl : Implementation.t;
  b_abs_key : Value.t;
  b_conc_key : Value.t;
  b_abs_args : Value.t list;
  b_conc_args : Value.t list;
  b_alphabet : (string * Value.t list) list;
  b_depth : int;
  b_sink : sink;
  mutable b_root : pair option;
  mutable b_fail : string option;
  mutable b_loaded : int;  (* pairs seeded from a persisted memo *)
}

let builder ~abs_src ~conc_src ~(impl : Implementation.t) ~abs_key ~conc_key
    ?(abs_args = []) ?(conc_args = []) ~alphabet ~depth () : builder =
  {
    b_abs_src = abs_src;
    b_conc_src = conc_src;
    b_impl = impl;
    b_abs_key = abs_key;
    b_conc_key = conc_key;
    b_abs_args = abs_args;
    b_conc_args = conc_args;
    b_alphabet = alphabet;
    b_depth = depth;
    b_sink = new_sink ();
    b_root = None;
    b_fail = None;
    b_loaded = 0;
  }

let sink b = b.b_sink

let branch_sink b =
  (* a private copy of the shared tables as they stand (root node plus
     any memo-loaded pairs): branch tasks on pool domains never touch
     the shared sink, so recording is race-free and the merged result is
     the deterministic union *)
  {
    s_nodes = Hashtbl.copy b.b_sink.s_nodes;
    s_edges = Hashtbl.copy b.b_sink.s_edges;
    s_skips = 0;
  }

let merge b (frag : sink) =
  Hashtbl.iter
    (fun k (p, d) ->
      match Hashtbl.find_opt b.b_sink.s_nodes k with
      | Some (_, d0) when d0 >= d -> ()
      | _ -> Hashtbl.replace b.b_sink.s_nodes k (p, d))
    frag.s_nodes;
  Hashtbl.iter
    (fun k e ->
      if not (Hashtbl.mem b.b_sink.s_edges k) then
        Hashtbl.replace b.b_sink.s_edges k e)
    frag.s_edges;
  b.b_sink.s_skips <- b.b_sink.s_skips + frag.s_skips

let enter (s : sink) (p : pair) ~(depth : int) : bool =
  let k = node_key p in
  match Hashtbl.find_opt s.s_nodes k with
  | Some (_, d) when d >= depth ->
      s.s_skips <- s.s_skips + 1;
      false
  | _ ->
      (* record before exploring: a cycle back to [p] at lower remaining
         depth must skip, or the search would not terminate *)
      Hashtbl.replace s.s_nodes k (p, depth);
      true

let note_frontier (s : sink) (p : pair) =
  let k = node_key p in
  if not (Hashtbl.mem s.s_nodes k) then Hashtbl.replace s.s_nodes k (p, 0)

let add_edge (s : sink) (e : edge) =
  let k = edge_key e in
  if not (Hashtbl.mem s.s_edges k) then Hashtbl.replace s.s_edges k e

let skips (s : sink) = s.s_skips

let note_root b p =
  b.b_root <- Some p;
  (* the root pair is a node even when depth = 0 *)
  let k = node_key p in
  if not (Hashtbl.mem b.b_sink.s_nodes k) then
    Hashtbl.replace b.b_sink.s_nodes k (p, 0)

let note_failed b reason = b.b_fail <- Some reason
let loaded_pairs b = b.b_loaded

let finish (b : builder) : t =
  let root =
    match b.b_root with
    | Some p -> p
    | None -> invalid_arg "Certificate.finish: no root recorded"
  in
  {
    abs_src = b.b_abs_src;
    conc_src = b.b_conc_src;
    abs_class = b.b_impl.Implementation.abs_class;
    conc_class = b.b_impl.Implementation.conc_class;
    abs_key = b.b_abs_key;
    conc_key = b.b_conc_key;
    abs_args = b.b_abs_args;
    conc_args = b.b_conc_args;
    event_map = b.b_impl.Implementation.event_map;
    attr_map = b.b_impl.Implementation.attr_map;
    hidden = b.b_impl.Implementation.hidden;
    depth = b.b_depth;
    alphabet = b.b_alphabet;
    root;
    nodes = sort_nodes (Hashtbl.fold (fun _ nd acc -> nd :: acc) b.b_sink.s_nodes []);
    edges = sort_edges (Hashtbl.fold (fun _ e acc -> e :: acc) b.b_sink.s_edges []);
    holds = b.b_fail = None;
    fail_reason = b.b_fail;
  }

(* ------------------------------------------------------------------ *)
(* Persisted memo                                                      *)
(* ------------------------------------------------------------------ *)

(** Digest identifying the whole problem instance — both sources, the
    class/key/argument coordinates, the implementation mapping and the
    alphabet.  Depth is deliberately excluded: node entries carry their
    own explored depth, so a deeper re-check of the same instance can
    reuse a shallower run's table. *)
let spec_key (b : builder) : string =
  let buf = Buffer.create 1024 in
  let field s =
    Value_codec.add_int buf (String.length s);
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  field b.b_abs_src;
  field b.b_conc_src;
  field b.b_impl.Implementation.abs_class;
  field b.b_impl.Implementation.conc_class;
  field (Value_codec.encode b.b_abs_key);
  field (Value_codec.encode b.b_conc_key);
  field (Value_codec.encode (Value.List b.b_abs_args));
  field (Value_codec.encode (Value.List b.b_conc_args));
  List.iter
    (fun (a, c) ->
      field a;
      field c)
    b.b_impl.Implementation.event_map;
  List.iter
    (fun (a, c) ->
      field a;
      field c)
    b.b_impl.Implementation.attr_map;
  List.iter field b.b_impl.Implementation.hidden;
  List.iter
    (fun (n, args) ->
      field n;
      field (Value_codec.encode (Value.List args)))
    b.b_alphabet;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let memo_path ~dir ~key = Filename.concat dir (key ^ ".tmemo")

let save_memo (b : builder) ~(dir : string) : (unit, string) result =
  if b.b_fail <> None then
    (* a failed search stopped mid-node: its table does not certify
       "no violation below this pair" and must not seed later runs *)
    Ok ()
  else
    let buf = Buffer.create 4096 in
    List.iter (emit_node buf)
      (sort_nodes (Hashtbl.fold (fun _ nd acc -> nd :: acc) b.b_sink.s_nodes []));
    List.iter (emit_edge buf)
      (sort_edges (Hashtbl.fold (fun _ e acc -> e :: acc) b.b_sink.s_edges []));
    let body = Printf.sprintf "%s\n%s" (spec_key b) (Buffer.contents buf) in
    try
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Persist.write_file_atomic (memo_path ~dir ~key:(spec_key b))
        (frame memo_magic body);
      Ok ()
    with Sys_error m | Unix.Unix_error (_, m, _) -> Error m

let load_memo (b : builder) ~(dir : string) : (int, string) result =
  let path = memo_path ~dir ~key:(spec_key b) in
  if not (Sys.file_exists path) then Ok 0
  else
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      let cur = { src = unframe memo_magic s; pos = 0 } in
      if read_line cur <> spec_key b then Ok 0
      else begin
        let count = ref 0 in
        while not (at_end cur) do
          match String.split_on_char '|' (read_line cur) with
          | [ "node"; da; dc; d ] ->
              let p = parse_pair da dc in
              incr count;
              Hashtbl.replace b.b_sink.s_nodes (node_key p) (p, int_of d)
          | "edge" :: rest ->
              let e = parse_edge_fields rest in
              Hashtbl.replace b.b_sink.s_edges (edge_key e) e
          | _ -> fail "malformed memo line"
        done;
        b.b_loaded <- !count;
        Ok !count
      end
    with
    | Bad m -> Error m
    | Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Pretty                                                              *)
(* ------------------------------------------------------------------ *)

let pp_summary ppf (t : t) =
  Format.fprintf ppf
    "certificate: %s refined by %s, depth %d, %s@,  nodes %d@,  edges %d"
    t.abs_class t.conc_class t.depth
    (if t.holds then "holds" else "FAILS")
    (List.length t.nodes) (List.length t.edges)
