(** Independent certificate validation.

    The validator shares no search or verdict-forming code with
    {!Refinement.check}: it rebuilds both communities from the sources
    embedded in the certificate, recreates the probe instances, and
    *replays* every recorded edge under nested {!Txn.probe} scopes,
    checking digests, enabledness on both sides, observation agreement
    and the discharged obligation against the certificate's claims.

    Structural checks force the claimed depth coverage: the root must be
    explored to the stated bound, every node with remaining depth must
    carry one edge per alphabet candidate, and every accepted edge must
    land on a node explored at most one level shallower.  Together with
    replay, this rejects all tamper classes the fuzz oracle exercises —
    flipped verdicts, corrupted digests, dropped edges. *)

type stats = {
  v_nodes : int;  (** state-pair nodes visited during replay *)
  v_edges : int;  (** edges replayed under probes *)
}

val validate : Certificate.t -> (stats, string) result
(** [Ok stats] iff every structural invariant holds and every edge
    replays to its claimed verdict.  [Error reason] names the first
    discrepancy. *)

val validate_string : string -> (stats, string) result
(** {!Certificate.decode} then {!validate}. *)
