(** Counterexample files: a shrunk (spec, trace) pair in one
    self-contained text file, written when a fuzz run fails and
    replayable afterwards (see docs/TESTING.md for the promotion
    workflow into [test/corpus/]).

    Format: comment header (seed, iteration, oracle, detail), the
    specification source between [== SPEC ==] and [== TRACE ==], then
    one NDJSON request frame per trace step — the same wire encoding
    the society server speaks — closed by [== END ==]. *)

val write :
  path:string ->
  seed:int ->
  iter:int ->
  oracle:string ->
  detail:string ->
  src:string ->
  trace:Step.t list ->
  unit

val read : string -> (string * Step.t list, string) result
(** Load a counterexample file back as (spec source, trace). *)
