(** The nine differential oracles every generated (spec, trace) pair
    is checked against.

    - ["dispatch"]: compiled vs interpreted rule dispatch — identical
      {!Runtime_error.code}s step by step and bit-identical
      {!Persist.save} images at the end.
    - ["server"]: {!Engine.step} in-process vs the NDJSON society
      server over a pipe (a forked child runs [Server.serve_fds]) —
      frame-by-frame agreement on outcome and error code, plus a final
      inline [save] compared against the in-process image.
    - ["replay"]: save at the trace midpoint, load into a fresh
      community, replay the suffix on both — identical codes and final
      images.
    - ["journal"]: every step is probed ({!Txn.probe}), cloned
      ({!Community.clone}) and executed — the three verdicts agree, the
      probe leaves the image untouched, a rejected step leaves it
      untouched, and clone and community stay bit-identical.
    - ["parallel"]: {!Engine.enabled_events_par} /
      {!Engine.candidate_events_par} over a jobs=4 {!Pool} against a
      frozen {!View} vs the sequential queries, on every trace prefix
      and every object; probing must not invalidate the view.  Runs in
      a forked child (domains would make the parent unforkable), so the
      fuzz driver itself never creates a domain.
    - ["recovery"]: a forked child animates the trace with a {!Wal}
      attached ([fsync `Batch]) and SIGKILLs itself from inside the
      commit callback of the k-th durable batch; {!Wal.recover} must
      then rebuild a community whose {!Persist.save} image is
      bit-identical to a clean run stopped at the same commit
      boundary.  k is a pure function of (src, trace), so failures
      replay exactly.
    - ["sharded"]: a pseudo-random 2-shard partition (class groups
      assigned by a hash of the source, so failures replay exactly)
      routes the trace through {!Shard.coordinate} — cross-shard steps
      commit by two-phase protocol — against a plain single-engine
      session: identical error codes step by step, and the merged
      {!Troll.Session.save} dump bit-identical to the single-engine
      dump.  Outcome shapes are not compared (a cross-shard sync step
      decomposes into per-shard micro-steps).  When the spec admits
      identity-hash partitioning, a source-hash coin flip routes
      through the [hash:2] map ({!Shard.by_hash}) instead.
    - ["linearizable"]: the trace runs in chunks of
      {!Pool.small_batch_cutoff} steps through
      {!Engine.step_batch_par} over a jobs=4 {!Pool}; each chunk is
      replayed sequentially from the same {!Persist.save} pre-image.
      Verdict codes and the post-chunk image must be bit-identical to
      the left-to-right order; on divergence the oracle searches the
      other sequential orders (bounded permutation sweep) to
      distinguish a reordered-but-linearizable schedule from one
      matching no sequential order.  Runs in a forked child, like
      ["parallel"].
    - ["certificate"]: every specification refines itself, so two
      fresh communities from the same source are lock-step checked
      with {!Refinement.check} recording a certificate; the encoding
      must round-trip bit-identically, {!Validator.validate} must
      accept the genuine certificate and reject three semantic tampers
      (flipped verdict, consistently corrupted digest, dropped edge),
      each re-encoded so the CRC frame stays valid.  Skipped when no
      class instance is creatable from the default value pools.

    Oracles take the rendered source so the shrinker can re-render
    candidate models and re-run just the failing oracle. *)

type failure = { oracle : string; detail : string }

val oracle_names : string list

val run_oracle : string -> string -> Step.t list -> (unit, failure) result
(** [run_oracle name src trace].  A spec that fails to load yields a
    ["load"] failure; an escaped exception an ["exception"] failure —
    both distinct from every real oracle name, so a shrinking predicate
    keyed on the original oracle rejects such candidates.  Unknown
    names raise [Invalid_argument]. *)

val check_all : string -> Step.t list -> (unit, failure) result
(** Run all nine oracles in order, returning the first failure. *)

val request_of_step : id:int -> Step.t -> Json.t
(** The wire request frame executing the step, as the society server
    decodes it ([op] = create / destroy / fire / batch / sync / txn). *)
