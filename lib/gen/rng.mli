(** Seed-deterministic pseudo-random numbers for the spec fuzzer.

    A splitmix64 stream: the same [(seed, salt)] pair always yields the
    same draws, on every platform, independent of the OCaml [Random]
    module's state or version.  Streams are cheap records; {!split]
    derives an independent child stream so generation of one component
    cannot perturb the draws of its siblings. *)

type t

val make : int -> t
(** A stream from a bare seed. *)

val make2 : int -> int -> t
(** A stream from a [(seed, salt)] pair — used for per-iteration
    streams, [make2 seed iter]. *)

val split : t -> t
(** An independent child stream (advances the parent by one draw). *)

val bits64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]; requires [n > 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance t num den]: true with probability [num/den]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
