(* Splitmix64 (Steele, Lea & Flood 2014): a tiny, statistically solid,
   trivially seedable generator.  We keep our own stream instead of
   [Random] so fuzzer runs reproduce bit-for-bit from a seed across
   OCaml versions. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }

let make2 seed salt =
  {
    state =
      Int64.add
        (Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL)
        (Int64.mul (Int64.of_int salt) golden);
  }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.logand (bits64 t) Int64.max_int) (Int64.of_int n))

let range t lo hi = lo + int t (hi - lo + 1)
let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t num den = int t den < num

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
