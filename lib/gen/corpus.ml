let spec_marker = "== SPEC =="
let trace_marker = "== TRACE =="
let end_marker = "== END =="

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let write ~path ~seed ~iter ~oracle ~detail ~src ~trace =
  let oc = open_out_bin path in
  Printf.fprintf oc "-- troll-fuzz counterexample\n";
  Printf.fprintf oc "-- seed: %d iter: %d oracle: %s\n" seed iter oracle;
  Printf.fprintf oc "-- detail: %s\n" (one_line detail);
  Printf.fprintf oc "%s\n%s" spec_marker src;
  if src <> "" && src.[String.length src - 1] <> '\n' then output_char oc '\n';
  Printf.fprintf oc "%s\n" trace_marker;
  List.iteri
    (fun i st ->
      Printf.fprintf oc "%s\n" (Json.to_string (Oracle.request_of_step ~id:i st)))
    trace;
  Printf.fprintf oc "%s\n" end_marker;
  close_out oc

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  let lines = String.split_on_char '\n' text in
  let rec skip_header = function
    | l :: rest when l = spec_marker -> Ok rest
    | _ :: rest -> skip_header rest
    | [] -> Error (path ^ ": no " ^ spec_marker ^ " marker")
  in
  match skip_header lines with
  | Error _ as e -> e
  | Ok rest ->
      let rec split_spec acc = function
        | l :: rest when l = trace_marker -> Ok (List.rev acc, rest)
        | l :: rest -> split_spec (l :: acc) rest
        | [] -> Error (path ^ ": no " ^ trace_marker ^ " marker")
      in
      (match split_spec [] rest with
      | Error _ as e -> e
      | Ok (spec_lines, rest) ->
          let src = String.concat "\n" spec_lines ^ "\n" in
          let rec parse_steps acc = function
            | l :: _ when l = end_marker -> Ok (List.rev acc)
            | "" :: rest -> parse_steps acc rest
            | l :: rest -> (
                match Json.of_string l with
                | Error e -> Error (Printf.sprintf "%s: bad frame %S: %s" path l e)
                | Ok j -> (
                    match (Protocol.decode j).Protocol.request with
                    | Ok (Protocol.Step st) -> parse_steps (st :: acc) rest
                    | Ok _ -> Error (path ^ ": frame is not a step request: " ^ l)
                    | Error e ->
                        Error (Printf.sprintf "%s: undecodable request %S: %s" path l e)))
            | [] -> Error (path ^ ": no " ^ end_marker ^ " marker")
          in
          (match parse_steps [] rest with
          | Error _ as e -> e
          | Ok steps -> Ok (src, steps)))
