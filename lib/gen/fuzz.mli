(** The fuzzing driver: N seeded iterations of generate → trace → four
    oracles, shrinking the first failure.

    Iteration [i] of a run draws everything from the stream
    [Rng.make2 seed i], so a failure reported as (seed, iter) is
    reproduced exactly by [trollc fuzz --seed SEED --iters N] for any
    [N > iter] — and by a run of one iteration after advancing to it.

    A specification that fails to load is itself a failure (oracle
    ["wellformed"]): {!Genspec.generate} promises well-typedness. *)

type failure = {
  f_iter : int;
  f_oracle : string;
  f_detail : string;
  f_spec : string;  (** rendered source as generated *)
  f_trace : Step.t list;
  f_shrunk_spec : string;
  f_shrunk_trace : Step.t list;
}

type outcome = {
  iterations : int;  (** iterations completed (== iters when clean) *)
  failure : failure option;
}

val run :
  ?log:(string -> unit) ->
  ?out_dir:string ->
  seed:int ->
  iters:int ->
  shrink:bool ->
  unit ->
  outcome
(** Stops at the first failure (after shrinking it, when [shrink]); a
    counterexample file is written into [out_dir] when given.  [log]
    receives progress lines. *)
