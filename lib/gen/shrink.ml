(* Greedy structural shrinking.  The predicate is the only judge: a
   candidate is kept exactly when it still fails the original oracle,
   and ill-formed candidates (a dropped class still referenced by a
   surrogate attribute, say) fail to load, which the oracles report as
   a distinct failure kind, so the predicate rejects them for free. *)

open Genspec

(* ---------------------------------------------------------------- *)
(* Trace surgery                                                     *)
(* ---------------------------------------------------------------- *)

let remove_range i n l = List.filteri (fun k _ -> k < i || k >= i + n) l

let step_events = function
  | Step.Fire e -> [ e ]
  | Step.Sync evs | Step.Seq evs -> evs
  | Step.Txn micro -> List.concat micro
  | Step.Create _ | Step.Destroy _ -> []

let mentions_class cls st =
  match st with
  | Step.Create { cls = c; _ } -> c = cls
  | Step.Destroy { id; _ } -> id.Ident.cls = cls
  | _ -> List.exists (fun e -> e.Event.target.Ident.cls = cls) (step_events st)

let fires cls ev st =
  List.exists
    (fun e -> e.Event.target.Ident.cls = cls && e.Event.name = ev)
    (step_events st)

(* Chunk removal with halving sizes, to a fixpoint. *)
let reduce_trace pred spec trace =
  let rec chunk_pass size trace =
    if size = 0 then trace
    else
      let rec scan i trace =
        if i >= List.length trace then chunk_pass (size / 2) trace
        else
          let cand = remove_range i size trace in
          if List.length cand < List.length trace && pred spec cand then scan i cand
          else scan (i + size) trace
      in
      scan 0 trace
  in
  match trace with [] -> [] | _ -> chunk_pass (max 1 (List.length trace / 2)) trace

(* ---------------------------------------------------------------- *)
(* Spec surgery                                                      *)
(* ---------------------------------------------------------------- *)

let uses_event pair r = List.mem pair r.r_uses

let filter_class_rules keep c =
  {
    c with
    c_vals = List.filter keep c.c_vals;
    c_perms = List.filter keep c.c_perms;
    c_calls = List.filter keep c.c_calls;
    c_cons = List.filter keep c.c_cons;
  }

let drop_class spec name =
  {
    spec with
    s_classes = List.filter (fun c -> c.c_name <> name) spec.s_classes;
    s_globals =
      List.filter
        (fun r -> not (List.exists (fun (c, _) -> c = name) r.r_uses))
        spec.s_globals;
  }

let drop_event spec cls_name ev_name =
  let pair = (cls_name, ev_name) in
  let keep r = not (uses_event pair r) in
  {
    spec with
    s_classes =
      List.map
        (fun c ->
          let c = filter_class_rules keep c in
          if c.c_name = cls_name then
            { c with c_events = List.filter (fun e -> e.e_name <> ev_name) c.c_events }
          else c)
        spec.s_classes;
    s_globals = List.filter keep spec.s_globals;
  }

let map_class spec name f =
  {
    spec with
    s_classes = List.map (fun c -> if c.c_name = name then f c else c) spec.s_classes;
  }

let drop_nth n l = List.filteri (fun i _ -> i <> n) l
let unguard_nth n l = List.mapi (fun i r -> if i = n then { r with r_guard = None } else r) l

(* Every single-edit candidate, biggest-first: classes, then events,
   then individual rules, then guards.  Each edit pairs the new spec
   with the trace filter that keeps the trace meaningful under it. *)
let edits spec =
  let keep_all tr = tr in
  let class_drops =
    List.rev_map
      (fun c ->
        ( drop_class spec c.c_name,
          fun tr -> List.filter (fun st -> not (mentions_class c.c_name st)) tr ))
      spec.s_classes
  in
  let event_drops =
    List.concat_map
      (fun c ->
        List.filter_map
          (fun e ->
            match e.e_kind with
            | Normal | Active ->
                Some
                  ( drop_event spec c.c_name e.e_name,
                    fun tr ->
                      List.filter (fun st -> not (fires c.c_name e.e_name st)) tr )
            | Birth | Death -> None)
          c.c_events)
      spec.s_classes
  in
  let rule_drops =
    List.concat_map
      (fun c ->
        let per field set =
          List.mapi
            (fun i _ -> (map_class spec c.c_name (fun c -> set c (drop_nth i (field c))), keep_all))
            (field c)
        in
        per (fun c -> c.c_vals) (fun c l -> { c with c_vals = l })
        @ per (fun c -> c.c_perms) (fun c l -> { c with c_perms = l })
        @ per (fun c -> c.c_calls) (fun c l -> { c with c_calls = l })
        @ per (fun c -> c.c_cons) (fun c l -> { c with c_cons = l }))
      spec.s_classes
    @ List.mapi
        (fun i _ -> ({ spec with s_globals = drop_nth i spec.s_globals }, keep_all))
        spec.s_globals
  in
  let guard_drops =
    List.concat_map
      (fun c ->
        let per field set =
          List.concat
            (List.mapi
               (fun i r ->
                 match r.r_guard with
                 | Some _ ->
                     [ (map_class spec c.c_name (fun c -> set c (unguard_nth i (field c))), keep_all) ]
                 | None -> [])
               (field c))
        in
        per (fun c -> c.c_vals) (fun c l -> { c with c_vals = l })
        @ per (fun c -> c.c_calls) (fun c l -> { c with c_calls = l }))
      spec.s_classes
  in
  class_drops @ event_drops @ rule_drops @ guard_drops

let shrink ~pred spec trace =
  let trace = reduce_trace pred spec trace in
  let rec spec_pass spec trace budget =
    if budget = 0 then (spec, trace)
    else
      let rec try_edits = function
        | [] -> None
        | (spec', tracef) :: rest ->
            let trace' = tracef trace in
            if pred spec' trace' then Some (spec', trace') else try_edits rest
      in
      match try_edits (edits spec) with
      | Some (spec', trace') -> spec_pass spec' trace' (budget - 1)
      | None -> (spec, trace)
  in
  let spec, trace = spec_pass spec trace 100 in
  let trace = reduce_trace pred spec trace in
  (spec, trace)
