(** Greedy structural shrinking of a failing (spec, trace) pair.

    [shrink ~pred spec trace] minimises against [pred] ("does this
    candidate still fail the way the original did?").  Trace reduction
    removes contiguous chunks of halving sizes to a fixpoint; spec
    reduction greedily drops whole classes (with the trace steps that
    mention them), events (with their dependent rules and trace steps),
    individual valuation/permission/calling/constraint rules, global
    interactions, and optional guards — accepting any edit [pred]
    confirms, then re-reducing the trace.  Candidates that no longer
    load are rejected by [pred] itself (the oracles report a distinct
    ["load"] failure), so no separate validity check is needed. *)

val shrink :
  pred:(Genspec.spec -> Step.t list -> bool) ->
  Genspec.spec ->
  Step.t list ->
  Genspec.spec * Step.t list
