type failure = {
  f_iter : int;
  f_oracle : string;
  f_detail : string;
  f_spec : string;
  f_trace : Step.t list;
  f_shrunk_spec : string;
  f_shrunk_trace : Step.t list;
}

type outcome = { iterations : int; failure : failure option }

(* One iteration: generate a model, render it, load a scratch community
   for trace generation, then run the four oracles. *)
let iteration ~seed ~iter =
  let rng = Rng.make2 seed iter in
  let model = Genspec.generate (Rng.split rng) in
  let src = Genspec.render model in
  match Troll.Session.load src with
  | Error e ->
      Some
        ( model,
          src,
          [],
          {
            Oracle.oracle = "wellformed";
            detail = "generated spec failed to load: " ^ Troll.Error.to_string e;
          } )
  | Ok scratch ->
      let len = Rng.range rng 15 40 in
      let trace =
        Gentrace.generate rng model (Troll.Session.community scratch) ~len
      in
      (match Oracle.check_all src trace with
      | Ok () -> None
      | Error f -> Some (model, src, trace, f))

let shrink_failure model trace (f : Oracle.failure) =
  if f.oracle = "wellformed" then
    (* minimise "does not load" directly: no trace is involved *)
    let pred m _ =
      match Troll.Session.load (Genspec.render m) with
      | Error _ -> true
      | Ok _ -> false
    in
    Shrink.shrink ~pred model []
  else
    let pred m t =
      match Oracle.run_oracle f.oracle (Genspec.render m) t with
      | Error f' -> f'.Oracle.oracle = f.oracle
      | Ok () -> false
    in
    Shrink.shrink ~pred model trace

let run ?(log = ignore) ?out_dir ~seed ~iters ~shrink () =
  let rec loop i =
    if i >= iters then { iterations = iters; failure = None }
    else (
      if i > 0 && i mod 50 = 0 then
        log (Printf.sprintf "fuzz: %d/%d iterations clean" i iters);
      match iteration ~seed ~iter:i with
      | None -> loop (i + 1)
      | Some (model, src, trace, f) ->
          log
            (Printf.sprintf "fuzz: iteration %d failed oracle %s: %s" i f.oracle
               f.detail);
          let shrunk_model, shrunk_trace =
            if shrink then (
              log "fuzz: shrinking...";
              shrink_failure model trace f)
            else (model, trace)
          in
          let shrunk_src = Genspec.render shrunk_model in
          let failure =
            {
              f_iter = i;
              f_oracle = f.oracle;
              f_detail = f.detail;
              f_spec = src;
              f_trace = trace;
              f_shrunk_spec = shrunk_src;
              f_shrunk_trace = shrunk_trace;
            }
          in
          (match out_dir with
          | Some dir ->
              (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
              let path =
                Filename.concat dir
                  (Printf.sprintf "counterexample-seed%d-iter%d.fuzz" seed i)
              in
              Corpus.write ~path ~seed ~iter:i ~oracle:f.oracle ~detail:f.detail
                ~src:shrunk_src ~trace:shrunk_trace;
              log (Printf.sprintf "fuzz: counterexample written to %s" path)
          | None -> ());
          { iterations = i; failure = Some failure })
  in
  loop 0
