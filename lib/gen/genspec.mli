(** Generation of well-typed TROLL specifications.

    A generated specification is kept as a structured model — classes
    with attributes, events, valuation/permission/calling/constraint
    rules, components, aspect ("view of") and inheritance
    ("specialization of") edges, plus global interactions — and rendered
    to concrete syntax on demand.  The model is what the shrinker edits:
    rule texts are atomic, but classes, events, individual rules and
    optional guards can all be dropped structurally, and every rule
    records which events it mentions so dependent rules fall away with
    their events.

    Every model produced by {!generate} renders to a source text that
    passes the full [Troll.Session.load] pipeline (parse, static check,
    compile); the fuzzer treats a load failure as a bug in its own
    right. *)

(** Value types the generator draws from (a subset of {!Vtype.t} that
    keeps expression synthesis simple). *)
type atype =
  | TInt
  | TBool
  | TMoney
  | TString
  | TEnum of string * string list  (** enumeration name, constants *)
  | TSurr of string  (** [|CLS|] *)
  | TSetInt
  | TSetSurr of string

val type_text : atype -> string
(** Concrete syntax of the type. *)

type event_kind = Birth | Death | Normal | Active

type ev = { e_name : string; e_kind : event_kind; e_params : atype list }
type attr = { a_name : string; a_ty : atype }

type rule = {
  r_event : string;
      (** the event this rule is attached to; [""] for constraints *)
  r_uses : (string * string) list;
      (** every (class, event) the rule text mentions — the rule must be
          dropped when any of them is *)
  r_vars : (string * string) list;  (** variable name, type text *)
  r_guard : string option;
      (** separable guard (valuation / calling rules only) *)
  r_text : string;  (** rule body, without guard or trailing [;] *)
}

(** How a class relates to the rest of the schema. *)
type relation =
  | Base  (** plain object class with its own identification *)
  | View of string * string
      (** [(base, trigger)]: an aspect/phase class, [view of base],
          born when the parameterless base event [trigger] fires *)
  | Spec of string
      (** [specialization of base]: own birth, requires the base aspect
          alive under the same key *)

type cls = {
  c_name : string;
  c_rel : relation;
  c_attrs : attr list;
  c_events : ev list;  (** excludes the phase-birth trigger for [View] *)
  c_comps : (string * string) list;  (** component name, element class *)
  c_vals : rule list;
  c_perms : rule list;
  c_calls : rule list;
  c_cons : rule list;
}

type spec = {
  s_enums : (string * string list) list;
  s_classes : cls list;
  s_globals : rule list;  (** global interaction calling rules *)
}

val generate : Rng.t -> spec
(** Draw a fresh model: 2–4 base classes (attributes over the full type
    pool including surrogates and sets of surrogates, birth/death/normal
    and occasional active events, valuations with optional guards,
    state and temporal permissions, local and transaction calling
    rules, components), 0–2 aspect or specialization classes, 0–2
    enumerations, and 0–2 global interactions.  Deterministic in the
    stream. *)

val render : spec -> string
(** Concrete syntax of the whole specification. *)

val find_class : spec -> string -> cls option

val event_params : spec -> string -> string -> atype list option
(** [event_params s cls ev]: declared parameter types, looking through
    aspect and specialization edges to the base class. *)
