(** Event-sequence workloads over a generated specification.

    {!generate} draws a list of {!Step.t} requests — creations, single
    fires, synchronous sets, sequences, transactions and destructions —
    against a scratch community that it advances as it goes, so later
    steps see the state earlier steps produced.  Argument synthesis is
    type-directed ({!value_of_vtype}); event selection is biased toward
    accepted steps by probing {!Engine.enabled} on a few candidates
    before settling, while keeping a tail of rejected and even
    ill-targeted steps so the oracles exercise rollback and error
    paths. *)

val value_of_vtype : Rng.t -> Community.t -> Vtype.t -> Value.t
(** A pseudo-random value of the type; surrogate types draw a living
    object of the class when one exists (occasionally, or when the
    extension is empty, a dangling identity). *)

val generate : Rng.t -> Genspec.spec -> Community.t -> len:int -> Step.t list
(** [generate rng spec scratch ~len]: a workload of [len] steps.  The
    scratch community (loaded from [Genspec.render spec]) is mutated. *)
