(* Generation of well-typed TROLL specifications.

   The generator draws a structured model first and renders concrete
   syntax from it; rule bodies are rendered eagerly (they are atomic to
   the shrinker) but carry enough metadata — the attached event, every
   (class, event) mentioned, the variables needed, a separable guard —
   for structural shrinking to drop classes, events, rules and guards
   without re-parsing anything.

   Well-typedness discipline, so every render passes the checker:
   - surrogate/set-of-surrogate attribute types, components and global
     interactions only reference classes declared *earlier*;
   - local calling rules only call events with a *larger* index and
     global interactions only call classes with a *smaller* index, so
     the calling closure is acyclic by construction;
   - variable names encode their type ([Vi1 : integer], [VoC0_1 :
     |C0|]), so merging the variable sections of independent rules can
     never produce one name at two types;
   - boolean attributes referenced by temporal constraints are
     constant-initialised to [false] at birth, keeping every birth
     admissible with respect to those constraints. *)

type atype =
  | TInt
  | TBool
  | TMoney
  | TString
  | TEnum of string * string list
  | TSurr of string
  | TSetInt
  | TSetSurr of string

let type_text = function
  | TInt -> "integer"
  | TBool -> "bool"
  | TMoney -> "money"
  | TString -> "string"
  | TEnum (n, _) -> n
  | TSurr c -> "|" ^ c ^ "|"
  | TSetInt -> "set(integer)"
  | TSetSurr c -> "set(|" ^ c ^ "|)"

type event_kind = Birth | Death | Normal | Active

type ev = { e_name : string; e_kind : event_kind; e_params : atype list }
type attr = { a_name : string; a_ty : atype }

type rule = {
  r_event : string;
  r_uses : (string * string) list;
  r_vars : (string * string) list;
  r_guard : string option;
  r_text : string;
}

type relation = Base | View of string * string | Spec of string

type cls = {
  c_name : string;
  c_rel : relation;
  c_attrs : attr list;
  c_events : ev list;
  c_comps : (string * string) list;
  c_vals : rule list;
  c_perms : rule list;
  c_calls : rule list;
  c_cons : rule list;
}

type spec = {
  s_enums : (string * string list) list;
  s_classes : cls list;
  s_globals : rule list;
}

(* ---------------------------------------------------------------- *)
(* Variables: one name per (type, position-within-type)              *)
(* ---------------------------------------------------------------- *)

let var_stem = function
  | TInt -> "Vi"
  | TBool -> "Vb"
  | TMoney -> "Vm"
  | TString -> "Vs"
  | TEnum (n, _) -> "Ve" ^ n ^ "_"
  | TSurr c -> "Vo" ^ c ^ "_"
  | TSetInt -> "Vsi"
  | TSetSurr c -> "Vso" ^ c ^ "_"

(* The k-th parameter of a rule gets the next free index among the
   parameters sharing its stem, so [e(int, int)] binds Vi1 and Vi2. *)
let param_vars params =
  let counts = Hashtbl.create 4 in
  List.map
    (fun ty ->
      let stem = var_stem ty in
      let n = (try Hashtbl.find counts stem with Not_found -> 0) + 1 in
      Hashtbl.replace counts stem n;
      (Printf.sprintf "%s%d" stem n, ty))
    params

let var_decls params =
  List.map (fun (name, ty) -> (name, type_text ty)) (param_vars params)

let event_term name params =
  match param_vars params with
  | [] -> name
  | vars -> name ^ "(" ^ String.concat ", " (List.map fst vars) ^ ")"

(* ---------------------------------------------------------------- *)
(* Constants                                                         *)
(* ---------------------------------------------------------------- *)

let const rng = function
  | TInt -> string_of_int (Rng.range rng 0 5)
  | TBool -> if Rng.bool rng then "true" else "false"
  | TMoney -> Printf.sprintf "%d.%02d" (Rng.range rng 1 40) (Rng.range rng 0 99)
  | TString -> Printf.sprintf "\"%c\"" (Rng.choose rng [ 's'; 't'; 'u'; 'w' ])
  | TEnum (_, lits) -> Rng.choose rng lits
  | TSetInt -> "{}"
  | TSetSurr _ -> "{}"
  | TSurr _ -> invalid_arg "Genspec.const: surrogate"

(* ---------------------------------------------------------------- *)
(* Rules                                                             *)
(* ---------------------------------------------------------------- *)

let valuation_rule ?guard ~event ~params ~attr ~rhs () =
  {
    r_event = event;
    r_uses = [];
    r_vars = var_decls params;
    r_guard = guard;
    r_text = Printf.sprintf "[%s] %s = %s" (event_term event params) attr rhs;
  }

(* Right-hand sides well-typed for the attribute, drawing on the
   event's parameter variables when one has the right type. *)
let gen_rhs rng (a : attr) params =
  let vars = param_vars params in
  let of_type ty = List.filter (fun (_, t) -> t = ty) vars |> List.map fst in
  let pick_var ty = match of_type ty with [] -> None | vs -> Some (Rng.choose rng vs) in
  match a.a_ty with
  | TInt -> (
      let forms =
        [ `Const; `Incr; `Decr ]
        @ (match pick_var TInt with Some _ -> [ `Var; `AddVar ] | None -> [])
      in
      match Rng.choose rng forms with
      | `Const -> const rng TInt
      | `Incr -> a.a_name ^ " + 1"
      | `Decr -> a.a_name ^ " - 1"
      | `Var -> Option.get (pick_var TInt)
      | `AddVar -> a.a_name ^ " + " ^ Option.get (pick_var TInt))
  | TBool -> (
      let forms =
        [ `Const; `Flip ]
        @ (match pick_var TBool with Some _ -> [ `Var ] | None -> [])
      in
      match Rng.choose rng forms with
      | `Const -> const rng TBool
      | `Flip -> "not(" ^ a.a_name ^ ")"
      | `Var -> Option.get (pick_var TBool))
  | TMoney -> const rng TMoney
  | TString -> const rng TString
  | TEnum (n, lits) -> (
      match pick_var a.a_ty with
      | Some v when Rng.bool rng -> v
      | _ -> const rng (TEnum (n, lits)))
  | TSurr c -> (
      match pick_var (TSurr c) with Some v -> v | None -> a.a_name)
  | TSetInt -> (
      match pick_var TInt with
      | Some v ->
          if Rng.chance rng 2 3 then Printf.sprintf "insert(%s, %s)" v a.a_name
          else Printf.sprintf "remove(%s, %s)" v a.a_name
      | None -> "{}")
  | TSetSurr c -> (
      match pick_var (TSurr c) with
      | Some v ->
          if Rng.chance rng 2 3 then Printf.sprintf "insert(%s, %s)" v a.a_name
          else Printf.sprintf "remove(%s, %s)" v a.a_name
      | None -> "{}")

(* A state guard over the class's own attributes; None when no
   guardable attribute exists. *)
let state_guard rng attrs =
  let guardable =
    List.filter (fun a -> match a.a_ty with TInt | TBool -> true | _ -> false) attrs
  in
  match guardable with
  | [] -> None
  | _ -> (
      let a = Rng.choose rng guardable in
      match a.a_ty with
      | TInt ->
          let op = Rng.choose rng [ ">="; "<="; "<"; ">" ] in
          Some (Printf.sprintf "%s %s %d" a.a_name op (Rng.range rng 0 4))
      | TBool -> Some (if Rng.bool rng then a.a_name else "not(" ^ a.a_name ^ ")")
      | _ -> None)

(* ---------------------------------------------------------------- *)
(* Class generation                                                  *)
(* ---------------------------------------------------------------- *)

let scalar_pool enums prior =
  [ TInt; TInt; TBool; TMoney; TString ]
  @ List.map (fun (n, lits) -> TEnum (n, lits)) enums
  @ List.map (fun c -> TSurr c) prior

let attr_pool enums prior =
  scalar_pool enums prior @ [ TSetInt ] @ List.map (fun c -> TSetSurr c) prior

let event_param_pool enums prior =
  [ TInt; TInt; TBool ]
  @ List.map (fun (n, lits) -> TEnum (n, lits)) enums
  @ List.map (fun c -> TSurr c) prior

let is_scalar = function
  | TInt | TBool | TMoney | TString | TEnum _ | TSurr _ -> true
  | TSetInt | TSetSurr _ -> false

let normal_events cls = List.filter (fun e -> e.e_kind = Normal) cls

(* Permissions for one event: a state guard, a set-membership guard on
   a surrogate parameter, or a temporal guard referencing another event
   of the same class. *)
let gen_permission rng ~self ~attrs ~events e =
  let vars = var_decls e.e_params in
  let term = event_term e.e_name e.e_params in
  let membership =
    List.concat_map
      (fun (v, ty) ->
        match ty with
        | TSurr c ->
            List.filter_map
              (fun a ->
                match a.a_ty with
                | TSetSurr c' when c' = c -> Some (v, a.a_name)
                | _ -> None)
              attrs
        | _ -> [])
      (param_vars e.e_params)
  in
  let same_sig =
    List.filter
      (fun e2 -> e2.e_name <> e.e_name && e2.e_params = e.e_params)
      (normal_events events)
  in
  let forms =
    [ `State ]
    @ (if membership <> [] then [ `Member; `Member ] else [])
    @ if same_sig <> [] then [ `Temporal; `Temporal ] else []
  in
  match Rng.choose rng forms with
  | `Member ->
      let v, set_attr = Rng.choose rng membership in
      let negated = Rng.bool rng in
      let g =
        if negated then Printf.sprintf "not(%s in %s)" v set_attr
        else Printf.sprintf "%s in %s" v set_attr
      in
      Some
        {
          r_event = e.e_name;
          r_uses = [ (self, e.e_name) ];
          r_vars = vars;
          r_guard = None;
          r_text = Printf.sprintf "{ %s } %s" g term;
        }
  | `Temporal ->
      let e2 = Rng.choose rng same_sig in
      Some
        {
          r_event = e.e_name;
          r_uses = [ (self, e.e_name); (self, e2.e_name) ];
          r_vars = vars;
          r_guard = None;
          r_text =
            Printf.sprintf "{ sometime(after(%s)) } %s"
              (event_term e2.e_name e2.e_params)
              term;
        }
  | `State -> (
      match state_guard rng attrs with
      | None -> None
      | Some g ->
          Some
            {
              r_event = e.e_name;
              r_uses = [ (self, e.e_name) ];
              r_vars = vars;
              r_guard = None;
              r_text = Printf.sprintf "{ %s } %s" g term;
            })

(* Local calling rules: caller index < callee index keeps the closure
   acyclic. *)
let gen_calling rng ~self ~attrs events =
  let evs = Array.of_list (normal_events events) in
  let n = Array.length evs in
  if n < 2 then None
  else
    let i = Rng.int rng (n - 1) in
    let j = Rng.range rng (i + 1) (n - 1) in
    let caller = evs.(i) and callee = evs.(j) in
    let guard = if Rng.chance rng 1 4 then state_guard rng attrs else None in
    let callee_term =
      (* share the caller's variables when the signatures line up, so
         the called event is fully determined *)
      if callee.e_params = [] then Some callee.e_name
      else if callee.e_params = caller.e_params then
        Some (event_term callee.e_name callee.e_params)
      else None
    in
    match callee_term with
    | None -> None
    | Some callee_term ->
        let txn_extra =
          (* transaction calling: a parameterless second callee *)
          if Rng.chance rng 1 4 then
            let extras =
              Array.to_list evs
              |> List.filteri (fun k e -> k > i && e.e_params = [] && e.e_name <> callee.e_name)
            in
            match extras with [] -> None | _ -> Some (Rng.choose rng extras)
          else None
        in
        let rhs, uses =
          match txn_extra with
          | Some e3 when callee.e_params = [] ->
              ( Printf.sprintf "(%s; %s)" callee_term e3.e_name,
                [ (self, callee.e_name); (self, e3.e_name) ] )
          | _ -> (callee_term, [ (self, callee.e_name) ])
        in
        Some
          {
            r_event = caller.e_name;
            r_uses = (self, caller.e_name) :: uses;
            r_vars = var_decls caller.e_params;
            r_guard = guard;
            r_text =
              Printf.sprintf "%s >> %s" (event_term caller.e_name caller.e_params) rhs;
          }

let gen_constraints rng ~self ~attrs ~param_inited events =
  let out = ref [] in
  let ints = List.filter (fun a -> a.a_ty = TInt) attrs in
  (if ints <> [] && Rng.chance rng 2 3 then
     let a = Rng.choose rng ints in
     let text =
       if Rng.bool rng then Printf.sprintf "static %s <= %d" a.a_name (Rng.range rng 6 15)
       else Printf.sprintf "static %s >= -%d" a.a_name (Rng.range rng 2 6)
     in
     out :=
       { r_event = ""; r_uses = []; r_vars = []; r_guard = None; r_text = text }
       :: !out);
  (* a temporal constraint over a bool attribute that is known to be
     initialised to false, so births stay admissible *)
  let safe_bools =
    List.filter (fun a -> a.a_ty = TBool && not (List.mem a.a_name param_inited)) attrs
  in
  let plain = List.filter (fun e -> e.e_params = []) (normal_events events) in
  (if safe_bools <> [] && plain <> [] && Rng.chance rng 1 3 then
     let a = Rng.choose rng safe_bools in
     let e = Rng.choose rng plain in
     out :=
       {
         r_event = "";
         r_uses = [ (self, e.e_name) ];
         r_vars = [];
         r_guard = None;
         r_text = Printf.sprintf "%s => sometime(after(%s))" a.a_name e.e_name;
       }
       :: !out);
  List.rev !out

(* One base class: attributes over the full pool, birth initialising
   every attribute (the first one or two scalars from parameters),
   death, normal/active events with valuations, permissions, calling
   rules, constraints and components. *)
let gen_base_class rng ~enums ~prior ~name =
  let n_attrs = Rng.range rng 2 4 in
  let pool = attr_pool enums prior in
  let attrs =
    List.init n_attrs (fun i ->
        { a_name = Printf.sprintf "a%d" i; a_ty = Rng.choose rng pool })
  in
  (* birth parameters: up to two scalar attributes are initialised from
     arguments, the rest from constants *)
  let param_attrs =
    let scalars = List.filter (fun a -> is_scalar a.a_ty) attrs in
    let take = min (List.length scalars) (Rng.range rng 0 2) in
    List.filteri (fun i _ -> i < take) scalars
  in
  let param_inited = List.map (fun a -> a.a_name) param_attrs in
  let birth =
    { e_name = "bth"; e_kind = Birth; e_params = List.map (fun a -> a.a_ty) param_attrs }
  in
  let death = { e_name = "dth"; e_kind = Death; e_params = [] } in
  let n_normal = Rng.range rng 2 3 in
  let ep_pool = event_param_pool enums prior in
  let normals =
    List.init n_normal (fun i ->
        let n_params = if i = 0 then 0 else Rng.range rng 0 2 in
        {
          e_name = Printf.sprintf "ev%d" i;
          e_kind = Normal;
          e_params = List.init n_params (fun _ -> Rng.choose rng ep_pool);
        })
  in
  let active =
    if Rng.chance rng 1 5 then [ { e_name = "act"; e_kind = Active; e_params = [] } ]
    else []
  in
  let comps =
    match prior with
    | [] -> []
    | _ when Rng.chance rng 1 4 -> [ ("cmp0", Rng.choose rng prior) ]
    | _ -> []
  in
  let comp_events =
    List.map
      (fun (_, c) -> { e_name = "lnk"; e_kind = Normal; e_params = [ TSurr c ] })
      comps
  in
  let events = (birth :: death :: normals) @ active @ comp_events in
  (* birth valuations *)
  let birth_vals =
    let pvars = param_vars birth.e_params in
    List.filteri (fun i _ -> i < List.length pvars) param_attrs
    |> List.mapi (fun i a ->
           valuation_rule ~event:birth.e_name ~params:birth.e_params ~attr:a.a_name
             ~rhs:(fst (List.nth pvars i)) ())
  in
  let const_vals =
    List.filter_map
      (fun a ->
        if List.mem a.a_name param_inited then None
        else
          match a.a_ty with
          | TSurr _ -> None (* left undefined until an event assigns it *)
          | TBool ->
              (* always false: see the temporal-constraint discipline *)
              Some
                (valuation_rule ~event:birth.e_name ~params:birth.e_params
                   ~attr:a.a_name ~rhs:"false" ())
          | ty ->
              Some
                (valuation_rule ~event:birth.e_name ~params:birth.e_params
                   ~attr:a.a_name ~rhs:(const rng ty) ()))
      attrs
  in
  let comp_vals =
    List.map
      (fun (cn, _) ->
        valuation_rule ~event:birth.e_name ~params:birth.e_params ~attr:cn ~rhs:"{}" ())
      comps
    @ List.map2
        (fun (cn, _) e ->
          let v = fst (List.hd (param_vars e.e_params)) in
          valuation_rule ~event:e.e_name ~params:e.e_params ~attr:cn
            ~rhs:(Printf.sprintf "insert(%s, %s)" v cn) ())
        comps comp_events
  in
  (* event valuations: 0–2 attribute updates per normal/active event *)
  let event_vals =
    List.concat_map
      (fun e ->
        let n = Rng.range rng (if e.e_params = [] then 0 else 1) 2 in
        let chosen = List.filteri (fun i _ -> i < n) (Rng.shuffle rng attrs) in
        List.map
          (fun a ->
            let guard =
              if Rng.chance rng 1 4 then state_guard rng attrs else None
            in
            valuation_rule ?guard ~event:e.e_name ~params:e.e_params ~attr:a.a_name
              ~rhs:(gen_rhs rng a e.e_params) ())
          chosen)
      (normals @ active)
  in
  let vals =
    (birth_vals @ const_vals @ comp_vals @ event_vals)
    |> List.map (fun r -> { r with r_uses = [ (name, r.r_event) ] })
  in
  let perms =
    List.filter_map
      (fun e ->
        if Rng.chance rng 1 3 then
          gen_permission rng ~self:name ~attrs ~events e
        else None)
      (normals @ comp_events)
    @ List.filter_map
        (fun e ->
          (* active events always carry a permission so [run_active]
             reaches quiescence *)
          match state_guard rng attrs with
          | Some g ->
              Some
                {
                  r_event = e.e_name;
                  r_uses = [ (name, e.e_name) ];
                  r_vars = [];
                  r_guard = None;
                  r_text = Printf.sprintf "{ %s } %s" g e.e_name;
                }
          | None -> None)
        active
  in
  let calls =
    List.filter_map
      (fun _ -> gen_calling rng ~self:name ~attrs events)
      (List.init (Rng.range rng 0 2) Fun.id)
  in
  let cons = gen_constraints rng ~self:name ~attrs ~param_inited events in
  {
    c_name = name;
    c_rel = Base;
    c_attrs = attrs;
    c_events = events;
    c_comps = List.map (fun (cn, c) -> (cn, "set(" ^ c ^ ")")) comps;
    c_vals = vals;
    c_perms = perms;
    c_calls = calls;
    c_cons = cons;
  }

(* An aspect (phase) or specialization class over a base. *)
let gen_derived_class rng ~enums ~bases ~name =
  let base = Rng.choose rng bases in
  let as_view =
    let triggers =
      List.filter (fun e -> e.e_kind = Normal && e.e_params = []) base.c_events
    in
    if triggers <> [] && Rng.bool rng then Some (Rng.choose rng triggers) else None
  in
  let attrs =
    List.init (Rng.range rng 1 2) (fun i ->
        {
          a_name = Printf.sprintf "pa%d" i;
          a_ty = Rng.choose rng (scalar_pool enums []);
        })
  in
  let normals =
    List.init (Rng.range rng 1 2) (fun i ->
        let n_params = Rng.range rng 0 1 in
        {
          e_name = Printf.sprintf "pv%d" i;
          e_kind = Normal;
          e_params = List.init n_params (fun _ -> Rng.choose rng [ TInt; TBool ]);
        })
  in
  let event_vals =
    List.concat_map
      (fun e ->
        let n = Rng.range rng (if e.e_params = [] then 0 else 1) 1 in
        let chosen = List.filteri (fun i _ -> i < n) (Rng.shuffle rng attrs) in
        List.map
          (fun a ->
            valuation_rule ~event:e.e_name ~params:e.e_params ~attr:a.a_name
              ~rhs:(gen_rhs rng a e.e_params) ())
          chosen)
      normals
    |> List.map (fun r -> { r with r_uses = [ (name, r.r_event) ] })
  in
  (* the company idiom: a constraint on an inherited attribute gates
     the phase's creation *)
  let cons =
    let base_ints = List.filter (fun a -> a.a_ty = TInt) base.c_attrs in
    if base_ints <> [] && Rng.chance rng 1 2 then
      let a = Rng.choose rng base_ints in
      [
        {
          r_event = "";
          r_uses = [];
          r_vars = [];
          r_guard = None;
          r_text = Printf.sprintf "static %s >= %d" a.a_name (Rng.range rng (-2) 1);
        };
      ]
    else []
  in
  match as_view with
  | Some trigger ->
      {
        c_name = name;
        c_rel = View (base.c_name, trigger.e_name);
        c_attrs = attrs;
        c_events = { e_name = "pdth"; e_kind = Death; e_params = [] } :: normals;
        c_comps = [];
        c_vals = event_vals;
        c_perms = [];
        c_calls = [];
        c_cons = cons;
      }
  | None ->
      let birth = { e_name = "pbth"; e_kind = Birth; e_params = [] } in
      {
        c_name = name;
        c_rel = Spec base.c_name;
        c_attrs = attrs;
        c_events = birth :: normals;
        c_comps = [];
        c_vals =
          (List.filter_map
             (fun a ->
               match a.a_ty with
               | TSurr _ -> None
               | ty ->
                   Some
                     (valuation_rule ~event:birth.e_name ~params:[] ~attr:a.a_name
                        ~rhs:(const rng ty) ()))
             attrs
          |> List.map (fun r -> { r with r_uses = [ (name, r.r_event) ] }))
          @ event_vals;
        c_perms = [];
        c_calls = [];
        c_cons = cons;
      }

(* Global interactions: a caller event with a surrogate parameter calls
   a parameterless event of that (earlier) class — acyclic because the
   callee class always precedes the caller. *)
let gen_global rng classes =
  let candidates =
    List.concat_map
      (fun c ->
        if c.c_rel <> Base then []
        else
          List.concat_map
            (fun e ->
              if e.e_kind <> Normal then []
              else
                List.concat_map
                  (fun (v, ty) ->
                    match ty with
                    | TSurr callee_cls -> (
                        match
                          List.find_opt (fun k -> k.c_name = callee_cls) classes
                        with
                        | Some callee ->
                            List.filter_map
                              (fun f ->
                                if f.e_kind = Normal && f.e_params = [] then
                                  Some (c, e, v, callee, f)
                                else None)
                              callee.c_events
                        | None -> [])
                    | _ -> [])
                  (param_vars e.e_params))
            c.c_events)
      classes
  in
  match candidates with
  | [] -> None
  | _ ->
      let caller_cls, e, v, callee, f = Rng.choose rng candidates in
      let self_var = "Vo" ^ caller_cls.c_name ^ "_9" in
      Some
        {
          r_event = e.e_name;
          r_uses = [ (caller_cls.c_name, e.e_name); (callee.c_name, f.e_name) ];
          r_vars =
            (self_var, "|" ^ caller_cls.c_name ^ "|") :: var_decls e.e_params;
          r_guard = None;
          r_text =
            Printf.sprintf "%s(%s).%s >> %s(%s).%s" caller_cls.c_name self_var
              (event_term e.e_name e.e_params)
              callee.c_name v f.e_name;
        }

let generate rng =
  let n_enums = Rng.range rng 0 2 in
  let enums =
    List.init n_enums (fun i ->
        let n = Rng.range rng 2 4 in
        ( Printf.sprintf "En%d" i,
          List.init n (fun j -> Printf.sprintf "c%d_%c" i (Char.chr (97 + j))) ))
  in
  let n_bases = Rng.range rng 2 4 in
  let bases =
    List.fold_left
      (fun acc i ->
        let prior = List.rev_map (fun c -> c.c_name) acc in
        let c =
          gen_base_class (Rng.split rng) ~enums ~prior
            ~name:(Printf.sprintf "C%d" i)
        in
        c :: acc)
      []
      (List.init n_bases Fun.id)
    |> List.rev
  in
  let n_derived = Rng.range rng 0 2 in
  let derived =
    List.init n_derived (fun i ->
        gen_derived_class (Rng.split rng) ~enums ~bases
          ~name:(Printf.sprintf "C%d" (n_bases + i)))
  in
  let classes = bases @ derived in
  let globals =
    List.filter_map
      (fun _ -> gen_global rng classes)
      (List.init (Rng.range rng 0 2) Fun.id)
  in
  { s_enums = enums; s_classes = classes; s_globals = globals }

(* ---------------------------------------------------------------- *)
(* Rendering                                                         *)
(* ---------------------------------------------------------------- *)

let render_vars buf indent rules =
  let seen = Hashtbl.create 8 in
  let decls =
    List.concat_map (fun r -> r.r_vars) rules
    |> List.filter (fun (n, _) ->
           if Hashtbl.mem seen n then false
           else (
             Hashtbl.add seen n ();
             true))
  in
  match decls with
  | [] -> ()
  | _ ->
      Buffer.add_string buf
        (Printf.sprintf "%svariables %s\n" indent
           (String.concat " "
              (List.map (fun (n, t) -> Printf.sprintf "%s: %s;" n t) decls)))

let render_rule_text r =
  match r.r_guard with
  | Some g -> Printf.sprintf "{ %s } => %s" g r.r_text
  | None -> r.r_text

let render_calling_text r =
  match r.r_guard with
  | Some g -> Printf.sprintf "{ %s } %s" g r.r_text
  | None -> r.r_text

let render_section buf name rules render_one =
  match rules with
  | [] -> ()
  | _ ->
      Buffer.add_string buf (Printf.sprintf "    %s\n" name);
      render_vars buf "      " rules;
      List.iter
        (fun r -> Buffer.add_string buf (Printf.sprintf "      %s;\n" (render_one r)))
        rules

let render_event e =
  let params =
    match e.e_params with
    | [] -> ""
    | ps -> "(" ^ String.concat ", " (List.map type_text ps) ^ ")"
  in
  let prefix =
    match e.e_kind with
    | Birth -> "birth "
    | Death -> "death "
    | Active -> "active "
    | Normal -> ""
  in
  prefix ^ e.e_name ^ params

let render_class buf c =
  Buffer.add_string buf (Printf.sprintf "object class %s\n" c.c_name);
  (match c.c_rel with
  | Base | Spec _ ->
      (match c.c_rel with
      | Spec base -> Buffer.add_string buf (Printf.sprintf "  specialization of %s;\n" base)
      | _ -> ());
      Buffer.add_string buf "  identification k: string;\n"
  | View (base, _) -> Buffer.add_string buf (Printf.sprintf "  view of %s;\n" base));
  Buffer.add_string buf "  template\n";
  (match c.c_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf "    attributes\n";
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "      %s: %s;\n" a.a_name (type_text a.a_ty)))
        attrs);
  Buffer.add_string buf "    events\n";
  (match c.c_rel with
  | View (base, trigger) ->
      Buffer.add_string buf (Printf.sprintf "      birth %s.%s;\n" base trigger)
  | _ -> ());
  List.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "      %s;\n" (render_event e)))
    c.c_events;
  (match c.c_comps with
  | [] -> ()
  | comps ->
      Buffer.add_string buf "    components\n";
      List.iter
        (fun (n, t) -> Buffer.add_string buf (Printf.sprintf "      %s: %s;\n" n t))
        comps);
  render_section buf "valuation" c.c_vals render_rule_text;
  render_section buf "permissions" c.c_perms (fun r -> r.r_text);
  render_section buf "calling" c.c_calls render_calling_text;
  render_section buf "constraints" c.c_cons (fun r -> r.r_text);
  Buffer.add_string buf (Printf.sprintf "end object class %s;\n\n" c.c_name)

let render spec =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (n, lits) ->
      Buffer.add_string buf
        (Printf.sprintf "data type %s = (%s);\n" n (String.concat ", " lits)))
    spec.s_enums;
  if spec.s_enums <> [] then Buffer.add_char buf '\n';
  List.iter (render_class buf) spec.s_classes;
  (match spec.s_globals with
  | [] -> ()
  | globals ->
      Buffer.add_string buf "global interactions\n";
      render_vars buf "  " globals;
      List.iter
        (fun r -> Buffer.add_string buf (Printf.sprintf "  %s;\n" r.r_text))
        globals;
      Buffer.add_string buf "end global;\n");
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Lookups                                                           *)
(* ---------------------------------------------------------------- *)

let find_class spec name = List.find_opt (fun c -> c.c_name = name) spec.s_classes

let rec event_params spec cls ev =
  match find_class spec cls with
  | None -> None
  | Some c -> (
      match List.find_opt (fun e -> e.e_name = ev) c.c_events with
      | Some e -> Some e.e_params
      | None -> (
          match c.c_rel with
          | Base -> None
          | View (base, trigger) ->
              if ev = trigger then Some [] else event_params spec base ev
          | Spec base -> event_params spec base ev))
