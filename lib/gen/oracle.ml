(* The nine differential oracles.  Each one loads fresh communities
   from the rendered source, runs the trace and compares independent
   execution paths; [Persist.save] images are the state-equality
   witness throughout (canonical, total, bit-comparable). *)

type failure = { oracle : string; detail : string }

let failf oracle fmt = Printf.ksprintf (fun detail -> Error { oracle; detail }) fmt

let code_of = function
  | Ok _ -> "ok"
  | Error r -> Runtime_error.code r

let load_session ?(compiled = true) src =
  let config = { Community.default_config with compiled_dispatch = compiled } in
  Troll.Session.load ~config src

let with_session oracle ?compiled src k =
  match load_session ?compiled src with
  | Ok s -> k s
  | Error e -> failf "load" "%s: spec failed to load: %s" oracle (Troll.Error.to_string e)

let step_label i st = Printf.sprintf "step %d (%s)" i (Step.to_string st)

(* ---------------------------------------------------------------- *)
(* Oracle 1: compiled vs interpreted dispatch                        *)
(* ---------------------------------------------------------------- *)

let dispatch src trace =
  with_session "dispatch" ~compiled:true src @@ fun sc ->
  with_session "dispatch" ~compiled:false src @@ fun si ->
  let rec loop i = function
    | [] -> Ok ()
    | st :: rest ->
        let rc = Troll.Session.step sc st in
        let ri = Troll.Session.step si st in
        if code_of rc <> code_of ri then
          failf "dispatch" "%s: compiled=%s interpreted=%s" (step_label i st)
            (code_of rc) (code_of ri)
        else loop (i + 1) rest
  in
  match loop 0 trace with
  | Error _ as e -> e
  | Ok () ->
      let img_c = Persist.save (Troll.Session.community sc) in
      let img_i = Persist.save (Troll.Session.community si) in
      if img_c <> img_i then
        failf "dispatch" "final save images differ (compiled %d bytes, interpreted %d bytes)"
          (String.length img_c) (String.length img_i)
      else Ok ()

(* ---------------------------------------------------------------- *)
(* Oracle 2: in-process engine vs the society server over a pipe     *)
(* ---------------------------------------------------------------- *)

let request_of_step ~id step =
  let evj = Protocol.event_to_json in
  let fields =
    match step with
    | Step.Fire ev -> (
        match evj ev with
        | Json.Obj fields -> ("op", Json.String "fire") :: fields
        | _ -> assert false)
    | Step.Sync evs ->
        [ ("op", Json.String "sync"); ("events", Json.List (List.map evj evs)) ]
    | Step.Seq evs ->
        [ ("op", Json.String "batch"); ("events", Json.List (List.map evj evs)) ]
    | Step.Txn micro ->
        [
          ("op", Json.String "txn");
          ( "steps",
            Json.List (List.map (fun evs -> Json.List (List.map evj evs)) micro) );
        ]
    | Step.Create { cls; key; event; args } ->
        [ ("op", Json.String "create"); ("cls", Json.String cls);
          ("key", Protocol.value_to_json key) ]
        @ (match event with Some e -> [ ("event", Json.String e) ] | None -> [])
        @ [ ("args", Json.List (List.map Protocol.value_to_json args)) ]
    | Step.Destroy { id = oid; event; args } ->
        [ ("op", Json.String "destroy"); ("cls", Json.String oid.Ident.cls);
          ("key", Protocol.value_to_json oid.Ident.key) ]
        @ (match event with Some e -> [ ("event", Json.String e) ] | None -> [])
        @ [ ("args", Json.List (List.map Protocol.value_to_json args)) ]
  in
  Json.Obj (("id", Json.Int id) :: fields)

(* Drive [Server.serve_fds] in a forked child over two pipes; a second
   forked child writes the request lines, so the parent only reads and
   no pipe can deadlock regardless of payload sizes. *)
let run_server_lines session requests =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server_pid = Unix.fork () in
  if server_pid = 0 then (
    Unix.close req_w;
    Unix.close resp_r;
    let srv = Server.create session in
    (try Server.serve_fds srv req_r resp_w with _ -> ());
    Unix._exit 0);
  Unix.close req_r;
  Unix.close resp_w;
  let writer_pid = Unix.fork () in
  if writer_pid = 0 then (
    Unix.close resp_r;
    let buf = Buffer.create 4096 in
    List.iter
      (fun j ->
        Buffer.add_string buf (Json.to_string j);
        Buffer.add_char buf '\n')
      requests;
    let s = Buffer.contents buf in
    let rec write_all off =
      if off < String.length s then
        let n = Unix.write_substring req_w s off (String.length s - off) in
        write_all (off + n)
    in
    (try write_all 0 with _ -> ());
    (try Unix.close req_w with _ -> ());
    Unix._exit 0);
  Unix.close req_w;
  let ic = Unix.in_channel_of_descr resp_r in
  let rec read_lines acc =
    match input_line ic with
    | line -> read_lines (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read_lines [] in
  close_in ic;
  ignore (Unix.waitpid [] writer_pid);
  ignore (Unix.waitpid [] server_pid);
  lines

(* The lockstep transport: write one request, read its response,
   repeat.  [run_server_lines] above ships the whole trace before
   reading anything (a maximally pipelined client); the protocol
   promises the two are indistinguishable, response for response. *)
let run_server_lockstep session requests =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server_pid = Unix.fork () in
  if server_pid = 0 then (
    Unix.close req_w;
    Unix.close resp_r;
    let srv = Server.create session in
    (try Server.serve_fds srv req_r resp_w with _ -> ());
    Unix._exit 0);
  Unix.close req_r;
  Unix.close resp_w;
  let ic = Unix.in_channel_of_descr resp_r in
  let lines =
    List.filter_map
      (fun j ->
        let line = Json.to_string j ^ "\n" in
        let rec write_all off =
          if off < String.length line then
            let n =
              Unix.write_substring req_w line off (String.length line - off)
            in
            write_all (off + n)
        in
        match write_all 0 with
        | () -> ( match input_line ic with
          | line -> Some line
          | exception End_of_file -> None)
        | exception Unix.Unix_error _ -> None)
      requests
  in
  (try Unix.close req_w with Unix.Unix_error _ -> ());
  close_in ic;
  ignore (Unix.waitpid [] server_pid);
  lines

(* Pipelined and lockstep responses must agree id-for-id: clients
   correlate by id, so transport depth may never change an answer. *)
let compare_transports pipelined lockstep =
  if List.length pipelined <> List.length lockstep then
    failf "server" "pipelined run answered %d frames, lockstep %d"
      (List.length pipelined) (List.length lockstep)
  else
    let index lines =
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun line ->
          match Json.of_string line with
          | Ok j -> Hashtbl.replace tbl (Json.member "id" j) j
          | Error _ -> ())
        lines;
      tbl
    in
    let by_id = index lockstep in
    let rec check = function
      | [] -> Ok ()
      | line :: rest -> (
          match Json.of_string line with
          | Error e -> failf "server" "pipelined response unparsable (%s): %s" e line
          | Ok j -> (
              let id = Json.member "id" j in
              match Hashtbl.find_opt by_id id with
              | None ->
                  failf "server" "no lockstep response for id %s"
                    (Json.to_string id)
              | Some j' ->
                  if not (Json.equal j j') then
                    failf "server"
                      "id %s: pipelined %s, lockstep %s" (Json.to_string id)
                      line (Json.to_string j')
                  else check rest))
    in
    check pipelined

let server src trace =
  with_session "server" src @@ fun local ->
  with_session "server" src @@ fun remote ->
  with_session "server" src @@ fun remote_lockstep ->
  let requests =
    List.mapi (fun i st -> request_of_step ~id:i st) trace
    @ [ Json.Obj [ ("id", Json.Int (List.length trace)); ("op", Json.String "save") ] ]
  in
  let lines = run_server_lines remote requests in
  match
    compare_transports lines (run_server_lockstep remote_lockstep requests)
  with
  | Error _ as e -> e
  | Ok () ->
  if List.length lines <> List.length requests then
    failf "server" "expected %d response frames, got %d" (List.length requests)
      (List.length lines)
  else
    let parse i line =
      match Json.of_string line with
      | Ok j -> Ok j
      | Error e -> failf "server" "response %d unparsable (%s): %s" i e line
    in
    let rec loop i steps lines =
      match (steps, lines) with
      | [], [ last ] -> (
          (* the trailing save frame: compare against the in-process image *)
          match parse i last with
          | Error _ as e -> e
          | Ok j -> (
              match Json.member "ok" j with
              | Json.Bool true -> (
                  match Json.member "state" (Json.member "result" j) with
                  | Json.String dump ->
                      let img = Persist.save (Troll.Session.community local) in
                      if dump <> img then
                        failf "server"
                          "final state differs (server %d bytes, engine %d bytes)"
                          (String.length dump) (String.length img)
                      else Ok ()
                  | _ -> failf "server" "save response carries no state")
              | _ -> failf "server" "save request failed: %s" last))
      | st :: steps', line :: lines' -> (
          let r = Troll.Session.step local st in
          match parse i line with
          | Error _ as e -> e
          | Ok j -> (
              match (r, Json.member "ok" j) with
              | Ok outcome, Json.Bool true ->
                  let expected = Protocol.outcome_to_json outcome in
                  if not (Json.equal (Json.member "result" j) expected) then
                    failf "server" "%s: outcome differs: engine %s, server %s"
                      (step_label i st) (Json.to_string expected)
                      (Json.to_string (Json.member "result" j))
                  else loop (i + 1) steps' lines'
              | Error reason, Json.Bool false -> (
                  match Json.member "code" (Json.member "error" j) with
                  | Json.String c when c = Runtime_error.code reason ->
                      loop (i + 1) steps' lines'
                  | Json.String c ->
                      failf "server" "%s: engine code %s, server code %s"
                        (step_label i st) (Runtime_error.code reason) c
                  | _ -> failf "server" "%s: error frame carries no code" (step_label i st))
              | Ok _, _ ->
                  failf "server" "%s: engine accepted, server rejected: %s"
                    (step_label i st) line
              | Error reason, _ ->
                  failf "server" "%s: engine rejected (%s), server accepted"
                    (step_label i st) (Runtime_error.code reason)))
      | _ -> failf "server" "response frames out of step with the trace"
    in
    loop 0 trace lines

(* ---------------------------------------------------------------- *)
(* Oracle 3: save → load → replay                                    *)
(* ---------------------------------------------------------------- *)

let replay src trace =
  with_session "replay" src @@ fun sa ->
  with_session "replay" src @@ fun sb ->
  let ca = Troll.Session.community sa in
  let cb = Troll.Session.community sb in
  let n = List.length trace in
  let mid = n / 2 in
  let prefix = List.filteri (fun i _ -> i < mid) trace in
  let suffix = List.filteri (fun i _ -> i >= mid) trace in
  List.iter (fun st -> ignore (Troll.Session.step sa st)) prefix;
  let dump = Persist.save ca in
  match Persist.load cb dump with
  | Error e -> failf "replay" "midpoint dump failed to restore: %s" e
  | Ok () ->
      let restored = Persist.save cb in
      if restored <> dump then
        failf "replay" "restored image differs from the dump it was loaded from"
      else
        let rec loop i = function
          | [] -> Ok ()
          | st :: rest ->
              let ra = Troll.Session.step sa st in
              let rb = Troll.Session.step sb st in
              if code_of ra <> code_of rb then
                failf "replay" "%s: original=%s restored=%s" (step_label (mid + i) st)
                  (code_of ra) (code_of rb)
              else loop (i + 1) rest
        in
        (match loop 0 suffix with
        | Error _ as e -> e
        | Ok () ->
            if Persist.save ca <> Persist.save cb then
              failf "replay" "final images diverge after replaying the suffix"
            else Ok ())

(* ---------------------------------------------------------------- *)
(* Oracle 4: rejected steps leave the journal clean; probe = clone   *)
(* ---------------------------------------------------------------- *)

let journal src trace =
  with_session "journal" src @@ fun s ->
  let c = Troll.Session.community s in
  let rec loop i = function
    | [] -> Ok ()
    | st :: rest -> (
        let pre = Persist.save c in
        let probe_r = Txn.probe c (fun () -> Engine.step c st) in
        if Persist.save c <> pre then
          failf "journal" "%s: probe dirtied the community" (step_label i st)
        else
          let c2 = Community.clone c in
          let r2 = Engine.step c2 st in
          let r1 = Engine.step c st in
          if code_of r1 <> code_of probe_r then
            failf "journal" "%s: probe verdict %s, execution verdict %s"
              (step_label i st) (code_of probe_r) (code_of r1)
          else if code_of r1 <> code_of r2 then
            failf "journal" "%s: clone verdict %s, execution verdict %s"
              (step_label i st) (code_of r2) (code_of r1)
          else
            match r1 with
            | Error _ when Persist.save c <> pre ->
                failf "journal" "%s: rejected step left the community dirty"
                  (step_label i st)
            | _ ->
                if Persist.save c <> Persist.save c2 then
                  failf "journal" "%s: clone and community images diverge"
                    (step_label i st)
                else loop (i + 1) rest)
  in
  loop 0 trace

(* ---------------------------------------------------------------- *)
(* Oracle 5: parallel probes ≡ sequential probes on every prefix     *)
(* ---------------------------------------------------------------- *)

(* [enabled_events_par] runs over a domain pool, and once a domain has
   ever been created in a process [Unix.fork] raises — which the
   "server" oracle and any later iteration of it depend on.  So the
   whole comparison runs in a forked child: the child alone creates the
   jobs=4 pool, replays the trace, and at every prefix compares the
   parallel answers from a frozen view against the sequential engine;
   the parent only reads a one-line verdict from a pipe and never
   creates a domain. *)

let parallel_jobs = 4

(* The child's body: returns "ok" or a single-line "FAIL ..." detail. *)
let parallel_verdict src trace =
  match load_session src with
  | Error e -> Printf.sprintf "spec failed to load: %s" (Troll.Error.to_string e)
  | Ok s -> (
      let c = Troll.Session.community s in
      let pool = Pool.create ~jobs:parallel_jobs in
      let bool_opt = function
        | None -> "?"
        | Some true -> "t"
        | Some false -> "f"
      in
      let check_object i view (o : Obj_state.t) =
        let id = o.Obj_state.id in
        let seq = Engine.enabled_events c id in
        let par = Engine.enabled_events_par ~pool view id in
        if seq <> par then
          Some
            (Printf.sprintf "prefix %d: %s: enabled seq [%s] par [%s]" i
               (Ident.to_string id) (String.concat " " seq)
               (String.concat " " par))
        else
          let cseq = Engine.candidate_events c id in
          let cpar = Engine.candidate_events_par ~pool view id in
          if
            List.map fst cseq <> List.map (fun (n, _, _) -> n) cpar
            || List.map snd cseq <> List.map (fun (_, p, _) -> p) cpar
          then
            Some
              (Printf.sprintf "prefix %d: %s: candidate lists differ" i
                 (Ident.to_string id))
          else
            let bad =
              List.find_opt
                (fun (n, params, verdict) ->
                  match (params, verdict) with
                  | [], Some b -> b <> List.mem n seq
                  | [], None -> o.Obj_state.alive
                  | _ :: _, Some _ -> true
                  | _ :: _, None -> false)
                cpar
            in
            match bad with
            | Some (n, _, verdict) ->
                Some
                  (Printf.sprintf
                     "prefix %d: %s: candidate %s verdict %s vs enabled %b" i
                     (Ident.to_string id) n (bool_opt verdict)
                     (List.mem n seq))
            | None -> None
      in
      let check_prefix i =
        let view = View.freeze c in
        let rec loop = function
          | [] ->
              if not (View.valid view) then
                Some (Printf.sprintf "prefix %d: probes invalidated the view" i)
              else None
          | o :: rest -> (
              match check_object i view o with
              | Some _ as f -> f
              | None -> loop rest)
        in
        loop (Community.objects_sorted c)
      in
      let rec run i = function
        | [] -> check_prefix i
        | st :: rest -> (
            match check_prefix i with
            | Some _ as f -> f
            | None ->
                ignore (Troll.Session.step s st);
                run (i + 1) rest)
      in
      let outcome = run 0 trace in
      Pool.shutdown pool;
      match outcome with
      | None -> "ok"
      | Some detail -> "FAIL " ^ detail)

(* Fork a child, run [verdict ()] there, read its one-line answer.
   "ok" passes; anything else is the failure detail. *)
let forked_verdict oracle verdict =
  let r, w = Unix.pipe () in
  let pid = Unix.fork () in
  if pid = 0 then begin
    Unix.close r;
    let line =
      try verdict ()
      with e -> "FAIL exception: " ^ Printexc.to_string e
    in
    let oc = Unix.out_channel_of_descr w in
    (try
       output_string oc line;
       output_char oc '\n';
       flush oc
     with _ -> ());
    Unix._exit 0
  end;
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  let line =
    try input_line ic with End_of_file -> "FAIL child wrote no verdict"
  in
  close_in ic;
  ignore (Unix.waitpid [] pid);
  if line = "ok" then Ok () else failf oracle "%s" line

let parallel src trace =
  forked_verdict "parallel" (fun () -> parallel_verdict src trace)

(* ---------------------------------------------------------------- *)
(* Oracle 6: kill -9 at a commit boundary, recover from the WAL      *)
(* ---------------------------------------------------------------- *)

(* A forked child animates the trace with a WAL attached and SIGKILLs
   itself from inside the [on_batch] callback of the k-th committed
   batch — after the record is durable, before anything else runs.  The
   parent recovers the directory into a fresh community and compares
   the [Persist.save] image against a clean run of the same trace
   stopped at the same commit boundary.  The kill point is a pure
   function of (src, trace), so a reported failure replays exactly.

   The child creates no domains (forked before any pool exists), and
   the clean run counts boundaries with the same commit hook the WAL
   uses — only commits whose effect delta is non-empty append a batch,
   so both sides count identically. *)

let recovery_dir_seq = ref 0

let rm_recovery_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let recovery src trace =
  with_session "recovery" src @@ fun _loads ->
  let spec_digest = Digest.to_hex (Digest.string src) in
  let n = List.length trace in
  let k = 1 + ((Hashtbl.hash src + (31 * n)) mod (n + 1)) in
  incr recovery_dir_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "troll-fuzz-recovery-%d-%d" (Unix.getpid ())
         !recovery_dir_seq)
  in
  rm_recovery_dir dir;
  Fun.protect ~finally:(fun () -> rm_recovery_dir dir) @@ fun () ->
  let pid = Unix.fork () in
  if pid = 0 then begin
    (* child: animate with a durable WAL, die mid-flight at batch k *)
    match load_session src with
    | Error _ -> Unix._exit 3
    | Ok s -> (
        let c = Troll.Session.community s in
        let batches = ref 0 in
        let on_batch _seq =
          incr batches;
          if !batches >= k then Unix.kill (Unix.getpid ()) Sys.sigkill
        in
        match
          Wal.attach ~dir ~spec_digest ~fsync:`Batch ~snapshot_every:0
            ~on_batch c
        with
        | Error _ -> Unix._exit 4
        | Ok (t, _) ->
            List.iter (fun st -> ignore (Troll.Session.step s st)) trace;
            Wal.detach t;
            (* trace exhausted before batch k: a clean shutdown is the
               boundary under test instead *)
            Unix._exit 0)
  end;
  let _, status = Unix.waitpid [] pid in
  let compare_recovered () =
    with_session "recovery" src @@ fun sr ->
    let cr = Troll.Session.community sr in
    match Wal.recover ~dir ~spec_digest cr with
    | Error e -> failf "recovery" "recovery after kill at batch %d: %s" k e
    | Ok r ->
        (* clean reference: same trace, stopped at the same boundary *)
        with_session "recovery" src @@ fun sc ->
        let cc = Troll.Session.community sc in
        let batches = ref 0 in
        cc.Community.commit_hook <-
          Some (fun j -> if Effect_log.delta cc j <> [] then incr batches);
        List.iter
          (fun st -> if !batches < k then ignore (Troll.Session.step sc st))
          trace;
        cc.Community.commit_hook <- None;
        let img_r = Persist.save cr in
        let img_c = Persist.save cc in
        if img_r <> img_c then
          failf "recovery"
            "killed at batch %d of %d step(s): recovered image differs from \
             the clean prefix (%d vs %d bytes, %d record(s) replayed)"
            k n (String.length img_r) (String.length img_c) r.Wal.r_replayed
        else Ok ()
  in
  match status with
  | Unix.WEXITED 3 -> failf "recovery" "child failed to load the spec"
  | Unix.WEXITED 4 -> failf "recovery" "child failed to attach the WAL"
  | Unix.WEXITED 0 -> compare_recovered ()
  | Unix.WSIGNALED s when s = Sys.sigkill -> compare_recovered ()
  | Unix.WEXITED c -> failf "recovery" "child exited with %d" c
  | Unix.WSIGNALED s -> failf "recovery" "child died on signal %d" s
  | Unix.WSTOPPED s -> failf "recovery" "child stopped on signal %d" s

(* ---------------------------------------------------------------- *)
(* Oracle 7: sharded session vs the single engine                    *)
(* ---------------------------------------------------------------- *)

(* A pseudo-random 2-shard partition — each class-interaction group
   assigned by a hash of (src, group index), so the split is a pure
   function of the spec and failures replay exactly — routes the trace
   through {!Shard.coordinate}: single-owner steps take the fast path,
   cross-shard steps commit by two-phase protocol on Txn savepoints.
   A plain session animates the same trace.  Error codes must agree
   step by step, and the merged sharded dump must be bit-identical to
   the single-engine dump.  Outcome shapes are NOT compared: a
   cross-shard sync step decomposes into per-shard micro-steps, so the
   state images are the equality witness.

   When the spec admits identity-hash partitioning ({!Shard.by_hash}),
   a source-hash coin flip picks the [hash:2] map instead of the
   classes map, so the by-identity routing path gets the same
   differential coverage. *)

let sharded src trace =
  with_session "sharded" src @@ fun probe ->
  let facade = Troll.Session.community probe in
  let assignment =
    List.concat
      (List.mapi
         (fun i group ->
           let k = (Hashtbl.hash src + (17 * i)) land 1 in
           List.map (fun cls -> (cls, k)) group)
         (Shard.groups facade))
  in
  let by_classes () =
    match Shard.of_classes facade ~shards:2 assignment with
    | Ok m -> m
    | Error e ->
        (* cannot happen: whole groups are co-located by construction *)
        invalid_arg ("sharded oracle map: " ^ e)
  in
  let m =
    if Hashtbl.hash src land 4 = 0 then
      match Shard.by_hash facade ~shards:2 with
      | Ok m -> m
      | Error _ -> by_classes ()
    else by_classes ()
  in
  let map = Shard.to_string m in
  (* When a genuinely cross-shard step is rejected for several
     independent reasons of the SAME engine phase, which one surfaces
     depends on the decomposition (each shard sees only its own
     events) — only the phase class is guaranteed, so only it is
     compared there.  Everything else must match code-for-code. *)
  let same_phase_cross_shard st rs r1 =
    match (rs, r1) with
    | Error a, Error b
      when Runtime_error.phase_rank a = Runtime_error.phase_rank b -> (
        match Shard.split m st with Ok (_ :: _ :: _) -> true | _ -> false)
    | _ -> false
  in
  match Troll.Session.load_sharded ~shards:2 ~map src with
  | Error e -> failf "sharded" "sharded load (map %s): %s" map (Troll.Error.to_string e)
  | Ok sh ->
      with_session "sharded" src @@ fun sg ->
      let rec loop i = function
        | [] -> Ok ()
        | st :: rest ->
            let rs = Troll.Session.step sh st in
            let r1 = Troll.Session.step sg st in
            if code_of rs <> code_of r1 && not (same_phase_cross_shard st rs r1)
            then
              failf "sharded" "%s (map %s): sharded=%s single=%s"
                (step_label i st) map (code_of rs) (code_of r1)
            else loop (i + 1) rest
      in
      (match loop 0 trace with
      | Error _ as e -> e
      | Ok () ->
          let img_s = Troll.Session.save sh in
          let img_1 = Troll.Session.save sg in
          if img_s <> img_1 then
            failf "sharded"
              "final save images differ under map %s (merged %d bytes, \
               single %d bytes)"
              map (String.length img_s) (String.length img_1)
          else Ok ())

(* ---------------------------------------------------------------- *)
(* Oracle 8: speculative parallel commit is linearizable             *)
(* ---------------------------------------------------------------- *)

(* The trace runs in chunks through {!Engine.step_batch_par} over a
   jobs=4 pool; every chunk is replayed sequentially from the same
   [Persist.save] pre-image on a reference community.  The engine
   promises results bit-identical to the left-to-right order, so that
   comparison alone decides pass/fail — but on divergence the oracle
   also searches the other sequential orders (permutations of the
   chunk, bounded) to tell a *reordered-but-linearizable* schedule
   (determinism bug) apart from one matching *no* sequential order
   (atomicity bug).  The chunk length equals {!Pool.small_batch_cutoff}
   so full chunks actually reach the speculative path.  Domains make
   the parent unforkable, so as with "parallel" the whole comparison
   runs in a forked child. *)

let linearizable_chunk = Pool.small_batch_cutoff
let permutation_bound = 720

(* Permutations of [l], lexicographic, identity first. *)
let rec perm_seq l : int list Seq.t =
  match l with
  | [] -> Seq.return []
  | _ ->
      Seq.concat_map
        (fun x ->
          Seq.map
            (fun p -> x :: p)
            (perm_seq (List.filter (fun y -> y <> x) l)))
        (List.to_seq l)

let linearizable_verdict src trace =
  match (load_session src, load_session src) with
  | Error e, _ | _, Error e ->
      Printf.sprintf "FAIL spec failed to load: %s" (Troll.Error.to_string e)
  | Ok s, Ok sref -> (
      let c = Troll.Session.community s in
      let cref = Troll.Session.community sref in
      let pool = Pool.create ~jobs:parallel_jobs in
      let rec chunks = function
        | [] -> []
        | l ->
            let rec take n acc = function
              | rest when n = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | x :: rest -> take (n - 1) (x :: acc) rest
            in
            let chunk, rest = take linearizable_chunk [] l in
            chunk :: chunks rest
      in
      (* replay [batch] in [order] on the reference, from [pre];
         per-original-index verdict codes plus the final image *)
      let run_seq_from pre order batch =
        match Persist.load cref pre with
        | Error e -> Error ("reference restore failed: " ^ e)
        | Ok () ->
            let codes = Array.make (Array.length batch) "?" in
            List.iter
              (fun k -> codes.(k) <- code_of (Engine.step cref batch.(k)))
              order;
            Ok (codes, Persist.save cref)
      in
      let check_chunk base chunk =
        let batch = Array.of_list chunk in
        let n = Array.length batch in
        let pre = Persist.save c in
        let rp = Engine.step_batch_par ~pool c batch in
        let codes_p = Array.map code_of rp in
        let img_p = Persist.save c in
        let identity = List.init n Fun.id in
        match run_seq_from pre identity batch with
        | Error e -> Some e
        | Ok (codes_s, img_s) ->
            if codes_p = codes_s && img_p = img_s then None
            else
              let matches order =
                match run_seq_from pre order batch with
                | Ok (codes, img) -> codes = codes_p && img = img_p
                | Error _ -> false
              in
              let reordered =
                Seq.exists matches
                  (Seq.take permutation_bound (perm_seq identity))
              in
              let where = Printf.sprintf "steps %d..%d" base (base + n - 1) in
              if reordered then
                Some
                  (where
                 ^ ": parallel schedule matches a permuted order, not the \
                    batch order")
              else
                Some
                  (Printf.sprintf
                     "%s: parallel schedule matches no sequential order (%d \
                      tried)"
                     where permutation_bound)
      in
      let rec run base = function
        | [] -> None
        | chunk :: rest -> (
            match check_chunk base chunk with
            | Some _ as f -> f
            | None -> run (base + List.length chunk) rest)
      in
      let outcome = run 0 (chunks trace) in
      Pool.shutdown pool;
      match outcome with None -> "ok" | Some d -> "FAIL " ^ d)

let linearizable src trace =
  forked_verdict "linearizable" (fun () -> linearizable_verdict src trace)

(* ---------------------------------------------------------------- *)
(* Oracle 9: refinement certificates round-trip and validate         *)
(* ---------------------------------------------------------------- *)

(* Every specification refines itself: driving two fresh communities
   loaded from the same source in lock step can never diverge.  The
   oracle records that self-refinement as a certificate and checks the
   whole trust chain — the encoding round-trips bit-identically, the
   independent {!Validator} accepts the genuine certificate, and it
   rejects each semantic tamper class (flipped verdict, corrupted
   digest, dropped edge).  Tampers are applied to the decoded record
   and re-encoded, so the CRC frame is valid and only semantic
   validation can catch them.  Both sides load via {!Compile.load} —
   the same entry point the validator replays through. *)

let certificate src _trace =
  let oracle = "certificate" in
  let load () =
    match Compile.load src with
    | Ok (c, _) -> Ok c
    | Error e -> Error e
  in
  match (load (), load ()) with
  | Error e, _ | _, Error e ->
      failf "load" "%s: spec failed to compile: %s" oracle e
  | Ok abs_c, Ok conc_c -> (
      let tpls =
        Hashtbl.fold (fun _ t acc -> t :: acc) abs_c.Community.templates []
        |> List.filter (fun t -> t.Template.t_kind = `Class)
        |> List.sort (fun a b ->
               compare a.Template.t_name b.Template.t_name)
      in
      let first_of ty =
        match Refinement.default_pool ty with v :: _ -> Some v | [] -> None
      in
      let try_create c (tpl : Template.t) =
        let key_opt =
          match tpl.Template.t_id_fields with
          | [ (_, ty) ] -> first_of ty
          | fields ->
              let vs =
                List.filter_map
                  (fun (n, ty) ->
                    Option.map (fun v -> (n, v)) (first_of ty))
                  fields
              in
              if List.length vs = List.length fields then
                Some (Value.Tuple vs)
              else None
        in
        let args =
          match
            List.find_opt
              (fun (ed : Template.event_def) ->
                ed.Template.ed_kind = Ast.Ev_birth)
              tpl.Template.t_events
          with
          | Some ed -> List.filter_map first_of ed.Template.ed_params
          | None -> []
        in
        match key_opt with
        | None -> None
        | Some key -> (
            match
              Engine.create c ~cls:tpl.Template.t_name ~key ~args ()
            with
            | Ok _ -> Some (key, args)
            | Error _ -> None)
      in
      let creatable =
        List.find_map
          (fun tpl ->
            match try_create abs_c tpl with
            | Some (key, args) -> (
                match try_create conc_c tpl with
                | Some _ -> Some (tpl, key, args)
                | None -> None)
            | None -> None)
          tpls
      in
      match creatable with
      | None -> Ok () (* no class instance creatable: nothing to certify *)
      | Some (tpl, key, args) -> (
          let cls = tpl.Template.t_name in
          let alphabet =
            let rec take n = function
              | x :: r when n > 0 -> x :: take (n - 1) r
              | _ -> []
            in
            take 4 (Refinement.candidates ~max_per_event:2 tpl)
          in
          let impl = Implementation.make ~abs_class:cls ~conc_class:cls () in
          let builder =
            Certificate.builder ~abs_src:src ~conc_src:src ~impl
              ~abs_key:key ~conc_key:key ~abs_args:args ~conc_args:args
              ~alphabet:
                (List.map
                   (fun c -> (c.Refinement.ev_name, c.Refinement.ev_args))
                   alphabet)
              ~depth:2 ()
          in
          let report =
            Refinement.check ~record:builder ~impl
              ~abs:{ Refinement.community = abs_c; id = Ident.make cls key }
              ~conc:{ Refinement.community = conc_c; id = Ident.make cls key }
              ~alphabet ~depth:2 ()
          in
          match report.Refinement.verdict with
          | Error cx ->
              failf oracle "self-refinement reported a counterexample: %s"
                (Format.asprintf "%a" Refinement.pp_counterexample cx)
          | Ok () -> (
              let cert = Certificate.finish builder in
              let enc = Certificate.encode cert in
              match Certificate.decode enc with
              | Error e -> failf oracle "genuine certificate fails to decode: %s" e
              | Ok cert' ->
                  if Certificate.encode cert' <> enc then
                    failf oracle "encode . decode . encode is not the identity"
                  else begin
                    match Validator.validate cert with
                    | Error e ->
                        failf oracle "validator rejects genuine certificate: %s" e
                    | Ok _ -> (
                        let expect_reject what mutated =
                          match mutated with
                          | None -> Ok () (* tamper not applicable *)
                          | Some m -> (
                              match
                                Validator.validate_string
                                  (Certificate.encode m)
                              with
                              | Error _ -> Ok ()
                              | Ok _ ->
                                  failf oracle
                                    "validator accepts certificate with %s"
                                    what)
                        in
                        let flipped =
                          match cert.Certificate.edges with
                          | [] -> None
                          | e :: rest ->
                              let verdict =
                                match e.Certificate.e_verdict with
                                | Certificate.E_ok _ -> Certificate.E_stuck
                                | _ -> Certificate.E_ok e.Certificate.e_pre
                              in
                              let e' =
                                {
                                  e with
                                  Certificate.e_verdict = verdict;
                                  e_oblig =
                                    Certificate.oblig_of_verdict
                                      e.Certificate.e_event verdict;
                                }
                              in
                              Some
                                {
                                  cert with
                                  Certificate.edges = e' :: rest;
                                }
                        in
                        let corrupted =
                          (* rewrite one digest everywhere it occurs, so
                             the structure stays consistent and only
                             replay can notice *)
                          let target = cert.Certificate.root.Certificate.p_abs in
                          let fake = String.map (fun c -> if c = target.[0] then (if c = 'f' then '0' else 'f') else c) target in
                          let swap d = if d = target then fake else d in
                          let swap_pair (p : Certificate.pair) =
                            { Certificate.p_abs = swap p.Certificate.p_abs;
                              p_conc = p.Certificate.p_conc }
                          in
                          Some
                            {
                              cert with
                              Certificate.root = swap_pair cert.Certificate.root;
                              nodes =
                                List.map
                                  (fun (p, d) -> (swap_pair p, d))
                                  cert.Certificate.nodes;
                              edges =
                                List.map
                                  (fun (e : Certificate.edge) ->
                                    {
                                      e with
                                      Certificate.e_pre =
                                        swap_pair e.Certificate.e_pre;
                                      e_verdict =
                                        (match e.Certificate.e_verdict with
                                        | Certificate.E_ok p ->
                                            Certificate.E_ok (swap_pair p)
                                        | v -> v);
                                    })
                                  cert.Certificate.edges;
                            }
                        in
                        let dropped =
                          match cert.Certificate.edges with
                          | [] -> None
                          | _ :: rest ->
                              Some { cert with Certificate.edges = rest }
                        in
                        match expect_reject "a flipped verdict" flipped with
                        | Error _ as e -> e
                        | Ok () -> (
                            match
                              expect_reject "a corrupted digest" corrupted
                            with
                            | Error _ as e -> e
                            | Ok () ->
                                expect_reject "a dropped edge" dropped))
                  end)))

(* ---------------------------------------------------------------- *)
(* Driver                                                            *)
(* ---------------------------------------------------------------- *)

let oracle_names =
  [
    "dispatch"; "server"; "replay"; "journal"; "parallel"; "recovery";
    "sharded"; "linearizable"; "certificate";
  ]

let run_oracle name src trace =
  let f =
    match name with
    | "dispatch" -> dispatch
    | "server" -> server
    | "replay" -> replay
    | "journal" -> journal
    | "parallel" -> parallel
    | "recovery" -> recovery
    | "sharded" -> sharded
    | "linearizable" -> linearizable
    | "certificate" -> certificate
    | other -> invalid_arg ("Oracle.run_oracle: " ^ other)
  in
  try f src trace
  with e -> Error { oracle = "exception"; detail = Printexc.to_string e }

let check_all src trace =
  List.fold_left
    (fun acc name ->
      match acc with Error _ -> acc | Ok () -> run_oracle name src trace)
    (Ok ()) oracle_names
