(* Workload generation: draw steps against a scratch community,
   advancing it as we go so later steps are generated against the state
   the earlier ones produced.  The scratch community also powers the
   accepted-step bias: candidates are probed with [Engine.enabled]
   (journal rollback, no mutation) before one is settled on. *)

let rec value_of_vtype rng c (ty : Vtype.t) : Value.t =
  match ty with
  | Vtype.Bool -> Value.Bool (Rng.bool rng)
  | Vtype.Int -> Value.Int (Rng.range rng (-2) 8)
  | Vtype.Nat -> Value.Int (Rng.range rng 0 8)
  | Vtype.String -> Value.String (Rng.choose rng [ "s"; "t"; "u"; "w" ])
  | Vtype.Date -> Value.Date (Rng.range rng 0 9000)
  | Vtype.Money -> Value.Money (Money.of_cents (Rng.range rng 0 5000))
  | Vtype.Enum (n, lits) -> Value.Enum (n, Rng.choose rng lits)
  | Vtype.Id cls ->
      let living = Ident.Set.elements (Community.extension c cls) in
      if living <> [] && Rng.chance rng 9 10 then
        Ident.to_value (Rng.choose rng living)
      else Ident.to_value (Ident.make cls (Value.String "ghost"))
  | Vtype.Set t ->
      Value.set (List.init (Rng.int rng 3) (fun _ -> value_of_vtype rng c t))
  | Vtype.List t ->
      Value.List (List.init (Rng.int rng 3) (fun _ -> value_of_vtype rng c t))
  | Vtype.Map (k, v) ->
      Value.map
        (List.init (Rng.int rng 2) (fun _ ->
             (value_of_vtype rng c k, value_of_vtype rng c v)))
  | Vtype.Tuple fields ->
      Value.Tuple (List.map (fun (n, t) -> (n, value_of_vtype rng c t)) fields)
  | Vtype.Any -> Value.Int 0

let rec class_chain spec cls =
  match Genspec.find_class spec cls with
  | None -> []
  | Some c -> (
      c
      ::
      (match c.Genspec.c_rel with
      | Genspec.Base -> []
      | Genspec.View (b, _) | Genspec.Spec b -> class_chain spec b))

let is_death spec cls name =
  List.exists
    (fun c ->
      List.exists
        (fun e -> e.Genspec.e_name = name && e.Genspec.e_kind = Genspec.Death)
        c.Genspec.c_events)
    (class_chain spec cls)

let generate rng spec scratch ~len =
  let counter = ref 0 in
  let fresh_key () =
    incr counter;
    Value.String (Printf.sprintf "k%d" !counter)
  in
  let living_of cls = Ident.Set.elements (Community.extension scratch cls) in
  let all_living () =
    List.concat_map (fun c -> living_of c.Genspec.c_name) spec.Genspec.s_classes
  in
  let creatable =
    List.filter
      (fun c -> match c.Genspec.c_rel with Genspec.View _ -> false | _ -> true)
      spec.Genspec.s_classes
  in
  let birth_args cls =
    match Community.find_template scratch cls with
    | None -> []
    | Some t -> (
        match Template.birth_events t with
        | [ ed ] ->
            List.map (value_of_vtype rng scratch) ed.Template.ed_params
        | _ -> [])
  in
  let gen_create () =
    let c = Rng.choose rng creatable in
    let cls = c.Genspec.c_name in
    let key =
      match c.Genspec.c_rel with
      | Genspec.Spec base -> (
          (* a specialization needs its base aspect alive under the
             same key *)
          match living_of base with
          | [] -> fresh_key ()
          | keys when Rng.chance rng 4 5 -> (Rng.choose rng keys).Ident.key
          | _ -> fresh_key ())
      | _ -> (
          match living_of cls with
          | existing when existing <> [] && Rng.chance rng 1 10 ->
              (* duplicate key: exercises the already_alive rejection *)
              (Rng.choose rng existing).Ident.key
          | _ -> fresh_key ())
    in
    Step.Create { cls; key; event = None; args = birth_args cls }
  in
  let pick_living () =
    match all_living () with [] -> None | xs -> Some (Rng.choose rng xs)
  in
  let gen_event id =
    match Engine.candidate_events scratch id with
    | [] -> None
    | cands ->
        let cands =
          (* deaths mostly come through Destroy steps instead *)
          let nd =
            List.filter (fun (n, _) -> not (is_death spec id.Ident.cls n)) cands
          in
          if nd <> [] && Rng.chance rng 9 10 then nd else cands
        in
        let name, params = Rng.choose rng cands in
        Some (Event.make id name (List.map (value_of_vtype rng scratch) params))
  in
  let gen_some_event () = Option.bind (pick_living ()) gen_event in
  let gen_fire () =
    match gen_some_event () with
    | None -> gen_create ()
    | Some ev ->
        let ev =
          if Rng.chance rng 7 10 then
            (* accepted-step bias: resample a few times for an enabled
               candidate, falling back to the last draw *)
            let rec search best k =
              if k = 0 || Engine.enabled scratch best then best
              else
                match gen_some_event () with
                | None -> best
                | Some ev2 -> search ev2 (k - 1)
            in
            search ev 3
          else ev
        in
        Step.Fire ev
  in
  let gen_events n =
    List.filter_map (fun _ -> gen_some_event ()) (List.init n Fun.id)
  in
  let gen_sync () =
    match gen_events 2 with [] -> gen_create () | evs -> Step.Sync evs
  in
  let gen_seq () =
    match gen_events (Rng.range rng 2 3) with
    | [] -> gen_create ()
    | evs -> Step.Seq evs
  in
  let gen_txn () =
    match gen_events 2 with
    | [] -> gen_create ()
    | evs -> Step.Txn (List.map (fun e -> [ e ]) evs)
  in
  let gen_destroy () =
    match pick_living () with
    | None -> gen_create ()
    | Some id -> Step.Destroy { id; event = None; args = [] }
  in
  let gen_ghost () =
    (* deliberately ill-targeted: unknown objects and events keep the
       error paths under differential test *)
    let c = Rng.choose rng spec.Genspec.s_classes in
    let id = Ident.make c.Genspec.c_name (Value.String "ghost") in
    if Rng.bool rng then Step.Fire (Event.make id "no_such_event" [])
    else Step.Destroy { id; event = None; args = [] }
  in
  let steps = ref [] in
  for _ = 1 to len do
    let step =
      if all_living () = [] then gen_create ()
      else
        let r = Rng.int rng 100 in
        if r < 26 then gen_create ()
        else if r < 64 then gen_fire ()
        else if r < 74 then gen_sync ()
        else if r < 84 then gen_seq ()
        else if r < 89 then gen_txn ()
        else if r < 96 then gen_destroy ()
        else gen_ghost ()
    in
    ignore (Engine.step scratch step);
    steps := step :: !steps
  done;
  List.rev !steps
