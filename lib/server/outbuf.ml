(** Nonblocking output buffering — see the interface for the contract. *)

type t = {
  fd : Unix.file_descr;
  mutable data : Bytes.t;
  mutable start : int;  (** first unwritten byte *)
  mutable len : int;  (** unwritten byte count *)
  mutable alive : bool;
  scratch : Buffer.t;  (** frame-encode staging, reused across frames *)
}

(* Process-wide counters: the serve loops fork per process, so plain
   refs are race-free and cheap. *)
let n_flushes = ref 0
let n_short_writes = ref 0
let n_bytes = ref 0

let reset_stats () =
  n_flushes := 0;
  n_short_writes := 0;
  n_bytes := 0

let stats_rows () =
  [
    ("out_flushes", !n_flushes);
    ("out_short_writes", !n_short_writes);
    ("out_bytes", !n_bytes);
  ]

let initial_capacity = 4 * 1024

(* Once the backlog drains, a buffer that ballooned past this is
   reallocated small again so one burst does not pin memory forever. *)
let shrink_above = 256 * 1024

let create fd =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  {
    fd;
    data = Bytes.create initial_capacity;
    start = 0;
    len = 0;
    alive = true;
    scratch = Buffer.create 512;
  }

let pending t = t.len
let alive t = t.alive
let need_write t = t.alive && t.len > 0

let kill t =
  t.alive <- false;
  t.start <- 0;
  t.len <- 0

(* Make room for [extra] more bytes at [start + len]: compact first
   (cheap, reclaims the consumed prefix), grow only if still short. *)
let ensure t extra =
  let cap = Bytes.length t.data in
  if t.start + t.len + extra > cap then begin
    if t.start > 0 then begin
      Bytes.blit t.data t.start t.data 0 t.len;
      t.start <- 0
    end;
    if t.len + extra > cap then begin
      let cap' =
        let c = ref (max cap initial_capacity) in
        while t.len + extra > !c do
          c := !c * 2
        done;
        !c
      in
      let data' = Bytes.create cap' in
      Bytes.blit t.data 0 data' 0 t.len;
      t.data <- data'
    end
  end

let add_string t s =
  if t.alive then begin
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.data (t.start + t.len) n;
    t.len <- t.len + n
  end

let add_frame t doc =
  if t.alive then begin
    Buffer.clear t.scratch;
    Frame.add_line t.scratch doc;
    let n = Buffer.length t.scratch in
    ensure t n;
    Buffer.blit t.scratch 0 t.data (t.start + t.len) n;
    t.len <- t.len + n
  end

let maybe_shrink t =
  if t.len = 0 then begin
    t.start <- 0;
    if Bytes.length t.data > shrink_above then
      t.data <- Bytes.create initial_capacity
  end

let flush t =
  if need_write t then begin
    incr n_flushes;
    let rec loop () =
      if t.len > 0 then
        match Unix.write t.fd t.data t.start t.len with
        | 0 ->
            (* a 0-byte write on a stream fd: treat as would-block *)
            incr n_short_writes
        | n ->
            t.start <- t.start + n;
            t.len <- t.len - n;
            n_bytes := !n_bytes + n;
            loop ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            incr n_short_writes
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error (_, _, _) -> kill t
    in
    loop ();
    maybe_shrink t
  end
