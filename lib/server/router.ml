(** Society-interface routing over the wire protocol — see the
    interface for the model.  One single-threaded [select] loop fronts
    N shard servers: plain steps are forwarded asynchronously (several
    shards commit — and fsync — concurrently), cross-shard steps run
    the two-phase protocol synchronously, and every shipped WAL record
    is mirrored so a dead shard can be respawned and caught up. *)

type client = {
  cl_fd : Unix.file_descr;
  cl_buf : Buffer.t;
  cl_out : Outbuf.t;
  mutable cl_alive : bool;
}

(* what the router is waiting for under one internal request id *)
type pending =
  | P_client of client * Json.t
      (** a forwarded client request: relay the reply under the
          client's original id *)
  | P_sync of Json.t option ref
      (** a router-internal call: park the reply frame in the cell
          ([Null] = the link died first) *)

type link = {
  lk_id : int;
  lk_path : string;
  mutable lk_fd : Unix.file_descr option;
  mutable lk_out : Outbuf.t option;  (** paired with [lk_fd] *)
  lk_buf : Buffer.t;
  lk_inflight : (string, pending) Hashtbl.t;
  (* WAL mirror: a base dump plus every record shipped since, enough
     to rebuild the shard from nothing *)
  mutable lk_base : string;
  mutable lk_base_seq : int;
  mutable lk_records : (int * string) list;  (** newest first *)
  mutable lk_nrecords : int;
}

type counters = {
  mutable forwarded : int;
  mutable cross : int;
  mutable recoveries : int;
  mutable failed : int;
}

type t = {
  community : Community.t;
  map : Shard.map;
  links : link array;
  respawn : (int -> unit) option;
  mutable draining : bool;
  mutable clients : client list;
  mutable next_id : int;
  stats : counters;
}

let create ~community ~map ~paths ?respawn () =
  let n = Shard.shards map in
  if Array.length paths <> n then
    invalid_arg "Router.create: one socket path per shard";
  {
    community;
    map;
    links =
      Array.init n (fun k ->
          {
            lk_id = k;
            lk_path = paths.(k);
            lk_fd = None;
            lk_out = None;
            lk_buf = Buffer.create 256;
            lk_inflight = Hashtbl.create 16;
            lk_base = "";
            lk_base_seq = 0;
            lk_records = [];
            lk_nrecords = 0;
          });
    respawn;
    draining = false;
    clients = [];
    next_id = 0;
    stats = { forwarded = 0; cross = 0; recoveries = 0; failed = 0 };
  }

let stop t = t.draining <- true

(* ------------------------------------------------------------------ *)
(* Wire helpers                                                        *)
(* ------------------------------------------------------------------ *)

(* frames append to nonblocking output buffers and flush
   opportunistically; leftovers drain via the loop's write select, so a
   stalled peer never blocks routing for everyone else *)
let send_client c frame =
  if c.cl_alive then begin
    Outbuf.add_frame c.cl_out frame;
    Outbuf.flush c.cl_out;
    if not (Outbuf.alive c.cl_out) then c.cl_alive <- false
  end

let error_to_client c ~id err =
  send_client c (Protocol.error_frame ~id err)

let shard_unavailable k =
  Protocol.Wire_error.of_reason (Runtime_error.Shard_unavailable k)

let fresh_id t =
  t.next_id <- t.next_id + 1;
  Printf.sprintf "r%d" t.next_id

(** Replace (or add) the ["id"] member of a request document. *)
let with_id id = function
  | Json.Obj fields -> Json.Obj (("id", id) :: List.remove_assoc "id" fields)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Shard links                                                         *)
(* ------------------------------------------------------------------ *)

(** The link's peer is gone: fail everything in flight.  Recovery is
    the main loop's business. *)
let link_down t link =
  (match link.lk_fd with
  | None -> ()
  | Some fd ->
      link.lk_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ()));
  Option.iter Outbuf.kill link.lk_out;
  link.lk_out <- None;
  Buffer.clear link.lk_buf;
  Hashtbl.iter
    (fun _ p ->
      match p with
      | P_client (c, id) ->
          t.stats.failed <- t.stats.failed + 1;
          error_to_client c ~id (shard_unavailable link.lk_id)
      | P_sync cell -> cell := Some Json.Null)
    link.lk_inflight;
  Hashtbl.reset link.lk_inflight

(** An unsolicited [{"wal": …}] shipment: extend the mirror, dropping
    records the base dump already contains. *)
let mirror_records link j =
  match Json.member "wal" j with
  | Json.List items ->
      List.iter
        (fun item ->
          match
            ( Json.to_int_opt (Json.member "seq" item),
              Json.to_string_opt (Json.member "payload" item) )
          with
          | Some seq, Some payload when seq > link.lk_base_seq ->
              link.lk_records <- (seq, payload) :: link.lk_records;
              link.lk_nrecords <- link.lk_nrecords + 1
          | _ -> ())
        items
  | _ -> ()

let handle_shard_frame link j =
  match Json.to_string_opt (Json.member "id" j) with
  | Some iid when Hashtbl.mem link.lk_inflight iid -> (
      let p = Hashtbl.find link.lk_inflight iid in
      Hashtbl.remove link.lk_inflight iid;
      match p with
      | P_client (c, id) -> send_client c (with_id id j)
      | P_sync cell -> cell := Some j)
  | _ -> mirror_records link j

let feed_buffer buf handle =
  let data = Buffer.contents buf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | exception Not_found -> raise Exit
       | nl ->
           let line = String.sub data !start (nl - !start) in
           start := nl + 1;
           (match Frame.decode_line line with
           | Some (Frame.Frame doc) -> handle doc
           | Some (Frame.Malformed _) | Some Frame.Eof | None -> ())
     done
   with Exit -> ());
  let rest = String.sub data !start (n - !start) in
  Buffer.clear buf;
  Buffer.add_string buf rest

let read_chunk_size = 65536

let service_link t link =
  match link.lk_fd with
  | None -> ()
  | Some fd -> (
      let buf = Bytes.create read_chunk_size in
      match Unix.read fd buf 0 read_chunk_size with
      | 0 -> link_down t link
      | n ->
          Buffer.add_subbytes link.lk_buf buf 0 n;
          feed_buffer link.lk_buf (handle_shard_frame link)
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          ()
      | exception Unix.Unix_error _ -> link_down t link)

(** Append one frame to a link's output buffer and flush what the
    socket accepts; [Error] (with the link torn down) when the link is
    or just went dead. *)
let link_write t link doc : (unit, unit) result =
  match link.lk_out with
  | None -> Error ()
  | Some out ->
      Outbuf.add_frame out doc;
      Outbuf.flush out;
      if Outbuf.alive out then Ok ()
      else begin
        link_down t link;
        Error ()
      end

(** Send a request on a link and register a parked-reply cell for it.
    [None] when the link is (or just went) down. *)
let send_op t link fields : (link * Json.t option ref) option =
  match link.lk_fd with
  | None -> None
  | Some _ -> (
      let iid = fresh_id t in
      let cell = ref None in
      Hashtbl.replace link.lk_inflight iid (P_sync cell);
      match link_write t link (with_id (Json.String iid) fields) with
      | Ok () -> Some (link, cell)
      | Error () ->
          (* link_down already failed and cleared the inflight table *)
          None)

let sync_timeout = 60.

(** Service the involved links until every cell is filled, a link
    dies, or the timeout passes.  Replies to *other* requests arriving
    on those links are dispatched normally on the way. *)
let await_cells t cells =
  let deadline = Unix.gettimeofday () +. sync_timeout in
  let rec loop () =
    let waiting =
      List.filter (fun (l, c) -> !c = None && l.lk_fd <> None) cells
    in
    if waiting <> [] && Unix.gettimeofday () < deadline then begin
      let fds = List.filter_map (fun (l, _) -> l.lk_fd) waiting in
      let wfds =
        List.filter_map
          (fun (l, _) ->
            match (l.lk_fd, l.lk_out) with
            | Some fd, Some out when Outbuf.need_write out -> Some fd
            | _ -> None)
          waiting
      in
      (match Unix.select fds wfds [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, writable, _ ->
          List.iter
            (fun (l, _) ->
              match (l.lk_fd, l.lk_out) with
              | Some fd, Some out when List.mem fd writable ->
                  Outbuf.flush out;
                  if not (Outbuf.alive out) then link_down t l
              | _ -> ())
            waiting;
          List.iter
            (fun (l, _) ->
              match l.lk_fd with
              | Some fd when List.mem fd ready -> service_link t l
              | _ -> ())
            waiting);
      loop ()
    end
  in
  loop ()

(** Interpret a parked reply frame as the usual result. *)
let cell_result link cell : (Json.t, Protocol.Wire_error.t) result =
  match !cell with
  | None | Some Json.Null -> Error (shard_unavailable link.lk_id)
  | Some j -> (
      match Json.member "ok" j with
      | Json.Bool true -> Ok (Json.member "result" j)
      | _ -> (
          match Protocol.Wire_error.of_json (Json.member "error" j) with
          | Ok e -> Error e
          | Error m -> Error (Protocol.Wire_error.make ~code:"bad_frame" m)))

(** Synchronous call on one link. *)
let rpc t link fields : (Json.t, Protocol.Wire_error.t) result =
  match send_op t link fields with
  | None -> Error (shard_unavailable link.lk_id)
  | Some ((_, cell) as sent) ->
      await_cells t [ sent ];
      if !cell = None then begin
        (* timed out: the reply id stays registered and would confuse a
           later request — drop the link instead *)
        link_down t link;
        Error
          (Protocol.Wire_error.make ~code:"deadline_expired"
             (Printf.sprintf "shard %d did not answer within %.0fs"
                link.lk_id sync_timeout))
      end
      else cell_result link cell

(** Same request to every link; first error wins, results come back in
    shard order. *)
let scatter t fields : (Json.t list, Protocol.Wire_error.t) result =
  let sent = Array.map (fun l -> (l, send_op t l fields)) t.links in
  let cells =
    Array.to_list sent |> List.filter_map (fun (_, s) -> s)
  in
  await_cells t cells;
  Array.fold_left
    (fun acc (l, s) ->
      match acc with
      | Error _ -> acc
      | Ok results -> (
          match s with
          | None -> Error (shard_unavailable l.lk_id)
          | Some (_, cell) -> (
              match cell_result l cell with
              | Ok r -> Ok (results @ [ r ])
              | Error e -> Error e)))
    (Ok []) sent

(* ------------------------------------------------------------------ *)
(* Connect, mirror, recover                                            *)
(* ------------------------------------------------------------------ *)

let hello_fields =
  Json.Obj
    [
      ("op", Json.String "hello");
      ("version", Json.Int Protocol.version);
      ("caps", Json.List [ Json.String "wal" ]);
    ]

let connect_attempts = 100 (* x 50 ms *)

let connect_link t link : (unit, string) result =
  let rec attempt i =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX link.lk_path) with
    | () -> Ok fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if i >= connect_attempts then
          Error
            (Printf.sprintf "cannot connect to shard %d at %s" link.lk_id
               link.lk_path)
        else begin
          ignore (Unix.select [] [] [] 0.05);
          attempt (i + 1)
        end
  in
  match attempt 0 with
  | Error _ as e -> e
  | Ok fd -> (
      link.lk_fd <- Some fd;
      link.lk_out <- Some (Outbuf.create fd);
      Buffer.clear link.lk_buf;
      match rpc t link hello_fields with
      | Error e ->
          link_down t link;
          Error
            (Printf.sprintf "shard %d handshake failed: %s" link.lk_id
               e.Protocol.Wire_error.message)
      | Ok result -> (
          match Json.to_int_opt (Json.member "version" result) with
          | Some v when v = Protocol.version -> Ok ()
          | _ ->
              link_down t link;
              Error
                (Printf.sprintf "shard %d speaks another protocol version"
                   link.lk_id)))

(** Re-base the mirror on a fresh dump (initial connect, and
    compaction once the record tail grows long). *)
let refresh_mirror t link : (unit, Protocol.Wire_error.t) result =
  match rpc t link (Json.Obj [ ("op", Json.String "save") ]) with
  | Error e -> Error e
  | Ok result -> (
      match Json.to_string_opt (Json.member "state" result) with
      | None ->
          Error
            (Protocol.Wire_error.make ~code:"bad_frame"
               "shard save reply without \"state\"")
      | Some dump ->
          link.lk_base <- dump;
          link.lk_base_seq <-
            Option.value ~default:0
              (Json.to_int_opt (Json.member "wal_seq" result));
          link.lk_records <- [];
          link.lk_nrecords <- 0;
          Ok ())

let catchup_link t link : (unit, Protocol.Wire_error.t) result =
  let records = List.rev_map snd link.lk_records in
  match
    rpc t link
      (Json.Obj
         [
           ("op", Json.String "catchup");
           ("base", Json.String link.lk_base);
           ( "records",
             Json.List (List.map (fun r -> Json.String r) records) );
         ])
  with
  | Error e -> Error e
  | Ok _ -> Ok ()

(** Respawn (when a callback was given), reconnect and catch the shard
    up from the mirror.  A failure leaves the link down; the next loop
    turn tries again. *)
let recover t link =
  if not t.draining then begin
    t.stats.recoveries <- t.stats.recoveries + 1;
    (match t.respawn with Some f -> f link.lk_id | None -> ());
    match connect_link t link with
    | Error _ -> ()
    | Ok () -> (
        match catchup_link t link with
        | Ok () -> ()
        | Error _ -> link_down t link)
  end

let mirror_compact_after = 1024

let maybe_compact t link =
  if
    link.lk_fd <> None
    && Hashtbl.length link.lk_inflight = 0
    && link.lk_nrecords > mirror_compact_after
  then ignore (refresh_mirror t link)

(* ------------------------------------------------------------------ *)
(* Client requests                                                     *)
(* ------------------------------------------------------------------ *)

let forward t link client ~id doc =
  match link.lk_fd with
  | None -> error_to_client client ~id (shard_unavailable link.lk_id)
  | Some _ -> (
      let iid = fresh_id t in
      Hashtbl.replace link.lk_inflight iid (P_client (client, id));
      match link_write t link (with_id (Json.String iid) doc) with
      | Ok () -> t.stats.forwarded <- t.stats.forwarded + 1
      | Error () ->
          (* link_down already answered the parked client *)
          ())

let merge_outcomes results =
  let gather field =
    Json.List
      (List.concat_map (fun r -> Json.to_list (Json.member field r)) results)
  in
  Json.Obj
    [
      ("committed", gather "committed");
      ("created", gather "created");
      ("destroyed", gather "destroyed");
    ]

(** The two-phase protocol over prepared shard transactions.  Runs
    synchronously: prepares go out together (their work overlaps), and
    only when every involved shard voted yes are the open transactions
    committed.  Any refusal — or a shard dying mid-protocol — aborts
    every prepared transaction, restoring each shard bit-identically. *)
let coordinate t client ~id subs =
  t.stats.cross <- t.stats.cross + 1;
  let prepare_fields sub =
    Json.Obj
      [
        ("op", Json.String "prepare");
        ("step", Protocol.request_of_step ~id:Json.Null sub);
      ]
  in
  let sent =
    List.map
      (fun (k, sub) ->
        let link = t.links.(k) in
        (link, send_op t link (prepare_fields sub)))
      subs
  in
  await_cells t (List.filter_map snd sent);
  let votes =
    List.map
      (fun (link, s) ->
        match s with
        | None -> (link, false, Error (shard_unavailable link.lk_id))
        | Some (_, cell) -> (
            match cell_result link cell with
            | Ok r -> (link, true, Ok r)
            | Error e ->
                (* [txn_pending]/refusal means nothing was prepared
                   there; a dead link has no transaction left either *)
                (link, false, Error e)))
      sent
  in
  let all_yes = List.for_all (fun (_, yes, _) -> yes) votes in
  if not all_yes then begin
    (* phase 2: abort everything that did prepare *)
    let aborts =
      List.filter_map
        (fun (link, yes, _) ->
          if yes then send_op t link (Json.Obj [ ("op", Json.String "abort") ])
          else None)
        votes
    in
    await_cells t aborts;
    (* the same phase ranking {!Shard.coordinate} applies: the engine
       validates life cycles of the whole synchronous set before any
       permission, so when several sub-steps refuse independently the
       earliest-phase refusal must surface; ties keep shard order *)
    let rank (e : Protocol.Wire_error.t) =
      match e.Protocol.Wire_error.code with
      | "unknown_shard" | "shard_unavailable" -> 0
      | "unknown_class" | "unknown_object" | "unknown_event"
      | "unknown_attribute" | "already_alive" | "not_alive" | "not_birth" ->
          1
      | _ -> 2
    in
    let best_error =
      List.fold_left
        (fun acc (_, _, r) ->
          match (acc, r) with
          | None, Error e -> Some e
          | Some a, Error e when rank e < rank a -> Some e
          | _ -> acc)
        None votes
    in
    t.stats.failed <- t.stats.failed + 1;
    error_to_client client ~id
      (Option.value best_error
         ~default:
           (Protocol.Wire_error.make ~code:"internal" "prepare failed"))
  end
  else begin
    let commits =
      List.filter_map
        (fun (link, _, _) ->
          send_op t link (Json.Obj [ ("op", Json.String "commit") ]))
        votes
    in
    await_cells t commits;
    let commit_error =
      if List.length commits <> List.length votes then
        (* a participant died between its yes vote and the commit send *)
        List.find_map
          (fun (link, _, _) ->
            if link.lk_fd = None then Some (shard_unavailable link.lk_id)
            else None)
          votes
      else
        List.find_map
          (fun (link, cell) ->
            match cell_result link cell with
            | Ok _ -> None
            | Error e -> Some e)
          commits
    in
    match commit_error with
    | Some e ->
        (* in-doubt window: some shards committed before one failed;
           the survivors keep their state, the dead shard is caught up
           from its own last shipped record *)
        t.stats.failed <- t.stats.failed + 1;
        error_to_client client ~id e
    | None ->
        let outcomes =
          List.filter_map
            (fun (_, _, r) -> match r with Ok o -> Some o | Error _ -> None)
            votes
        in
        send_client client (Protocol.ok_frame ~id (merge_outcomes outcomes))
  end

let router_caps = [ "shards" ]

let unsupported what =
  Protocol.Wire_error.make ~code:"unsupported"
    (Printf.sprintf "%s is not available through the shard router" what)

let stats_json t =
  Json.Obj
    [
      ( "router",
        Json.Obj
          [
            ("shards", Json.Int (Array.length t.links));
            ("map", Json.String (Shard.to_string t.map));
            ("forwarded", Json.Int t.stats.forwarded);
            ("cross_shard", Json.Int t.stats.cross);
            ("recoveries", Json.Int t.stats.recoveries);
            ("failed", Json.Int t.stats.failed);
          ] );
      ( "shards",
        Json.List
          (Array.to_list
             (Array.map
                (fun l ->
                  Json.Obj
                    [
                      ("id", Json.Int l.lk_id);
                      ("path", Json.String l.lk_path);
                      ("connected", Json.Bool (l.lk_fd <> None));
                      ("inflight", Json.Int (Hashtbl.length l.lk_inflight));
                      ("mirrored_records", Json.Int l.lk_nrecords);
                    ])
                t.links)) );
    ]

let handle_client_doc t client doc =
  let env = Protocol.decode doc in
  let id = env.Protocol.req_id in
  let reply_ok body = send_client client (Protocol.ok_frame ~id body) in
  let reply_err e = error_to_client client ~id e in
  let links = Array.length t.links in
  let forward_owner target =
    match Shard.owner_ident t.map target with
    | Error r -> reply_err (Protocol.Wire_error.of_reason r)
    | Ok k -> forward t t.links.(k) client ~id doc
  in
  match env.Protocol.request with
  | Error msg ->
      reply_err (Protocol.Wire_error.make ~code:"bad_request" msg)
  | Ok Protocol.Ping -> reply_ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Ok (Protocol.Hello { version; caps = _ }) ->
      if version <> Protocol.version then
        reply_err
          (Protocol.Wire_error.make ~code:"version_mismatch"
             (Printf.sprintf
                "router speaks protocol version %d, client offered %d"
                Protocol.version version))
      else
        reply_ok
          (Json.Obj
             [
               ("version", Json.Int Protocol.version);
               ( "caps",
                 Json.List (List.map (fun c -> Json.String c) router_caps) );
               ("shards", Json.Int links);
               ("map", Json.String (Shard.to_string t.map));
             ])
  | Ok (Protocol.Step step) -> (
      match Shard.split t.map step with
      | Error reason -> reply_err (Protocol.Wire_error.of_reason reason)
      | Ok subs
        when List.exists (fun (k, _) -> k < 0 || k >= links) subs ->
          let k, _ = List.find (fun (k, _) -> k < 0 || k >= links) subs in
          reply_err
            (Protocol.Wire_error.of_reason (Runtime_error.Unknown_shard k))
      | Ok [ (k, sub) ] ->
          forward t t.links.(k) client ~id
            (Protocol.request_of_step ~id:Json.Null sub)
      | Ok [] -> assert false (* split routes empty steps to shard 0 *)
      | Ok subs -> coordinate t client ~id subs)
  | Ok (Protocol.Attr { target; _ }) -> forward_owner target
  | Ok (Protocol.Enabled target) -> forward_owner target
  | Ok (Protocol.Candidates target) -> forward_owner target
  | Ok (Protocol.Extension _) -> (
      match scatter t doc with
      | Error e -> reply_err e
      | Ok results ->
          let members =
            List.concat_map
              (fun r -> Json.to_list (Json.member "members" r))
              results
          in
          reply_ok (Json.Obj [ ("members", Json.List members) ]))
  | Ok (Protocol.Steps _) -> reply_err (unsupported "steps")
  | Ok (Protocol.Eval _) -> reply_err (unsupported "eval")
  | Ok (Protocol.View _) -> reply_err (unsupported "view")
  | Ok (Protocol.Restore _) -> reply_err (unsupported "restore")
  | Ok (Protocol.Prepare _ | Protocol.Commit | Protocol.Abort
       | Protocol.Catchup _) ->
      reply_err
        (Protocol.Wire_error.make ~code:"bad_request"
           "coordination ops are only spoken router-to-shard")
  | Ok (Protocol.Save path) -> (
      match scatter t (Json.Obj [ ("op", Json.String "save") ]) with
      | Error e -> reply_err e
      | Ok results -> (
          let dumps =
            List.map
              (fun r -> Json.to_string_opt (Json.member "state" r))
              results
          in
          if List.exists Option.is_none dumps then
            reply_err
              (Protocol.Wire_error.make ~code:"bad_frame"
                 "shard save reply without \"state\"")
          else begin
            (* shard dumps are disjoint by construction: merge them in
               shard order into the facade community *)
            Community.reset_instance_state t.community;
            let rec merge = function
              | [] -> Ok ()
              | Some d :: rest -> (
                  match Persist.load ~reset:false t.community d with
                  | Ok () -> merge rest
                  | Error m -> Error m)
              | None :: _ -> assert false
            in
            match merge dumps with
            | Error m ->
                reply_err
                  (Protocol.Wire_error.make ~code:"restore_error"
                     (Printf.sprintf "shard state merge failed: %s" m))
            | Ok () -> (
                let dump = Persist.save t.community in
                match path with
                | None ->
                    reply_ok (Json.Obj [ ("state", Json.String dump) ])
                | Some p -> (
                    match
                      let oc = open_out_bin p in
                      output_string oc dump;
                      close_out oc
                    with
                    | () -> reply_ok (Json.Obj [ ("path", Json.String p) ])
                    | exception Sys_error m ->
                        reply_err
                          (Protocol.Wire_error.make ~code:"io_error" m)))
          end))
  | Ok Protocol.Snapshot -> (
      match scatter t (Json.Obj [ ("op", Json.String "snapshot") ]) with
      | Error e -> reply_err e
      | Ok results -> reply_ok (Json.Obj [ ("shards", Json.List results) ]))
  | Ok Protocol.Stats -> reply_ok (stats_json t)
  | Ok Protocol.Shutdown ->
      t.draining <- true;
      let cells =
        Array.to_list t.links
        |> List.filter_map (fun l ->
               send_op t l (Json.Obj [ ("op", Json.String "shutdown") ]))
      in
      await_cells t cells;
      reply_ok (Json.Obj [ ("draining", Json.Bool true) ])

let service_client t client =
  let buf = Bytes.create read_chunk_size in
  match Unix.read client.cl_fd buf 0 read_chunk_size with
  | 0 -> client.cl_alive <- false
  | n ->
      Buffer.add_subbytes client.cl_buf buf 0 n;
      feed_buffer client.cl_buf (handle_client_doc t client)
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> client.cl_alive <- false

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)
(* ------------------------------------------------------------------ *)

(* a client that stopped draining its responses cannot be allowed to
   buffer without bound; past this it is dropped *)
let client_backlog_limit = 8 * 1024 * 1024

let close_client c =
  if c.cl_alive then c.cl_alive <- false;
  Outbuf.kill c.cl_out;
  try Unix.close c.cl_fd with Unix.Unix_error _ -> ()

let listen_unix t ~path : (unit, string) result =
  (* bring every shard up before accepting anyone *)
  let initial =
    Array.fold_left
      (fun acc link ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match connect_link t link with
            | Error m -> Error m
            | Ok () -> (
                match refresh_mirror t link with
                | Ok () -> Ok ()
                | Error e ->
                    Error
                      (Printf.sprintf "shard %d mirror failed: %s" link.lk_id
                         e.Protocol.Wire_error.message))))
      (Ok ()) t.links
  in
  match initial with
  | Error _ as e -> e
  | Ok () ->
      (if Sys.file_exists path then
         try Unix.unlink path with Unix.Unix_error _ -> ());
      let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listener (Unix.ADDR_UNIX path);
      Unix.listen listener 64;
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      let on_signal _ = stop t in
      let previous =
        List.filter_map
          (fun s ->
            try Some (s, Sys.signal s (Sys.Signal_handle on_signal))
            with Invalid_argument _ | Sys_error _ -> None)
          [ Sys.sigint; Sys.sigterm ]
      in
      let inflight () =
        Array.exists (fun l -> Hashtbl.length l.lk_inflight > 0) t.links
      in
      let rec loop () =
        if not (t.draining && not (inflight ())) then begin
          if not t.draining then
            Array.iter
              (fun l ->
                if l.lk_fd = None then recover t l else maybe_compact t l)
              t.links;
          List.iter
            (fun c ->
              if c.cl_alive then begin
                if not (Outbuf.alive c.cl_out) then c.cl_alive <- false
                else if Outbuf.pending c.cl_out > client_backlog_limit then
                  close_client c
              end)
            t.clients;
          t.clients <- List.filter (fun c -> c.cl_alive) t.clients;
          let read_fds =
            (if t.draining then [] else [ listener ])
            @ List.map (fun c -> c.cl_fd) t.clients
            @ List.filter_map (fun l -> l.lk_fd) (Array.to_list t.links)
          in
          let write_fds =
            List.filter_map
              (fun c ->
                if Outbuf.need_write c.cl_out then Some c.cl_fd else None)
              t.clients
            @ List.filter_map
                (fun l ->
                  match (l.lk_fd, l.lk_out) with
                  | Some fd, Some out when Outbuf.need_write out -> Some fd
                  | _ -> None)
                (Array.to_list t.links)
          in
          (match Unix.select read_fds write_fds [] 0.1 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, writable, _ ->
              List.iter
                (fun fd ->
                  match
                    Array.find_opt (fun l -> l.lk_fd = Some fd) t.links
                  with
                  | Some link ->
                      Option.iter Outbuf.flush link.lk_out;
                      if
                        not
                          (Option.fold ~none:false ~some:Outbuf.alive
                             link.lk_out)
                      then link_down t link
                  | None -> (
                      match
                        List.find_opt (fun c -> c.cl_fd = fd) t.clients
                      with
                      | Some client -> Outbuf.flush client.cl_out
                      | None -> ()))
                writable;
              List.iter
                (fun fd ->
                  if fd = listener then begin
                    match Unix.accept fd with
                    | exception Unix.Unix_error (_, _, _) -> ()
                    | cfd, _ ->
                        t.clients <-
                          {
                            cl_fd = cfd;
                            cl_buf = Buffer.create 256;
                            cl_out = Outbuf.create cfd;
                            cl_alive = true;
                          }
                          :: t.clients
                  end
                  else
                    match
                      Array.find_opt (fun l -> l.lk_fd = Some fd) t.links
                    with
                    | Some link -> service_link t link
                    | None -> (
                        match
                          List.find_opt (fun c -> c.cl_fd = fd) t.clients
                        with
                        | Some client -> service_client t client
                        | None -> ()))
                ready);
          loop ()
        end
      in
      loop ();
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      List.iter close_client t.clients;
      t.clients <- [];
      (* best effort: ask still-running shards to drain too (a no-op
         when shutdown came in over the wire and was already relayed) *)
      let cells =
        Array.to_list t.links
        |> List.filter_map (fun l ->
               send_op t l (Json.Obj [ ("op", Json.String "shutdown") ]))
      in
      await_cells t cells;
      Array.iter (fun l -> link_down t l) t.links;
      List.iter (fun (s, behaviour) -> Sys.set_signal s behaviour) previous;
      Ok ()
