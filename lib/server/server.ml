(** The society server — a single-threaded [select] loop.  See the
    interface for the execution model. *)

type config = {
  queue_capacity : int;
  default_deadline_ms : int option;
  save_on_shutdown : string option;
  jobs : int;  (** probe pool size; 1 = sequential (and fork-safe) *)
}

let default_config =
  {
    queue_capacity = 1024;
    default_deadline_ms = None;
    save_on_shutdown = None;
    jobs = 1;
  }

(* one client connection; [pending] buffers bytes up to the next
   newline *)
type conn = {
  fd : Unix.file_descr;
  out_fd : Unix.file_descr;  (** = [fd] except in stdio mode *)
  mutable pending : Buffer.t;
  mutable alive : bool;
  mutable ship : bool;
      (** negotiated the [wal] capability in [hello]: shipped WAL
          records are pushed to this connection at turn boundaries *)
}

type job = {
  conn : conn;
  id : Json.t;
  request : Protocol.request;
  op : string;
  enqueued_at : float;
  deadline : float option;  (** absolute, seconds since epoch *)
}

type counters = {
  mutable received : int;
  mutable executed : int;
  mutable ok : int;
  mutable rejected : int;  (** structured errors from execution *)
  mutable expired : int;
  mutable overloaded : int;
  mutable shed : int;  (** answered [shutting_down] while draining *)
  mutable malformed : int;
  mutable probe_requests : int;  (** enabled/candidates answered *)
  mutable probe_batches : int;  (** coalesced probe dispatches *)
}

type t = {
  session : Troll.Session.t;
  config : config;
  queue : job Queue.t;
  mutable draining : bool;
  mutable conns : conn list;
  stats : counters;
  latency : (string, Trace.Latency.t) Hashtbl.t;
  mutable view : View.t option;
      (** frozen projection reused across probe requests until the
          community changes (one freeze per quiescent point) *)
  mutable pool : Pool.t option;
      (** probe pool, created lazily on the first probe request — a
          server that never probes never spawns a domain and stays
          fork-safe *)
  wal : Wal.t option;
      (** durability log; appends happen inside commits via the
          community's hook, the serve loop group-fsyncs at turn
          boundaries *)
  mutable prepared : Engine.prepared option;
      (** the open transaction of a two-phase commit; while [Some],
          everything except ping/hello/commit/abort/stats/shutdown is
          answered with [txn_pending] *)
  ship_queue : (int * string) Queue.t;
      (** WAL records appended since the last turn boundary, waiting to
          be pushed to [ship] connections *)
}

let create ?(config = default_config) ?wal session =
  let t =
  {
    session;
    config;
    wal;
    prepared = None;
    ship_queue = Queue.create ();
    queue = Queue.create ();
    draining = false;
    conns = [];
    stats =
      {
        received = 0;
        executed = 0;
        ok = 0;
        rejected = 0;
        expired = 0;
        overloaded = 0;
        shed = 0;
        malformed = 0;
        probe_requests = 0;
        probe_batches = 0;
      };
    latency = Hashtbl.create 16;
    view = None;
    pool = None;
  }
  in
  (* mirror every appended WAL record to subscribed connections; the
     queue only fills while someone is actually listening *)
  Option.iter
    (fun w ->
      Wal.set_shipper w
        (Some
           (fun seq payload ->
             if List.exists (fun c -> c.ship && c.alive) t.conns then
               Queue.add (seq, payload) t.ship_queue)))
    wal;
  t

let stop t = t.draining <- true

(* ------------------------------------------------------------------ *)
(* Probe views and pool                                                *)
(* ------------------------------------------------------------------ *)

(** The frozen view for the current quiescent point, freezing a fresh
    one only when the cached view went stale (schema edit, committed
    step, restore). *)
let current_view t : View.t =
  let community = Troll.Session.community t.session in
  match t.view with
  | Some v when View.valid v && View.source v == community -> v
  | prior ->
      if Option.is_some prior then View.note_invalidated ();
      let v = View.freeze community in
      t.view <- Some v;
      v

let probe_pool t : Pool.t =
  match t.pool with
  | Some p -> p
  | None ->
      let p = Pool.create ~jobs:t.config.jobs in
      t.pool <- Some p;
      p

let shutdown_pool t =
  match t.pool with
  | Some p ->
      Pool.shutdown p;
      t.pool <- None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let send conn frame =
  if conn.alive then begin
    let line = Frame.to_line frame in
    let len = String.length line in
    let pos = ref 0 in
    try
      while !pos < len do
        pos := !pos + Unix.write_substring conn.out_fd line !pos (len - !pos)
      done
    with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false
  end

let send_error conn ~id err = send conn (Protocol.error_frame ~id err)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let record_latency t op seconds =
  let h =
    match Hashtbl.find_opt t.latency op with
    | Some h -> h
    | None ->
        let h = Trace.Latency.create () in
        Hashtbl.add t.latency op h;
        h
  in
  Trace.Latency.record h seconds

let json_of_us us =
  if us = infinity then Json.Null else Json.Int (int_of_float us)

let stats_json t : Json.t =
  let s = t.stats in
  let latency_rows =
    Hashtbl.fold
      (fun op h acc ->
        ( op,
          Json.Obj
            [
              ("count", Json.Int (Trace.Latency.count h));
              ("mean_us", Json.Int (int_of_float (Trace.Latency.mean_us h)));
              ("max_us", Json.Int (int_of_float (Trace.Latency.max_us h)));
              ("p50_us", json_of_us (Trace.Latency.quantile_us h 0.5));
              ("p99_us", json_of_us (Trace.Latency.quantile_us h 0.99));
              ( "buckets",
                Json.List
                  (List.map
                     (fun (bound, count) ->
                       Json.List [ json_of_us bound; Json.Int count ])
                     (Trace.Latency.buckets h)) );
            ] )
        :: acc)
      t.latency []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Json.Obj
    [
      ( "server",
        Json.Obj
          [
            ("received", Json.Int s.received);
            ("executed", Json.Int s.executed);
            ("ok", Json.Int s.ok);
            ("rejected", Json.Int s.rejected);
            ("expired", Json.Int s.expired);
            ("overloaded", Json.Int s.overloaded);
            ("shed", Json.Int s.shed);
            ("malformed", Json.Int s.malformed);
            ("queue_depth", Json.Int (Queue.length t.queue));
            ("draining", Json.Bool t.draining);
          ] );
      ( "txn",
        Json.Obj
          (List.map
             (fun (label, n) -> (label, Json.Int n))
             (Trace.txn_stats_rows ())) );
      ( "dispatch",
        Json.Obj
          (List.map
             (fun (label, n) -> (label, Json.Int n))
             (Trace.dispatch_stats_rows ())) );
      ( "probe",
        Json.Obj
          (("requests", Json.Int s.probe_requests)
          :: ("batches", Json.Int s.probe_batches)
          :: ("jobs", Json.Int t.config.jobs)
          :: List.map
               (fun (label, n) -> (label, Json.Int n))
               (Trace.probe_stats_rows ())) );
      ( "wal",
        match t.wal with
        | None -> Json.Obj [ ("attached", Json.Bool false) ]
        | Some w ->
            let ws = Wal.stats () in
            let mean_us =
              if ws.Wal.fsyncs = 0 then 0
              else ws.Wal.fsync_total_us / ws.Wal.fsyncs
            in
            Json.Obj
              [
                ("attached", Json.Bool true);
                ("dir", Json.String (Wal.dir w));
                ("last_seq", Json.Int (Wal.last_seq w));
                ("depth", Json.Int (Wal.depth w));
                ("batches", Json.Int ws.Wal.batches);
                ("effects", Json.Int ws.Wal.effects);
                ("bytes", Json.Int ws.Wal.bytes);
                ("snapshots", Json.Int ws.Wal.snapshots);
                ("fsyncs", Json.Int ws.Wal.fsyncs);
                ("fsync_mean_us", Json.Int mean_us);
                ("fsync_max_us", Json.Int ws.Wal.fsync_max_us);
              ] );
      ("latency_us", Json.Obj latency_rows);
    ]

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let instance_to_json (inst : Interface.instance) : Json.t =
  Json.Obj (List.map (fun (n, id) -> (n, Protocol.ident_to_json id)) inst)

let enabled_result names : Json.t =
  Json.Obj
    [ ("events", Json.List (List.map (fun n -> Json.String n) names)) ]

let candidates_result cands : Json.t =
  Json.Obj
    [
      ( "candidates",
        Json.List
          (List.map
             (fun (name, params, en) ->
               Json.Obj
                 ([
                    ("event", Json.String name);
                    ( "params",
                      Json.List
                        (List.map
                           (fun ty -> Json.String (Vtype.to_string ty))
                           params) );
                  ]
                 @
                 match en with
                 | None -> []
                 | Some b -> [ ("enabled", Json.Bool b) ]))
             cands) );
    ]

let unknown_class_error cls =
  Protocol.Wire_error.of_reason (Runtime_error.Unknown_class cls)

(** Operations that stay answerable while a prepared transaction is
    open.  Everything else would observe (or destroy) tentative state. *)
let allowed_while_prepared = function
  | Protocol.Ping | Protocol.Hello _ | Protocol.Commit | Protocol.Abort
  | Protocol.Stats | Protocol.Shutdown ->
      true
  | _ -> false

let server_caps t =
  (if Option.is_some t.wal then [ "wal" ] else [])
  @ (if t.config.jobs > 1 then [ "jobs" ] else [])
  @ [ "steps" ]

let execute t (req : Protocol.request) :
    (Json.t, Protocol.Wire_error.t) result =
  let s = t.session in
  let community = Troll.Session.community s in
  if Option.is_some t.prepared && not (allowed_while_prepared req) then
    Error
      (Protocol.Wire_error.make ~code:"txn_pending"
         "a prepared transaction is open; commit or abort it first")
  else
  match req with
  | Protocol.Ping -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Hello { version; caps } ->
      if version <> Protocol.version then
        Error
          (Protocol.Wire_error.make ~code:"version_mismatch"
             (Printf.sprintf
                "server speaks protocol version %d, client offered %d"
                Protocol.version version))
      else begin
        ignore caps;
        let mine = server_caps t in
        Ok
          (Json.Obj
             [
               ("version", Json.Int Protocol.version);
               ("caps", Json.List (List.map (fun c -> Json.String c) mine));
             ])
      end
  | Protocol.Prepare step -> (
      match Engine.prepare community step with
      | Ok p ->
          t.prepared <- Some p;
          Ok (Protocol.outcome_to_json (Engine.outcome_of_prepared p))
      | Error reason -> Error (Protocol.Wire_error.of_reason reason))
  | Protocol.Commit -> (
      match t.prepared with
      | None ->
          Error
            (Protocol.Wire_error.make ~code:"no_txn"
               "no prepared transaction to commit")
      | Some p ->
          t.prepared <- None;
          Engine.commit_prepared p;
          Ok (Json.Obj [ ("committed", Json.Bool true) ]))
  | Protocol.Abort -> (
      match t.prepared with
      | None -> Ok (Json.Obj [ ("aborted", Json.Bool false) ])
      | Some p ->
          t.prepared <- None;
          Engine.rollback_prepared p;
          Ok (Json.Obj [ ("aborted", Json.Bool true) ]))
  | Protocol.Catchup { base; records } -> (
      let restored =
        match base with
        | None -> Ok ()
        | Some dump -> (
            match Persist.load community dump with
            | Ok () -> Ok ()
            | Error m ->
                Error (Protocol.Wire_error.make ~code:"restore_error" m))
      in
      match restored with
      | Error e -> Error e
      | Ok () -> (
          let rec replay n = function
            | [] -> Ok n
            | payload :: rest -> (
                match Effect_log.decode payload with
                | Error m -> Error m
                | Ok effs -> (
                    match Effect_log.apply community effs with
                    | Ok () -> replay (n + 1) rest
                    | Error m -> Error m))
          in
          match replay 0 records with
          | Error m ->
              Error (Protocol.Wire_error.make ~code:"catchup_error" m)
          | Ok n ->
              (* the replay bypassed the journal; re-anchor the WAL on
                 the caught-up state *)
              t.view <- None;
              Option.iter Wal.snapshot t.wal;
              Ok (Json.Obj [ ("applied", Json.Int n) ])))
  | Protocol.Step step -> (
      match Troll.step s step with
      | Ok outcome -> Ok (Protocol.outcome_to_json outcome)
      | Error reason -> Error (Protocol.Wire_error.of_reason reason))
  | Protocol.Steps steps ->
      (* footprint-disjoint runs commit speculatively in parallel on the
         probe pool; a sharded session has no single community to
         speculate on, so it degrades to the coordinator loop *)
      let results =
        match Troll.Session.shard_map s with
        | Some _ -> List.map (Troll.step s) steps
        | None ->
            Array.to_list
              (Engine.step_batch_par ~pool:(probe_pool t) community
                 (Array.of_list steps))
      in
      Ok
        (Json.Obj
           [
             ( "results",
               Json.List
                 (List.map
                    (function
                      | Ok outcome ->
                          Json.Obj
                            [
                              ("ok", Json.Bool true);
                              ("result", Protocol.outcome_to_json outcome);
                            ]
                      | Error reason ->
                          Json.Obj
                            [
                              ("ok", Json.Bool false);
                              ( "error",
                                Protocol.Wire_error.to_json
                                  (Protocol.Wire_error.of_reason reason) );
                            ])
                    results) );
           ])
  | Protocol.Attr { target; attr } -> (
      match Troll.Session.attr s target attr with
      | Ok v -> Ok (Json.Obj [ ("value", Protocol.value_to_json v) ])
      | Error e -> Error (Protocol.Wire_error.of_error e))
  | Protocol.Eval expr -> (
      match Troll.Session.eval s expr with
      | Ok v -> Ok (Json.Obj [ ("value", Protocol.value_to_json v) ])
      | Error e -> Error (Protocol.Wire_error.of_error e))
  | Protocol.Extension cls -> (
      match Community.find_template community cls with
      | None ->
          Error
            (Protocol.Wire_error.of_reason (Runtime_error.Unknown_class cls))
      | Some _ ->
          Ok
            (Json.Obj
               [
                 ( "members",
                   Json.List
                     (List.map Protocol.ident_to_json
                        (Troll.Session.extension s cls)) );
               ]))
  | Protocol.Enabled id -> (
      match Community.find_template community id.Ident.cls with
      | None -> Error (unknown_class_error id.Ident.cls)
      | Some _ ->
          t.stats.probe_requests <- t.stats.probe_requests + 1;
          let view = current_view t in
          Ok
            (enabled_result
               (Engine.enabled_events_par ~pool:(probe_pool t) view id)))
  | Protocol.Candidates id -> (
      match Community.find_template community id.Ident.cls with
      | None -> Error (unknown_class_error id.Ident.cls)
      | Some _ ->
          t.stats.probe_requests <- t.stats.probe_requests + 1;
          let view = current_view t in
          Ok
            (candidates_result
               (Engine.candidate_events_par ~pool:(probe_pool t) view id)))
  | Protocol.View { view; what } -> (
      match Troll.Session.view s view with
      | None ->
          Error
            (Protocol.Wire_error.make ~code:"unknown_view"
               (Printf.sprintf "no interface class %s" view))
      | Some v -> (
          match what with
          | Protocol.Rows ->
              Ok
                (Json.Obj
                   [
                     ("view", Json.String view);
                     ( "attrs",
                       Json.List
                         (List.map
                            (fun n -> Json.String n)
                            (Interface.attr_names v)) );
                     ( "rows",
                       Json.List
                         (List.map Protocol.value_to_json
                            (Interface.tabulate v)) );
                   ])
          | Protocol.Members ->
              Ok
                (Json.Obj
                   [
                     ("view", Json.String view);
                     ( "members",
                       Json.List
                         (List.map instance_to_json (Interface.extension v))
                     );
                   ])))
  | Protocol.Save None ->
      (* [wal_seq] anchors the dump in the WAL: records with seq <= it
         are already part of the state (a mirroring router uses this to
         discard stale shipments) *)
      Ok
        (Json.Obj
           (("state", Json.String (Persist.save community))
           ::
           (match t.wal with
           | None -> []
           | Some w -> [ ("wal_seq", Json.Int (Wal.last_seq w)) ])))
  | Protocol.Save (Some path) -> (
      match Persist.save_file community path with
      | () -> Ok (Json.Obj [ ("path", Json.String path) ])
      | exception Sys_error m ->
          Error (Protocol.Wire_error.make ~code:"io_error" m))
  | Protocol.Restore { path; state } -> (
      let dump =
        match (state, path) with
        | Some s, _ -> Ok s
        | None, Some p -> (
            match
              let ic = open_in_bin p in
              let n = in_channel_length ic in
              let s = really_input_string ic n in
              close_in ic;
              s
            with
            | s -> Ok s
            | exception Sys_error m ->
                Error (Protocol.Wire_error.make ~code:"io_error" m))
        | None, None ->
            Error
              (Protocol.Wire_error.make ~code:"bad_request"
                 "restore needs a \"path\" or a \"state\"")
      in
      match dump with
      | Error e -> Error e
      | Ok dump -> (
          match Persist.load community dump with
          | Ok () ->
              (* the restore bypassed the journal, so the WAL tail no
                 longer describes this state: compact immediately *)
              Option.iter Wal.snapshot t.wal;
              Ok (Json.Obj [ ("restored", Json.Bool true) ])
          | Error m ->
              Error (Protocol.Wire_error.make ~code:"restore_error" m)))
  | Protocol.Snapshot -> (
      match t.wal with
      | None ->
          Error
            (Protocol.Wire_error.make ~code:"no_wal"
               "server is running without a WAL")
      | Some w ->
          Wal.snapshot w;
          Ok
            (Json.Obj
               [
                 ("snapshot_seq", Json.Int (Wal.last_seq w));
                 ("depth", Json.Int (Wal.depth w));
               ]))
  | Protocol.Stats -> Ok (stats_json t)
  | Protocol.Shutdown -> Ok (Json.Obj [ ("draining", Json.Bool true) ])

(* ------------------------------------------------------------------ *)
(* The queue                                                           *)
(* ------------------------------------------------------------------ *)

let process t (job : job) =
  let now = Unix.gettimeofday () in
  (match job.deadline with
  | Some d when now >= d ->
      t.stats.expired <- t.stats.expired + 1;
      send_error job.conn ~id:job.id
        (Protocol.Wire_error.make ~code:"deadline_expired"
           "deadline passed before execution")
  | _ -> (
      let result = execute t job.request in
      t.stats.executed <- t.stats.executed + 1;
      (* [hello] negotiates per-connection capabilities: subscribing to
         WAL shipments needs the connection, which [execute] (exposed
         connection-free) never sees *)
      (match (job.request, result) with
      | Protocol.Hello { caps; _ }, Ok _ ->
          job.conn.ship <- List.mem "wal" caps && Option.is_some t.wal
      | _ -> ());
      (match result with
      | Ok body ->
          t.stats.ok <- t.stats.ok + 1;
          send job.conn (Protocol.ok_frame ~id:job.id body)
      | Error err ->
          t.stats.rejected <- t.stats.rejected + 1;
          send_error job.conn ~id:job.id err);
      (* shutdown drains: admission stops, the queue finishes *)
      match job.request with Protocol.Shutdown -> stop t | _ -> ()));
  record_latency t job.op (Unix.gettimeofday () -. job.enqueued_at)

let is_probe (job : job) =
  match job.request with
  | Protocol.Enabled _ | Protocol.Candidates _ -> true
  | _ -> false

(** Answer a run of consecutive probe jobs from one frozen view, with
    every individual enabledness probe of every job in the run coalesced
    into a single pool dispatch.  Per-job deadline checks, counters and
    latency recording are exactly those of per-job {!process}; the
    answers equal per-job execution because all jobs in the run see the
    same quiescent point. *)
let process_probe_batch t (jobs : job list) =
  let now = Unix.gettimeofday () in
  let finish job result =
    t.stats.executed <- t.stats.executed + 1;
    (match result with
    | Ok body ->
        t.stats.ok <- t.stats.ok + 1;
        send job.conn (Protocol.ok_frame ~id:job.id body)
    | Error err ->
        t.stats.rejected <- t.stats.rejected + 1;
        send_error job.conn ~id:job.id err);
    record_latency t job.op (Unix.gettimeofday () -. job.enqueued_at)
  in
  let live =
    List.filter
      (fun job ->
        match job.deadline with
        | Some d when now >= d ->
            t.stats.expired <- t.stats.expired + 1;
            send_error job.conn ~id:job.id
              (Protocol.Wire_error.make ~code:"deadline_expired"
                 "deadline passed before execution");
            record_latency t job.op (Unix.gettimeofday () -. job.enqueued_at);
            false
        | _ -> true)
      jobs
  in
  if live <> [] then begin
    t.stats.probe_batches <- t.stats.probe_batches + 1;
    let view = current_view t in
    let pool = probe_pool t in
    (* the main-domain thaw only answers schema/liveness questions while
       planning; the probes themselves run on per-domain thaws *)
    let c0 = View.thaw_cached view in
    let evs = ref [] and n_evs = ref 0 in
    let push ev =
      evs := ev :: !evs;
      incr n_evs;
      !n_evs - 1
    in
    let plans =
      List.map
        (fun job ->
          t.stats.probe_requests <- t.stats.probe_requests + 1;
          match job.request with
          | Protocol.Enabled id -> (
              match Community.find_template c0 id.Ident.cls with
              | None -> (job, `Done (Error (unknown_class_error id.Ident.cls)))
              | Some _ -> (
                  match Community.living c0 id with
                  | None -> (job, `Done (Ok (enabled_result [])))
                  | Some o ->
                      let descs =
                        Engine.nullary_descriptors c0 o.Obj_state.template
                      in
                      let offs =
                        Array.map
                          (fun (ed : Template.event_def) ->
                            push (Event.make id ed.Template.ed_name []))
                          descs
                      in
                      (job, `Enabled (descs, offs))))
          | Protocol.Candidates id -> (
              match Community.find_template c0 id.Ident.cls with
              | None -> (job, `Done (Error (unknown_class_error id.Ident.cls)))
              | Some tpl ->
                  let cands = Engine.candidate_descriptors c0 tpl in
                  let alive = Option.is_some (Community.living c0 id) in
                  let slots =
                    Array.map
                      (fun (name, params) ->
                        if alive && params = [] then
                          Some (push (Event.make id name []))
                        else None)
                      cands
                  in
                  (job, `Cands (cands, slots)))
          | _ ->
              (job, `Done (Error
                             (Protocol.Wire_error.make ~code:"internal_error"
                                "non-probe request in a probe batch"))))
        live
    in
    let ok =
      Engine.enabled_batch_par ~pool view (Array.of_list (List.rev !evs))
    in
    List.iter
      (fun (job, plan) ->
        match plan with
        | `Done r -> finish job r
        | `Enabled (descs, offs) ->
            let names = ref [] in
            for i = Array.length descs - 1 downto 0 do
              if ok.(offs.(i)) then
                names := descs.(i).Template.ed_name :: !names
            done;
            finish job (Ok (enabled_result !names))
        | `Cands (cands, slots) ->
            finish job
              (Ok
                 (candidates_result
                    (List.init (Array.length cands) (fun i ->
                         let name, params = cands.(i) in
                         (name, params, Option.map (fun k -> ok.(k)) slots.(i)))))))
      plans
  end

let admit t (job : job) =
  if t.draining then begin
    t.stats.shed <- t.stats.shed + 1;
    send_error job.conn ~id:job.id
      (Protocol.Wire_error.make ~code:"shutting_down" "server is draining")
  end
  else if Queue.length t.queue >= t.config.queue_capacity then begin
    t.stats.overloaded <- t.stats.overloaded + 1;
    send_error job.conn ~id:job.id
      (Protocol.Wire_error.make ~code:"overloaded"
         (Printf.sprintf "admission queue full (%d requests)"
            t.config.queue_capacity))
  end
  else Queue.add job t.queue

let handle_frame t conn (read : Frame.read) =
  match read with
  | Frame.Eof -> assert false
  | Frame.Malformed msg ->
      t.stats.malformed <- t.stats.malformed + 1;
      send_error conn ~id:Json.Null
        (Protocol.Wire_error.make ~code:"bad_request"
           (Printf.sprintf "malformed frame: %s" msg))
  | Frame.Frame doc -> (
      let env = Protocol.decode doc in
      match env.Protocol.request with
      | Error msg ->
          t.stats.malformed <- t.stats.malformed + 1;
          send_error conn ~id:env.Protocol.req_id
            (Protocol.Wire_error.make ~code:"bad_request" msg)
      | Ok request ->
          t.stats.received <- t.stats.received + 1;
          let enqueued_at = Unix.gettimeofday () in
          let deadline_ms =
            match env.Protocol.deadline_ms with
            | Some ms -> Some ms
            | None -> t.config.default_deadline_ms
          in
          admit t
            {
              conn;
              id = env.Protocol.req_id;
              request;
              op = Protocol.op_name request;
              enqueued_at;
              deadline =
                Option.map
                  (fun ms -> enqueued_at +. (float_of_int ms /. 1000.))
                  deadline_ms;
            })

(* ------------------------------------------------------------------ *)
(* Connection input                                                    *)
(* ------------------------------------------------------------------ *)

let close_conn conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    if conn.out_fd <> conn.fd then
      try Unix.close conn.out_fd with Unix.Unix_error _ -> ()
  end

(** Drain complete lines out of the connection's pending buffer. *)
let feed_lines t conn =
  let data = Buffer.contents conn.pending in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | exception Not_found -> raise Exit
       | nl ->
           let line = String.sub data !start (nl - !start) in
           start := nl + 1;
           (match Frame.decode_line line with
           | None -> ()
           | Some read -> handle_frame t conn read)
     done
   with Exit -> ());
  let rest = String.sub data !start (n - !start) in
  Buffer.clear conn.pending;
  Buffer.add_string conn.pending rest;
  if Buffer.length conn.pending > Frame.max_frame_bytes then begin
    send_error conn ~id:Json.Null
      (Protocol.Wire_error.make ~code:"bad_request"
         (Printf.sprintf "frame longer than %d bytes" Frame.max_frame_bytes));
    close_conn conn
  end

let read_chunk_size = 65536

(** Read once from a select-ready connection; [false] on end of
    input. *)
let service_input t conn =
  let buf = Bytes.create read_chunk_size in
  match Unix.read conn.fd buf 0 read_chunk_size with
  | 0 -> false
  | n ->
      Buffer.add_subbytes conn.pending buf 0 n;
      feed_lines t conn;
      true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      true
  | exception Unix.Unix_error (_, _, _) -> false

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)
(* ------------------------------------------------------------------ *)

(** Roll back a prepared transaction abandoned by its coordinator, so
    shutdown never persists tentative state. *)
let abort_abandoned t =
  match t.prepared with
  | None -> ()
  | Some p ->
      t.prepared <- None;
      Engine.rollback_prepared p

let flush_snapshot t =
  abort_abandoned t;
  match t.config.save_on_shutdown with
  | None -> ()
  | Some path -> Persist.save_file (Troll.Session.community t.session) path

(** One select-poll-and-execute turn; [listener] accepts new
    connections while not draining.  [input_open] is false once the
    (stdio) input saw EOF. *)
let serve_loop t ~listener =
  let input_open = ref true in
  let rec loop () =
    let done_ =
      t.draining && Queue.is_empty t.queue
      || (listener = None && (not !input_open) && Queue.is_empty t.queue)
    in
    if not done_ then begin
      let read_fds =
        (match listener with Some l when not t.draining -> [ l ] | _ -> [])
        @ List.filter_map
            (fun c -> if c.alive && !input_open then Some c.fd else None)
            t.conns
      in
      let timeout = if Queue.is_empty t.queue then 0.1 else 0. in
      (match Unix.select read_fds [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          List.iter
            (fun fd ->
              if Some fd = listener then begin
                match Unix.accept fd with
                | exception Unix.Unix_error (_, _, _) -> ()
                | cfd, _ ->
                    t.conns <-
                      {
                        fd = cfd;
                        out_fd = cfd;
                        pending = Buffer.create 256;
                        alive = true;
                        ship = false;
                      }
                      :: t.conns
              end
              else
                match List.find_opt (fun c -> c.fd = fd) t.conns with
                | None -> ()
                | Some conn ->
                    if not (service_input t conn) then
                      if listener = None then
                        (* stdio: end of input means drain and exit *)
                        input_open := false
                      else begin
                        close_conn conn;
                        t.conns <-
                          List.filter (fun c -> c.alive) t.conns
                      end)
            ready);
      (if not (Queue.is_empty t.queue) then
         let job = Queue.pop t.queue in
         if is_probe job then begin
           (* decode-ahead batching: the maximal run of consecutive
              probe jobs at the queue head is answered from one view in
              one pool dispatch *)
           let batch = ref [ job ] in
           while
             (not (Queue.is_empty t.queue)) && is_probe (Queue.peek t.queue)
           do
             batch := Queue.pop t.queue :: !batch
           done;
           process_probe_batch t (List.rev !batch)
         end
         else process t job);
      (* group fsync at the turn boundary: everything committed by the
         jobs of this turn becomes durable in one fsync (a no-op when
         nothing was appended, or under the per-batch fsync policy) *)
      Option.iter Wal.sync t.wal;
      (* push the records made durable by that fsync to subscribed
         connections, as one unsolicited frame per turn *)
      if not (Queue.is_empty t.ship_queue) then begin
        let records = List.of_seq (Queue.to_seq t.ship_queue) in
        Queue.clear t.ship_queue;
        let frame = Protocol.wal_frame records in
        List.iter (fun c -> if c.ship && c.alive then send c frame) t.conns
      end;
      loop ()
    end
  in
  loop ()

let serve_fds t in_fd out_fd =
  let conn =
    {
      fd = in_fd;
      out_fd;
      pending = Buffer.create 256;
      alive = true;
      ship = false;
    }
  in
  t.conns <- conn :: t.conns;
  serve_loop t ~listener:None;
  shutdown_pool t;
  Option.iter Wal.detach t.wal;
  flush_snapshot t

let listen_unix t ~path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let on_signal _ = stop t in
  let previous =
    List.filter_map
      (fun s ->
        try Some (s, Sys.signal s (Sys.Signal_handle on_signal))
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigint; Sys.sigterm ]
  in
  serve_loop t ~listener:(Some listener);
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  List.iter close_conn t.conns;
  t.conns <- [];
  List.iter (fun (s, behaviour) -> Sys.set_signal s behaviour) previous;
  shutdown_pool t;
  Option.iter Wal.detach t.wal;
  flush_snapshot t
