(** The society server — a single-threaded [select] loop.  See the
    interface for the execution model. *)

type config = {
  queue_capacity : int;
  default_deadline_ms : int option;
  save_on_shutdown : string option;
  jobs : int;  (** probe pool size; 1 = sequential (and fork-safe) *)
  out_high_water : int;
      (** pause reading a connection whose output backlog reaches this *)
  out_low_water : int;  (** resume reading once the backlog drains to this *)
  evict_after : float;
      (** seconds a paused connection may stay paused before it is
          evicted; doubles as the drain deadline on shutdown *)
}

let default_config =
  {
    queue_capacity = 1024;
    default_deadline_ms = None;
    save_on_shutdown = None;
    jobs = 1;
    out_high_water = 1 lsl 20;
    out_low_water = 1 lsl 16;
    evict_after = 30.;
  }

(* one client connection; [pending] buffers bytes up to the next
   newline, [inq] holds the connection's admitted-but-unexecuted
   requests in arrival order, [out] its coalesced responses *)
type conn = {
  fd : Unix.file_descr;
  out_fd : Unix.file_descr;  (** = [fd] except in stdio mode *)
  out : Outbuf.t;
  mutable pending : Buffer.t;
  inq : job Queue.t;
  mutable alive : bool;
  owned : bool;
      (** accepted by the listener (so the server closes it); the stdio
          descriptors belong to the caller *)
  mutable reading : bool;
      (** false after input EOF: the connection only drains *)
  mutable paused_since : float;
      (** 0. = reading normally; otherwise the time the output backlog
          crossed the high-water mark and reading stopped *)
  mutable ship : bool;
      (** negotiated the [wal] capability in [hello]: shipped WAL
          records are pushed to this connection at turn boundaries *)
}

and job = {
  conn : conn;
  id : Json.t;
  request : Protocol.request;
  op : string;
  enqueued_at : float;
  deadline : float option;  (** absolute, seconds since epoch *)
}

type counters = {
  mutable received : int;
  mutable executed : int;
  mutable ok : int;
  mutable rejected : int;  (** structured errors from execution *)
  mutable expired : int;
  mutable overloaded : int;
  mutable shed : int;  (** answered [shutting_down] while draining *)
  mutable malformed : int;
  mutable probe_requests : int;  (** enabled/candidates answered *)
  mutable probe_batches : int;  (** coalesced probe dispatches *)
  mutable step_batches : int;  (** coalesced single-step dispatches *)
  mutable step_batch_members : int;  (** steps answered by those *)
  mutable pauses : int;  (** high-water read pauses *)
  mutable resumes : int;  (** low-water read resumes *)
  mutable evictions : int;  (** connections dropped at the deadline *)
  mutable max_turn_jobs : int;  (** largest single-turn job count *)
}

type t = {
  session : Troll.Session.t;
  config : config;
  mutable queued : int;  (** jobs across every connection's [inq] *)
  mutable rr : int;  (** round-robin start offset for fair interleave *)
  mutable draining : bool;
  mutable drain_deadline : float;
      (** absolute; past it, a drain stops waiting for slow readers *)
  mutable conns : conn list;
  stats : counters;
  latency : (string, Trace.Latency.t) Hashtbl.t;
  mutable view : View.t option;
      (** frozen projection reused across probe requests until the
          community changes (one freeze per quiescent point) *)
  mutable pool : Pool.t option;
      (** probe pool, created lazily on the first probe request — a
          server that never probes never spawns a domain and stays
          fork-safe *)
  wal : Wal.t option;
      (** durability log; appends happen inside commits via the
          community's hook, the serve loop group-fsyncs at turn
          boundaries *)
  mutable prepared : Engine.prepared option;
      (** the open transaction of a two-phase commit; while [Some],
          everything except ping/hello/commit/abort/stats/shutdown is
          answered with [txn_pending] *)
  ship_queue : (int * string) Queue.t;
      (** WAL records appended since the last turn boundary, waiting to
          be pushed to [ship] connections *)
}

let create ?(config = default_config) ?wal session =
  let t =
  {
    session;
    config;
    wal;
    prepared = None;
    ship_queue = Queue.create ();
    queued = 0;
    rr = 0;
    draining = false;
    drain_deadline = infinity;
    conns = [];
    stats =
      {
        received = 0;
        executed = 0;
        ok = 0;
        rejected = 0;
        expired = 0;
        overloaded = 0;
        shed = 0;
        malformed = 0;
        probe_requests = 0;
        probe_batches = 0;
        step_batches = 0;
        step_batch_members = 0;
        pauses = 0;
        resumes = 0;
        evictions = 0;
        max_turn_jobs = 0;
      };
    latency = Hashtbl.create 16;
    view = None;
    pool = None;
  }
  in
  (* mirror every appended WAL record to subscribed connections; the
     queue only fills while someone is actually listening *)
  Option.iter
    (fun w ->
      Wal.set_shipper w
        (Some
           (fun seq payload ->
             if List.exists (fun c -> c.ship && c.alive) t.conns then
               Queue.add (seq, payload) t.ship_queue)))
    wal;
  t

let stop t =
  t.draining <- true;
  if t.drain_deadline = infinity then
    t.drain_deadline <- Unix.gettimeofday () +. t.config.evict_after

(* ------------------------------------------------------------------ *)
(* Probe views and pool                                                *)
(* ------------------------------------------------------------------ *)

(** The frozen view for the current quiescent point, freezing a fresh
    one only when the cached view went stale (schema edit, committed
    step, restore). *)
let current_view t : View.t =
  let community = Troll.Session.community t.session in
  match t.view with
  | Some v when View.valid v && View.source v == community -> v
  | prior ->
      if Option.is_some prior then View.note_invalidated ();
      let v = View.freeze community in
      t.view <- Some v;
      v

let probe_pool t : Pool.t =
  match t.pool with
  | Some p -> p
  | None ->
      let p = Pool.create ~jobs:t.config.jobs in
      t.pool <- Some p;
      p

let shutdown_pool t =
  match t.pool with
  | Some p ->
      Pool.shutdown p;
      t.pool <- None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

(* responses append to the connection's output buffer; the serve loop
   flushes once per turn (coalescing a whole turn into one write) and
   resumes partial writes from the select write set *)
let send conn frame = if conn.alive then Outbuf.add_frame conn.out frame
let send_error conn ~id err = send conn (Protocol.error_frame ~id err)

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    conn.reading <- false;
    (* answers already encoded get one last best-effort write *)
    Outbuf.flush conn.out;
    Outbuf.kill conn.out;
    t.queued <- t.queued - Queue.length conn.inq;
    Queue.clear conn.inq;
    if conn.owned then begin
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      if conn.out_fd <> conn.fd then
        try Unix.close conn.out_fd with Unix.Unix_error _ -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let record_latency t op seconds =
  let h =
    match Hashtbl.find_opt t.latency op with
    | Some h -> h
    | None ->
        let h = Trace.Latency.create () in
        Hashtbl.add t.latency op h;
        h
  in
  Trace.Latency.record h seconds

let json_of_us us =
  if us = infinity then Json.Null else Json.Int (int_of_float us)

let stats_json t : Json.t =
  let s = t.stats in
  let latency_rows =
    Hashtbl.fold
      (fun op h acc ->
        ( op,
          Json.Obj
            [
              ("count", Json.Int (Trace.Latency.count h));
              ("mean_us", Json.Int (int_of_float (Trace.Latency.mean_us h)));
              ("max_us", Json.Int (int_of_float (Trace.Latency.max_us h)));
              ("p50_us", json_of_us (Trace.Latency.quantile_us h 0.5));
              ("p99_us", json_of_us (Trace.Latency.quantile_us h 0.99));
              ( "buckets",
                Json.List
                  (List.map
                     (fun (bound, count) ->
                       Json.List [ json_of_us bound; Json.Int count ])
                     (Trace.Latency.buckets h)) );
            ] )
        :: acc)
      t.latency []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Json.Obj
    [
      ( "server",
        Json.Obj
          [
            ("received", Json.Int s.received);
            ("executed", Json.Int s.executed);
            ("ok", Json.Int s.ok);
            ("rejected", Json.Int s.rejected);
            ("expired", Json.Int s.expired);
            ("overloaded", Json.Int s.overloaded);
            ("shed", Json.Int s.shed);
            ("malformed", Json.Int s.malformed);
            ("queue_depth", Json.Int t.queued);
            ("draining", Json.Bool t.draining);
          ] );
      ( "pipeline",
        Json.Obj
          ([
             ("sessions", Json.Int (List.length t.conns));
             ("queued", Json.Int t.queued);
             ("step_batches", Json.Int s.step_batches);
             ("step_batch_members", Json.Int s.step_batch_members);
             ("pauses", Json.Int s.pauses);
             ("resumes", Json.Int s.resumes);
             ("evictions", Json.Int s.evictions);
             ("max_turn_jobs", Json.Int s.max_turn_jobs);
           ]
          @ List.map
              (fun (label, n) -> (label, Json.Int n))
              (Outbuf.stats_rows ())) );
      ( "txn",
        Json.Obj
          (List.map
             (fun (label, n) -> (label, Json.Int n))
             (Trace.txn_stats_rows ())) );
      ( "dispatch",
        Json.Obj
          (List.map
             (fun (label, n) -> (label, Json.Int n))
             (Trace.dispatch_stats_rows ())) );
      ( "probe",
        Json.Obj
          (("requests", Json.Int s.probe_requests)
          :: ("batches", Json.Int s.probe_batches)
          :: ("jobs", Json.Int t.config.jobs)
          :: List.map
               (fun (label, n) -> (label, Json.Int n))
               (Trace.probe_stats_rows ())) );
      ( "wal",
        match t.wal with
        | None -> Json.Obj [ ("attached", Json.Bool false) ]
        | Some w ->
            let ws = Wal.stats () in
            let mean_us =
              if ws.Wal.fsyncs = 0 then 0
              else ws.Wal.fsync_total_us / ws.Wal.fsyncs
            in
            Json.Obj
              [
                ("attached", Json.Bool true);
                ("dir", Json.String (Wal.dir w));
                ("last_seq", Json.Int (Wal.last_seq w));
                ("depth", Json.Int (Wal.depth w));
                ("batches", Json.Int ws.Wal.batches);
                ("effects", Json.Int ws.Wal.effects);
                ("bytes", Json.Int ws.Wal.bytes);
                ("snapshots", Json.Int ws.Wal.snapshots);
                ("fsyncs", Json.Int ws.Wal.fsyncs);
                ("fsync_mean_us", Json.Int mean_us);
                ("fsync_max_us", Json.Int ws.Wal.fsync_max_us);
              ] );
      ("latency_us", Json.Obj latency_rows);
    ]

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let instance_to_json (inst : Interface.instance) : Json.t =
  Json.Obj (List.map (fun (n, id) -> (n, Protocol.ident_to_json id)) inst)

let enabled_result names : Json.t =
  Json.Obj
    [ ("events", Json.List (List.map (fun n -> Json.String n) names)) ]

let candidates_result cands : Json.t =
  Json.Obj
    [
      ( "candidates",
        Json.List
          (List.map
             (fun (name, params, en) ->
               Json.Obj
                 ([
                    ("event", Json.String name);
                    ( "params",
                      Json.List
                        (List.map
                           (fun ty -> Json.String (Vtype.to_string ty))
                           params) );
                  ]
                 @
                 match en with
                 | None -> []
                 | Some b -> [ ("enabled", Json.Bool b) ]))
             cands) );
    ]

let unknown_class_error cls =
  Protocol.Wire_error.of_reason (Runtime_error.Unknown_class cls)

(** Operations that stay answerable while a prepared transaction is
    open.  Everything else would observe (or destroy) tentative state. *)
let allowed_while_prepared = function
  | Protocol.Ping | Protocol.Hello _ | Protocol.Commit | Protocol.Abort
  | Protocol.Stats | Protocol.Shutdown ->
      true
  | _ -> false

let server_caps t =
  (if Option.is_some t.wal then [ "wal" ] else [])
  @ (if t.config.jobs > 1 then [ "jobs" ] else [])
  @ [ "steps"; "pipeline" ]

let execute t (req : Protocol.request) :
    (Json.t, Protocol.Wire_error.t) result =
  let s = t.session in
  let community = Troll.Session.community s in
  if Option.is_some t.prepared && not (allowed_while_prepared req) then
    Error
      (Protocol.Wire_error.make ~code:"txn_pending"
         "a prepared transaction is open; commit or abort it first")
  else
  match req with
  | Protocol.Ping -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Hello { version; caps } ->
      if version <> Protocol.version then
        Error
          (Protocol.Wire_error.make ~code:"version_mismatch"
             (Printf.sprintf
                "server speaks protocol version %d, client offered %d"
                Protocol.version version))
      else begin
        ignore caps;
        let mine = server_caps t in
        Ok
          (Json.Obj
             [
               ("version", Json.Int Protocol.version);
               ("caps", Json.List (List.map (fun c -> Json.String c) mine));
             ])
      end
  | Protocol.Prepare step -> (
      match Engine.prepare community step with
      | Ok p ->
          t.prepared <- Some p;
          Ok (Protocol.outcome_to_json (Engine.outcome_of_prepared p))
      | Error reason -> Error (Protocol.Wire_error.of_reason reason))
  | Protocol.Commit -> (
      match t.prepared with
      | None ->
          Error
            (Protocol.Wire_error.make ~code:"no_txn"
               "no prepared transaction to commit")
      | Some p ->
          t.prepared <- None;
          Engine.commit_prepared p;
          Ok (Json.Obj [ ("committed", Json.Bool true) ]))
  | Protocol.Abort -> (
      match t.prepared with
      | None -> Ok (Json.Obj [ ("aborted", Json.Bool false) ])
      | Some p ->
          t.prepared <- None;
          Engine.rollback_prepared p;
          Ok (Json.Obj [ ("aborted", Json.Bool true) ]))
  | Protocol.Catchup { base; records } -> (
      let restored =
        match base with
        | None -> Ok ()
        | Some dump -> (
            match Persist.load community dump with
            | Ok () -> Ok ()
            | Error m ->
                Error (Protocol.Wire_error.make ~code:"restore_error" m))
      in
      match restored with
      | Error e -> Error e
      | Ok () -> (
          let rec replay n = function
            | [] -> Ok n
            | payload :: rest -> (
                match Effect_log.decode payload with
                | Error m -> Error m
                | Ok effs -> (
                    match Effect_log.apply community effs with
                    | Ok () -> replay (n + 1) rest
                    | Error m -> Error m))
          in
          match replay 0 records with
          | Error m ->
              Error (Protocol.Wire_error.make ~code:"catchup_error" m)
          | Ok n ->
              (* the replay bypassed the journal; re-anchor the WAL on
                 the caught-up state *)
              t.view <- None;
              Option.iter Wal.snapshot t.wal;
              Ok (Json.Obj [ ("applied", Json.Int n) ])))
  | Protocol.Step step -> (
      match Troll.step s step with
      | Ok outcome -> Ok (Protocol.outcome_to_json outcome)
      | Error reason -> Error (Protocol.Wire_error.of_reason reason))
  | Protocol.Steps steps ->
      (* footprint-disjoint runs commit speculatively in parallel on the
         probe pool; a sharded session has no single community to
         speculate on, so it degrades to the coordinator loop *)
      let results =
        match Troll.Session.shard_map s with
        | Some _ -> List.map (Troll.step s) steps
        | None ->
            Array.to_list
              (Engine.step_batch_par ~pool:(probe_pool t) community
                 (Array.of_list steps))
      in
      Ok
        (Json.Obj
           [
             ( "results",
               Json.List
                 (List.map
                    (function
                      | Ok outcome ->
                          Json.Obj
                            [
                              ("ok", Json.Bool true);
                              ("result", Protocol.outcome_to_json outcome);
                            ]
                      | Error reason ->
                          Json.Obj
                            [
                              ("ok", Json.Bool false);
                              ( "error",
                                Protocol.Wire_error.to_json
                                  (Protocol.Wire_error.of_reason reason) );
                            ])
                    results) );
           ])
  | Protocol.Attr { target; attr } -> (
      match Troll.Session.attr s target attr with
      | Ok v -> Ok (Json.Obj [ ("value", Protocol.value_to_json v) ])
      | Error e -> Error (Protocol.Wire_error.of_error e))
  | Protocol.Eval expr -> (
      match Troll.Session.eval s expr with
      | Ok v -> Ok (Json.Obj [ ("value", Protocol.value_to_json v) ])
      | Error e -> Error (Protocol.Wire_error.of_error e))
  | Protocol.Extension cls -> (
      match Community.find_template community cls with
      | None ->
          Error
            (Protocol.Wire_error.of_reason (Runtime_error.Unknown_class cls))
      | Some _ ->
          Ok
            (Json.Obj
               [
                 ( "members",
                   Json.List
                     (List.map Protocol.ident_to_json
                        (Troll.Session.extension s cls)) );
               ]))
  | Protocol.Enabled id -> (
      match Community.find_template community id.Ident.cls with
      | None -> Error (unknown_class_error id.Ident.cls)
      | Some _ ->
          t.stats.probe_requests <- t.stats.probe_requests + 1;
          let view = current_view t in
          Ok
            (enabled_result
               (Engine.enabled_events_par ~pool:(probe_pool t) view id)))
  | Protocol.Candidates id -> (
      match Community.find_template community id.Ident.cls with
      | None -> Error (unknown_class_error id.Ident.cls)
      | Some _ ->
          t.stats.probe_requests <- t.stats.probe_requests + 1;
          let view = current_view t in
          Ok
            (candidates_result
               (Engine.candidate_events_par ~pool:(probe_pool t) view id)))
  | Protocol.View { view; what } -> (
      match Troll.Session.view s view with
      | None ->
          Error
            (Protocol.Wire_error.make ~code:"unknown_view"
               (Printf.sprintf "no interface class %s" view))
      | Some v -> (
          match what with
          | Protocol.Rows ->
              Ok
                (Json.Obj
                   [
                     ("view", Json.String view);
                     ( "attrs",
                       Json.List
                         (List.map
                            (fun n -> Json.String n)
                            (Interface.attr_names v)) );
                     ( "rows",
                       Json.List
                         (List.map Protocol.value_to_json
                            (Interface.tabulate v)) );
                   ])
          | Protocol.Members ->
              Ok
                (Json.Obj
                   [
                     ("view", Json.String view);
                     ( "members",
                       Json.List
                         (List.map instance_to_json (Interface.extension v))
                     );
                   ])))
  | Protocol.Save None ->
      (* [wal_seq] anchors the dump in the WAL: records with seq <= it
         are already part of the state (a mirroring router uses this to
         discard stale shipments) *)
      Ok
        (Json.Obj
           (("state", Json.String (Persist.save community))
           ::
           (match t.wal with
           | None -> []
           | Some w -> [ ("wal_seq", Json.Int (Wal.last_seq w)) ])))
  | Protocol.Save (Some path) -> (
      match Persist.save_file community path with
      | () -> Ok (Json.Obj [ ("path", Json.String path) ])
      | exception Sys_error m ->
          Error (Protocol.Wire_error.make ~code:"io_error" m))
  | Protocol.Restore { path; state } -> (
      let dump =
        match (state, path) with
        | Some s, _ -> Ok s
        | None, Some p -> (
            match
              let ic = open_in_bin p in
              let n = in_channel_length ic in
              let s = really_input_string ic n in
              close_in ic;
              s
            with
            | s -> Ok s
            | exception Sys_error m ->
                Error (Protocol.Wire_error.make ~code:"io_error" m))
        | None, None ->
            Error
              (Protocol.Wire_error.make ~code:"bad_request"
                 "restore needs a \"path\" or a \"state\"")
      in
      match dump with
      | Error e -> Error e
      | Ok dump -> (
          match Persist.load community dump with
          | Ok () ->
              (* the restore bypassed the journal, so the WAL tail no
                 longer describes this state: compact immediately *)
              Option.iter Wal.snapshot t.wal;
              Ok (Json.Obj [ ("restored", Json.Bool true) ])
          | Error m ->
              Error (Protocol.Wire_error.make ~code:"restore_error" m)))
  | Protocol.Snapshot -> (
      match t.wal with
      | None ->
          Error
            (Protocol.Wire_error.make ~code:"no_wal"
               "server is running without a WAL")
      | Some w ->
          Wal.snapshot w;
          Ok
            (Json.Obj
               [
                 ("snapshot_seq", Json.Int (Wal.last_seq w));
                 ("depth", Json.Int (Wal.depth w));
               ]))
  | Protocol.Stats -> Ok (stats_json t)
  | Protocol.Shutdown -> Ok (Json.Obj [ ("draining", Json.Bool true) ])

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)
(* ------------------------------------------------------------------ *)

let process t (job : job) =
  let now = Unix.gettimeofday () in
  (match job.deadline with
  | Some d when now >= d ->
      t.stats.expired <- t.stats.expired + 1;
      send_error job.conn ~id:job.id
        (Protocol.Wire_error.make ~code:"deadline_expired"
           "deadline passed before execution")
  | _ -> (
      let result = execute t job.request in
      t.stats.executed <- t.stats.executed + 1;
      (* [hello] negotiates per-connection capabilities: subscribing to
         WAL shipments needs the connection, which [execute] (exposed
         connection-free) never sees *)
      (match (job.request, result) with
      | Protocol.Hello { caps; _ }, Ok _ ->
          job.conn.ship <- List.mem "wal" caps && Option.is_some t.wal
      | _ -> ());
      (match result with
      | Ok body ->
          t.stats.ok <- t.stats.ok + 1;
          send job.conn (Protocol.ok_frame ~id:job.id body)
      | Error err ->
          t.stats.rejected <- t.stats.rejected + 1;
          send_error job.conn ~id:job.id err);
      (* shutdown drains: admission stops, the queues finish *)
      match job.request with Protocol.Shutdown -> stop t | _ -> ()));
  record_latency t job.op (Unix.gettimeofday () -. job.enqueued_at)

let is_probe (job : job) =
  match job.request with
  | Protocol.Enabled _ | Protocol.Candidates _ -> true
  | _ -> false

let is_single_step (job : job) =
  match job.request with Protocol.Step _ -> true | _ -> false

(** Per-job bookkeeping shared by the batched paths: counters, the
    response frame, the latency sample. *)
let finish_job t (job : job) result =
  t.stats.executed <- t.stats.executed + 1;
  (match result with
  | Ok body ->
      t.stats.ok <- t.stats.ok + 1;
      send job.conn (Protocol.ok_frame ~id:job.id body)
  | Error err ->
      t.stats.rejected <- t.stats.rejected + 1;
      send_error job.conn ~id:job.id err);
  record_latency t job.op (Unix.gettimeofday () -. job.enqueued_at)

(** Answer the expired jobs of a batch immediately and return the rest.
    The batch paths check deadlines once, up front — a whole batch runs
    at one quiescent point, so there is no later point to re-check at. *)
let drop_expired t (jobs : job list) =
  let now = Unix.gettimeofday () in
  List.filter
    (fun job ->
      match job.deadline with
      | Some d when now >= d ->
          t.stats.expired <- t.stats.expired + 1;
          send_error job.conn ~id:job.id
            (Protocol.Wire_error.make ~code:"deadline_expired"
               "deadline passed before execution");
          record_latency t job.op (Unix.gettimeofday () -. job.enqueued_at);
          false
      | _ -> true)
    jobs

(** Answer a run of consecutive probe jobs from one frozen view, with
    every individual enabledness probe of every job in the run coalesced
    into a single pool dispatch.  Per-job deadline checks, counters and
    latency recording are exactly those of per-job {!process}; the
    answers equal per-job execution because all jobs in the run see the
    same quiescent point. *)
let process_probe_batch t (jobs : job list) =
  let live = drop_expired t jobs in
  if live <> [] then begin
    t.stats.probe_batches <- t.stats.probe_batches + 1;
    let view = current_view t in
    let pool = probe_pool t in
    (* the main-domain thaw only answers schema/liveness questions while
       planning; the probes themselves run on per-domain thaws *)
    let c0 = View.thaw_cached view in
    let evs = ref [] and n_evs = ref 0 in
    let push ev =
      evs := ev :: !evs;
      incr n_evs;
      !n_evs - 1
    in
    let plans =
      List.map
        (fun job ->
          t.stats.probe_requests <- t.stats.probe_requests + 1;
          match job.request with
          | Protocol.Enabled id -> (
              match Community.find_template c0 id.Ident.cls with
              | None -> (job, `Done (Error (unknown_class_error id.Ident.cls)))
              | Some _ -> (
                  match Community.living c0 id with
                  | None -> (job, `Done (Ok (enabled_result [])))
                  | Some o ->
                      let descs =
                        Engine.nullary_descriptors c0 o.Obj_state.template
                      in
                      let offs =
                        Array.map
                          (fun (ed : Template.event_def) ->
                            push (Event.make id ed.Template.ed_name []))
                          descs
                      in
                      (job, `Enabled (descs, offs))))
          | Protocol.Candidates id -> (
              match Community.find_template c0 id.Ident.cls with
              | None -> (job, `Done (Error (unknown_class_error id.Ident.cls)))
              | Some tpl ->
                  let cands = Engine.candidate_descriptors c0 tpl in
                  let alive = Option.is_some (Community.living c0 id) in
                  let slots =
                    Array.map
                      (fun (name, params) ->
                        if alive && params = [] then
                          Some (push (Event.make id name []))
                        else None)
                      cands
                  in
                  (job, `Cands (cands, slots)))
          | _ ->
              (job, `Done (Error
                             (Protocol.Wire_error.make ~code:"internal_error"
                                "non-probe request in a probe batch"))))
        live
    in
    let ok =
      Engine.enabled_batch_par ~pool view (Array.of_list (List.rev !evs))
    in
    List.iter
      (fun (job, plan) ->
        match plan with
        | `Done r -> finish_job t job r
        | `Enabled (descs, offs) ->
            let names = ref [] in
            for i = Array.length descs - 1 downto 0 do
              if ok.(offs.(i)) then
                names := descs.(i).Template.ed_name :: !names
            done;
            finish_job t job (Ok (enabled_result !names))
        | `Cands (cands, slots) ->
            finish_job t job
              (Ok
                 (candidates_result
                    (List.init (Array.length cands) (fun i ->
                         let name, params = cands.(i) in
                         (name, params, Option.map (fun k -> ok.(k)) slots.(i)))))))
      plans
  end

(** Answer a run of consecutive single-event fires from every session in
    one speculative-parallel dispatch.  [Engine.step_batch_par] promises
    results bit-identical to firing the array sequentially, and
    [Troll.step] on an unsharded session {e is} [Engine.step] — so the
    responses (and the community) equal per-job {!process}, only
    cheaper.  Callers guarantee no prepared transaction is open and the
    session is unsharded. *)
let process_step_batch t (jobs : job list) =
  match drop_expired t jobs with
  | [] -> ()
  | [ job ] -> process t job
  | live ->
      t.stats.step_batches <- t.stats.step_batches + 1;
      t.stats.step_batch_members <-
        t.stats.step_batch_members + List.length live;
      let steps =
        Array.of_list
          (List.map
             (fun job ->
               match job.request with
               | Protocol.Step step -> step
               | _ -> assert false)
             live)
      in
      let results =
        Engine.step_batch_par ~pool:(probe_pool t)
          (Troll.Session.community t.session)
          steps
      in
      List.iteri
        (fun i job ->
          finish_job t job
            (match results.(i) with
            | Ok outcome -> Ok (Protocol.outcome_to_json outcome)
            | Error reason -> Error (Protocol.Wire_error.of_reason reason)))
        live

(* ------------------------------------------------------------------ *)
(* Admission and scheduling                                            *)
(* ------------------------------------------------------------------ *)

let admit t (job : job) =
  if t.draining then begin
    t.stats.shed <- t.stats.shed + 1;
    send_error job.conn ~id:job.id
      (Protocol.Wire_error.make ~code:"shutting_down" "server is draining")
  end
  else if t.queued >= t.config.queue_capacity then begin
    t.stats.overloaded <- t.stats.overloaded + 1;
    send_error job.conn ~id:job.id
      (Protocol.Wire_error.make ~code:"overloaded"
         (Printf.sprintf "admission queue full (%d requests)"
            t.config.queue_capacity))
  end
  else begin
    Queue.add job job.conn.inq;
    t.queued <- t.queued + 1
  end

(** Drain every per-session queue into one execution order: cycling
    round-robin over the sessions, one job per session per cycle, so a
    session that pipelined a hundred frames cannot starve the others —
    while each session's own jobs stay FIFO.  The cycle's start rotates
    every turn. *)
let gather_jobs t : job list =
  if t.queued = 0 then []
  else begin
    let conns = Array.of_list (List.rev t.conns) in
    let n = Array.length conns in
    let out = ref [] in
    let remaining = ref t.queued in
    let i = ref t.rr in
    while !remaining > 0 do
      (match Queue.take_opt conns.(!i mod n).inq with
      | Some job ->
          out := job :: !out;
          decr remaining
      | None -> ());
      incr i
    done;
    t.queued <- 0;
    t.rr <- (t.rr + 1) mod n;
    List.rev !out
  end

(** Execute one turn's jobs, coalescing maximal contiguous runs: probes
    answer from one frozen view in one pool dispatch, single-event fires
    batch through the speculative-parallel path (only while no prepared
    transaction is open and the session is unsharded — checked per run,
    because a [prepare] executing mid-turn closes the window). *)
let run_jobs t (jobs : job list) =
  let span p l =
    let rec go acc = function
      | x :: rest when p x -> go (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    go [] l
  in
  let can_batch_steps () =
    Option.is_none t.prepared
    && Option.is_none (Troll.Session.shard_map t.session)
  in
  let rec go = function
    | [] -> ()
    | job :: _ as l when is_probe job ->
        let run, rest = span is_probe l in
        process_probe_batch t run;
        go rest
    | job :: _ as l when is_single_step job && can_batch_steps () ->
        let run, rest = span is_single_step l in
        process_step_batch t run;
        go rest
    | job :: rest ->
        process t job;
        go rest
  in
  let njobs = List.length jobs in
  if njobs > t.stats.max_turn_jobs then t.stats.max_turn_jobs <- njobs;
  go jobs

let handle_frame t conn (read : Frame.read) =
  match read with
  | Frame.Eof -> assert false
  | Frame.Malformed msg ->
      t.stats.malformed <- t.stats.malformed + 1;
      send_error conn ~id:Json.Null
        (Protocol.Wire_error.make ~code:"bad_request"
           (Printf.sprintf "malformed frame: %s" msg))
  | Frame.Frame doc -> (
      let env = Protocol.decode doc in
      match env.Protocol.request with
      | Error msg ->
          t.stats.malformed <- t.stats.malformed + 1;
          send_error conn ~id:env.Protocol.req_id
            (Protocol.Wire_error.make ~code:"bad_request" msg)
      | Ok request ->
          t.stats.received <- t.stats.received + 1;
          let enqueued_at = Unix.gettimeofday () in
          let deadline_ms =
            match env.Protocol.deadline_ms with
            | Some ms -> Some ms
            | None -> t.config.default_deadline_ms
          in
          admit t
            {
              conn;
              id = env.Protocol.req_id;
              request;
              op = Protocol.op_name request;
              enqueued_at;
              deadline =
                Option.map
                  (fun ms -> enqueued_at +. (float_of_int ms /. 1000.))
                  deadline_ms;
            })

(* ------------------------------------------------------------------ *)
(* Connection input                                                    *)
(* ------------------------------------------------------------------ *)

(** Drain complete lines out of the connection's pending buffer. *)
let feed_lines t conn =
  let data = Buffer.contents conn.pending in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | exception Not_found -> raise Exit
       | nl ->
           let line = String.sub data !start (nl - !start) in
           start := nl + 1;
           (match Frame.decode_line line with
           | None -> ()
           | Some read -> handle_frame t conn read)
     done
   with Exit -> ());
  let rest = String.sub data !start (n - !start) in
  Buffer.clear conn.pending;
  Buffer.add_string conn.pending rest;
  if Buffer.length conn.pending > Frame.max_frame_bytes then begin
    send_error conn ~id:Json.Null
      (Protocol.Wire_error.make ~code:"bad_request"
         (Printf.sprintf "frame longer than %d bytes" Frame.max_frame_bytes));
    close_conn t conn
  end

let read_chunk_size = 65536

(** Read a select-ready connection dry — the descriptor is nonblocking,
    so the loop drains everything the kernel has buffered and every
    complete frame is admitted in this wakeup (decode-ahead).  [false]
    on end of input. *)
let service_input t conn =
  let buf = Bytes.create read_chunk_size in
  let open_ = ref true and more = ref true in
  while !more do
    match Unix.read conn.fd buf 0 read_chunk_size with
    | 0 ->
        open_ := false;
        more := false
    | n ->
        Buffer.add_subbytes conn.pending buf 0 n;
        if n < read_chunk_size then more := false
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        more := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        open_ := false;
        more := false
  done;
  if conn.alive then feed_lines t conn;
  !open_

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)
(* ------------------------------------------------------------------ *)

(** Roll back a prepared transaction abandoned by its coordinator, so
    shutdown never persists tentative state. *)
let abort_abandoned t =
  match t.prepared with
  | None -> ()
  | Some p ->
      t.prepared <- None;
      Engine.rollback_prepared p

let flush_snapshot t =
  abort_abandoned t;
  match t.config.save_on_shutdown with
  | None -> ()
  | Some path -> Persist.save_file (Troll.Session.community t.session) path

let all_flushed t =
  List.for_all (fun c -> not (Outbuf.need_write c.out)) t.conns

(** Flush every connection once (all frames appended this turn leave in
    one write each), then apply backpressure policy: a backlog past the
    high-water mark pauses reading, one drained to the low-water mark
    resumes it, a dead buffer (write error) closes the connection, and a
    half-closed connection that has fully drained is reaped. *)
let flush_and_police t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun c ->
      if c.alive then begin
        Outbuf.flush c.out;
        if not (Outbuf.alive c.out) then close_conn t c
        else begin
          let backlog = Outbuf.pending c.out in
          if c.paused_since = 0. then begin
            if backlog >= t.config.out_high_water then begin
              c.paused_since <- now;
              t.stats.pauses <- t.stats.pauses + 1
            end
          end
          else if backlog <= t.config.out_low_water then begin
            c.paused_since <- 0.;
            t.stats.resumes <- t.stats.resumes + 1
          end;
          if
            c.owned
            && (not c.reading)
            && Queue.is_empty c.inq
            && backlog = 0
            && not c.ship
          then close_conn t c
        end
      end)
    t.conns;
  t.conns <- List.filter (fun c -> c.alive) t.conns

(** Evict connections that have sat at their high-water pause for the
    whole eviction window: the peer is not draining, and an unbounded
    backlog (or a read stopped forever) must not outlive it. *)
let evict_overdue t =
  let now = Unix.gettimeofday () in
  List.iter
    (fun c ->
      if
        c.alive && c.paused_since > 0.
        && now -. c.paused_since >= t.config.evict_after
      then begin
        t.stats.evictions <- t.stats.evictions + 1;
        close_conn t c
      end)
    t.conns;
  t.conns <- List.filter (fun c -> c.alive) t.conns

let make_conn ~owned ~fd ~out_fd =
  {
    fd;
    out_fd;
    out = Outbuf.create out_fd;
    pending = Buffer.create 256;
    inq = Queue.create ();
    alive = true;
    owned;
    reading = true;
    paused_since = 0.;
    ship = false;
  }

(** One select-poll-and-execute turn; [listener] accepts new
    connections while not draining.  [input_open] is false once the
    (stdio) input saw EOF. *)
let serve_loop t ~listener =
  let input_open = ref true in
  let rec loop () =
    evict_overdue t;
    let now = Unix.gettimeofday () in
    let done_ =
      (t.draining && t.queued = 0
      && (all_flushed t || now >= t.drain_deadline))
      || (listener = None && (not !input_open) && t.queued = 0
         && all_flushed t)
    in
    if not done_ then begin
      let read_fds =
        (match listener with Some l when not t.draining -> [ l ] | _ -> [])
        @ List.filter_map
            (fun c ->
              if c.alive && c.reading && c.paused_since = 0. then Some c.fd
              else None)
            t.conns
      in
      let write_fds =
        List.filter_map
          (fun c -> if Outbuf.need_write c.out then Some c.out_fd else None)
          t.conns
      in
      let timeout = if t.queued > 0 then 0. else 0.1 in
      (match Unix.select read_fds write_fds [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, writable, _ ->
          (* drain writable backlogs first: room opens up before this
             turn's work appends more *)
          List.iter
            (fun fd ->
              match List.find_opt (fun c -> c.out_fd = fd) t.conns with
              | Some c when c.alive -> Outbuf.flush c.out
              | _ -> ())
            writable;
          List.iter
            (fun fd ->
              if Some fd = listener then begin
                match Unix.accept fd with
                | exception Unix.Unix_error (_, _, _) -> ()
                | cfd, _ ->
                    t.conns <-
                      make_conn ~owned:true ~fd:cfd ~out_fd:cfd :: t.conns
              end
              else
                match List.find_opt (fun c -> c.fd = fd) t.conns with
                | None -> ()
                | Some conn ->
                    if not (service_input t conn) then begin
                      (* end of input: in stdio mode the loop drains and
                         exits; a socket connection half-closes — its
                         admitted jobs still execute and the answers
                         still flush before the reaper closes it *)
                      conn.reading <- false;
                      if listener = None then input_open := false
                    end)
            ready);
      run_jobs t (gather_jobs t);
      (* group fsync at the turn boundary: everything committed by the
         jobs of this turn becomes durable in one fsync (a no-op when
         nothing was appended, or under the per-batch fsync policy) *)
      Option.iter Wal.sync t.wal;
      (* push the records made durable by that fsync to subscribed
         connections, as one unsolicited frame per turn *)
      if not (Queue.is_empty t.ship_queue) then begin
        let records = List.of_seq (Queue.to_seq t.ship_queue) in
        Queue.clear t.ship_queue;
        let frame = Protocol.wal_frame records in
        List.iter (fun c -> if c.ship && c.alive then send c frame) t.conns
      end;
      flush_and_police t;
      loop ()
    end
  in
  loop ()

let serve_fds t in_fd out_fd =
  (try Unix.set_nonblock in_fd with Unix.Unix_error _ -> ());
  t.conns <- make_conn ~owned:false ~fd:in_fd ~out_fd :: t.conns;
  serve_loop t ~listener:None;
  shutdown_pool t;
  Option.iter Wal.detach t.wal;
  flush_snapshot t

let listen_unix t ~path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let on_signal _ = stop t in
  let previous =
    List.filter_map
      (fun s ->
        try Some (s, Sys.signal s (Sys.Signal_handle on_signal))
        with Invalid_argument _ | Sys_error _ -> None)
      [ Sys.sigint; Sys.sigterm ]
  in
  serve_loop t ~listener:(Some listener);
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  List.iter (fun c -> close_conn t c) t.conns;
  t.conns <- [];
  List.iter (fun (s, behaviour) -> Sys.set_signal s behaviour) previous;
  shutdown_pool t;
  Option.iter Wal.detach t.wal;
  flush_snapshot t
