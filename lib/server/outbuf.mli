(** Per-connection nonblocking output buffering — the write half of the
    pipelined serve loop, shared by {!Server} and {!Router}.

    An [Outbuf.t] wraps a file descriptor that it switches to
    [O_NONBLOCK].  Frames are {e appended} (encoded straight into the
    buffer via {!Frame.add_line}, no intermediate strings) and
    {e flushed} opportunistically: {!flush} writes as much as the
    kernel will take and keeps the rest, resuming from the partial
    write on the next call — so a peer that stops draining can never
    block the serve loop.  All frames appended between two flushes
    leave in one [write] (write coalescing).

    The buffer never drops data on its own; backpressure policy (high /
    low water marks, eviction deadlines) belongs to the owning loop,
    which reads {!pending} and decides.  A write error ([EPIPE],
    [ECONNRESET], …) marks the buffer dead and discards the backlog;
    the owner observes {!alive} and closes the connection.

    Cumulative module-level counters (flushes, short writes, bytes) are
    reported via {!stats_rows} — the [pipeline] block of the server's
    [stats] frame. *)

type t

val create : Unix.file_descr -> t
(** Wrap [fd], putting it in nonblocking mode.  The descriptor is not
    owned: closing it remains the caller's business. *)

val add_frame : t -> Json.t -> unit
(** Append one NDJSON frame (newline included).  A no-op once dead. *)

val add_string : t -> string -> unit
(** Append raw bytes (already-framed payloads). *)

val flush : t -> unit
(** Write as much of the backlog as the descriptor accepts right now.
    Partial writes and [EAGAIN]/[EWOULDBLOCK] keep the remainder for
    the next call; [EINTR] retries; any other error kills the buffer. *)

val pending : t -> int
(** Bytes appended but not yet accepted by the kernel. *)

val need_write : t -> bool
(** [alive t && pending t > 0] — membership test for the select write
    set. *)

val alive : t -> bool
(** [false] once a write failed; the backlog is gone. *)

val kill : t -> unit
(** Mark dead and drop the backlog (connection being closed). *)

val stats_rows : unit -> (string * int) list
(** Cumulative counters across every buffer of the process:
    [out_flushes] (flush calls that had work), [out_short_writes]
    (flushes that could not drain everything), [out_bytes] (bytes
    written). *)

val reset_stats : unit -> unit
