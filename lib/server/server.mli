(** The society server: one loaded {!Troll.Session}, served to many
    clients over newline-delimited JSON frames.

    External-schema architecture (§2 of the paper): clients never hold
    the community — they speak the {!Protocol} against a session held by
    the daemon, and interface classes mediate their view of it.

    {b Execution model.}  A single-threaded [select] loop multiplexes
    every connection.  Complete frames are decoded and admitted to a
    bounded queue with per-request deadlines; between polls the loop
    executes queued requests one at a time, in admission order, against
    the journaled engine — so every mutating request is one transaction
    and a rejected request leaves the community bit-identical.  A
    request whose deadline passes while it is still queued is answered
    [deadline_expired] without touching the engine; a request arriving
    on a full queue is answered [overloaded] immediately.

    {b Parallel probes.}  Read-only probe requests ([enabled],
    [candidates]) are answered from a frozen {!View} of the community,
    taken once per quiescent point and reused until a step commits (or
    the schema or a restore changes state).  The select loop decodes
    ahead: a run of consecutive probe requests at the queue head is
    coalesced into a single dispatch over the probe pool ([config.jobs]
    domains; 1 = sequential on the loop thread, the default).  The pool
    is created lazily on the first probe request, so a server that
    never probes never spawns a domain and stays fork-safe.

    {b Durability.}  With a {!Wal.t} attached, every mutating request
    appends its committed effect delta through the community's commit
    hook, and the loop group-fsyncs at turn boundaries: all commits of
    one turn become durable in a single fsync (acknowledgements are
    sent before the fsync — a power loss in that window can lose the
    turn's tail; process death cannot, see [docs/PERSISTENCE.md]).  A
    [snapshot] request forces a compaction; a [restore] is followed by
    an automatic one, because it changes state outside the journal.
    WAL depth, sequence number and fsync latency are reported in the
    [stats] frame.

    {b Shutdown.}  A [shutdown] request (or {!stop}, wired to
    SIGINT/SIGTERM by {!listen_unix}) stops admission; requests already
    admitted are drained in order, then the WAL (if any) is synced and
    detached, the optional snapshot is flushed, connections close, and
    the serve call returns.  Frames already buffered behind the
    shutdown are answered [shutting_down]. *)

type config = {
  queue_capacity : int;  (** admission bound; beyond it: [overloaded] *)
  default_deadline_ms : int option;
      (** applied when a request carries no [deadline_ms]; [None] =
          no deadline *)
  save_on_shutdown : string option;
      (** flush a {!Persist} snapshot here after draining *)
  jobs : int;
      (** probe-pool size ([--jobs]); 1 = probe sequentially on the
          loop thread, never spawning a domain *)
}

val default_config : config
(** Queue of 1024, no default deadline, no snapshot, one job. *)

type t

val create : ?config:config -> ?wal:Wal.t -> Troll.Session.t -> t
(** [wal] must already be attached ({!Wal.attach}) to the session's
    community; the server takes over group fsync, compaction requests
    and shutdown detach. *)

val execute :
  t -> Protocol.request -> (Json.t, Protocol.Wire_error.t) result
(** Execute one request against the session, bypassing queue and
    deadlines — the loop's core, exposed for direct use and testing.
    [Shutdown] only reports; draining is the caller's business. *)

val serve_fds : t -> Unix.file_descr -> Unix.file_descr -> unit
(** Serve one connection reading from the first and writing to the
    second descriptor (the [--stdio] mode).  Returns once the input is
    exhausted (or a [shutdown] request was served) and every admitted
    request has been answered. *)

val listen_unix : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (replacing a stale socket
    file), serve until shutdown, then close every connection and
    remove the socket file.  Installs SIGINT/SIGTERM handlers that
    trigger {!stop}, and ignores SIGPIPE. *)

val stop : t -> unit
(** Begin draining: stop admitting, finish the queue, return from the
    serve call.  Idempotent; safe from signal handlers. *)

val stats_json : t -> Json.t
(** The [stats] result document: server counters, queue depth,
    {!Trace.txn_stats_rows}, probe/view/pool counters, and per-op
    latency histograms. *)
