(** The society server: one loaded {!Troll.Session}, served to many
    clients over newline-delimited JSON frames.

    External-schema architecture (§2 of the paper): clients never hold
    the community — they speak the {!Protocol} against a session held by
    the daemon, and interface classes mediate their view of it.

    {b Execution model.}  A single-threaded [select] loop multiplexes
    every connection.  Each wakeup drains every complete frame the
    kernel has buffered (decode-ahead) into a per-connection FIFO of
    admitted jobs, bounded by [queue_capacity] across all connections;
    the turn then executes the queued jobs — round-robin across
    connections, one job per connection per cycle, so a deeply
    pipelined client never starves the others, while each connection's
    own requests stay FIFO — against the journaled engine.  Every
    mutating request is one transaction and a rejected request leaves
    the community bit-identical.  A request whose deadline passes while
    it is still queued is answered [deadline_expired] without touching
    the engine; a request arriving on a full queue is answered
    [overloaded] immediately.

    {b Batched execution.}  Maximal contiguous runs of the turn's job
    order coalesce.  Read-only probe requests ([enabled],
    [candidates]) are answered from a frozen {!View} of the community,
    taken once per quiescent point, with a whole run dispatched over
    the probe pool at once ([config.jobs] domains; 1 = sequential on
    the loop thread, the default).  Runs of single-event fires go
    through {!Engine.step_batch_par}, whose results are bit-identical
    to firing them one at a time — footprint-disjoint prefixes commit
    speculatively in parallel (only while no prepared transaction is
    open and the session is unsharded).  The pool is created lazily on
    the first batch, so a server that never needs it never spawns a
    domain and stays fork-safe.

    {b Write coalescing and backpressure.}  Responses append to a
    per-connection output buffer; the loop flushes each buffer once per
    turn through a nonblocking descriptor, so one turn's answers leave
    in one [write] and a peer that stops draining can never block the
    loop (partial writes resume from the select write set).  A backlog
    past [out_high_water] pauses reading that connection — admission
    stops, kernel backpressure propagates to the client — and reading
    resumes once the backlog drains to [out_low_water].  A connection
    paused for [evict_after] seconds straight is evicted.  Pauses,
    resumes, evictions and batch sizes are reported in the [pipeline]
    block of the [stats] frame.

    {b Durability.}  With a {!Wal.t} attached, every mutating request
    appends its committed effect delta through the community's commit
    hook, and the loop group-fsyncs at turn boundaries: all commits of
    one turn become durable in a single fsync (acknowledgements are
    sent before the fsync — a power loss in that window can lose the
    turn's tail; process death cannot, see [docs/PERSISTENCE.md]).  A
    [snapshot] request forces a compaction; a [restore] is followed by
    an automatic one, because it changes state outside the journal.
    WAL depth, sequence number and fsync latency are reported in the
    [stats] frame.

    {b Shutdown.}  A [shutdown] request (or {!stop}, wired to
    SIGINT/SIGTERM by {!listen_unix}) stops admission; requests already
    admitted are drained in order, output buffers are flushed (waiting
    at most [evict_after] seconds for slow readers), then the WAL (if
    any) is synced and detached, the optional snapshot is flushed,
    connections close, and the serve call returns.  Frames already
    buffered behind the shutdown are answered [shutting_down]. *)

type config = {
  queue_capacity : int;  (** admission bound; beyond it: [overloaded] *)
  default_deadline_ms : int option;
      (** applied when a request carries no [deadline_ms]; [None] =
          no deadline *)
  save_on_shutdown : string option;
      (** flush a {!Persist} snapshot here after draining *)
  jobs : int;
      (** probe-pool size ([--jobs]); 1 = probe sequentially on the
          loop thread, never spawning a domain *)
  out_high_water : int;
      (** output-backlog bytes beyond which the connection's reads
          pause (backpressure instead of unbounded buffering) *)
  out_low_water : int;
      (** backlog bytes at which a paused connection resumes reading *)
  evict_after : float;
      (** seconds a connection may stay paused before it is evicted;
          also bounds how long a drain waits for slow readers *)
}

val default_config : config
(** Queue of 1024, no default deadline, no snapshot, one job; 1 MiB
    high water, 64 KiB low water, 30 s eviction. *)

type t

val create : ?config:config -> ?wal:Wal.t -> Troll.Session.t -> t
(** [wal] must already be attached ({!Wal.attach}) to the session's
    community; the server takes over group fsync, compaction requests
    and shutdown detach. *)

val execute :
  t -> Protocol.request -> (Json.t, Protocol.Wire_error.t) result
(** Execute one request against the session, bypassing queue and
    deadlines — the loop's core, exposed for direct use and testing.
    [Shutdown] only reports; draining is the caller's business. *)

val serve_fds : t -> Unix.file_descr -> Unix.file_descr -> unit
(** Serve one connection reading from the first and writing to the
    second descriptor (the [--stdio] mode).  Returns once the input is
    exhausted (or a [shutdown] request was served) and every admitted
    request has been answered. *)

val listen_unix : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] (replacing a stale socket
    file), serve until shutdown, then close every connection and
    remove the socket file.  Installs SIGINT/SIGTERM handlers that
    trigger {!stop}, and ignores SIGPIPE. *)

val stop : t -> unit
(** Begin draining: stop admitting, finish the queue, return from the
    serve call.  Idempotent; safe from signal handlers. *)

val stats_json : t -> Json.t
(** The [stats] result document: server counters, queue depth,
    {!Trace.txn_stats_rows}, probe/view/pool counters, and per-op
    latency histograms. *)
