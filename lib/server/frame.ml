(** Newline-delimited JSON framing — see the interface. *)

let max_frame_bytes = 4 * 1024 * 1024

type read = Frame of Json.t | Malformed of string | Eof

let decode_line line =
  let line =
    (* tolerate CRLF clients *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.length line = 0 then None
  else if String.length line > max_frame_bytes then
    Some
      (Malformed (Printf.sprintf "frame longer than %d bytes" max_frame_bytes))
  else
    match Json.of_string line with
    | Ok doc -> Some (Frame doc)
    | Error msg -> Some (Malformed msg)

let rec read ic =
  match input_line ic with
  | exception End_of_file -> Eof
  | line -> ( match decode_line line with None -> read ic | Some r -> r)

let to_line doc = Json.to_string doc ^ "\n"

let add_line buf doc =
  Json.add_to_buffer buf doc;
  Buffer.add_char buf '\n'

let write oc doc =
  output_string oc (to_line doc);
  flush oc
