(** Newline-delimited JSON framing.

    One frame is one JSON document on one line, terminated by ['\n'].
    The stream is self-resynchronising: a malformed line damages only
    its own frame, and the reader simply continues with the next line.
    Frames longer than {!max_frame_bytes} are rejected without being
    parsed (a guard against unbounded buffering on a hostile client). *)

val max_frame_bytes : int
(** 4 MiB. *)

type read = Frame of Json.t | Malformed of string | Eof

val decode_line : string -> read option
(** Decode one line (without its terminator; a trailing ['\r'] is
    tolerated).  [None] for blank lines. *)

val read : in_channel -> read
(** Read the next frame from a channel.  Blank lines are skipped. *)

val write : out_channel -> Json.t -> unit
(** Write one frame and flush.  The document is printed compactly, so it
    never contains a raw newline. *)

val to_line : Json.t -> string
(** The frame as a line, terminator included. *)

val add_line : Buffer.t -> Json.t -> unit
(** Append the frame (terminator included) to a caller buffer, so a
    whole turn's responses encode into one output buffer without
    intermediate strings. *)
