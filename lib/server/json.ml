(** Minimal JSON — see the interface for the contract. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_into buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let add_to_buffer buf v = print_into buf v

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        true
    | _ -> false
  do
    ()
  done

let expect cur ch =
  match peek cur with
  | Some c when c = ch -> advance cur
  | Some c -> raise (Bad (Printf.sprintf "expected '%c', found '%c'" ch c))
  | None -> raise (Bad (Printf.sprintf "expected '%c', found end of input" ch))

let parse_keyword cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else raise (Bad (Printf.sprintf "invalid literal (expected %s)" word))

let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.src then raise (Bad "truncated \\u escape");
  let s = String.sub cur.src cur.pos 4 in
  cur.pos <- cur.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some n -> n
  | None -> raise (Bad "malformed \\u escape")

(* encode a Unicode scalar value as UTF-8 *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let parse_string_body cur =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> raise (Bad "unterminated escape")
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' -> (
                let u = parse_hex4 cur in
                (* surrogate pair *)
                if u >= 0xd800 && u <= 0xdbff then begin
                  expect cur '\\';
                  expect cur 'u';
                  let lo = parse_hex4 cur in
                  if lo < 0xdc00 || lo > 0xdfff then
                    raise (Bad "invalid surrogate pair");
                  add_utf8 buf
                    (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
                end
                else add_utf8 buf u)
            | c -> raise (Bad (Printf.sprintf "invalid escape '\\%c'" c)));
            loop ())
    | Some c when Char.code c < 0x20 -> raise (Bad "control byte in string")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let consume () =
    while
      match peek cur with
      | Some ('0' .. '9' | '-' | '+') ->
          advance cur;
          true
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance cur;
          true
      | _ -> false
    do
      ()
    done
  in
  consume ();
  let text = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> raise (Bad (Printf.sprintf "malformed number %S" text))
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* integer literal beyond OCaml's int range *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> raise (Bad (Printf.sprintf "malformed number %S" text)))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> raise (Bad "empty input")
  | Some 'n' -> parse_keyword cur "null" Null
  | Some 't' -> parse_keyword cur "true" (Bool true)
  | Some 'f' -> parse_keyword cur "false" (Bool false)
  | Some '"' ->
      advance cur;
      String (parse_string_body cur)
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          expect cur '"';
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          fields := field () :: !fields;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !fields)
      end
  | Some c -> raise (Bad (Printf.sprintf "unexpected character '%c'" c))

let of_string s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos < String.length s then Error "trailing garbage after document"
      else Ok v
  | exception Bad msg -> Error msg

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> String.equal x y
  | List x, List y ->
      List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           x y
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with
    | Some v -> v
    | None -> Null)
  | _ -> Null

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_list = function List l -> l | _ -> []
