(** The shard router: one endpoint fronting N shard servers.

    The partition map ({!Shard}) assigns every class group — classes
    that can interact within one synchronous step — to one shard, so a
    client-visible step either lives wholly on one shard (forwarded
    as-is, several such steps are kept in flight concurrently across
    shards) or decomposes into independent per-shard sub-steps, made
    atomic with the two-phase [prepare]/[commit]/[abort] protocol over
    {!Engine.prepare} transactions.

    Towards its shards the router speaks the versioned protocol as a
    client that negotiated the [wal] capability: every shipped WAL
    record is mirrored next to a base dump, and when a shard dies the
    router respawns it (via the [respawn] callback), reconnects, and
    replays the mirror with a [catchup] request before routing resumes.

    Towards its clients the router answers [hello] itself (capability
    [shards], plus the partition map in wire form), merges [save] and
    [extension] across shards, and rejects inherently global requests
    ([eval], [view], [restore]) as [unsupported].  See
    docs/SHARDING.md. *)

type t

val create :
  community:Community.t ->
  map:Shard.map ->
  paths:string array ->
  ?respawn:(int -> unit) ->
  unit ->
  t
(** [community] is the schema facade used to split steps and merge
    [save] dumps — its instance state is scratch.  [paths] are the
    shards' Unix-socket paths, one per shard of [map].  [respawn k] is
    called before reconnecting to a dead shard [k]. *)

val stop : t -> unit
(** Make the serve loop drain and return. *)

val listen_unix : t -> path:string -> (unit, string) result
(** Connect and mirror every shard (retrying while they boot), then
    bind [path] and serve until [shutdown] or {!stop}.  [Error] when a
    shard cannot be reached or speaks another protocol version. *)
