(** Minimal JSON: the tree, a strict parser and a compact printer.

    Self-contained (the build image carries no JSON package) and small
    on purpose: just what the newline-delimited wire protocol needs.
    Numbers parse to [Int] when they are exact OCaml integers and to
    [Float] otherwise; printing never emits raw newlines, so one
    document always fits one frame. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line, valid UTF-8 pass-through with the mandatory
    escapes. *)

val add_to_buffer : Buffer.t -> t -> unit
(** Print the document (compactly, as {!to_string}) into a caller
    buffer — the allocation-free half of batched frame encoding. *)

val of_string : string -> (t, string) result
(** Strict parse of one document; rejects trailing garbage. *)

val equal : t -> t -> bool

(** {1 Accessors} — total, for decoding requests *)

val member : string -> t -> t
(** Field of an object; [Null] when absent or not an object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_list : t -> t list
(** The elements of a [List]; [[]] otherwise. *)
