(** Wire protocol codecs — see the interface and docs/PROTOCOL.md. *)

(* ------------------------------------------------------------------ *)
(* Value codec                                                         *)
(* ------------------------------------------------------------------ *)

let rec value_to_json (v : Value.t) : Json.t =
  match v with
  | Value.Undefined -> Json.Null
  | Value.Bool b -> Json.Bool b
  | Value.Int i -> Json.Int i
  | Value.String s -> Json.String s
  | Value.Date d -> Json.Obj [ ("$date", Json.String (Date_adt.to_string d)) ]
  | Value.Money m ->
      Json.Obj [ ("$money", Json.String (Money.to_string m)) ]
  | Value.Enum (enum, const) ->
      Json.Obj
        [ ("$enum", Json.List [ Json.String enum; Json.String const ]) ]
  | Value.Id (cls, key) ->
      Json.Obj
        [
          ( "$id",
            Json.Obj
              [ ("cls", Json.String cls); ("key", value_to_json key) ] );
        ]
  | Value.Set elems ->
      Json.Obj [ ("$set", Json.List (List.map value_to_json elems)) ]
  | Value.List elems -> Json.List (List.map value_to_json elems)
  | Value.Map bindings ->
      Json.Obj
        [
          ( "$map",
            Json.List
              (List.map
                 (fun (k, v) ->
                   Json.List [ value_to_json k; value_to_json v ])
                 bindings) );
        ]
  | Value.Tuple fields ->
      Json.Obj
        [
          ( "$tuple",
            Json.Obj
              (List.map (fun (n, v) -> (n, value_to_json v)) fields) );
        ]

let rec value_of_json (j : Json.t) : (Value.t, string) result =
  let ( let* ) = Result.bind in
  let rec values acc = function
    | [] -> Ok (List.rev acc)
    | j :: rest ->
        let* v = value_of_json j in
        values (v :: acc) rest
  in
  match j with
  | Json.Null -> Ok Value.Undefined
  | Json.Bool b -> Ok (Value.Bool b)
  | Json.Int i -> Ok (Value.Int i)
  | Json.Float _ -> Error "the value universe has no float type"
  | Json.String s -> Ok (Value.String s)
  | Json.List elems ->
      let* vs = values [] elems in
      Ok (Value.List vs)
  | Json.Obj [ ("$date", Json.String s) ] -> (
      match Date_adt.of_string s with
      | Some d -> Ok (Value.Date d)
      | None -> Error (Printf.sprintf "malformed date %S" s))
  | Json.Obj [ ("$date", Json.Int days) ] -> Ok (Value.Date days)
  | Json.Obj [ ("$money", Json.String s) ] -> (
      match Money.of_string s with
      | Some m -> Ok (Value.Money m)
      | None -> Error (Printf.sprintf "malformed money amount %S" s))
  | Json.Obj [ ("$money", Json.Int cents) ] ->
      Ok (Value.Money (Money.of_cents cents))
  | Json.Obj [ ("$enum", Json.List [ Json.String enum; Json.String const ]) ]
    ->
      Ok (Value.Enum (enum, const))
  | Json.Obj [ ("$id", body) ] -> (
      match (Json.member "cls" body, Json.member "key" body) with
      | Json.String cls, key_json ->
          let* key = value_of_json key_json in
          Ok (Value.Id (cls, key))
      | _ -> Error "$id needs {\"cls\": string, \"key\": value}")
  | Json.Obj [ ("$set", Json.List elems) ] ->
      let* vs = values [] elems in
      Ok (Value.set vs)
  | Json.Obj [ ("$map", Json.List pairs) ] ->
      let rec bindings acc = function
        | [] -> Ok (List.rev acc)
        | Json.List [ kj; vj ] :: rest ->
            let* k = value_of_json kj in
            let* v = value_of_json vj in
            bindings ((k, v) :: acc) rest
        | _ -> Error "$map entries must be [key, value] pairs"
      in
      let* bs = bindings [] pairs in
      Ok (Value.map bs)
  | Json.Obj [ ("$tuple", Json.Obj fields) ] ->
      let rec tuple acc = function
        | [] -> Ok (List.rev acc)
        | (n, vj) :: rest ->
            let* v = value_of_json vj in
            tuple ((n, v) :: acc) rest
      in
      let* fs = tuple [] fields in
      Ok (Value.Tuple fs)
  | Json.Obj _ -> Error "objects must be a single $-tagged constructor"

let ident_to_json (id : Ident.t) : Json.t =
  Json.Obj
    [
      ("cls", Json.String id.Ident.cls);
      ("key", value_to_json id.Ident.key);
    ]

let ident_of_json j : (Ident.t, string) result =
  match Json.member "cls" j with
  | Json.String cls -> (
      match value_of_json (Json.member "key" j) with
      | Ok key -> Ok (Ident.make cls key)
      | Error e -> Error (Printf.sprintf "bad key: %s" e))
  | _ -> Error "missing \"cls\" field"

let event_to_json (ev : Event.t) : Json.t =
  Json.Obj
    [
      ("cls", Json.String ev.Event.target.Ident.cls);
      ("key", value_to_json ev.Event.target.Ident.key);
      ("event", Json.String ev.Event.name);
      ("args", Json.List (List.map value_to_json ev.Event.args));
    ]

let args_of_json j : (Value.t list, string) result =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | aj :: rest -> (
        match value_of_json aj with
        | Ok v -> loop (v :: acc) rest
        | Error e -> Error (Printf.sprintf "bad argument: %s" e))
  in
  loop [] (Json.to_list (Json.member "args" j))

let event_of_json j : (Event.t, string) result =
  match ident_of_json j with
  | Error e -> Error e
  | Ok target -> (
      match Json.member "event" j with
      | Json.String name -> (
          match args_of_json j with
          | Ok args -> Ok (Event.make target name args)
          | Error e -> Error e)
      | _ -> Error "missing \"event\" field")

let events_of_json j ~field : (Event.t list, string) result =
  match Json.member field j with
  | Json.List items ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | ej :: rest -> (
            match event_of_json ej with
            | Ok ev -> loop (ev :: acc) rest
            | Error e -> Error e)
      in
      loop [] items
  | _ -> Error (Printf.sprintf "missing %S list" field)

(* ------------------------------------------------------------------ *)
(* Structured error frames                                             *)
(* ------------------------------------------------------------------ *)

module Wire_error = struct
  type t = { code : string; message : string; loc : (int * int) option }

  let make ?loc ~code message = { code; message; loc }

  let of_error (e : Troll.Error.t) : t =
    {
      code = Troll.Error.code e;
      message = Troll.Error.message e;
      loc =
        Option.map
          (fun (l : Loc.t) ->
            (l.Loc.start_pos.Loc.line, l.Loc.start_pos.Loc.col))
          (Troll.Error.loc e);
    }

  let of_reason r = of_error (Troll.Error.Runtime r)

  let to_json { code; message; loc } : Json.t =
    Json.Obj
      (("code", Json.String code)
      :: ("message", Json.String message)
      ::
      (match loc with
      | None -> []
      | Some (line, col) ->
          [
            ( "loc",
              Json.Obj [ ("line", Json.Int line); ("col", Json.Int col) ]
            );
          ]))

  let of_json j : (t, string) result =
    match (Json.member "code" j, Json.member "message" j) with
    | Json.String code, Json.String message -> (
        match Json.member "loc" j with
        | Json.Null -> Ok { code; message; loc = None }
        | loc_json -> (
            match
              ( Json.to_int_opt (Json.member "line" loc_json),
                Json.to_int_opt (Json.member "col" loc_json) )
            with
            | Some line, Some col ->
                Ok { code; message; loc = Some (line, col) }
            | _ -> Error "malformed \"loc\" field"))
    | _ -> Error "error frame needs \"code\" and \"message\" strings"

  let equal a b =
    String.equal a.code b.code
    && String.equal a.message b.message
    && a.loc = b.loc
end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type view_query = Rows | Members

(* Protocol version spoken by this build.  Bumped on incompatible wire
   changes; [hello] lets a peer fail fast on a mismatch. *)
let version = 1

type request =
  | Ping
  | Hello of { version : int; caps : string list }
  | Step of Step.t
  | Steps of Step.t list
  | Prepare of Step.t
  | Commit
  | Abort
  | Catchup of { base : string option; records : string list }
  | Attr of { target : Ident.t; attr : string }
  | Eval of string
  | Extension of string
  | Enabled of Ident.t
  | Candidates of Ident.t
  | View of { view : string; what : view_query }
  | Save of string option
  | Restore of { path : string option; state : string option }
  | Snapshot
  | Stats
  | Shutdown

type envelope = {
  req_id : Json.t;
  deadline_ms : int option;
  request : (request, string) result;
}

let string_field j name : (string, string) result =
  match Json.member name j with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "missing %S string field" name)

let opt_string_field j name : string option =
  Json.to_string_opt (Json.member name j)

let rec decode_request (j : Json.t) : (request, string) result =
  let ( let* ) = Result.bind in
  match Json.member "op" j with
  | Json.String "ping" -> Ok Ping
  | Json.String "hello" -> (
      match Json.to_int_opt (Json.member "version" j) with
      | None -> Error "hello needs an integer \"version\""
      | Some version -> (
          match Json.member "caps" j with
          | Json.Null -> Ok (Hello { version; caps = [] })
          | Json.List items ->
              let rec caps acc = function
                | [] -> Ok (Hello { version; caps = List.rev acc })
                | Json.String c :: rest -> caps (c :: acc) rest
                | _ -> Error "\"caps\" must be a list of strings"
              in
              caps [] items
          | _ -> Error "\"caps\" must be a list of strings"))
  | Json.String "prepare" -> (
      match Json.member "step" j with
      | Json.Obj _ as step_j -> (
          let* sub = decode_request step_j in
          match sub with
          | Step s -> Ok (Prepare s)
          | _ -> Error "\"step\" must be a step-shaped request")
      | _ -> Error "prepare needs a \"step\" object")
  | Json.String "steps" -> (
      match Json.member "steps" j with
      | Json.List items ->
          let rec loop acc = function
            | [] -> Ok (Steps (List.rev acc))
            | (Json.Obj _ as step_j) :: rest -> (
                let* sub = decode_request step_j in
                match sub with
                | Step s -> loop (s :: acc) rest
                | _ -> Error "\"steps\" entries must be step-shaped requests")
            | _ -> Error "\"steps\" entries must be step-shaped requests"
          in
          loop [] items
      | _ -> Error "steps needs a \"steps\" list")
  | Json.String "commit" -> Ok Commit
  | Json.String "abort" -> Ok Abort
  | Json.String "catchup" -> (
      let base = opt_string_field j "base" in
      match Json.member "records" j with
      | Json.Null -> Ok (Catchup { base; records = [] })
      | Json.List items ->
          let rec records acc = function
            | [] -> Ok (Catchup { base; records = List.rev acc })
            | Json.String r :: rest -> records (r :: acc) rest
            | _ -> Error "\"records\" must be a list of strings"
          in
          records [] items
      | _ -> Error "\"records\" must be a list of strings")
  | Json.String "create" ->
      let* cls = string_field j "cls" in
      let* key =
        Result.map_error
          (fun e -> Printf.sprintf "bad key: %s" e)
          (value_of_json (Json.member "key" j))
      in
      let* args = args_of_json j in
      Ok
        (Step (Step.Create { cls; key; event = opt_string_field j "event"; args }))
  | Json.String "destroy" ->
      let* id = ident_of_json j in
      let* args = args_of_json j in
      Ok (Step (Step.Destroy { id; event = opt_string_field j "event"; args }))
  | Json.String "fire" ->
      let* ev = event_of_json j in
      Ok (Step (Step.Fire ev))
  | Json.String "batch" ->
      let* evs = events_of_json j ~field:"events" in
      Ok (Step (Step.Seq evs))
  | Json.String "sync" ->
      let* evs = events_of_json j ~field:"events" in
      Ok (Step (Step.Sync evs))
  | Json.String "txn" -> (
      match Json.member "steps" j with
      | Json.List micro ->
          let rec loop acc = function
            | [] -> Ok (Step (Step.Txn (List.rev acc)))
            | step_j :: rest -> (
                let rec events acc = function
                  | [] -> Ok (List.rev acc)
                  | ej :: more -> (
                      match event_of_json ej with
                      | Ok ev -> events (ev :: acc) more
                      | Error e -> Error e)
                in
                match events [] (Json.to_list step_j) with
                | Ok evs -> loop (evs :: acc) rest
                | Error e -> Error e)
          in
          loop [] micro
      | _ -> Error "missing \"steps\" list")
  | Json.String "attr" ->
      let* target = ident_of_json j in
      let* attr = string_field j "attr" in
      Ok (Attr { target; attr })
  | Json.String "eval" ->
      let* expr = string_field j "expr" in
      Ok (Eval expr)
  | Json.String "extension" ->
      let* cls = string_field j "cls" in
      Ok (Extension cls)
  | Json.String "enabled" ->
      let* id = ident_of_json j in
      Ok (Enabled id)
  | Json.String "candidates" ->
      let* id = ident_of_json j in
      Ok (Candidates id)
  | Json.String "view" -> (
      let* view = string_field j "view" in
      match opt_string_field j "what" with
      | None | Some "rows" -> Ok (View { view; what = Rows })
      | Some "members" -> Ok (View { view; what = Members })
      | Some other ->
          Error (Printf.sprintf "unknown view query %S" other))
  | Json.String "save" -> Ok (Save (opt_string_field j "path"))
  | Json.String "restore" -> (
      let path = opt_string_field j "path" in
      let state = opt_string_field j "state" in
      match (path, state) with
      | None, None -> Error "restore needs a \"path\" or a \"state\""
      | _ -> Ok (Restore { path; state }))
  | Json.String "snapshot" -> Ok Snapshot
  | Json.String "stats" -> Ok Stats
  | Json.String "shutdown" -> Ok Shutdown
  | Json.String op -> Error (Printf.sprintf "unknown op %S" op)
  | Json.Null -> Error "missing \"op\" field"
  | _ -> Error "\"op\" must be a string"

let decode (j : Json.t) : envelope =
  {
    req_id = Json.member "id" j;
    deadline_ms = Json.to_int_opt (Json.member "deadline_ms" j);
    request = decode_request j;
  }

let op_name = function
  | Ping -> "ping"
  | Hello _ -> "hello"
  | Prepare _ -> "prepare"
  | Commit -> "commit"
  | Abort -> "abort"
  | Catchup _ -> "catchup"
  | Step (Step.Create _) -> "create"
  | Step (Step.Destroy _) -> "destroy"
  | Step (Step.Fire _) -> "fire"
  | Step (Step.Seq _) -> "batch"
  | Step (Step.Sync _) -> "sync"
  | Step (Step.Txn _) -> "txn"
  | Steps _ -> "steps"
  | Attr _ -> "attr"
  | Eval _ -> "eval"
  | Extension _ -> "extension"
  | Enabled _ -> "enabled"
  | Candidates _ -> "candidates"
  | View _ -> "view"
  | Save _ -> "save"
  | Restore _ -> "restore"
  | Snapshot -> "snapshot"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let request_of_step ~id (s : Step.t) : Json.t =
  let sync_to_json evs = Json.List (List.map event_to_json evs) in
  let fields =
    match s with
    | Step.Fire ev -> (
        match event_to_json ev with
        | Json.Obj fs -> ("op", Json.String "fire") :: fs
        | _ -> assert false)
    | Step.Sync evs -> [ ("op", Json.String "sync"); ("events", sync_to_json evs) ]
    | Step.Seq evs -> [ ("op", Json.String "batch"); ("events", sync_to_json evs) ]
    | Step.Txn micro ->
        [
          ("op", Json.String "txn");
          ("steps", Json.List (List.map sync_to_json micro));
        ]
    | Step.Create { cls; key; event; args } ->
        ("op", Json.String "create")
        :: ("cls", Json.String cls)
        :: ("key", value_to_json key)
        :: ("args", Json.List (List.map value_to_json args))
        :: (match event with
           | None -> []
           | Some e -> [ ("event", Json.String e) ])
    | Step.Destroy { id; event; args } ->
        ("op", Json.String "destroy")
        :: ("cls", Json.String id.Ident.cls)
        :: ("key", value_to_json id.Ident.key)
        :: ("args", Json.List (List.map value_to_json args))
        :: (match event with
           | None -> []
           | Some e -> [ ("event", Json.String e) ])
  in
  Json.Obj (("id", id) :: fields)

let wal_frame records : Json.t =
  Json.Obj
    [
      ( "wal",
        Json.List
          (List.map
             (fun (seq, payload) ->
               Json.Obj
                 [ ("seq", Json.Int seq); ("payload", Json.String payload) ])
             records) );
    ]

let ok_frame ~id result : Json.t =
  Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let error_frame ~id err : Json.t =
  Json.Obj
    [ ("id", id); ("ok", Json.Bool false); ("error", Wire_error.to_json err) ]

let outcome_to_json (o : Engine.outcome) : Json.t =
  Json.Obj
    [
      ( "committed",
        Json.List
          (List.map
             (fun sync -> Json.List (List.map event_to_json sync))
             o.Engine.committed) );
      ("created", Json.List (List.map ident_to_json o.Engine.created));
      ("destroyed", Json.List (List.map ident_to_json o.Engine.destroyed));
    ]
