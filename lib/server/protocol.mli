(** The society server's wire protocol: request and response schemas
    over {!Frame}s, and the codecs between them and the engine's types.

    Mutating requests ([create], [fire], [batch], [sync], [txn],
    [destroy]) all decode to the engine's one step request type
    {!Step.t} — the wire protocol and the in-process API share the
    entry point ({!Troll.step}).  Queries ([attr], [eval], [extension],
    [view]) and administration ([save], [restore], [stats], [ping],
    [shutdown]) are their own forms.

    See docs/PROTOCOL.md for the full request/response field tables. *)

(** {1 Value codec}

    Scalars map to JSON scalars; every other constructor is a
    single-key ["$tag"] object, so decoding is unambiguous.
    [Undefined] is [null]. *)

val value_to_json : Value.t -> Json.t

val value_of_json : Json.t -> (Value.t, string) result
(** Collections are re-canonicalised ([Value.set]/[Value.map]), so a
    decoded value is always canonical. *)

val ident_to_json : Ident.t -> Json.t
(** [{"cls": …, "key": …}]. *)

val ident_of_json : Json.t -> (Ident.t, string) result

val event_to_json : Event.t -> Json.t
(** [{"cls": …, "key": …, "event": …, "args": […]}]. *)

val event_of_json : Json.t -> (Event.t, string) result

(** {1 Structured error frames} *)

module Wire_error : sig
  (** The wire shape of every failure: a stable [code] clients dispatch
      on, human-readable [message], and the source location when the
      error carries one.  {!of_error} flattens a {!Troll.Error.t}
      losslessly with respect to these three. *)

  type t = {
    code : string;
    message : string;
    loc : (int * int) option;  (** line, column *)
  }

  val make : ?loc:int * int -> code:string -> string -> t
  val of_error : Troll.Error.t -> t
  val of_reason : Runtime_error.reason -> t
  val to_json : t -> Json.t
  val of_json : Json.t -> (t, string) result
  val equal : t -> t -> bool
end

(** {1 Requests} *)

type view_query = Rows | Members

val version : int
(** Protocol version spoken by this build.  A [hello] request carrying
    a different version is answered with a [version_mismatch] error. *)

type request =
  | Ping
  | Hello of { version : int; caps : string list }
      (** handshake: the client announces its protocol version and the
          capabilities it wants ([wal] subscribes the connection to
          shipped WAL records); answered with the server's version and
          capability flags *)
  | Step of Step.t  (** create / destroy / fire / batch / sync / txn *)
  | Steps of Step.t list
      (** a batch of independent step requests ([{"op": "steps",
          "steps": [{…}, …]}], each entry step-shaped), answered with a
          per-step result list; executed through the speculative
          parallel commit engine ({!Engine.step_batch_par}) — the
          results are bit-identical to sending the steps one by one *)
  | Prepare of Step.t
      (** first phase of a distributed commit: run the step inside a
          transaction but leave it open; the tentative outcome is
          returned and the server blocks other work until [commit] or
          [abort] *)
  | Commit  (** second phase: commit the prepared transaction *)
  | Abort  (** roll the prepared transaction back (idempotent) *)
  | Catchup of { base : string option; records : string list }
      (** replace the community state with the [base] dump (when given)
          and replay shipped WAL record payloads on top; used to bring a
          restarted shard back in sync *)
  | Attr of { target : Ident.t; attr : string }
  | Eval of string
  | Extension of string
  | Enabled of Ident.t
      (** currently enabled parameterless events of the object —
          answered from a frozen view, probed by the server's domain
          pool *)
  | Candidates of Ident.t
      (** all non-birth events of the object's class with parameter
          types and (for parameterless ones) enabledness *)
  | View of { view : string; what : view_query }
  | Save of string option  (** write to path, or return the dump inline *)
  | Restore of { path : string option; state : string option }
  | Snapshot
      (** force a WAL compaction (snapshot + log rotation); answered
          with [no_wal] when the server runs without a WAL *)
  | Stats
  | Shutdown

type envelope = {
  req_id : Json.t;  (** echoed back verbatim; [Null] when absent *)
  deadline_ms : int option;
  request : (request, string) result;
      (** [Error] = malformed request (bad_request on the wire) *)
}

val decode : Json.t -> envelope

val op_name : request -> string
(** The operation label, for per-op statistics. *)

val request_of_step : id:Json.t -> Step.t -> Json.t
(** Encode a step as a request document ([decode] inverts it).  Used by
    the shard router to ship decomposed sub-steps to their owners. *)

(** {1 Responses} *)

val wal_frame : (int * string) list -> Json.t
(** [{"wal": [{"seq": n, "payload": s}, …]}] — an unsolicited shipment
    of WAL records, pushed to connections that negotiated the [wal]
    capability in [hello].  The frame has no ["id"]. *)

val ok_frame : id:Json.t -> Json.t -> Json.t
(** [{"id": …, "ok": true, "result": …}]. *)

val error_frame : id:Json.t -> Wire_error.t -> Json.t
(** [{"id": …, "ok": false, "error": {…}}]. *)

val outcome_to_json : Engine.outcome -> Json.t
(** [{"committed": [[event…]…], "created": […], "destroyed": […]}]. *)
