(** Evaluation of expressions, state formulas and event patterns against
    a community.

    Name resolution is dynamic and follows the TROLL scoping rules:

    - a bare name is first a bound variable, then an attribute of the
      current object (including attributes inherited from base aspects),
      then an enumeration constant, then the extension of a class (as a
      set of surrogates), then a single named object (as a surrogate);
    - object references ([self], component aliases, [CLASS(key)]) resolve
      to identities; reading an attribute through them reads the other
      object's observable state — TROLL attributes are a read-only
      interface offered to other objects;
    - derived attributes evaluate their derivation rule on demand.

    All errors are reported through {!Runtime_error}. *)

open Runtime_error

let value_error fmt = Format.kasprintf (fun m -> fail (Eval_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Identity helpers                                                    *)
(* ------------------------------------------------------------------ *)

(** Interpret a value as a key for class [cls]: surrogate values pass
    through (their key is extracted), anything else is used as the raw
    key. *)
let key_of_value cls v =
  match v with
  | Value.Id (_, key) -> Ident.make cls key
  | other -> Ident.make cls other

(* ------------------------------------------------------------------ *)
(* Attribute reading with inheritance                                  *)
(* ------------------------------------------------------------------ *)

let rec read_attr (c : Community.t) (o : Obj_state.t) (name : string)
    (args : Value.t list) : Value.t =
  if String.equal name "surrogate" && args = [] then
    (* built-in pseudo attribute: the object's own identity, as used in
       the paper's WORKS_FOR join view ([P.surrogate in D.employees]) *)
    Ident.to_value o.Obj_state.id
  else
  match Template.find_attr o.Obj_state.template name with
  | Some def -> (
      match def.Template.at_derived with
      | Some rule ->
          let env =
            try Env.of_list (List.combine rule.Ast.d_params args)
            with Invalid_argument _ ->
              value_error "attribute %s.%s expects %d argument(s)"
                o.Obj_state.template.Template.t_name name
                (List.length rule.Ast.d_params)
          in
          expr c ~env ~self:(Some o) rule.Ast.d_rhs
      | None -> Obj_state.attr o name)
  | None -> (
      (* inheritance: delegate to base aspects with the same key *)
      match base_object c o with
      | Some base -> read_attr c base name args
      | None ->
          fail
            (Unknown_attribute (o.Obj_state.template.Template.t_name, name)))

and base_object (c : Community.t) (o : Obj_state.t) : Obj_state.t option =
  let tpl = o.Obj_state.template in
  let base_name =
    match (tpl.Template.t_view_of, tpl.Template.t_spec_of) with
    | Some b, _ | None, Some b -> Some b
    | None, None -> None
  in
  match base_name with
  | None -> None
  | Some b ->
      Community.find_object c (Ident.make b o.Obj_state.id.Ident.key)

(* ------------------------------------------------------------------ *)
(* Object reference resolution                                         *)
(* ------------------------------------------------------------------ *)

and resolve_ref (c : Community.t) ~env ~(self : Obj_state.t option)
    (r : Ast.obj_ref) : Ident.t =
  match r with
  | Ast.OR_self -> (
      match self with
      | Some o -> o.Obj_state.id
      | None -> value_error "self used outside an object context")
  | Ast.OR_instance (cls, e) ->
      let v = expr c ~env ~self e in
      key_of_value cls v
  | Ast.OR_name n -> (
      (* variable holding a surrogate *)
      match Env.find n env with
      | Some (Value.Id (cls, key)) -> Ident.make cls key
      | Some v -> value_error "%s = %a is not an object" n Value.pp v
      | None -> (
          (* attribute of self holding a surrogate (component alias or
             [inheriting … as] incorporation) *)
          let from_attr =
            match self with
            | Some o -> (
                match Template.find_attr o.Obj_state.template n with
                | Some _ -> (
                    match read_attr c o n [] with
                    | Value.Id (cls, key) -> Some (Ident.make cls key)
                    | v -> value_error "%s = %a is not an object" n Value.pp v)
                | None -> None)
            | None -> None
          in
          match from_attr with
          | Some id -> id
          | None ->
              (* a single named object *)
              if Community.is_class c n then Ident.singleton n
              else fail (Unknown_class n)))

(* The current object may be a detached pre-birth state (not yet
   registered); references to its own identity must use it directly. *)
and object_for (c : Community.t) ~(self : Obj_state.t option) (id : Ident.t) :
    Obj_state.t =
  match self with
  | Some o when Ident.equal o.Obj_state.id id -> o
  | _ -> Community.object_exn c id

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and expr (c : Community.t) ~env ~(self : Obj_state.t option) (x : Ast.expr) :
    Value.t =
  match x.Ast.e with
  | Ast.E_lit l -> lit l
  | Ast.E_self -> (
      match self with
      | Some o -> Ident.to_value o.Obj_state.id
      | None -> value_error "self used outside an object context")
  | Ast.E_var name -> var c ~env ~self name
  | Ast.E_attr (r, name, args) ->
      let id = resolve_ref c ~env ~self r in
      let o = object_for c ~self id in
      let args = List.map (expr c ~env ~self) args in
      read_attr c o name args
  | Ast.E_field (base, fname) -> (
      let v = expr c ~env ~self base in
      match v with
      | Value.Tuple _ -> Value.field fname v
      | Value.Id (cls, key) ->
          let o = object_for c ~self (Ident.make cls key) in
          read_attr c o fname []
      | Value.Undefined -> Value.Undefined
      | v -> value_error "cannot select field %s of %a" fname Value.pp v)
  | Ast.E_apply (f, args) -> (
      let args = List.map (expr c ~env ~self) args in
      match (Community.is_class c f, args) with
      | true, [ key ] ->
          (* surrogate construction: [PERSON("bob")] denotes the identity
             of that instance *)
          Ident.to_value (key_of_value f key)
      | _ -> (
          match Builtin.apply f args with
          | Ok v -> v
          | Error m -> value_error "%s" m))
  | Ast.E_binop (op, a, b) -> (
      (* short-circuit boolean operators *)
      match op with
      | "and" -> (
          match expr c ~env ~self a with
          | Value.Bool false -> Value.Bool false
          | va -> apply2 op va (expr c ~env ~self b))
      | "or" -> (
          match expr c ~env ~self a with
          | Value.Bool true -> Value.Bool true
          | va -> apply2 op va (expr c ~env ~self b))
      | "implies" -> (
          match expr c ~env ~self a with
          | Value.Bool false -> Value.Bool true
          | va -> apply2 op va (expr c ~env ~self b))
      | _ -> apply2 op (expr c ~env ~self a) (expr c ~env ~self b))
  | Ast.E_unop (op, a) -> (
      let va = expr c ~env ~self a in
      match Builtin.apply op [ va ] with
      | Ok v -> v
      | Error m -> value_error "%s" m)
  | Ast.E_tuple fields ->
      let named =
        List.mapi
          (fun i (name, fx) ->
            let v = expr c ~env ~self fx in
            match name with
            | Some n -> (n, v)
            | None -> (Printf.sprintf "_%d" (i + 1), v))
          fields
      in
      Value.Tuple named
  | Ast.E_setlit xs -> Value.set (List.map (expr c ~env ~self) xs)
  | Ast.E_listlit xs -> Value.List (List.map (expr c ~env ~self) xs)
  | Ast.E_if (cond, t, f) -> (
      match expr c ~env ~self cond with
      | Value.Bool true -> expr c ~env ~self t
      | Value.Bool false -> expr c ~env ~self f
      | Value.Undefined -> Value.Undefined
      | v -> value_error "if condition is not boolean: %a" Value.pp v)
  | Ast.E_query q -> query c ~env ~self q

and apply2 op va vb =
  match Builtin.apply op [ va; vb ] with
  | Ok v -> v
  | Error m -> value_error "%s" m

and lit = function
  | Ast.L_bool b -> Value.Bool b
  | Ast.L_int i -> Value.Int i
  | Ast.L_string s -> Value.String s
  | Ast.L_money m -> Value.Money (Money.of_cents m)
  | Ast.L_date d -> Value.Date d
  | Ast.L_undefined -> Value.Undefined

and var (c : Community.t) ~env ~self name : Value.t =
  match Env.find name env with
  | Some v -> v
  | None -> (
      (* attribute of the current object (or of a base aspect) *)
      let from_attr =
        match self with
        | Some o ->
            let rec lookup o =
              match Template.find_attr o.Obj_state.template name with
              | Some _ -> Some (read_attr c o name [])
              | None -> (
                  match base_object c o with
                  | Some b -> lookup b
                  | None -> None)
            in
            lookup o
        | None -> None
      in
      match from_attr with
      | Some v -> v
      | None -> (
          match Community.enum_of_const c name with
          | Some enum -> Value.Enum (enum, name)
          | None -> (
              match Community.find_template c name with
              | Some tpl when tpl.Template.t_kind = `Single ->
                  (* a single named object denotes its surrogate *)
                  Ident.to_value (Ident.singleton name)
              | Some _ ->
                  (* the class extension as a set of surrogates *)
                  Value.set
                    (List.map Ident.to_value
                       (Ident.Set.elements (Community.extension c name)))
              | None -> value_error "unbound name %s" name)))

(* ------------------------------------------------------------------ *)
(* Query algebra                                                       *)
(* ------------------------------------------------------------------ *)

and query (c : Community.t) ~env ~self (q : Ast.query) : Value.t =
  let elements v =
    match v with
    | Value.Set xs | Value.List xs -> xs
    | Value.Undefined -> []
    | v -> value_error "query over non-collection %a" Value.pp v
  in
  match q with
  | Ast.Q_expr e -> expr c ~env ~self e
  | Ast.Q_select (cond, sub) ->
      let xs = elements (query c ~env ~self sub) in
      let keep x =
        (* tuple fields of the element are in scope inside the condition *)
        let env' =
          match x with
          | Value.Tuple fields -> Env.bind_all fields env
          | _ -> env
        in
        let env' = Env.bind "it" x env' in
        match expr c ~env:env' ~self cond with
        | Value.Bool b -> b
        | Value.Undefined -> false
        | v -> value_error "selection condition is not boolean: %a" Value.pp v
      in
      Value.set (List.filter keep xs)
  | Ast.Q_project (fields, sub) ->
      let xs = elements (query c ~env ~self sub) in
      let proj x =
        match (fields, x) with
        | [ f ], Value.Tuple _ -> Value.field f x
        | _, Value.Tuple _ ->
            Value.Tuple (List.map (fun f -> (f, Value.field f x)) fields)
        | _, v -> value_error "project over non-tuple element %a" Value.pp v
      in
      Value.set (List.map proj xs)
  | Ast.Q_the sub -> (
      match elements (query c ~env ~self sub) with
      | [ v ] -> v
      | _ -> Value.Undefined)
  | Ast.Q_count sub ->
      Value.Int (List.length (elements (query c ~env ~self sub)))
  | Ast.Q_sum (field, sub) -> aggregate c ~env ~self "sum" field sub
  | Ast.Q_min (field, sub) -> aggregate c ~env ~self "minimum" field sub
  | Ast.Q_max (field, sub) -> aggregate c ~env ~self "maximum" field sub

and aggregate c ~env ~self op field sub =
  let base = query c ~env ~self sub in
  let v =
    match field with
    | None -> base
    | Some f -> (
        (* project the field as a multiset so duplicate values still
           count towards the aggregate *)
        match base with
        | Value.Set xs | Value.List xs ->
            Value.List (List.map (Value.field f) xs)
        | other -> other)
  in
  match Builtin.apply op [ v ] with
  | Ok r -> r
  | Error m -> value_error "%s" m

(* ------------------------------------------------------------------ *)
(* State formulas                                                      *)
(* ------------------------------------------------------------------ *)

(** Evaluate a non-temporal formula on the current state.  Bounded
    quantifiers range over class extensions, finite types, or — for
    [exists] — witness candidates extracted from membership and equality
    constraints on the bound variable. *)
and formula_state (c : Community.t) ~env ~self (f : Ast.formula) : bool =
  match f.Ast.f with
  | Ast.F_expr e -> (
      match expr c ~env ~self e with
      | Value.Bool b -> b
      | Value.Undefined -> false
      | v -> value_error "formula is not boolean: %a" Value.pp v)
  | Ast.F_not g -> not (formula_state c ~env ~self g)
  | Ast.F_and (a, b) ->
      formula_state c ~env ~self a && formula_state c ~env ~self b
  | Ast.F_or (a, b) ->
      formula_state c ~env ~self a || formula_state c ~env ~self b
  | Ast.F_implies (a, b) ->
      (not (formula_state c ~env ~self a)) || formula_state c ~env ~self b
  | Ast.F_forall (binds, g) -> quantify c ~env ~self ~forall:true binds g
  | Ast.F_exists (binds, g) -> quantify c ~env ~self ~forall:false binds g
  | Ast.F_sometime _ | Ast.F_always _ | Ast.F_since _ | Ast.F_previous _
  | Ast.F_after _ ->
      fail
        (Unsupported
           "temporal operator evaluated as a state formula (should have been \
            compiled to a monitor)")

and quantify c ~env ~self ~forall binds g =
  match binds with
  | [] -> formula_state c ~env ~self g
  | (v, ty) :: rest ->
      let dom = domain c ~env ~self ~var:v ~body:g ty in
      let test x =
        quantify c ~env:(Env.bind v x env) ~self ~forall rest g
      in
      if forall then List.for_all test dom else List.exists test dom

(** Candidate domain of a quantified variable. *)
and domain c ~env ~self ~var ~body (ty : Ast.type_expr) : Value.t list =
  match ty with
  | Ast.TE_name n when Community.is_class c n ->
      List.map Ident.to_value (Ident.Set.elements (Community.extension c n))
  | Ast.TE_id n ->
      List.map Ident.to_value (Ident.Set.elements (Community.extension c n))
  | Ast.TE_name "bool" -> [ Value.Bool false; Value.Bool true ]
  | Ast.TE_name n -> (
      match Community.enum_consts c n with
      | Some cs -> List.map (fun cst -> Value.Enum (n, cst)) cs
      | None ->
          (* infinite base type: fall back to witness candidates *)
          witness_candidates c ~env ~self ~var body)
  | _ -> witness_candidates c ~env ~self ~var body

(** Collect candidate witnesses for [var] from membership and equality
    constraints inside [body]: for [var in S] every element of [S], for
    [var = e] / [e = var] the value of [e], and for [in(S, tuple(…,var,…))]
    the corresponding components of [S]'s elements.  Sound for [exists]
    when the body constrains the variable this way (as the paper's
    [exists(s1: integer) in(Emps, tuple(n, b, s1))] does); an empty
    candidate set makes the quantifier false. *)
and witness_candidates c ~env ~self ~var (body : Ast.formula) : Value.t list =
  let acc = ref [] in
  let mentions_var (x : Ast.expr) = List.mem var (Ast.expr_vars [] x) in
  let add v = acc := v :: !acc in
  let try_eval (x : Ast.expr) =
    match expr c ~env ~self x with v -> Some v | exception Error _ -> None
  in
  let from_collection coll (pattern : Ast.expr) =
    (* pattern is an expression mentioning [var]; if it is the variable
       itself take the elements, if it is a positional tuple take the
       matching component of tuple elements *)
    match try_eval coll with
    | Some (Value.Set xs | Value.List xs) -> (
        match pattern.Ast.e with
        | Ast.E_var v when String.equal v var -> List.iter add xs
        | Ast.E_tuple fields ->
            List.iteri
              (fun i (_, fx) ->
                match fx.Ast.e with
                | Ast.E_var v when String.equal v var ->
                    List.iter
                      (fun el ->
                        match el with
                        | Value.Tuple tf -> (
                            match List.nth_opt tf i with
                            | Some (_, comp) -> add comp
                            | None -> ())
                        | _ -> ())
                      xs
                | _ -> ())
              fields
        | _ -> ())
    | _ -> ()
  in
  let rec walk_expr (x : Ast.expr) =
    (match x.Ast.e with
    | Ast.E_binop ("in", elem, coll) when mentions_var elem ->
        from_collection coll elem
    | Ast.E_apply ("in", [ a; b ]) ->
        (* both argument orders, as in the paper *)
        if mentions_var b then from_collection a b;
        if mentions_var a then from_collection b a
    | Ast.E_binop ("=", a, b) -> (
        match (a.Ast.e, b.Ast.e) with
        | Ast.E_var v, _ when String.equal v var ->
            Option.iter add (try_eval b)
        | _, Ast.E_var v when String.equal v var ->
            Option.iter add (try_eval a)
        | _ -> ())
    | _ -> ());
    sub_exprs walk_expr x
  and sub_exprs k (x : Ast.expr) =
    match x.Ast.e with
    | Ast.E_lit _ | Ast.E_var _ | Ast.E_self -> ()
    | Ast.E_attr (_, _, args) | Ast.E_apply (_, args) -> List.iter k args
    | Ast.E_field (b, _) | Ast.E_unop (_, b) -> k b
    | Ast.E_binop (_, a, b) ->
        k a;
        k b
    | Ast.E_tuple fs -> List.iter (fun (_, e) -> k e) fs
    | Ast.E_setlit xs | Ast.E_listlit xs -> List.iter k xs
    | Ast.E_if (a, b, d) ->
        k a;
        k b;
        k d
    | Ast.E_query q -> walk_query q
  and walk_query = function
    | Ast.Q_expr e -> walk_expr e
    | Ast.Q_select (e, q) ->
        walk_expr e;
        walk_query q
    | Ast.Q_project (_, q) | Ast.Q_the q | Ast.Q_count q -> walk_query q
    | Ast.Q_sum (_, q) | Ast.Q_min (_, q) | Ast.Q_max (_, q) -> walk_query q
  in
  let rec walk_formula (f : Ast.formula) =
    match f.Ast.f with
    | Ast.F_expr e -> walk_expr e
    | Ast.F_not g | Ast.F_sometime g | Ast.F_always g | Ast.F_previous g ->
        walk_formula g
    | Ast.F_and (a, b) | Ast.F_or (a, b) | Ast.F_implies (a, b)
    | Ast.F_since (a, b) ->
        walk_formula a;
        walk_formula b
    | Ast.F_after ev -> List.iter walk_expr ev.Ast.ev_args
    | Ast.F_forall (_, g) | Ast.F_exists (_, g) -> walk_formula g
  in
  walk_formula body;
  List.sort_uniq Value.compare !acc

(* ------------------------------------------------------------------ *)
(* Event pattern matching                                              *)
(* ------------------------------------------------------------------ *)

(** Unify pattern argument expressions against actual values.  A bare
    variable (declared in [vars], not already bound) binds; any other
    expression is evaluated and compared for equality. *)
let match_args (c : Community.t) ~env ~self ~(vars : string list)
    (patterns : Ast.expr list) (actuals : Value.t list) : Env.t option =
  if List.length patterns <> List.length actuals then None
  else
    let step acc (p : Ast.expr) v =
      match acc with
      | None -> None
      | Some env -> (
          match p.Ast.e with
          | Ast.E_var name when List.mem name vars && not (Env.mem name env) ->
              Some (Env.bind name v env)
          | _ -> (
              match expr c ~env ~self p with
              | pv when Value.equal pv v -> Some env
              | _ -> None
              | exception Error _ -> None))
    in
    List.fold_left2 step (Some env) patterns actuals

(** Match an event pattern (as used in valuation rules, permissions,
    guards' [after(…)] atoms) against an occurred event of object [o].
    The pattern's target, if any, must resolve to [o] itself (local
    rules name events of the own object). *)
let match_local_event (c : Community.t) (o : Obj_state.t)
    ~env ~(vars : string list) (pat : Ast.event_term) (ev : Event.t) :
    Env.t option =
  if not (String.equal pat.Ast.ev_name ev.Event.name) then None
  else
    let target_ok =
      match pat.Ast.target with
      | None | Some Ast.OR_self -> Ident.equal ev.Event.target o.Obj_state.id
      | Some r -> (
          match resolve_ref c ~env ~self:(Some o) r with
          | id -> Ident.equal ev.Event.target id
          | exception Error _ -> false)
    in
    if not target_ok then None
    else match_args c ~env ~self:(Some o) ~vars pat.Ast.ev_args ev.Event.args

(* ------------------------------------------------------------------ *)
(* Compiled evaluators                                                 *)
(* ------------------------------------------------------------------ *)

(* Expressions and formulas can be compiled once per template into
   closures with all static decisions taken up front: attribute names
   resolved to slots, enum constants and class names recognised,
   literals folded.  Compiled closures capture only schema facts, never
   a community — the community is a runtime argument, so clones (which
   share templates) evaluate against their own state.  Staleness of the
   captured schema facts is handled above this layer: {!Dispatch}
   rebuilds all compiled state when [Community.schema_generation]
   moves. *)

type compiled_expr = Community.t -> Env.t -> Obj_state.t option -> Value.t
type compiled_formula = Community.t -> Env.t -> Obj_state.t option -> bool

(** Compiled evaluations that had to fall back to the interpreter
    (dynamic name resolution, queries, quantifiers). *)
let fallback_count = ref 0

let fallback_expr (x : Ast.expr) : compiled_expr =
 fun c env self ->
  incr fallback_count;
  expr c ~env ~self x

(** [env] shadows every static resolution of a bare name. *)
let with_env name (k : compiled_expr) : compiled_expr =
 fun c env self ->
  match Env.find name env with Some v -> v | None -> k c env self

let rec compile_expr (c0 : Community.t) ~(tpl : Template.t option)
    (x : Ast.expr) : compiled_expr =
  match x.Ast.e with
  | Ast.E_lit l ->
      let v = lit l in
      fun _ _ _ -> v
  | Ast.E_self -> (
      fun _ _ self ->
        match self with
        | Some o -> Ident.to_value o.Obj_state.id
        | None -> value_error "self used outside an object context")
  | Ast.E_var name -> compile_var c0 ~tpl name
  | Ast.E_attr (Ast.OR_self, "surrogate", []) -> (
      fun _ _ self ->
        match self with
        | Some o -> Ident.to_value o.Obj_state.id
        | None -> value_error "self used outside an object context")
  | Ast.E_attr (Ast.OR_self, name, []) -> (
      match tpl with
      | Some t -> (
          match Template.find_attr t name with
          | Some def when def.Template.at_derived = None -> (
              match Template.slot_of t name with
              | Some slot -> (
                  fun c env self ->
                    match self with
                    | Some o when o.Obj_state.template == t ->
                        Obj_state.attr_slot o slot
                    | _ ->
                        incr fallback_count;
                        expr c ~env ~self x)
              | None -> fallback_expr x)
          | _ -> fallback_expr x)
      | None -> fallback_expr x)
  | Ast.E_attr _ -> fallback_expr x
  | Ast.E_field (base, fname) ->
      let cb = compile_expr c0 ~tpl base in
      fun c env self -> (
        match cb c env self with
        | Value.Tuple _ as v -> Value.field fname v
        | Value.Id (cls, key) ->
            let o = object_for c ~self (Ident.make cls key) in
            read_attr c o fname []
        | Value.Undefined -> Value.Undefined
        | v -> value_error "cannot select field %s of %a" fname Value.pp v)
  | Ast.E_apply (f, args) ->
      let cargs = List.map (compile_expr c0 ~tpl) args in
      if Community.is_class c0 f then (
        match cargs with
        | [ ckey ] ->
            fun c env self ->
              Ident.to_value (key_of_value f (ckey c env self))
        | _ ->
            fun c env self ->
              apply_builtin f (List.map (fun a -> a c env self) cargs))
      else fun c env self ->
        apply_builtin f (List.map (fun a -> a c env self) cargs)
  | Ast.E_binop (op, a, b) -> (
      let ca = compile_expr c0 ~tpl a in
      let cb = compile_expr c0 ~tpl b in
      match op with
      | "and" -> (
          fun c env self ->
            match ca c env self with
            | Value.Bool false -> Value.Bool false
            | va -> apply2 op va (cb c env self))
      | "or" -> (
          fun c env self ->
            match ca c env self with
            | Value.Bool true -> Value.Bool true
            | va -> apply2 op va (cb c env self))
      | "implies" -> (
          fun c env self ->
            match ca c env self with
            | Value.Bool false -> Value.Bool true
            | va -> apply2 op va (cb c env self))
      | _ -> fun c env self -> apply2 op (ca c env self) (cb c env self))
  | Ast.E_unop (op, a) ->
      let ca = compile_expr c0 ~tpl a in
      fun c env self -> apply_builtin op [ ca c env self ]
  | Ast.E_tuple fields ->
      let cfields =
        List.mapi
          (fun i (name, fx) ->
            ( (match name with
              | Some n -> n
              | None -> Printf.sprintf "_%d" (i + 1)),
              compile_expr c0 ~tpl fx ))
          fields
      in
      fun c env self ->
        Value.Tuple (List.map (fun (n, cf) -> (n, cf c env self)) cfields)
  | Ast.E_setlit xs ->
      let cxs = List.map (compile_expr c0 ~tpl) xs in
      fun c env self -> Value.set (List.map (fun cx -> cx c env self) cxs)
  | Ast.E_listlit xs ->
      let cxs = List.map (compile_expr c0 ~tpl) xs in
      fun c env self -> Value.List (List.map (fun cx -> cx c env self) cxs)
  | Ast.E_if (cond, t, f) -> (
      let cc = compile_expr c0 ~tpl cond in
      let ct = compile_expr c0 ~tpl t in
      let cf = compile_expr c0 ~tpl f in
      fun c env self ->
        match cc c env self with
        | Value.Bool true -> ct c env self
        | Value.Bool false -> cf c env self
        | Value.Undefined -> Value.Undefined
        | v -> value_error "if condition is not boolean: %a" Value.pp v)
  | Ast.E_query _ -> fallback_expr x

and apply_builtin f args =
  match Builtin.apply f args with
  | Ok v -> v
  | Error m -> value_error "%s" m

(** A bare name, with the scoping decision (attribute slot, enum
    constant, single object, class extension) taken at compile time.
    The runtime environment still shadows everything, and a [self] of an
    unexpected template falls back to dynamic resolution. *)
and compile_var (c0 : Community.t) ~(tpl : Template.t option) name :
    compiled_expr =
  let dynamic : compiled_expr =
   fun c env self ->
    incr fallback_count;
    var c ~env ~self name
  in
  let own_attr =
    match tpl with
    | Some t -> (
        match Template.find_attr t name with
        | Some def when def.Template.at_derived = None -> (
            match Template.slot_of t name with
            | Some slot ->
                Some
                  (with_env name (fun c env self ->
                       match self with
                       | Some o when o.Obj_state.template == t ->
                           Obj_state.attr_slot o slot
                       | _ -> dynamic c env self))
            | None -> None)
        | Some _ -> Some dynamic (* derived: evaluate its rule *)
        | None ->
            (* the name may be an inherited attribute: instance-dependent *)
            if t.Template.t_view_of <> None || t.Template.t_spec_of <> None
            then Some dynamic
            else None)
    | None -> None
  in
  match own_attr with
  | Some ce -> ce
  | None ->
      (* Not an attribute of the compiled template (which, when known,
         has no base aspect here): the scoping decision is a schema
         fact.  It covers [self = None] and a [self] of the compiled
         template; any other [self] resolves dynamically. *)
      let static_ok (self : Obj_state.t option) =
        match (self, tpl) with
        | None, _ -> true
        | Some o, Some t -> o.Obj_state.template == t
        | Some _, None -> false
      in
      let wrap (k : compiled_expr) =
        with_env name (fun c env self ->
            if static_ok self then k c env self else dynamic c env self)
      in
      (match Community.enum_of_const c0 name with
      | Some enum ->
          let v = Value.Enum (enum, name) in
          wrap (fun _ _ _ -> v)
      | None -> (
          match Community.find_template c0 name with
          | Some t when t.Template.t_kind = `Single ->
              let v = Ident.to_value (Ident.singleton name) in
              wrap (fun _ _ _ -> v)
          | Some _ ->
              wrap (fun c _ _ ->
                  Value.set
                    (List.map Ident.to_value
                       (Ident.Set.elements (Community.extension c name))))
          | None -> wrap (fun _ _ _ -> value_error "unbound name %s" name)))

let rec compile_formula (c0 : Community.t) ~(tpl : Template.t option)
    (f : Ast.formula) : compiled_formula =
  match f.Ast.f with
  | Ast.F_expr e -> (
      let ce = compile_expr c0 ~tpl e in
      fun c env self ->
        match ce c env self with
        | Value.Bool b -> b
        | Value.Undefined -> false
        | v -> value_error "formula is not boolean: %a" Value.pp v)
  | Ast.F_not g ->
      let cg = compile_formula c0 ~tpl g in
      fun c env self -> not (cg c env self)
  | Ast.F_and (a, b) ->
      let ca = compile_formula c0 ~tpl a in
      let cb = compile_formula c0 ~tpl b in
      fun c env self -> ca c env self && cb c env self
  | Ast.F_or (a, b) ->
      let ca = compile_formula c0 ~tpl a in
      let cb = compile_formula c0 ~tpl b in
      fun c env self -> ca c env self || cb c env self
  | Ast.F_implies (a, b) ->
      let ca = compile_formula c0 ~tpl a in
      let cb = compile_formula c0 ~tpl b in
      fun c env self -> (not (ca c env self)) || cb c env self
  | Ast.F_forall _ | Ast.F_exists _ | Ast.F_sometime _ | Ast.F_always _
  | Ast.F_since _ | Ast.F_previous _ | Ast.F_after _ ->
      (* quantifiers need dynamic domains; temporal operators raise the
         same [Unsupported] as the interpreter *)
      fun c env self ->
        incr fallback_count;
        formula_state c ~env ~self f

(* --- compiled event patterns --------------------------------------- *)

(** One pattern argument: a binder (bare declared variable) or a
    compiled expression to compare against the actual. *)
type compiled_arg =
  | CA_bind of string
  | CA_expr of compiled_expr

type compiled_pattern = {
  cp_name : string;
  cp_target : Ast.obj_ref option;
      (** [None] covers both "no target" and [self]: match the own
          object; [Some r] resolves dynamically *)
  cp_args : compiled_arg list;
  cp_nargs : int;
}

let compile_args (c0 : Community.t) ~(tpl : Template.t option)
    ~(vars : string list) (patterns : Ast.expr list) : compiled_arg list =
  List.map
    (fun (p : Ast.expr) ->
      match p.Ast.e with
      | Ast.E_var name when List.mem name vars -> CA_bind name
      | _ -> CA_expr (compile_expr c0 ~tpl p))
    patterns

let compile_pattern (c0 : Community.t) ~(tpl : Template.t option)
    ~(vars : string list) (pat : Ast.event_term) : compiled_pattern =
  {
    cp_name = pat.Ast.ev_name;
    cp_target =
      (match pat.Ast.target with
      | None | Some Ast.OR_self -> None
      | Some r -> Some r);
    cp_args = compile_args c0 ~tpl ~vars pat.Ast.ev_args;
    cp_nargs = List.length pat.Ast.ev_args;
  }

(** Compiled counterpart of {!match_args}: binders bind on first
    occurrence and compare afterwards; expression arguments compare by
    value, with evaluation errors failing the match. *)
let match_compiled_args (c : Community.t) ~env ~self
    (cargs : compiled_arg list) (nargs : int) (actuals : Value.t list) :
    Env.t option =
  if List.length actuals <> nargs then None
  else
    let step acc ca v =
      match acc with
      | None -> None
      | Some env -> (
          match ca with
          | CA_bind name -> (
              match Env.find name env with
              | None -> Some (Env.bind name v env)
              | Some bv -> if Value.equal bv v then Some env else None)
          | CA_expr ce -> (
              match ce c env self with
              | pv when Value.equal pv v -> Some env
              | _ -> None
              | exception Error _ -> None))
    in
    List.fold_left2 step (Some env) cargs actuals

(** Compiled counterpart of {!match_local_event}. *)
let match_compiled_event (c : Community.t) (o : Obj_state.t) ~env
    (cp : compiled_pattern) (ev : Event.t) : Env.t option =
  if not (String.equal cp.cp_name ev.Event.name) then None
  else
    let target_ok =
      match cp.cp_target with
      | None -> Ident.equal ev.Event.target o.Obj_state.id
      | Some r -> (
          match resolve_ref c ~env ~self:(Some o) r with
          | id -> Ident.equal ev.Event.target id
          | exception Error _ -> false)
    in
    if not target_ok then None
    else
      match_compiled_args c ~env ~self:(Some o) cp.cp_args cp.cp_nargs
        ev.Event.args
