(** The journaled transaction layer: every mutation of runtime state —
    object fields, object creation/destruction, class extensions, the
    ordered storage index — goes through a transaction scope and can be
    rolled back from the community's journal.

    The journal is a LIFO undo log ({!Community.journal}).  Obj_state
    keeps immutable values in mutable slots, so an undo entry is a
    pointer restore; snapshots are deduplicated per scope with an epoch
    counter (redundant snapshots would still be *correct* — LIFO replay
    ends on the oldest one — just wasteful).

    Scopes nest: a [begin_] under an open journal, a {!savepoint}, and a
    {!probe} all mark the current journal length and unwind back to it.
    Only the outermost transaction owns the journal slot and accounts
    the lifetime totals into the global {!stats}. *)

type t = {
  c : Community.t;
  owner : bool;  (** installed the journal, will clear the slot *)
  base : int;  (** journal length when this scope opened *)
  mutable t_created : Ident.t list;  (** newest first *)
  mutable t_destroyed : Ident.t list;  (** newest first *)
}

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  begun : int;
  committed : int;
  rolled_back : int;
  savepoints : int;
  savepoint_rollbacks : int;
  probes : int;
  journal_entries : int;
  bytes_snapshotted : int;
}

(* kept as individual mutable cells: the hot path bumps one counter per
   transaction op and must not allocate a fresh record each time *)
let n_begun = ref 0
and n_committed = ref 0
and n_rolled_back = ref 0
and n_savepoints = ref 0
and n_savepoint_rollbacks = ref 0
and n_probes = ref 0
and n_journal_entries = ref 0
and n_bytes_snapshotted = ref 0

let stats () =
  {
    begun = !n_begun;
    committed = !n_committed;
    rolled_back = !n_rolled_back;
    savepoints = !n_savepoints;
    savepoint_rollbacks = !n_savepoint_rollbacks;
    probes = !n_probes;
    journal_entries = !n_journal_entries;
    bytes_snapshotted = !n_bytes_snapshotted;
  }

let reset_stats () =
  n_begun := 0;
  n_committed := 0;
  n_rolled_back := 0;
  n_savepoints := 0;
  n_savepoint_rollbacks := 0;
  n_probes := 0;
  n_journal_entries := 0;
  n_bytes_snapshotted := 0

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>transactions begun     %d@,\
     transactions committed %d@,\
     transactions rolled back %d@,\
     savepoints             %d@,\
     savepoint rollbacks    %d@,\
     probes                 %d@,\
     journal entries        %d@,\
     bytes snapshotted      %d@]"
    s.begun s.committed s.rolled_back s.savepoints s.savepoint_rollbacks
    s.probes s.journal_entries s.bytes_snapshotted

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

let fresh_journal () : Community.journal =
  {
    Community.entries = [];
    count = 0;
    total = 0;
    bytes = 0;
    touched = Hashtbl.create 16;
    epoch = 0;
  }

(* One detached journal per domain is kept for reuse so the
   per-transaction cost is a reset, not a record + hashtable
   allocation.  The slot is domain-local: parallel probe workers each
   recycle their own journal and never contend on (or corrupt) a shared
   one.  A slot only ever holds a journal that no community points
   to. *)
let spare_journal : Community.journal option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let take_journal () =
  let slot = Domain.DLS.get spare_journal in
  match !slot with
  | Some j ->
      slot := None;
      j
  | None -> fresh_journal ()

let release_journal (j : Community.journal) =
  j.Community.entries <- [];
  j.Community.count <- 0;
  j.Community.total <- 0;
  j.Community.bytes <- 0;
  Hashtbl.reset j.Community.touched;
  j.Community.epoch <- 0;
  (Domain.DLS.get spare_journal) := Some j

let begin_ (c : Community.t) =
  incr n_begun;
  match c.Community.journal with
  | None ->
      c.Community.journal <- Some (take_journal ());
      { c; owner = true; base = 0; t_created = []; t_destroyed = [] }
  | Some j ->
      (* nested scope: new epoch so touched objects are re-snapshotted
         relative to this scope's base *)
      j.Community.epoch <- j.Community.epoch + 1;
      {
        c;
        owner = false;
        base = j.Community.count;
        t_created = [];
        t_destroyed = [];
      }

let journal_exn t =
  match t.c.Community.journal with
  | Some j -> j
  | None -> invalid_arg "Txn: scope already closed"

(** Snapshot [o] unless this scope (epoch) already holds one. *)
let touch t (o : Obj_state.t) =
  let j = journal_exn t in
  let id = o.Obj_state.id in
  let fresh =
    match Hashtbl.find_opt j.Community.touched id with
    | Some e -> e < j.Community.epoch
    | None -> true
  in
  if fresh then begin
    let snap = Obj_state.snapshot o in
    Community.journal_record t.c (Community.J_obj (o, snap));
    j.Community.bytes <- j.Community.bytes + Obj_state.snapshot_cost snap;
    Hashtbl.replace j.Community.touched id j.Community.epoch
  end

let note_created t id = t.t_created <- id :: t.t_created
let note_destroyed t id = t.t_destroyed <- id :: t.t_destroyed
let created t = List.rev t.t_created
let destroyed t = List.rev t.t_destroyed

(** Fold the journal's lifetime totals into the global counters, at
    top-level close. *)
let account (j : Community.journal) =
  n_journal_entries := !n_journal_entries + j.Community.total;
  n_bytes_snapshotted := !n_bytes_snapshotted + j.Community.bytes

(** Pop and undo entries until the journal is [mark] long again. *)
let pop_to (c : Community.t) (j : Community.journal) mark =
  while j.Community.count > mark do
    match j.Community.entries with
    | [] -> j.Community.count <- mark (* unreachable if count is kept *)
    | e :: rest ->
        j.Community.entries <- rest;
        j.Community.count <- j.Community.count - 1;
        Community.undo_entry c e
  done;
  (* any snapshot taken before the rollback may now be stale: force
     re-snapshotting in whatever scope continues *)
  j.Community.epoch <- j.Community.epoch + 1

let commit t =
  incr n_committed;
  if t.owner then begin
    let j = journal_exn t in
    (* the transaction mutated something it keeps: outstanding views of
       this community are now stale *)
    if j.Community.total > 0 then Community.bump_version t.c;
    (* redo-log side: hand the surviving undo entries to the commit hook
       (the WAL) while the final state is in place.  [count = 0] means
       every recorded entry was unwound by savepoints — no net delta,
       nothing to log. *)
    (match t.c.Community.commit_hook with
    | Some hook when j.Community.count > 0 -> hook j
    | _ -> ());
    account j;
    t.c.Community.journal <- None;
    release_journal j
  end
(* nested commit: keep the entries — the outer scope may still roll
   everything back *)

let rollback t =
  incr n_rolled_back;
  let j = journal_exn t in
  pop_to t.c j t.base;
  if t.owner then begin
    account j;
    t.c.Community.journal <- None;
    release_journal j
  end

(* ------------------------------------------------------------------ *)
(* Savepoints                                                          *)
(* ------------------------------------------------------------------ *)

type savepoint = {
  sp_mark : int;
  sp_created : Ident.t list;
  sp_destroyed : Ident.t list;
}

let savepoint t =
  incr n_savepoints;
  let j = journal_exn t in
  j.Community.epoch <- j.Community.epoch + 1;
  {
    sp_mark = j.Community.count;
    sp_created = t.t_created;
    sp_destroyed = t.t_destroyed;
  }

let rollback_to t sp =
  incr n_savepoint_rollbacks;
  let j = journal_exn t in
  pop_to t.c j sp.sp_mark;
  t.t_created <- sp.sp_created;
  t.t_destroyed <- sp.sp_destroyed

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

let probe (c : Community.t) f =
  incr n_probes;
  let t = begin_ c in
  match f () with
  | v ->
      rollback t;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      rollback t;
      Printexc.raise_with_backtrace e bt
