(** Runtime state of a single object (aspect).

    Attributes live in a flat [Value.t array] indexed by the template's
    interned slots ({!Template.slots}), so a read or write is one array
    access instead of a string-map lookup.  Monitor states remain
    immutable values in mutable fields; a transaction rollback restores
    the old pointers, with the attribute array copied on {!snapshot}
    (it is mutated in place between snapshots). *)

module Smap = Map.Make (String)

(** Monitor state attached to one permission of the template. *)
type pstate =
  | PS_none  (** non-temporal guard: nothing to track *)
  | PS_closed of Monitor.state option  (** [None] before the first step *)
  | PS_indexed of (Value.t list * Monitor.state) list
      (** one instance per observed instantiation of the guard's
          parameters (or per class member for quantified guards) *)

type history_entry = {
  h_events : Event.t list;  (** events of the step involving this object *)
  h_attrs : Value.t array;  (** attribute state after the step (a copy) *)
}

type t = {
  id : Ident.t;
  template : Template.t;
  mutable alive : bool;
  mutable dead : bool;  (** death event has occurred; cannot be reborn *)
  mutable attrs : Value.t array;  (** parallel to [Template.slots] *)
  mutable perm_states : pstate array;  (** parallel to [template.t_perms] *)
  mutable constr_states : Monitor.state option array;
      (** parallel to temporal constraints *)
  mutable history : history_entry list;  (** newest first; only if enabled *)
  mutable steps : int;  (** number of life-cycle steps so far *)
}

let initial_pstate (p : Template.permission) =
  match p.pm_guard with
  | Template.PG_state _ -> PS_none
  | Template.PG_closed _ -> PS_closed None
  | Template.PG_indexed _ | Template.PG_quant _ -> PS_indexed []

let create id (template : Template.t) =
  {
    id;
    template;
    alive = false;
    dead = false;
    attrs = Array.make (Template.n_slots template) Value.Undefined;
    perm_states =
      Array.of_list (List.map initial_pstate template.t_perms);
    constr_states =
      Array.of_list
        (List.filter_map
           (function
             | Template.K_static _ -> None
             | Template.K_temporal _ -> Some None)
           template.t_constraints);
    history = [];
    steps = 0;
  }

let attr t name =
  match Template.slot_of t.template name with
  | Some i -> t.attrs.(i)
  | None -> Value.Undefined

let set_attr t name v =
  match Template.slot_of t.template name with
  | Some i -> t.attrs.(i) <- v
  | None ->
      Runtime_error.fail
        (Runtime_error.Unknown_attribute (t.template.Template.t_name, name))

let attr_slot t i = t.attrs.(i)
let set_attr_slot t i v = t.attrs.(i) <- v

(** Named bindings of an attribute array (relative to a template), in
    slot-name order, unset ([Undefined]) slots omitted. *)
let attrs_bindings (template : Template.t) (attrs : Value.t array) :
    (string * Value.t) list =
  let rows = ref [] in
  for i = Array.length attrs - 1 downto 0 do
    if not (Value.is_undefined attrs.(i)) then
      rows := (Template.slot_name template i, attrs.(i)) :: !rows
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let bindings t = attrs_bindings t.template t.attrs

(** Copy of all mutable fields, for rollback. *)
type snapshot = {
  s_alive : bool;
  s_dead : bool;
  s_attrs : Value.t array;
  s_perm_states : pstate array;
  s_constr_states : Monitor.state option array;
  s_history : history_entry list;
  s_steps : int;
}

let snapshot t =
  {
    s_alive = t.alive;
    s_dead = t.dead;
    s_attrs = Array.copy t.attrs;
    s_perm_states = Array.copy t.perm_states;
    s_constr_states = Array.copy t.constr_states;
    s_history = t.history;
    s_steps = t.steps;
  }

(* A snapshot whose arrays can be installed as live state without
   aliasing the original.  Monitor states, values and history entries
   are immutable and stay shared; only the three mutated-in-place
   arrays are duplicated.  Used by View.thaw, where one frozen snapshot
   seeds a private mutable object per domain. *)
let copy_snapshot s =
  {
    s with
    s_attrs = Array.copy s.s_attrs;
    s_perm_states = Array.copy s.s_perm_states;
    s_constr_states = Array.copy s.s_constr_states;
  }

(* Restoring by pointer is sound because journal entries are single-use
   (popped in LIFO order and discarded); the snapshot array becomes the
   live one. *)
let restore t s =
  t.alive <- s.s_alive;
  t.dead <- s.s_dead;
  t.attrs <- s.s_attrs;
  t.perm_states <- s.s_perm_states;
  t.constr_states <- s.s_constr_states;
  t.history <- s.s_history;
  t.steps <- s.s_steps

(** Shallow cost of a snapshot in bytes: the record and its three copied
    arrays.  Monitor states and attribute values are shared pointers, so
    this is what taking the snapshot actually allocated. *)
let snapshot_cost s =
  (9
  + Array.length s.s_attrs
  + Array.length s.s_perm_states
  + Array.length s.s_constr_states)
  * (Sys.word_size / 8)

let pp ppf t =
  Format.fprintf ppf "@[<v 2>%a%s@," Ident.pp t.id
    (if t.dead then " (dead)" else if t.alive then "" else " (unborn)");
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%s = %a@," name Value.pp v)
    (bindings t);
  Format.fprintf ppf "@]"
