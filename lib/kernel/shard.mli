(** Sharded object societies: partition maps and the two-phase commit
    coordinator.

    The paper's §6 modularization connects independent object societies
    only through society-interface import — events, never shared state.
    A partition map assigns every class to a shard such that classes
    that can interact within one synchronous step (inheritance,
    event-calling targets, global interactions, cross-object
    expressions) are co-located; a step whose events span several shards
    therefore always decomposes into *independent* per-shard sub-steps,
    which the coordinator makes atomic with a two-phase protocol built
    on {!Txn} savepoints ({!Engine.prepare} = journal mark,
    {!Engine.rollback_prepared} = abort).  See [docs/SHARDING.md]. *)

(** {1 Class groups} *)

val groups : Community.t -> string list list
(** The connected components of the class-interaction graph, each
    sorted, listed in order of their smallest member.  Edges:
    [view of]/[specialization of] ancestry, phase [born_by] triggers,
    calling-rule targets, global interaction rules, and any
    cross-class object reference inside an expression or guard
    (valuations, permissions, constraints, derivations).  Classes in
    one group must live on one shard. *)

(** {1 Partition maps} *)

type map

val shards : map -> int

val of_classes :
  Community.t -> shards:int -> (string * int) list -> (map, string) result
(** Explicit assignment, one entry per class.  Fails if a class is
    missing or unknown, a shard id is outside [0, shards), or two
    classes of one group land on different shards. *)

val auto : Community.t -> shards:int -> map
(** Deterministic default: class groups round-robin over the shards in
    group order. *)

val by_hash : Community.t -> shards:int -> (map, string) result
(** Identity-hash partitioning: an object lives on
    [hash(key) mod shards], co-locating every aspect (view,
    specialization, phase) of one identity.  Only valid when instances
    never interact across identities — no global interactions, no
    calling targets or expression references beyond [self] and the
    object's own aspects; fails otherwise. *)

val to_string : map -> string
(** Wire form for the protocol handshake / CLI:
    ["hash:<n>"] or ["classes:<n>:CLS=<k>,…"] (classes sorted). *)

val of_string : Community.t -> string -> (map, string) result
(** Parse {!to_string}'s form, re-validating against the community. *)

val owner_class : map -> string -> (int, Runtime_error.reason) result
(** Owning shard of a class ([Unknown_class] if unmapped).  Under
    {!by_hash} partitioning class membership alone does not decide the
    shard; use {!owner_ident}. *)

val owner_ident : map -> Ident.t -> (int, Runtime_error.reason) result

val split : map -> Step.t -> ((int * Step.t) list, Runtime_error.reason) result
(** Decompose a step into per-shard sub-steps, shards in first-
    occurrence order, per-shard event order preserved.  A step with no
    events routes to shard 0. *)

(** {1 The two-phase coordinator} *)

(** One shard as the coordinator sees it: either a local community
    ({!local_participant}) or a proxy speaking the NDJSON protocol to a
    shard server ([Router] in [lib/server]).  [pt_commit] must succeed;
    a remote participant that cannot deliver a commit must fail stop
    (the router respawns it and replays the shipped WAL). *)
type participant = {
  pt_step : Step.t -> Engine.step_result;  (** single-shard fast path *)
  pt_prepare : Step.t -> (Engine.outcome, Runtime_error.reason) result;
  pt_commit : unit -> unit;
  pt_abort : unit -> unit;
}

val local_participant : Community.t -> participant
(** In-process participant over {!Engine.prepare} /
    {!Engine.commit_prepared} / {!Engine.rollback_prepared}. *)

val coordinate :
  map -> participant array -> Step.t -> Engine.step_result
(** Route one step: a single-owner step goes straight to its shard's
    [pt_step]; a cross-shard step is prepared on every owner and only
    then committed everywhere, any preparation failure aborting all
    prepared participants (each shard rolled back bit-identically to
    its pre-transaction state).  The merged outcome lists per-shard
    micro-steps in shard order.  An owner outside the participant
    array fails with [Unknown_shard]. *)
