(** Durable write-ahead log: framed {!Effect_log} records plus periodic
    {!Persist}-format snapshots, with crash recovery.

    Layout of a WAL directory:
    - [snapshot.trs] — [troll-snapshot 1|<digest>|<seq>|<version>]
      header line + a {!Persist.save} dump (always written atomically);
    - [wal.log] — [troll-wal 1|<digest>] header line + records framed
      [r|<seq>|<version>|<bytes>|<crc32>\n<payload>\n].

    A torn final record (crash mid-append) is detected structurally and
    dropped cleanly on recovery; a CRC mismatch on a complete frame
    fails recovery.  See [docs/PERSISTENCE.md]. *)

type t

(** [`Never]: records are flushed to the OS page cache only (survive
    process death, not power loss); the host may group-fsync via
    {!sync}.  [`Batch]: fsync after every commit batch. *)
type fsync_policy = [ `Never | `Batch ]

(** What {!recover} (or a recovering {!attach}) found. *)
type recovery = {
  r_snapshot_seq : int;  (** sequence number the snapshot was taken at *)
  r_replayed : int;  (** WAL records applied on top of it *)
  r_last_seq : int;  (** sequence number of the recovered state *)
  r_torn_dropped : bool;  (** an incomplete final record was discarded *)
}

val attach :
  dir:string ->
  spec_digest:string ->
  ?fsync:fsync_policy ->
  ?snapshot_every:int ->
  ?truncate_history:bool ->
  ?on_batch:(int -> unit) ->
  Community.t ->
  (t * recovery option, string) result
(** Open (creating or resuming) the WAL in [dir] and install the
    community's [commit_hook], so every owning {!Txn.commit} appends its
    effect delta as one record.  Existing WAL state is recovered into
    the community first; attach always ends with a fresh snapshot and a
    rotated log.  [spec_digest] identifies the specification (use
    [Digest.to_hex (Digest.string source)]); [snapshot_every = n > 0]
    auto-compacts after [n] records; [truncate_history] (default true)
    drops recorded per-object histories at each snapshot;  [on_batch]
    is called with the sequence number after each durable append (test
    and crash-injection hook).  At most one WAL per community. *)

val detach : t -> unit
(** Remove the hook, flush + fsync, close.  Idempotent. *)

val snapshot : t -> unit
(** Compact now: write [snapshot.trs] at the current sequence number and
    rotate the log.  Call after any mutation that bypasses the journal
    (e.g. {!Persist.load}). *)

val sync : t -> unit
(** Group-boundary fsync: no-op when nothing was appended since the last
    sync. *)

val append : t -> Effect_log.eff list -> unit
(** Append one commit batch.  Normally reached through the commit hook;
    exposed for tests.  Empty effect lists are not logged. *)

val recover :
  dir:string -> spec_digest:string -> Community.t -> (recovery, string) result
(** Restore the committed state from [dir] into a community freshly
    compiled from the same specification: load the snapshot, replay the
    WAL tail, verify digest, sequence contiguity and version-stamp
    monotony.  Read-only — never writes to [dir]. *)

val exists : string -> bool
(** Does the directory hold WAL state (snapshot or log)? *)

val dir : t -> string
val last_seq : t -> int

val depth : t -> int
(** Records in the log since the last snapshot. *)

val set_on_batch : t -> (int -> unit) option -> unit

val set_shipper : t -> (int -> string -> unit) option -> unit
(** Install (or clear) the record-shipping hook: called with
    [(seq, payload)] for every record as it is appended — before the
    batch fsync callback.  The society server streams these to the
    shard router, which mirrors them for WAL catch-up of a restarted
    shard; {!Effect_log.decode}/{!Effect_log.apply} replay a shipped
    payload on the receiving side. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3) of a string; exposed for tests. *)

(** {1 Statistics} (process-wide, reset with {!reset_stats}) *)

type stats = {
  batches : int;  (** records appended *)
  effects : int;  (** effects across all appended records *)
  bytes : int;  (** payload bytes appended *)
  fsyncs : int;
  fsync_total_us : int;
  fsync_max_us : int;
  snapshots : int;  (** compactions performed *)
  replayed : int;  (** records applied during recoveries *)
  torn_dropped : int;  (** torn tail records dropped by recoveries *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
