(** Compilation of checked AST specifications into runnable communities:
    type resolution, components and incorporations as surrogate-typed
    attributes, derivation-rule attachment, and translation of
    permissions and temporal constraints into monitored formulas. *)

type error = { message : string; loc : Loc.t }

exception E of error

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val vtype_of_ast : Community.t -> Ast.type_expr -> Vtype.t option
(** Resolve a surface type against a compiled community's classes and
    enumerations (for tooling). *)

val spec :
  ?config:Community.config ->
  Ast.spec ->
  (Community.t * Ast.iface_decl list, error) result
(** Compile a specification.  Interface declarations are returned
    separately (realised by [troll_iface]); module declarations are
    flattened (link through {!Society} for visibility checking). *)

val instantiate_singles :
  ?only:(string -> bool) -> Community.t -> (unit, Runtime_error.reason) result
(** Create every single object that has a parameterless birth event.
    [only] restricts instantiation to matching class names — the shard
    layer uses it so each shard cell holds exactly the single objects it
    owns. *)

val load :
  ?config:Community.config ->
  string ->
  (Community.t * Ast.iface_decl list, string) result
(** One call: parse → compile → instantiate singles.  (No static
    checking — use [Troll.load] for the full pipeline.) *)
