(** The unified step request: every way of asking the engine to change
    the community, as one value.

    The four firing shapes ([fire]/[fire_sync]/[fire_seq]/[run_txn]) and
    the birth/death conveniences are constructors of a single type, so a
    step can be built by local code, decoded off a wire protocol frame
    ({!Protocol} in [lib/server]) or replayed from a log, and executed
    by the one entry point {!Engine.step}. *)

type t =
  | Fire of Event.t
      (** one event, closed under synchronous event calling *)
  | Sync of Event.t list
      (** several events in one synchronous step (event sharing) *)
  | Seq of Event.t list
      (** a sequence of events as one atomic transaction *)
  | Txn of Event.t list list
      (** general form: a queue of micro-steps, one transaction *)
  | Create of {
      cls : string;
      key : Value.t;
      event : string option;  (** default: the unique birth event *)
      args : Value.t list;
    }
  | Destroy of {
      id : Ident.t;
      event : string option;  (** default: the unique death event *)
      args : Value.t list;
    }

val micro_steps : t -> Event.t list list option
(** The explicit micro-step queue of the firing shapes; [None] for
    [Create]/[Destroy] (their event is resolved against the schema at
    execution time). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
