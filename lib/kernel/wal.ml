(** Durable write-ahead log over {!Effect_log} records.

    A WAL directory holds two files:

    - [snapshot.trs] — one header line
      [troll-snapshot 1|<spec digest>|<seq>|<version>] followed by a
      {!Persist.save} dump: the full committed state as of sequence
      number [<seq>].  Always written atomically
      ({!Persist.write_file_atomic}).
    - [wal.log] — one header line [troll-wal 1|<spec digest>], then the
      framed effect records of the commits after the snapshot.

    Each record is framed as

    {v r|<seq>|<version>|<payload bytes>|<crc32 hex>\n<payload>\n v}

    with the CRC-32 (IEEE) taken over the payload.  A record is only
    valid once its trailing newline is on disk, so a torn final write
    (crash mid-append) is detected structurally and dropped cleanly,
    while a checksum mismatch on a *complete* frame means corruption and
    fails recovery.

    {!attach} installs the community's [commit_hook]: every owning
    {!Txn.commit} with surviving journal entries appends exactly its
    effect delta as one record (a commit batch).  Fsync policy is
    [`Never] (buffered through the OS page cache: survives process
    death, not power loss) or [`Batch] (fsync after every record); with
    [`Never] a host (the server) may call {!sync} at its own group
    boundaries.  Compaction ({!snapshot}) rewrites [snapshot.trs] at the
    current sequence number and rotates [wal.log]; recovery skips
    records at or below the snapshot's sequence number, so a crash
    between the two steps is harmless.

    Recovery ({!recover}) = load snapshot, replay the WAL tail, verify
    the spec digest, sequence contiguity and version-stamp monotony.
    The final in-flight transaction of a crashed [`Never]-policy process
    may be lost (redo-at-commit semantics); committed-and-synced state
    never is. *)

let snapshot_file = "snapshot.trs"
let log_file = "wal.log"
let snapshot_header = "troll-snapshot 1"
let log_header = "troll-wal 1"

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3), table-driven                                    *)
(* ------------------------------------------------------------------ *)

(* Slicing-by-8: eight 256-entry tables flattened into one array,
   [tables.(k*256 + i)] advancing a byte seen [k] positions before the
   end of an 8-byte block.  Byte-at-a-time CRC is latency-bound (a
   ~3-cycle loop-carried dependency per byte); consuming 8 bytes per
   iteration turns the chain into 8 independent lookups and keeps the
   commit path's checksum under 1 ns/byte. *)
let crc_tables =
  lazy
    (let t = Array.make (8 * 256) 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
       done;
       t.(n) <- !c
     done;
     for k = 1 to 7 do
       for n = 0 to 255 do
         let p = t.(((k - 1) * 256) + n) in
         t.((k * 256) + n) <- t.(p land 0xff) lxor (p lsr 8)
       done
     done;
     t)

let crc32 (s : string) : int =
  let t = Lazy.force crc_tables in
  let n = String.length s in
  let c = ref 0xffffffff in
  let i = ref 0 in
  let byte k = Char.code (String.unsafe_get s (!i + k)) in
  while !i + 8 <= n do
    let x =
      !c lxor (byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24))
    in
    c :=
      Array.unsafe_get t ((7 * 256) + (x land 0xff))
      lxor Array.unsafe_get t ((6 * 256) + ((x lsr 8) land 0xff))
      lxor Array.unsafe_get t ((5 * 256) + ((x lsr 16) land 0xff))
      lxor Array.unsafe_get t ((4 * 256) + ((x lsr 24) land 0xff))
      lxor Array.unsafe_get t ((3 * 256) + byte 4)
      lxor Array.unsafe_get t ((2 * 256) + byte 5)
      lxor Array.unsafe_get t (256 + byte 6)
      lxor Array.unsafe_get t (byte 7);
    i := !i + 8
  done;
  while !i < n do
    c := Array.unsafe_get t ((!c lxor byte 0) land 0xff) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Statistics (process-wide, like Txn's)                                *)
(* ------------------------------------------------------------------ *)

type stats = {
  batches : int;  (** records appended *)
  effects : int;  (** effects across all appended records *)
  bytes : int;  (** payload bytes appended *)
  fsyncs : int;
  fsync_total_us : int;
  fsync_max_us : int;
  snapshots : int;  (** compactions performed *)
  replayed : int;  (** records applied during recoveries *)
  torn_dropped : int;  (** torn tail records dropped by recoveries *)
}

let n_batches = ref 0
and n_effects = ref 0
and n_bytes = ref 0
and n_fsyncs = ref 0
and n_fsync_total_us = ref 0
and n_fsync_max_us = ref 0
and n_snapshots = ref 0
and n_replayed = ref 0
and n_torn_dropped = ref 0

let stats () =
  {
    batches = !n_batches;
    effects = !n_effects;
    bytes = !n_bytes;
    fsyncs = !n_fsyncs;
    fsync_total_us = !n_fsync_total_us;
    fsync_max_us = !n_fsync_max_us;
    snapshots = !n_snapshots;
    replayed = !n_replayed;
    torn_dropped = !n_torn_dropped;
  }

let reset_stats () =
  n_batches := 0;
  n_effects := 0;
  n_bytes := 0;
  n_fsyncs := 0;
  n_fsync_total_us := 0;
  n_fsync_max_us := 0;
  n_snapshots := 0;
  n_replayed := 0;
  n_torn_dropped := 0

(* ------------------------------------------------------------------ *)
(* Handle                                                              *)
(* ------------------------------------------------------------------ *)

type fsync_policy = [ `Never | `Batch ]

type t = {
  dir : string;
  digest : string;  (** spec identity stamped into both files *)
  community : Community.t;
  fsync : fsync_policy;
  snapshot_every : int;  (** auto-compact after this many records; 0 = off *)
  truncate_history : bool;
  mutable on_batch : (int -> unit) option;
  mutable shipper : (int -> string -> unit) option;
      (** record shipping: called with (seq, payload) for every appended
          record — the replication / shard-catchup feed *)
  mutable oc : out_channel;  (** append handle on [wal.log] *)
  mutable seq : int;  (** sequence number of the last record written *)
  mutable depth : int;  (** records in [wal.log] past the snapshot *)
  mutable dirty : bool;  (** unsynced appends outstanding *)
  mutable closed : bool;
  scratch : Buffer.t;  (** reused per-commit payload buffer *)
  frame : Buffer.t;  (** reused frame buffer: header + payload *)
}

let dir t = t.dir
let last_seq t = t.seq
let depth t = t.depth

let ( / ) = Filename.concat

(* --- low-level log I/O ---------------------------------------------- *)

let open_log_append path =
  open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path

let sync t =
  if t.dirty then begin
    flush t.oc;
    let t0 = Unix.gettimeofday () in
    Unix.fsync (Unix.descr_of_out_channel t.oc);
    let us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    incr n_fsyncs;
    n_fsync_total_us := !n_fsync_total_us + us;
    if us > !n_fsync_max_us then n_fsync_max_us := us;
    t.dirty <- false
  end

(** Start a fresh (rotated) log file atomically and reopen the append
    handle on it. *)
let rotate_log t =
  flush t.oc;
  close_out t.oc;
  Persist.write_file_atomic (t.dir / log_file)
    (Printf.sprintf "%s|%s\n" log_header t.digest);
  t.oc <- open_log_append (t.dir / log_file)

(* --- snapshots ------------------------------------------------------ *)

(** Compact: persist the full current state as of [t.seq], then rotate
    the log.  Recovery ignores records with seq <= the snapshot's, so a
    crash after the snapshot rename but before the rotation only leaves
    stale (skipped) records behind. *)
let snapshot t =
  if t.closed then invalid_arg "Wal.snapshot: closed";
  let header =
    Printf.sprintf "%s|%s|%d|%d\n" snapshot_header t.digest t.seq
      t.community.Community.version
  in
  Persist.write_file_atomic (t.dir / snapshot_file)
    (header ^ Persist.save t.community);
  rotate_log t;
  if t.fsync = `Batch then begin
    t.dirty <- true;
    sync t
  end;
  t.depth <- 0;
  incr n_snapshots;
  if t.truncate_history then
    (* temporal history before the snapshot can never be replayed or
       rolled back past again: drop it to bound memory on long runs *)
    Community.iter_objects t.community (fun o -> o.Obj_state.history <- [])

(* --- append (the commit hook) --------------------------------------- *)

let hex_digits = "0123456789abcdef"

let add_hex8 buf n =
  for i = 7 downto 0 do
    Buffer.add_char buf (String.unsafe_get hex_digits ((n lsr (i * 4)) land 0xf))
  done

(** Frame and write one already-encoded payload.  The whole frame is
    assembled in a reused buffer and hits the channel in a single
    [output] — [Printf]'s format interpretation, per-append
    allocation, and the dozen per-piece channel writes (each takes the
    runtime's channel lock) were all measurable on the commit path
    (E16). *)
let append_payload t ~effects (payload : string) =
  t.seq <- t.seq + 1;
  let f = t.frame in
  Buffer.clear f;
  Buffer.add_string f "r|";
  Value_codec.add_int f t.seq;
  Buffer.add_char f '|';
  Value_codec.add_int f t.community.Community.version;
  Buffer.add_char f '|';
  Value_codec.add_int f (String.length payload);
  Buffer.add_char f '|';
  add_hex8 f (crc32 payload);
  Buffer.add_char f '\n';
  Buffer.add_string f payload;
  Buffer.add_char f '\n';
  Buffer.output_buffer t.oc f;
  t.dirty <- true;
  t.depth <- t.depth + 1;
  incr n_batches;
  n_effects := !n_effects + effects;
  n_bytes := !n_bytes + String.length payload;
  (* [`Never] leaves the record in the channel buffer — no syscall on
     the commit path at all; {!sync} (the server's group fsync) and
     {!detach} flush it.  A crash can lose the buffered tail, which is
     exactly the durability [`Never] doesn't promise; a flush cut
     mid-record is dropped at recovery as a torn record. *)
  (match t.fsync with `Batch -> sync t | `Never -> ());
  (match t.shipper with Some f -> f t.seq payload | None -> ());
  (match t.on_batch with Some f -> f t.seq | None -> ());
  if t.snapshot_every > 0 && t.depth >= t.snapshot_every then snapshot t

let append t (effs : Effect_log.eff list) =
  if (not t.closed) && effs <> [] then
    append_payload t ~effects:(List.length effs) (Effect_log.encode effs)

(** The commit hook's fast path: diff + serialise in one fused pass
    into the reused scratch buffer. *)
let append_delta t (j : Community.journal) =
  if not t.closed then begin
    Buffer.clear t.scratch;
    let effects = Effect_log.encode_delta t.community j t.scratch in
    if effects > 0 then
      append_payload t ~effects (Buffer.contents t.scratch)
  end

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

type recovery = {
  r_snapshot_seq : int;  (** sequence number the snapshot was taken at *)
  r_replayed : int;  (** WAL records applied on top of it *)
  r_last_seq : int;  (** sequence number of the recovered state *)
  r_torn_dropped : bool;  (** an incomplete final record was discarded *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let exists dir =
  Sys.file_exists (dir / snapshot_file) || Sys.file_exists (dir / log_file)

(** Split [contents] (after the header line) into frames, stopping
    cleanly at a torn tail.  Returns the frames in order and whether a
    torn tail was dropped. *)
let parse_frames (contents : string) (start : int) :
    ((int * int * string) list * bool, string) result =
  let len = String.length contents in
  let frames = ref [] in
  let pos = ref start in
  let torn = ref false in
  let err = ref None in
  (try
     while !pos < len && !err = None do
       match String.index_from_opt contents !pos '\n' with
       | None ->
           (* header line never completed: torn append *)
           torn := true;
           pos := len
       | Some nl -> (
           let header = String.sub contents !pos (nl - !pos) in
           match String.split_on_char '|' header with
           | [ "r"; seq; version; nbytes; crc ] -> (
               let seq = int_of_string seq
               and version = int_of_string version
               and nbytes = int_of_string nbytes in
               let body_start = nl + 1 in
               if body_start + nbytes + 1 > len then begin
                 (* payload (or its trailing newline) missing: torn *)
                 torn := true;
                 pos := len
               end
               else
                 let payload = String.sub contents body_start nbytes in
                 if contents.[body_start + nbytes] <> '\n' then
                   err := Some (Printf.sprintf "record %d: bad framing" seq)
                 else if
                   not
                     (String.equal
                        (Printf.sprintf "%08x" (crc32 payload))
                        crc)
                 then
                   err :=
                     Some (Printf.sprintf "record %d: CRC mismatch" seq)
                 else begin
                   frames := (seq, version, payload) :: !frames;
                   pos := body_start + nbytes + 1
                 end)
           | _ ->
               (* a complete, malformed header line is corruption, not a
                  torn write (torn writes have no newline) *)
               err := Some (Printf.sprintf "malformed record header %S" header))
     done
   with Failure _ -> err := Some "malformed record header");
  match !err with
  | Some m -> Error m
  | None -> Ok (List.rev !frames, !torn)

(** Restore the committed state from [dir] into [c]: load the snapshot,
    replay the WAL tail, verify the spec digest, sequence contiguity and
    version-stamp monotony.  [c] must be freshly compiled from the same
    specification.  Read-only: never writes to [dir]. *)
let recover ~dir ~spec_digest (c : Community.t) : (recovery, string) result =
  let ( let* ) = Result.bind in
  if not (exists dir) then Error (Printf.sprintf "no WAL state in %s" dir)
  else
    let* snap_seq, snap_version =
      if not (Sys.file_exists (dir / snapshot_file)) then
        (* crash during initial attach, before the first snapshot landed:
           the freshly compiled community is the implicit snapshot 0 *)
        Ok (0, -1)
      else
        let contents = read_file (dir / snapshot_file) in
        match String.index_opt contents '\n' with
        | None -> Error "snapshot: truncated header"
        | Some nl -> (
            let header = String.sub contents 0 nl in
            match String.split_on_char '|' header with
            | [ h; digest; seq; version ] when String.equal h snapshot_header
              ->
                if not (String.equal digest spec_digest) then
                  Error "snapshot was written by a different specification"
                else
                  let* () =
                    Persist.load c
                      (String.sub contents (nl + 1)
                         (String.length contents - nl - 1))
                  in
                  Ok (int_of_string seq, int_of_string version)
            | _ -> Error (Printf.sprintf "snapshot: bad header %S" header))
    in
    let* frames, torn =
      if not (Sys.file_exists (dir / log_file)) then Ok ([], false)
      else
        let contents = read_file (dir / log_file) in
        match String.index_opt contents '\n' with
        | None ->
            (* header never completed — rotation crashed mid-write; the
               snapshot alone is the recovered state *)
            n_torn_dropped := !n_torn_dropped + 1;
            Ok ([], true)
        | Some nl -> (
            match String.split_on_char '|' (String.sub contents 0 nl) with
            | [ h; digest ] when String.equal h log_header ->
                if not (String.equal digest spec_digest) then
                  Error "WAL was written by a different specification"
                else parse_frames contents (nl + 1)
            | _ -> Error "WAL: bad header")
    in
    if torn then incr n_torn_dropped;
    (* replay the tail: skip records already folded into the snapshot
       (stale pre-rotation log after a crash between snapshot and
       rotation), verify contiguity and version monotony beyond it *)
    let rec replay prev_seq prev_version applied = function
      | [] -> Ok applied
      | (seq, version, payload) :: rest ->
          if seq <= snap_seq then replay prev_seq prev_version applied rest
          else if prev_seq >= 0 && seq <> prev_seq + 1 then
            Error
              (Printf.sprintf "sequence gap: record %d follows %d" seq
                 prev_seq)
          else if version <= prev_version then
            Error
              (Printf.sprintf
                 "record %d: version stamp %d not past %d — mixed logs?" seq
                 version prev_version)
          else
            let* effs = Effect_log.decode payload in
            let* () =
              match Effect_log.apply c effs with
              | Ok () -> Ok ()
              | Error m -> Error (Printf.sprintf "record %d: %s" seq m)
            in
            incr n_replayed;
            replay seq version (applied + 1) rest
    in
    let first_seq = if snap_seq > 0 then snap_seq else -1 in
    let* applied = replay first_seq snap_version 0 frames in
    let last_seq =
      match List.rev frames with
      | (seq, _, _) :: _ when seq > snap_seq -> seq
      | _ -> snap_seq
    in
    Community.bump_version c;
    Ok
      {
        r_snapshot_seq = snap_seq;
        r_replayed = applied;
        r_last_seq = last_seq;
        r_torn_dropped = torn;
      }

(* ------------------------------------------------------------------ *)
(* Attach / detach                                                     *)
(* ------------------------------------------------------------------ *)

let detach t =
  if not t.closed then begin
    (match t.community.Community.commit_hook with
    | Some _ -> t.community.Community.commit_hook <- None
    | None -> ());
    sync t;
    close_out_noerr t.oc;
    t.closed <- true
  end

(** Open (or resume) the WAL in [dir] for [c] and install the commit
    hook.  If [dir] already holds WAL state, the committed state is
    first recovered into [c]; either way attach ends with a fresh
    snapshot of the current state and a rotated log, so the directory is
    always consistent when the call returns.  At most one WAL per
    community. *)
let attach ~dir ~spec_digest ?(fsync = `Never) ?(snapshot_every = 0)
    ?(truncate_history = true) ?on_batch (c : Community.t) :
    (t * recovery option, string) result =
  if c.Community.commit_hook <> None then
    Error "community already has a WAL attached"
  else begin
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let recovered =
      if exists dir then
        match recover ~dir ~spec_digest c with
        | Ok r -> Ok (Some r)
        | Error m -> Error m
      else Ok None
    in
    match recovered with
    | Error m -> Error m
    | Ok recovered ->
        let t =
          {
            dir;
            digest = spec_digest;
            community = c;
            fsync;
            snapshot_every;
            truncate_history;
            on_batch;
            shipper = None;
            (* opened on the existing log only so [snapshot] below has a
               handle to rotate; nothing is appended before the rotation,
               and the snapshot lands (atomically) before the old tail is
               discarded — a crash anywhere in between loses nothing *)
            oc = open_log_append (dir / log_file);
            seq =
              (match recovered with Some r -> r.r_last_seq | None -> 0);
            depth = 0;
            dirty = false;
            closed = false;
            scratch = Buffer.create 4096;
            frame = Buffer.create 4096;
          }
        in
        snapshot t;
        c.Community.commit_hook <- Some (fun j -> append_delta t j);
        Ok (t, recovered)
  end

let set_on_batch t f = t.on_batch <- f
let set_shipper t f = t.shipper <- f
