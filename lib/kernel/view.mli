(** Frozen read-only projection of a community, for parallel probes.

    Taken at a quiescent point (no open journal), a view is immutable
    and shareable across domains.  Workers {!thaw} private mutable
    communities from it and run ordinary [Txn.probe]s there; the owning
    domain keeps mutating the source community freely, and {!valid}
    detects staleness in O(1) from the schema generation and the
    source's instance-state version. *)

type t

val freeze : Community.t -> t
(** Capture the community.  O(society): one {!Obj_state.snapshot} per
    object plus the (persistent) extensions map and rule list.  Also
    pre-warms the staged dispatch caches so no thawed copy builds them
    concurrently.  Raises [Invalid_argument] when a transaction is
    open. *)

val valid : t -> bool
(** The source community still looks exactly as it did at freeze time:
    no schema change, no committed transaction, no direct mutation, no
    open journal.  Rollbacks never invalidate. *)

val source : t -> Community.t
val n_objects : t -> int
val version : t -> int

val thaw : t -> Community.t
(** A fresh private community materialized from the view: objects are
    rebuilt from copied snapshots (never aliasing the view), schema
    tables and staged caches are shared read-only.  Safe to call
    concurrently from several domains on the same view. *)

val thaw_cached : t -> Community.t
(** {!thaw} memoized per domain (small LRU keyed by view identity), so
    a pool worker probing the same view repeatedly pays materialization
    once.  The returned community is domain-private but shared between
    calls: probes roll back, so reuse is sound. *)

val note_invalidated : unit -> unit
(** Record that a holder discarded a stale view (statistics only). *)

val state_digest : Community.t -> string
(** Canonical digest (MD5 hex) of the community's dynamic state — the
    {!Persist.save} image hashed, so two communities digest equal
    exactly when their instance states are bit-identical.  Quiescent
    digests (no open journal) are memoized per domain against the same
    (schema generation, version) stamp pair {!valid} uses; communities
    mid-probe are always re-hashed.  The refinement checker keys its
    visited-pair memo table and certificate nodes on these digests. *)

(** {1 Statistics} *)

val stats_rows : unit -> (string * int) list
val reset_stats : unit -> unit
