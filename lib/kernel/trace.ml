(** Life-cycle inspection: the recorded trace of an object as data and
    as text.

    "Objects are processes": an object's meaning is its life cycle.
    When a community is created with [record_history = true], every
    step an object participates in is recorded; this module presents
    those traces oldest-first, with the events of each step and the
    attribute state after it — the operational counterpart of the
    paper's observable processes, and the raw material for the naive
    permission checker and liveness auditing. *)

type entry = {
  step : int;  (** 0-based position in the life cycle *)
  events : Event.t list;  (** the synchronous step's events at this object *)
  attrs : (string * Value.t) list;  (** observable state after the step *)
}

(** The recorded life cycle, oldest step first.  Empty when history
    recording is off or the object has not lived yet. *)
let of_object (o : Obj_state.t) : entry list =
  List.rev o.Obj_state.history
  |> List.mapi (fun i (h : Obj_state.history_entry) ->
         {
           step = i;
           events = h.Obj_state.h_events;
           attrs = Obj_state.Smap.bindings h.Obj_state.h_attrs;
         })

let length (o : Obj_state.t) = List.length o.Obj_state.history

(** The subsequence of steps in which an event with the given name
    occurred. *)
let occurrences (o : Obj_state.t) (event_name : string) : entry list =
  List.filter
    (fun e ->
      List.exists
        (fun (ev : Event.t) -> String.equal ev.Event.name event_name)
        e.events)
    (of_object o)

let pp_entry ppf e =
  Format.fprintf ppf "@[<v 2>step %d: %s" e.step
    (String.concat ", " (List.map Event.to_string e.events));
  List.iter
    (fun (n, v) -> Format.fprintf ppf "@,%s = %a" n Value.pp v)
    e.attrs;
  Format.fprintf ppf "@]"

let pp ppf (o : Obj_state.t) =
  Format.fprintf ppf "@[<v>life cycle of %a (%d step(s)):@,%a@]" Ident.pp
    o.Obj_state.id (length o)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (of_object o)

let to_string o = Format.asprintf "%a" pp o

(* ------------------------------------------------------------------ *)
(* Transaction statistics                                              *)
(* ------------------------------------------------------------------ *)

let txn_stats = Txn.stats
let reset_txn_stats = Txn.reset_stats

(** The counters as labelled rows, for tabular front ends. *)
let txn_stats_rows () =
  let s = Txn.stats () in
  [
    ("transactions begun", s.Txn.begun);
    ("transactions committed", s.Txn.committed);
    ("transactions rolled back", s.Txn.rolled_back);
    ("savepoints", s.Txn.savepoints);
    ("savepoint rollbacks", s.Txn.savepoint_rollbacks);
    ("probes", s.Txn.probes);
    ("journal entries", s.Txn.journal_entries);
    ("bytes snapshotted", s.Txn.bytes_snapshotted);
  ]

let pp_txn_stats ppf () = Txn.pp_stats ppf (Txn.stats ())
