(** Life-cycle inspection: the recorded trace of an object as data and
    as text.

    "Objects are processes": an object's meaning is its life cycle.
    When a community is created with [record_history = true], every
    step an object participates in is recorded; this module presents
    those traces oldest-first, with the events of each step and the
    attribute state after it — the operational counterpart of the
    paper's observable processes, and the raw material for the naive
    permission checker and liveness auditing. *)

type entry = {
  step : int;  (** 0-based position in the life cycle *)
  events : Event.t list;  (** the synchronous step's events at this object *)
  attrs : (string * Value.t) list;  (** observable state after the step *)
}

(** The recorded life cycle, oldest step first.  Empty when history
    recording is off or the object has not lived yet. *)
let of_object (o : Obj_state.t) : entry list =
  List.rev o.Obj_state.history
  |> List.mapi (fun i (h : Obj_state.history_entry) ->
         {
           step = i;
           events = h.Obj_state.h_events;
           attrs =
             Obj_state.attrs_bindings o.Obj_state.template
               h.Obj_state.h_attrs;
         })

let length (o : Obj_state.t) = List.length o.Obj_state.history

(** The subsequence of steps in which an event with the given name
    occurred. *)
let occurrences (o : Obj_state.t) (event_name : string) : entry list =
  List.filter
    (fun e ->
      List.exists
        (fun (ev : Event.t) -> String.equal ev.Event.name event_name)
        e.events)
    (of_object o)

let pp_entry ppf e =
  Format.fprintf ppf "@[<v 2>step %d: %s" e.step
    (String.concat ", " (List.map Event.to_string e.events));
  List.iter
    (fun (n, v) -> Format.fprintf ppf "@,%s = %a" n Value.pp v)
    e.attrs;
  Format.fprintf ppf "@]"

let pp ppf (o : Obj_state.t) =
  Format.fprintf ppf "@[<v>life cycle of %a (%d step(s)):@,%a@]" Ident.pp
    o.Obj_state.id (length o)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (of_object o)

let to_string o = Format.asprintf "%a" pp o

(* ------------------------------------------------------------------ *)
(* Transaction statistics                                              *)
(* ------------------------------------------------------------------ *)

let txn_stats = Txn.stats
let reset_txn_stats = Txn.reset_stats

(** The counters as labelled rows, for tabular front ends. *)
let txn_stats_rows () =
  let s = Txn.stats () in
  [
    ("transactions begun", s.Txn.begun);
    ("transactions committed", s.Txn.committed);
    ("transactions rolled back", s.Txn.rolled_back);
    ("savepoints", s.Txn.savepoints);
    ("savepoint rollbacks", s.Txn.savepoint_rollbacks);
    ("probes", s.Txn.probes);
    ("journal entries", s.Txn.journal_entries);
    ("bytes snapshotted", s.Txn.bytes_snapshotted);
  ]

let pp_txn_stats ppf () = Txn.pp_stats ppf (Txn.stats ())

(* ------------------------------------------------------------------ *)
(* Compiled-dispatch statistics                                        *)
(* ------------------------------------------------------------------ *)

let dispatch_stats = Dispatch.stats
let reset_dispatch_stats = Dispatch.reset_stats
let dispatch_stats_rows = Dispatch.stats_rows
let pp_dispatch_stats = Dispatch.pp_stats

(* ------------------------------------------------------------------ *)
(* Parallel-probe statistics                                           *)
(* ------------------------------------------------------------------ *)

(** View freezes/thaws, pool dispatch and speculative-commit counters
    as labelled rows — the "probe statistics" block of [trollc run
    --stats] and the server's stats frame. *)
let probe_stats_rows () =
  View.stats_rows () @ Pool.stats_rows () @ Engine.spec_stats_rows ()

let reset_probe_stats () =
  View.reset_stats ();
  Pool.reset_stats ();
  Engine.reset_spec_stats ()

(* ------------------------------------------------------------------ *)
(* WAL statistics                                                      *)
(* ------------------------------------------------------------------ *)

let wal_stats = Wal.stats
let reset_wal_stats = Wal.reset_stats

(** Durability counters as labelled rows — the "wal statistics" block of
    [trollc run --stats] and the server's stats frame. *)
let wal_stats_rows () =
  let s = Wal.stats () in
  [
    ("wal batches", s.Wal.batches);
    ("wal effects", s.Wal.effects);
    ("wal bytes", s.Wal.bytes);
    ("wal fsyncs", s.Wal.fsyncs);
    ("wal fsync total us", s.Wal.fsync_total_us);
    ("wal fsync max us", s.Wal.fsync_max_us);
    ("wal snapshots", s.Wal.snapshots);
    ("wal records replayed", s.Wal.replayed);
    ("wal torn records dropped", s.Wal.torn_dropped);
  ]

(* ------------------------------------------------------------------ *)
(* Latency histograms                                                  *)
(* ------------------------------------------------------------------ *)

module Latency = struct
  (* log2 buckets over microseconds: bucket [i] counts samples with
     us <= 2^i, the last bucket is the overflow.  31 buckets cover
     1 us .. ~17 min, enough for any request latency. *)
  let bucket_count = 32

  type t = {
    buckets : int array;  (** [bucket_count] counts, last = overflow *)
    mutable count : int;
    mutable sum_us : float;
    mutable max_us : float;
  }

  let create () =
    {
      buckets = Array.make bucket_count 0;
      count = 0;
      sum_us = 0.;
      max_us = 0.;
    }

  let bucket_of_us us =
    let rec find i bound =
      if i >= bucket_count - 1 then bucket_count - 1
      else if us <= bound then i
      else find (i + 1) (bound *. 2.)
    in
    find 0 1.

  let record t seconds =
    let us = seconds *. 1e6 in
    let us = if us < 0. then 0. else us in
    t.buckets.(bucket_of_us us) <- t.buckets.(bucket_of_us us) + 1;
    t.count <- t.count + 1;
    t.sum_us <- t.sum_us +. us;
    if us > t.max_us then t.max_us <- us

  let count t = t.count
  let mean_us t = if t.count = 0 then 0. else t.sum_us /. float_of_int t.count
  let max_us t = t.max_us

  (** Non-empty buckets as [(upper bound in us, count)]; the overflow
      bucket reports an infinite bound. *)
  let buckets t =
    let rows = ref [] in
    let bound = ref 1. in
    for i = 0 to bucket_count - 1 do
      if t.buckets.(i) > 0 then
        rows :=
          ( (if i = bucket_count - 1 then infinity else !bound),
            t.buckets.(i) )
          :: !rows;
      bound := !bound *. 2.
    done;
    List.rev !rows

  (** Smallest bucket upper bound such that at least [q] (0..1) of the
      samples fall at or below it — an upper estimate of the
      q-quantile. *)
  let quantile_us t q =
    if t.count = 0 then 0.
    else begin
      let target =
        int_of_float (ceil (q *. float_of_int t.count))
        |> max 1 |> min t.count
      in
      let seen = ref 0 and bound = ref 1. and result = ref infinity in
      (try
         for i = 0 to bucket_count - 1 do
           seen := !seen + t.buckets.(i);
           if !seen >= target then begin
             result := (if i = bucket_count - 1 then infinity else !bound);
             raise Exit
           end;
           bound := !bound *. 2.
         done
       with Exit -> ());
      !result
    end
end
