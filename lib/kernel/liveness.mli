(** Liveness requirements: audit goals over recorded life cycles.

    §4 lists "liveness requirements (goals to be achieved by the object
    in an active way)" among TROLL's features.  Safety (permissions,
    constraints) is enforced per step; goals are *audited* after the
    fact against the recorded history (communities with
    [record_history = true]). *)

type verdict = {
  goal : Ast.formula;
  achieved : bool;  (** held at some point of the recorded history *)
  maintained : bool;  (** held at every point *)
  holds_now : bool;
  states_checked : int;
}

val audit : Community.t -> Obj_state.t -> Ast.formula -> verdict
(** Audit one non-temporal goal; with no recorded history only the
    current state is examined. *)

val audit_string :
  Community.t -> Obj_state.t -> string -> (verdict, string) result
(** Parse and audit a goal in concrete syntax; temporal operators are
    rejected (goals are state formulas). *)

val audit_class :
  Community.t -> cls:string -> Ast.formula -> (Ident.t * verdict) list
(** Audit a goal for every living member of a class. *)

val achieves :
  Community.t -> Obj_state.t -> Event.t -> Ast.formula -> bool option
(** Would firing the event leave the object in a state satisfying the
    goal?  Probed via {!Txn.probe} (always rolled back); [None] when the
    event is rejected. *)

val achieves_batch_par :
  ?pool:Pool.t -> View.t -> Ident.t -> Event.t array -> Ast.formula ->
  bool option array
(** {!achieves} for a batch of candidate events, answered from a frozen
    view with each pool participant firing against its own
    domain-private thaw.  Answers follow [evs] order; [None] for
    rejected events and for objects not alive in the view.  [pool]
    defaults to {!Pool.default}. *)

val pp_verdict : Format.formatter -> verdict -> unit
