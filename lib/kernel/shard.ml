(** Sharded object societies — partition maps and the two-phase commit
    coordinator.  See the interface and [docs/SHARDING.md]. *)

open Runtime_error

(* ------------------------------------------------------------------ *)
(* Cross-class references                                              *)
(* ------------------------------------------------------------------ *)

(** Walk every expression, guard and event term of a template, emitting
    each object reference and each class quantified over.  [groups]
    turns the emissions into graph edges; [by_hash] re-walks them with a
    stricter verdict. *)

type visitor = {
  on_ref : Ast.obj_ref -> unit;
  on_class : string -> unit;  (** quantified class (PG_quant) *)
}

let rec expr_refs v (e : Ast.expr) =
  match e.Ast.e with
  | Ast.E_lit _ | Ast.E_var _ | Ast.E_self -> ()
  | Ast.E_attr (r, _, args) ->
      obj_ref_refs v r;
      List.iter (expr_refs v) args
  | Ast.E_field (e, _) -> expr_refs v e
  | Ast.E_apply (_, args) | Ast.E_setlit args | Ast.E_listlit args ->
      List.iter (expr_refs v) args
  | Ast.E_binop (_, a, b) ->
      expr_refs v a;
      expr_refs v b
  | Ast.E_unop (_, a) -> expr_refs v a
  | Ast.E_tuple fields -> List.iter (fun (_, e) -> expr_refs v e) fields
  | Ast.E_if (a, b, c) ->
      expr_refs v a;
      expr_refs v b;
      expr_refs v c
  | Ast.E_query q -> query_refs v q

and query_refs v = function
  | Ast.Q_expr e -> expr_refs v e
  | Ast.Q_select (e, q) ->
      expr_refs v e;
      query_refs v q
  | Ast.Q_project (_, q)
  | Ast.Q_the q
  | Ast.Q_count q
  | Ast.Q_sum (_, q)
  | Ast.Q_min (_, q)
  | Ast.Q_max (_, q) ->
      query_refs v q

and obj_ref_refs v r =
  v.on_ref r;
  match r with
  | Ast.OR_self | Ast.OR_name _ -> ()
  | Ast.OR_instance (_, e) -> expr_refs v e

let event_term_refs v (t : Ast.event_term) =
  Option.iter (obj_ref_refs v) t.Ast.target;
  List.iter (expr_refs v) t.Ast.ev_args

let rec formula_refs v (f : Ast.formula) =
  match f.Ast.f with
  | Ast.F_expr e -> expr_refs v e
  | Ast.F_not g | Ast.F_sometime g | Ast.F_always g | Ast.F_previous g ->
      formula_refs v g
  | Ast.F_and (a, b)
  | Ast.F_or (a, b)
  | Ast.F_implies (a, b)
  | Ast.F_since (a, b) ->
      formula_refs v a;
      formula_refs v b
  | Ast.F_after t -> event_term_refs v t
  | Ast.F_forall (_, g) | Ast.F_exists (_, g) -> formula_refs v g

let atom_refs v (a : Template.atom) =
  match a.Template.pred with
  | Template.P_state f -> formula_refs v f
  | Template.P_occurs t -> event_term_refs v t

let tformula_refs v f = List.iter (atom_refs v) (Formula.atoms [] f)

let calling_rule_refs v (r : Ast.calling_rule) =
  Option.iter (formula_refs v) r.Ast.i_guard;
  event_term_refs v r.Ast.i_caller;
  List.iter (event_term_refs v) r.Ast.i_called

(** Every reference site of one template (rules only — the inheritance
    links [t_view_of]/[t_spec_of] are the caller's concern). *)
let template_refs v (tpl : Template.t) =
  List.iter
    (fun (a : Template.attr_def) ->
      match a.Template.at_derived with
      | None -> ()
      | Some d -> expr_refs v d.Ast.d_rhs)
    tpl.Template.t_attrs;
  List.iter
    (fun (ed : Template.event_def) ->
      Option.iter (event_term_refs v) ed.Template.ed_born_by)
    tpl.Template.t_events;
  List.iter
    (fun (r : Ast.valuation_rule) ->
      Option.iter (formula_refs v) r.Ast.v_guard;
      event_term_refs v r.Ast.v_event;
      List.iter (expr_refs v) r.Ast.v_attr_args;
      expr_refs v r.Ast.v_rhs)
    tpl.Template.t_valuations;
  List.iter (calling_rule_refs v) tpl.Template.t_callings;
  List.iter
    (fun (p : Template.permission) ->
      List.iter (expr_refs v) p.Template.pm_args;
      match p.Template.pm_guard with
      | Template.PG_state f -> formula_refs v f
      | Template.PG_closed (f, _) -> tformula_refs v f
      | Template.PG_indexed { ix_body; _ } -> tformula_refs v ix_body
      | Template.PG_quant { q_class; q_body; _ } ->
          v.on_class q_class;
          tformula_refs v q_body)
    tpl.Template.t_perms;
  List.iter
    (function
      | Template.K_static f -> formula_refs v f
      | Template.K_temporal (f, _, _) -> tformula_refs v f)
    tpl.Template.t_constraints

(** The class an object reference points at, if it names one.
    [OR_name] is only a class edge when a template of that name exists
    (single objects); component and variable names pass through. *)
let ref_class (c : Community.t) = function
  | Ast.OR_self -> None
  | Ast.OR_name n -> if Community.is_class c n then Some n else None
  | Ast.OR_instance (cls, _) -> Some cls

(* ------------------------------------------------------------------ *)
(* Class groups (union-find)                                           *)
(* ------------------------------------------------------------------ *)

let class_names (c : Community.t) =
  List.sort compare
    (Hashtbl.fold (fun n _ acc -> n :: acc) c.Community.templates [])

(** Union-find over class names; [link] ignores unknown names. *)
let components (c : Community.t) ~edges_of =
  let parent = Hashtbl.create 16 in
  let names = class_names c in
  List.iter (fun n -> Hashtbl.replace parent n n) names;
  let rec find n =
    let p = Hashtbl.find parent n in
    if String.equal p n then n
    else begin
      let root = find p in
      Hashtbl.replace parent n root;
      root
    end
  in
  let link a b =
    if Hashtbl.mem parent a && Hashtbl.mem parent b then begin
      let ra = find a and rb = find b in
      if not (String.equal ra rb) then
        if ra < rb then Hashtbl.replace parent rb ra
        else Hashtbl.replace parent ra rb
    end
  in
  List.iter (fun n -> edges_of n (fun other -> link n other)) names;
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let root = find n in
      Hashtbl.replace buckets root
        (n :: Option.value ~default:[] (Hashtbl.find_opt buckets root)))
    (List.rev names);
  Hashtbl.fold (fun _ members acc -> members :: acc) buckets []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

(** Inheritance and phase-birth edges only — the "one identity, many
    aspects" closure used by {!by_hash}. *)
let aspect_edges (c : Community.t) name emit =
  match Community.find_template c name with
  | None -> ()
  | Some tpl ->
      Option.iter emit tpl.Template.t_view_of;
      Option.iter emit tpl.Template.t_spec_of;
      List.iter
        (fun (ed : Template.event_def) ->
          match ed.Template.ed_born_by with
          | Some { Ast.target = Some r; _ } ->
              Option.iter emit (ref_class c r)
          | _ -> ())
        tpl.Template.t_events

let interaction_edges (c : Community.t) name emit =
  aspect_edges c name emit;
  match Community.find_template c name with
  | None -> ()
  | Some tpl ->
      let v =
        {
          on_ref = (fun r -> Option.iter emit (ref_class c r));
          on_class = emit;
        }
      in
      template_refs v tpl

let groups (c : Community.t) =
  (* global interaction rules connect every class they mention *)
  let global_classes =
    List.concat_map
      (fun (g : Community.global_rule) ->
        let acc = ref [] in
        let v =
          {
            on_ref =
              (fun r -> Option.iter (fun n -> acc := n :: !acc) (ref_class c r));
            on_class = (fun n -> acc := n :: !acc);
          }
        in
        calling_rule_refs v g.Community.gr_rule;
        !acc)
      c.Community.globals
    |> List.sort_uniq compare
  in
  components c ~edges_of:(fun name emit ->
      interaction_edges c name emit;
      (* classes tied together by a global rule: link each to the
         first *)
      match global_classes with
      | first :: _ when List.mem name global_classes -> emit first
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Partition maps                                                      *)
(* ------------------------------------------------------------------ *)

type map = { n : int; mode : [ `Classes of (string, int) Hashtbl.t | `Hash ] }

let shards m = m.n

let of_classes (c : Community.t) ~shards assign :
    (map, string) result =
  if shards <= 0 then Error "shard count must be positive"
  else begin
    let tbl = Hashtbl.create 16 in
    let err = ref None in
    let set e = if !err = None then err := Some e in
    List.iter
      (fun (cls, k) ->
        if not (Community.is_class c cls) then
          set (Printf.sprintf "unknown class %s" cls)
        else if k < 0 || k >= shards then
          set (Printf.sprintf "class %s assigned to shard %d of %d" cls k shards)
        else if Hashtbl.mem tbl cls then
          set (Printf.sprintf "class %s assigned twice" cls)
        else Hashtbl.replace tbl cls k)
      assign;
    List.iter
      (fun cls ->
        if not (Hashtbl.mem tbl cls) then
          set (Printf.sprintf "class %s is not assigned to any shard" cls))
      (class_names c);
    List.iter
      (fun group ->
        match group with
        | [] | [ _ ] -> ()
        | first :: rest ->
            let k0 = Hashtbl.find_opt tbl first in
            List.iter
              (fun cls ->
                if Hashtbl.find_opt tbl cls <> k0 then
                  set
                    (Printf.sprintf
                       "classes %s and %s interact and must share a shard"
                       first cls))
              rest)
      (groups c);
    match !err with
    | Some e -> Error e
    | None -> Ok { n = shards; mode = `Classes tbl }
  end

let auto (c : Community.t) ~shards =
  let shards = max 1 shards in
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i group ->
      List.iter (fun cls -> Hashtbl.replace tbl cls (i mod shards)) group)
    (groups c);
  { n = shards; mode = `Classes tbl }

let by_hash (c : Community.t) ~shards : (map, string) result =
  if shards <= 0 then Error "shard count must be positive"
  else if c.Community.globals <> [] then
    Error "identity-hash partitioning: global interaction rules cross identities"
  else begin
    (* aspects of one identity share the key, so they hash to one
       shard; any other reference may cross identities and is unsafe *)
    let families = components c ~edges_of:(aspect_edges c) in
    let family_of = Hashtbl.create 16 in
    List.iteri
      (fun i group -> List.iter (fun cls -> Hashtbl.replace family_of cls i) group)
      families;
    let err = ref None in
    let check_tpl (tpl : Template.t) =
      let family = Hashtbl.find_opt family_of tpl.Template.t_name in
      let safe = function
        | Ast.OR_self -> true
        | Ast.OR_name n ->
            (not (Community.is_class c n))
            || Hashtbl.find_opt family_of n = family
        | Ast.OR_instance (cls, { Ast.e = Ast.E_self; _ }) ->
            (* the own identity's aspect: same key, same shard *)
            Hashtbl.find_opt family_of cls = family
        | Ast.OR_instance (cls, _) ->
            ignore cls;
            false
      in
      let v =
        {
          on_ref =
            (fun r ->
              if (not (safe r)) && !err = None then
                err :=
                  Some
                    (Printf.sprintf
                       "identity-hash partitioning: class %s references \
                        other identities"
                       tpl.Template.t_name));
          on_class =
            (fun _ ->
              if !err = None then
                err :=
                  Some
                    (Printf.sprintf
                       "identity-hash partitioning: class %s quantifies \
                        over a class" tpl.Template.t_name));
        }
      in
      template_refs v tpl
    in
    List.iter
      (fun n -> Option.iter check_tpl (Community.find_template c n))
      (class_names c);
    match !err with
    | Some e -> Error e
    | None -> Ok { n = shards; mode = `Hash }
  end

(* --- owners --------------------------------------------------------- *)

let key_hash key =
  (* stable across processes of one build: OCaml's polymorphic hash of
     the canonical key text *)
  Hashtbl.hash (Value_codec.encode key)

let owner_class m cls =
  match m.mode with
  | `Classes tbl -> (
      match Hashtbl.find_opt tbl cls with
      | Some k -> Ok k
      | None -> Error (Unknown_class cls))
  | `Hash ->
      Error
        (Unsupported
           "identity-hash partitioning decides shards per object, not per \
            class")

let owner_ident m (id : Ident.t) =
  match m.mode with
  | `Classes _ -> owner_class m id.Ident.cls
  | `Hash -> Ok (key_hash id.Ident.key mod m.n)

(* --- wire form ------------------------------------------------------ *)

let to_string m =
  match m.mode with
  | `Hash -> Printf.sprintf "hash:%d" m.n
  | `Classes tbl ->
      let entries =
        Hashtbl.fold (fun cls k acc -> (cls, k) :: acc) tbl []
        |> List.sort compare
        |> List.map (fun (cls, k) -> Printf.sprintf "%s=%d" cls k)
      in
      Printf.sprintf "classes:%d:%s" m.n (String.concat "," entries)

let of_string (c : Community.t) s : (map, string) result =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "malformed partition map %S" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "hash" -> (
          match int_of_string_opt rest with
          | Some n -> by_hash c ~shards:n
          | None -> Error (Printf.sprintf "malformed shard count %S" rest))
      | "classes" -> (
          match String.index_opt rest ':' with
          | None -> Error (Printf.sprintf "malformed partition map %S" s)
          | Some j -> (
              let n = String.sub rest 0 j in
              let body =
                String.sub rest (j + 1) (String.length rest - j - 1)
              in
              match int_of_string_opt n with
              | None -> Error (Printf.sprintf "malformed shard count %S" n)
              | Some n -> (
                  let entries =
                    if body = "" then []
                    else String.split_on_char ',' body
                  in
                  let rec parse acc = function
                    | [] -> Ok (List.rev acc)
                    | e :: rest -> (
                        match String.index_opt e '=' with
                        | None ->
                            Error (Printf.sprintf "malformed assignment %S" e)
                        | Some k -> (
                            let cls = String.sub e 0 k in
                            let id =
                              String.sub e (k + 1) (String.length e - k - 1)
                            in
                            match int_of_string_opt id with
                            | None ->
                                Error
                                  (Printf.sprintf "malformed shard id %S" id)
                            | Some id -> parse ((cls, id) :: acc) rest))
                  in
                  match parse [] entries with
                  | Error e -> Error e
                  | Ok assign -> of_classes c ~shards:n assign)))
      | other -> Error (Printf.sprintf "unknown partition kind %S" other))

(* ------------------------------------------------------------------ *)
(* Step decomposition                                                  *)
(* ------------------------------------------------------------------ *)

(** Bucket events by owning shard, shards in first-occurrence order,
    per-shard event order preserved. *)
let partition_events m evs =
  let rec go acc = function
    | [] ->
        Ok (List.rev_map (fun (k, revd) -> (k, List.rev revd)) acc |> List.rev)
    | (ev : Event.t) :: rest -> (
        match owner_ident m ev.Event.target with
        | Error _ as e -> e
        | Ok k ->
            let rec put = function
              | [] -> [ (k, [ ev ]) ]
              | (k', l) :: more when k' = k -> (k', ev :: l) :: more
              | b :: more -> b :: put more
            in
            go (put acc) rest)
  in
  (* [put] appends new buckets at the tail, so [acc] is already in
     first-occurrence order; [go] only restores each bucket's event
     order *)
  go [] evs

let split m (s : Step.t) :
    ((int * Step.t) list, Runtime_error.reason) result =
  let one owner = Result.map (fun k -> [ (k, s) ]) owner in
  match s with
  | Step.Fire ev -> one (owner_ident m ev.Event.target)
  | Step.Create { cls; key; _ } -> one (owner_ident m (Ident.make cls key))
  | Step.Destroy { id; _ } -> one (owner_ident m id)
  | Step.Sync evs -> (
      match partition_events m evs with
      | Error _ as e -> e
      | Ok [] -> Ok [ (0, s) ]
      | Ok [ (k, _) ] -> Ok [ (k, s) ]
      | Ok buckets ->
          Ok (List.map (fun (k, evs) -> (k, Step.Sync evs)) buckets))
  | Step.Seq evs -> (
      match partition_events m evs with
      | Error _ as e -> e
      | Ok [] -> Ok [ (0, s) ]
      | Ok [ (k, _) ] -> Ok [ (k, s) ]
      | Ok buckets -> Ok (List.map (fun (k, evs) -> (k, Step.Seq evs)) buckets))
  | Step.Txn micro -> (
      (* owners in first occurrence order across the whole queue *)
      let rec owners acc = function
        | [] -> Ok (List.rev acc)
        | (ev : Event.t) :: rest -> (
            match owner_ident m ev.Event.target with
            | Error _ as e -> e
            | Ok k -> owners (if List.mem k acc then acc else k :: acc) rest)
      in
      match owners [] (List.concat micro) with
      | Error _ as e -> e
      | Ok [] -> Ok [ (0, s) ]
      | Ok [ k ] -> Ok [ (k, s) ]
      | Ok ks ->
          let for_shard k =
            List.filter_map
              (fun sync ->
                match
                  List.filter
                    (fun (ev : Event.t) ->
                      owner_ident m ev.Event.target = Ok k)
                    sync
                with
                | [] -> None
                | mine -> Some mine)
              micro
          in
          Ok (List.map (fun k -> (k, Step.Txn (for_shard k))) ks))

(* ------------------------------------------------------------------ *)
(* The two-phase coordinator                                           *)
(* ------------------------------------------------------------------ *)

type participant = {
  pt_step : Step.t -> Engine.step_result;
  pt_prepare : Step.t -> (Engine.outcome, Runtime_error.reason) result;
  pt_commit : unit -> unit;
  pt_abort : unit -> unit;
}

let local_participant (c : Community.t) : participant =
  let pending = ref None in
  {
    pt_step = (fun s -> Engine.step c s);
    pt_prepare =
      (fun s ->
        match Engine.prepare c s with
        | Ok p ->
            pending := Some p;
            Ok (Engine.outcome_of_prepared p)
        | Error _ as e -> e);
    pt_commit =
      (fun () ->
        match !pending with
        | Some p ->
            pending := None;
            Engine.commit_prepared p
        | None -> ());
    pt_abort =
      (fun () ->
        match !pending with
        | Some p ->
            pending := None;
            Engine.rollback_prepared p
        | None -> ());
  }

let coordinate m (parts : participant array) (s : Step.t) :
    Engine.step_result =
  match split m s with
  | Error r -> Error r
  | Ok subs -> (
      match
        List.find_opt (fun (k, _) -> k < 0 || k >= Array.length parts) subs
      with
      | Some (k, _) -> Error (Unknown_shard k)
      | None -> (
          match subs with
          | [ (k, sub) ] -> parts.(k).pt_step sub
          | subs -> (
              let abort_all prepared =
                List.iter (fun (k, _) -> parts.(k).pt_abort ()) prepared
              in
              (* phase 1: prepare every owner in shard order.
                 Preparation continues past a failure: when several
                 independent sub-steps reject, the error of the
                 earliest engine phase must surface (the single engine
                 validates life cycles of the whole synchronous set
                 before checking any permission), so the coordinator
                 needs every shard's verdict before choosing. *)
              let rec prep prepared errors = function
                | [] -> (List.rev prepared, List.rev errors)
                | (k, sub) :: rest -> (
                    match parts.(k).pt_prepare sub with
                    | Ok outcome -> prep ((k, outcome) :: prepared) errors rest
                    | Error r -> prep prepared (r :: errors) rest
                    | exception Runtime_error.Error r ->
                        prep prepared (r :: errors) rest
                    | exception e ->
                        abort_all (List.rev prepared);
                        raise e)
              in
              match prep [] [] subs with
              | prepared, (e0 :: es) ->
                  abort_all prepared;
                  (* earliest phase wins, ties in shard order *)
                  Error
                    (List.fold_left
                       (fun acc r ->
                         if Runtime_error.phase_rank r
                            < Runtime_error.phase_rank acc
                         then r
                         else acc)
                       e0 es)
              | prepared, [] ->
                  (* phase 2: all prepared — commit everywhere *)
                  List.iter (fun (k, _) -> parts.(k).pt_commit ()) prepared;
                  let outs = List.map snd prepared in
                  Ok
                    {
                      Engine.committed =
                        List.concat_map
                          (fun (o : Engine.outcome) -> o.Engine.committed)
                          outs;
                      created =
                        List.concat_map
                          (fun (o : Engine.outcome) -> o.Engine.created)
                          outs;
                      destroyed =
                        List.concat_map
                          (fun (o : Engine.outcome) -> o.Engine.destroyed)
                          outs;
                    })))
