(** The execution engine (animator).

    An engine step realises the paper's event semantics:

    - an attempted base event is closed under *event calling* (local
      [interaction]/[calling] rules, [global interactions], phase births)
      into a synchronous event set — called events occur simultaneously
      with their callers;
    - *transaction calling* [e >> (e1; e2)] appends follow-up micro-steps
      that execute in order; the whole chain is atomic;
    - every event of the set is checked against its object's
      *permissions* (temporal guards, monitored incrementally);
    - *valuation* rules are evaluated on the pre-state and applied
      simultaneously; two events of one step writing different values to
      one attribute is an inconsistency and rejects the step;
    - *constraints* are checked on the post-state;
    - on any violation the whole transaction rolls back and the
      community is unchanged. *)

open Runtime_error

type outcome = {
  committed : Event.t list list;  (** micro-steps, in execution order *)
  created : Ident.t list;
  destroyed : Ident.t list;
}

type step_result = (outcome, reason) result

(* Transactions, snapshots and rollback live in {!Txn}: every mutation
   below runs inside a [Txn.t] scope and is journaled (object snapshots
   explicitly via [Txn.touch], community-level mutations automatically
   by the [Community] mutators). *)

(* ------------------------------------------------------------------ *)
(* Event targeting                                                     *)
(* ------------------------------------------------------------------ *)

(** Retarget an event at the base aspect that actually declares it
    (inheritance of events: firing [MANAGER(p).hire] delegates upward if
    only [PERSON] declares [hire]). *)
let rec locate_event (c : Community.t) (ev : Event.t) : Event.t =
  let tpl = Community.template_exn c ev.Event.target.Ident.cls in
  match Template.find_event tpl ev.Event.name with
  | Some _ -> ev
  | None -> (
      match (tpl.Template.t_view_of, tpl.Template.t_spec_of) with
      | Some base, _ | None, Some base ->
          locate_event c
            { ev with Event.target = Ident.as_class base ev.Event.target }
      | None, None ->
          fail (Unknown_event (tpl.Template.t_name, ev.Event.name)))

(** Set the identification attributes of a newly created object from its
    key value. *)
let set_id_attrs (o : Obj_state.t) =
  match o.Obj_state.template.Template.t_id_fields with
  | [] -> ()
  | [ (name, _) ] -> Obj_state.set_attr o name o.Obj_state.id.Ident.key
  | fields -> (
      match o.Obj_state.id.Ident.key with
      | Value.Tuple kvs ->
          List.iter
            (fun (name, _) ->
              match List.assoc_opt name kvs with
              | Some v -> Obj_state.set_attr o name v
              | None -> ())
            fields
      | _ -> ())

(** Object state for evaluation purposes; for an event that will create
    the object, a detached fresh state is used (with identification
    attributes already populated, so calling rules of birth events can
    refer to [self.<id-field>]). *)
let eval_object (c : Community.t) (id : Ident.t) : Obj_state.t =
  match Community.find_object c id with
  | Some o -> o
  | None ->
      let o = Obj_state.create id (Community.template_exn c id.Ident.cls) in
      set_id_attrs o;
      o

(* ------------------------------------------------------------------ *)
(* Calling closure                                                     *)
(* ------------------------------------------------------------------ *)

let resolve_called (c : Community.t) ~env ~self (term : Ast.event_term) :
    Event.t =
  let target =
    match term.Ast.target with
    | None -> (
        match self with
        | Some (o : Obj_state.t) -> o.Obj_state.id
        | None -> fail (Eval_error "called event without target"))
    | Some r -> Eval.resolve_ref c ~env ~self r
  in
  let args = List.map (Eval.expr c ~env ~self) term.Ast.ev_args in
  Event.make target term.Ast.ev_name args

(** Match a global rule's caller pattern, e.g.
    [DEPT(D).new_manager(P) >> …], against an occurred event. *)
let match_global_caller (c : Community.t) ~(vars : string list)
    (pat : Ast.event_term) (ev : Event.t) : Env.t option =
  if not (String.equal pat.Ast.ev_name ev.Event.name) then None
  else
    let env = Env.empty in
    let target_env =
      match pat.Ast.target with
      | Some (Ast.OR_instance (cls, idpat)) ->
          if not (String.equal cls ev.Event.target.Ident.cls) then None
          else (
            match idpat.Ast.e with
            | Ast.E_var v when List.mem v vars ->
                Some (Env.bind v (Ident.to_value ev.Event.target) env)
            | _ -> (
                match Eval.expr c ~env ~self:None idpat with
                | pv
                  when Ident.equal
                         (Eval.key_of_value cls pv)
                         ev.Event.target ->
                    Some env
                | _ -> None
                | exception Error _ -> None))
      | Some (Ast.OR_name cls) ->
          (* class-wide pattern: any instance of the class *)
          if String.equal cls ev.Event.target.Ident.cls then Some env else None
      | Some Ast.OR_self | None -> None
    in
    match target_env with
    | None -> None
    | Some env ->
        Eval.match_args c ~env ~self:None ~vars pat.Ast.ev_args
          ev.Event.args

(** Resolve a staged called-event term: interpreted target resolution,
    compiled argument evaluation. *)
let resolve_called_c (c : Community.t) ~env ~self (cd : Dispatch.ccalled) :
    Event.t =
  let target =
    match cd.Dispatch.cd_term.Ast.target with
    | None -> (
        match self with
        | Some (o : Obj_state.t) -> o.Obj_state.id
        | None -> fail (Eval_error "called event without target"))
    | Some r -> Eval.resolve_ref c ~env ~self r
  in
  let args = List.map (fun ca -> ca c env self) cd.Dispatch.cd_args in
  Event.make target cd.Dispatch.cd_term.Ast.ev_name args

(** Staged fast-path resolution of a singleton micro-step: a single
    event with no calling rules indexed under its name, no global rules
    and no phase births closes over itself.  Returns the located event,
    the target object when it already exists, and its staged index
    entry, so callers skip the work-list machinery — and {!exec_txn} can
    hand the resolution straight to execution. *)
let expand_sync_singleton (c : Community.t) (init : Event.t list) :
    (Event.t * Obj_state.t option * Dispatch.centry) option =
  if Dispatch.enabled c then
    match init with
    | [ ev0 ] when c.Community.config.Community.max_sync_set >= 1 -> (
        let ev = locate_event c ev0 in
        let existing = Community.find_object c ev.Event.target in
        let tpl =
          match existing with
          | Some o -> o.Obj_state.template
          | None -> Community.template_exn c ev.Event.target.Ident.cls
        in
        let ti = Dispatch.template_index c tpl in
        let entry = Dispatch.entry ti ev.Event.name in
        match entry.Dispatch.ce_callings with
        | _ :: _ -> None
        | [] ->
            let ci = Dispatch.community_index c in
            if
              Dispatch.globals_for ci ev.Event.name = []
              && Dispatch.phases_for ci ~cls:ev.Event.target.Ident.cls
                   ~event:ev.Event.name
                 = []
            then begin
              Dispatch.note_hit ();
              Some (ev, existing, entry)
            end
            else None)
    | _ -> None
  else None

(** Compute the synchronous closure of an initial event set.  Returns
    the closed set plus follow-up micro-steps contributed by transaction
    calling (each called sequence element becomes its own micro-step). *)
let expand_sync (c : Community.t) (init : Event.t list) :
    Event.t list * Event.t list list =
  match expand_sync_singleton c init with
  | Some (ev, _, _) -> ([ ev ], [])
  | None ->
  let sync : Event.t list ref = ref [] in
  let followups : Event.t list list ref = ref [] in
  let pending = Queue.create () in
  List.iter (fun e -> Queue.add e pending) init;
  while not (Queue.is_empty pending) do
    let ev = locate_event c (Queue.pop pending) in
    if not (List.exists (Event.equal ev) !sync) then begin
      sync := !sync @ [ ev ];
      if List.length !sync > c.Community.config.Community.max_sync_set then
        fail
          (Unsupported
             (Printf.sprintf
                "event-calling closure exceeds %d events (calling cycle?)"
                c.Community.config.Community.max_sync_set));
      let o = eval_object c ev.Event.target in
      let tpl = o.Obj_state.template in
      if Dispatch.enabled c then begin
        (* staged path: only rules indexed under this event name *)
        Dispatch.note_hit ();
        let ti = Dispatch.template_index c tpl in
        let ci = Dispatch.community_index c in
        let entry = Dispatch.entry ti ev.Event.name in
        List.iter
          (fun (cc : Dispatch.ccalling) ->
            match
              Eval.match_compiled_event c o ~env:Env.empty
                cc.Dispatch.cc_pat ev
            with
            | None -> ()
            | Some env ->
                let guard_ok =
                  match cc.Dispatch.cc_guard with
                  | None -> true
                  | Some g -> g c env (Some o)
                in
                if guard_ok then begin
                  match cc.Dispatch.cc_called with
                  | [ one ] ->
                      Queue.add (resolve_called_c c ~env ~self:(Some o) one)
                        pending
                  | seq ->
                      followups :=
                        !followups
                        @ List.map
                            (fun t ->
                              [ resolve_called_c c ~env ~self:(Some o) t ])
                            seq
                end)
          entry.Dispatch.ce_callings;
        List.iter
          (fun (cg : Dispatch.cglobal) ->
            let gvars = List.map fst cg.Dispatch.cg_rule.Community.gr_vars in
            let rule = cg.Dispatch.cg_rule.Community.gr_rule in
            match match_global_caller c ~vars:gvars rule.Ast.i_caller ev with
            | None -> ()
            | Some env ->
                let guard_ok =
                  match cg.Dispatch.cg_guard with
                  | None -> true
                  | Some g -> g c env None
                in
                if guard_ok then begin
                  match cg.Dispatch.cg_called with
                  | [ one ] ->
                      Queue.add (resolve_called_c c ~env ~self:None one)
                        pending
                  | seq ->
                      followups :=
                        !followups
                        @ List.map
                            (fun t ->
                              [ resolve_called_c c ~env ~self:None t ])
                            seq
                end)
          (Dispatch.globals_for ci ev.Event.name);
        List.iter
          (fun ((ptpl : Template.t), (ed : Template.event_def)) ->
            let phase_id =
              Ident.make ptpl.Template.t_name ev.Event.target.Ident.key
            in
            match Community.living c phase_id with
            | Some _ -> ()
            | None ->
                Queue.add (Event.make phase_id ed.Template.ed_name []) pending)
          (Dispatch.phases_for ci ~cls:ev.Event.target.Ident.cls
             ~event:ev.Event.name)
      end
      else begin
        let vars = List.map fst tpl.Template.t_vars in
        (* local calling rules *)
        List.iter
          (fun (r : Ast.calling_rule) ->
            match
              Eval.match_local_event c o ~env:Env.empty ~vars r.Ast.i_caller
                ev
            with
            | None -> ()
            | Some env ->
                let guard_ok =
                  match r.Ast.i_guard with
                  | None -> true
                  | Some g -> Eval.formula_state c ~env ~self:(Some o) g
                in
                if guard_ok then begin
                  match r.Ast.i_called with
                  | [ one ] ->
                      Queue.add (resolve_called c ~env ~self:(Some o) one)
                        pending
                  | seq ->
                      followups :=
                        !followups
                        @ List.map
                            (fun t ->
                              [ resolve_called c ~env ~self:(Some o) t ])
                            seq
                end)
          tpl.Template.t_callings;
        (* global interaction rules *)
        List.iter
          (fun (gr : Community.global_rule) ->
            let gvars = List.map fst gr.Community.gr_vars in
            let rule = gr.Community.gr_rule in
            match match_global_caller c ~vars:gvars rule.Ast.i_caller ev with
            | None -> ()
            | Some env ->
                let guard_ok =
                  match rule.Ast.i_guard with
                  | None -> true
                  | Some g -> Eval.formula_state c ~env ~self:None g
                in
                if guard_ok then begin
                  match rule.Ast.i_called with
                  | [ one ] ->
                      Queue.add (resolve_called c ~env ~self:None one) pending
                  | seq ->
                      followups :=
                        !followups
                        @ List.map
                            (fun t -> [ resolve_called c ~env ~self:None t ])
                            seq
                end)
          c.Community.globals;
        (* phase births: classes whose birth is this base event *)
        List.iter
          (fun ((ptpl : Template.t), (ed : Template.event_def)) ->
            let phase_id =
              Ident.make ptpl.Template.t_name ev.Event.target.Ident.key
            in
            (* re-birth of a phase an object already plays is ignored *)
            match Community.living c phase_id with
            | Some _ -> ()
            | None ->
                Queue.add (Event.make phase_id ed.Template.ed_name []) pending)
          (Community.phases_born_by c ev.Event.target.Ident.cls ev.Event.name)
      end
    end
  done;
  (!sync, !followups)

(* ------------------------------------------------------------------ *)
(* Permission checking                                                 *)
(* ------------------------------------------------------------------ *)

(** Evaluate one monitored atom on object [o]'s current state, given the
    events [occurred] of the step being completed. *)
let atom_eval_interp (c : Community.t) (o : Obj_state.t)
    ~(occurred : Event.t list) ~(binds : (string * Value.t) list)
    (a : Template.atom) : bool =
  let env = Env.of_list (a.Template.binds @ binds) in
  match a.Template.pred with
  | Template.P_state f -> (
      match Eval.formula_state c ~env ~self:(Some o) f with
      | b -> b
      | exception Error (Eval_error _) -> false)
  | Template.P_occurs pat ->
      let vars = List.map fst o.Obj_state.template.Template.t_vars in
      List.exists
        (fun ev -> Eval.match_local_event c o ~env ~vars pat ev <> None)
        occurred

(** Same, through the template's compiled atom table when dispatch
    staging is on.  All monitor advancement (including [virtual_value]
    and {!permission_holds}) funnels through here, so the compiled path
    needs no separate plumbing. *)
let atom_eval (c : Community.t) (o : Obj_state.t) ~(occurred : Event.t list)
    ~(binds : (string * Value.t) list) (a : Template.atom) : bool =
  if not (Dispatch.enabled c) then atom_eval_interp c o ~occurred ~binds a
  else
    let ti = Dispatch.template_index c o.Obj_state.template in
    match Dispatch.atom ti a with
    | Some (Dispatch.CA_state cf) -> (
        let env = Env.of_list (a.Template.binds @ binds) in
        match cf c env (Some o) with
        | b -> b
        | exception Error (Eval_error _) -> false)
    | Some (Dispatch.CA_occurs cp) ->
        (* the environment is only consulted once an event name matches,
           so build it lazily — monitors step on every event and the
           common case is a name mismatch *)
        let env = lazy (Env.of_list (a.Template.binds @ binds)) in
        List.exists
          (fun (ev : Event.t) ->
            String.equal ev.Event.name cp.Eval.cp_name
            && Eval.match_compiled_event c o ~env:(Lazy.force env) cp ev
               <> None)
          occurred
    | None -> atom_eval_interp c o ~occurred ~binds a

(** Monitor value for a guard whose monitor has not been started yet:
    treat the current state as the whole history (no events occurred). *)
let virtual_value (c : Community.t) (o : Obj_state.t) compiled ~binds =
  let s =
    Monitor.step compiled
      ~atom_eval:(atom_eval c o ~occurred:[] ~binds)
      None
  in
  Monitor.value compiled s

let find_indexed key insts =
  List.find_opt (fun (k, _) -> List.compare Value.compare k key = 0) insts

(** Does the guard of permission [idx]/[pm] hold for event [ev] with the
    unification environment [env]? *)
let permission_holds (c : Community.t) (o : Obj_state.t) idx
    (pm : Template.permission) ~env : bool =
  match pm.Template.pm_guard with
  | Template.PG_state f -> (
      match Eval.formula_state c ~env ~self:(Some o) f with
      | b -> b
      | exception Error (Eval_error _) -> false)
  | Template.PG_closed (_, compiled) -> (
      match o.Obj_state.perm_states.(idx) with
      | Obj_state.PS_closed (Some s) -> Monitor.value compiled s
      | Obj_state.PS_closed None -> virtual_value c o compiled ~binds:[]
      | Obj_state.PS_none | Obj_state.PS_indexed _ -> assert false)
  | Template.PG_indexed { ix_vars; ix_compiled; _ } -> (
      let key =
        List.map
          (fun v -> Option.value ~default:Value.Undefined (Env.find v env))
          ix_vars
      in
      let binds = List.combine ix_vars key in
      match o.Obj_state.perm_states.(idx) with
      | Obj_state.PS_indexed insts -> (
          match find_indexed key insts with
          | Some (_, s) -> Monitor.value ix_compiled s
          | None -> virtual_value c o ix_compiled ~binds)
      | Obj_state.PS_none | Obj_state.PS_closed _ -> assert false)
  | Template.PG_quant { q_quant; q_var; q_class; q_compiled; _ } -> (
      match o.Obj_state.perm_states.(idx) with
      | Obj_state.PS_indexed insts ->
          let members = Ident.Set.elements (Community.extension c q_class) in
          let value_for m =
            let key = [ Ident.to_value m ] in
            match find_indexed key insts with
            | Some (_, s) -> Monitor.value q_compiled s
            | None ->
                virtual_value c o q_compiled
                  ~binds:[ (q_var, Ident.to_value m) ]
          in
          (* instances cover members that have left the extension too *)
          let spawned_values =
            List.map (fun (_, s) -> Monitor.value q_compiled s) insts
          in
          let unspawned =
            List.filter
              (fun m ->
                find_indexed [ Ident.to_value m ] insts = None)
              members
          in
          let all = spawned_values @ List.map value_for unspawned in
          (match q_quant with
          | `Forall -> List.for_all (fun b -> b) all
          | `Exists -> List.exists (fun b -> b) all)
      | Obj_state.PS_none | Obj_state.PS_closed _ -> assert false)

(** [ce] is the event's staged entry when dispatch staging is on (the
    caller already holds it), [None] on the interpreted path. *)
let check_permissions (c : Community.t) (o : Obj_state.t) (ev : Event.t)
    (ce : Dispatch.centry option) =
  let tpl = o.Obj_state.template in
  match ce with
  | Some entry ->
    (* staged path: only permissions guarding this event name, with
       compiled argument patterns and state guards *)
    Dispatch.note_hit ();
    List.iter
      (fun (cp : Dispatch.cperm) ->
        match
          Eval.match_compiled_args c ~env:Env.empty ~self:(Some o)
            cp.Dispatch.cp_args cp.Dispatch.cp_nargs ev.Event.args
        with
        | None -> () (* pattern does not cover these arguments *)
        | Some env ->
            let holds =
              match cp.Dispatch.cp_state_guard with
              | Some cf -> (
                  match cf c env (Some o) with
                  | b -> b
                  | exception Error (Eval_error _) -> false)
              | None ->
                  permission_holds c o cp.Dispatch.cp_idx cp.Dispatch.cp_pm
                    ~env
            in
            if not holds then
              fail (Permission_denied (ev, cp.Dispatch.cp_pm.Template.pm_text)))
      entry.Dispatch.ce_perms
  | None ->
    let vars = List.map fst tpl.Template.t_vars in
    List.iteri
      (fun idx (pm : Template.permission) ->
        if String.equal pm.Template.pm_event ev.Event.name then
          match
            Eval.match_args c ~env:Env.empty ~self:(Some o) ~vars
              pm.Template.pm_args ev.Event.args
          with
          | None -> () (* pattern does not cover these arguments *)
          | Some env ->
              if not (permission_holds c o idx pm ~env) then
                fail (Permission_denied (ev, pm.Template.pm_text)))
      tpl.Template.t_perms

(* ------------------------------------------------------------------ *)
(* Monitor advancement                                                 *)
(* ------------------------------------------------------------------ *)

(** All scalar values reachable from a value (itself plus collection
    elements and tuple fields) — candidate spawn keys for parametric
    permission monitors. *)
let rec flatten_value acc (v : Value.t) =
  let acc = v :: acc in
  match v with
  | Value.Set xs | Value.List xs -> List.fold_left flatten_value acc xs
  | Value.Map kvs ->
      List.fold_left
        (fun acc (k, x) -> flatten_value (flatten_value acc k) x)
        acc kvs
  | Value.Tuple fs -> List.fold_left (fun acc (_, x) -> flatten_value acc x) acc fs
  | Value.Bool _ | Value.Int _ | Value.String _ | Value.Date _
  | Value.Money _ | Value.Enum _ | Value.Id _ | Value.Undefined ->
      acc

(** Keys to spawn for an indexed guard: instantiations obtained by
    matching the guard's event patterns (given as matcher closures)
    against the occurred events, plus (for single-parameter guards)
    every value occurring in the step's event arguments. *)
let spawn_keys_with ~(matchers : (Event.t -> Env.t option) list) ~occurred
    ~(ix_vars : string list) : Value.t list list =
  let keys = ref [] in
  let add key =
    if
      (not (List.exists (fun k -> List.compare Value.compare k key = 0) !keys))
      && List.for_all (fun v -> not (Value.is_undefined v)) key
    then keys := key :: !keys
  in
  List.iter
    (fun matcher ->
      List.iter
        (fun ev ->
          match matcher ev with
          | Some env ->
              add
                (List.map
                   (fun v ->
                     Option.value ~default:Value.Undefined (Env.find v env))
                   ix_vars)
          | None -> ())
        occurred)
    matchers;
  (match ix_vars with
  | [ _ ] ->
      List.iter
        (fun (ev : Event.t) ->
          List.iter
            (fun arg ->
              List.iter (fun v -> add [ v ]) (flatten_value [] arg))
            ev.Event.args)
        occurred
  | _ -> ());
  !keys

let spawn_keys (c : Community.t) (o : Obj_state.t) ~occurred
    ~(ix_vars : string list) (body : Template.atom Formula.t) :
    Value.t list list =
  let matchers =
    List.filter_map
      (fun (a : Template.atom) ->
        match a.Template.pred with
        | Template.P_occurs pat ->
            Some
              (fun ev ->
                Eval.match_local_event c o ~env:Env.empty ~vars:ix_vars pat
                  ev)
        | Template.P_state _ -> None)
      (Formula.atoms [] body)
  in
  spawn_keys_with ~matchers ~occurred ~ix_vars

(** Advance all monitors of object [o] after a step in which the events
    [occurred] (targeting [o]) happened and the post-state is current.
    [born] and [written] (attribute slots assigned this step) feed the
    static-constraint skip: a constraint whose footprint is exclusively
    own stored slots, none of which changed, held after the last
    committed step and still does. *)
let step_monitors (c : Community.t) (o : Obj_state.t)
    ~(occurred : Event.t list) ~(born : bool) ~(written : int list) =
  let tpl = o.Obj_state.template in
  let ti =
    if Dispatch.enabled c then Some (Dispatch.template_index c tpl) else None
  in
  (* a monitored formula none of whose occurrence atoms name an occurred
     event, and which has no state atoms, advances with every atom false
     — same truth vector, no evaluation work *)
  let const_false _ = false in
  let fast (cm : Dispatch.cmon) =
    (not cm.Dispatch.cm_has_state)
    && not
         (List.exists
            (fun (ev : Event.t) ->
              Array.exists (String.equal ev.Event.name) cm.Dispatch.cm_names)
            occurred)
  in
  let perm_fast idx =
    match ti with
    | Some ti -> (
        match ti.Dispatch.ti_perm_mons.(idx) with
        | Some cm when fast cm ->
            Dispatch.note_monitor_fast ();
            true
        | _ -> false)
    | None -> false
  in
  (* permissions *)
  List.iteri
    (fun idx (pm : Template.permission) ->
      match (pm.Template.pm_guard, o.Obj_state.perm_states.(idx)) with
      | Template.PG_state _, _ -> ()
      | Template.PG_closed (_, compiled), Obj_state.PS_closed prev -> (
          let pf = perm_fast idx in
          match prev with
          | Some p when pf ->
              let s = Monitor.step_false compiled p in
              if s != p then
                o.Obj_state.perm_states.(idx) <- Obj_state.PS_closed (Some s)
          | _ ->
              let ae =
                if pf then const_false else atom_eval c o ~occurred ~binds:[]
              in
              let s = Monitor.step compiled ~atom_eval:ae prev in
              o.Obj_state.perm_states.(idx) <- Obj_state.PS_closed (Some s))
      | ( Template.PG_indexed { ix_vars; ix_body; ix_compiled },
          Obj_state.PS_indexed insts ) ->
          let pf = perm_fast idx in
          let stepped =
            if pf then begin
              let unchanged = ref true in
              let stepped =
                List.map
                  (fun ((key, s) as inst) ->
                    let s' = Monitor.step_false ix_compiled s in
                    if s' == s then inst
                    else begin
                      unchanged := false;
                      (key, s')
                    end)
                  insts
              in
              if !unchanged then insts else stepped
            end
            else
              List.map
                (fun (key, s) ->
                  ( key,
                    Monitor.step ix_compiled
                      ~atom_eval:
                        (atom_eval c o ~occurred
                           ~binds:(List.combine ix_vars key))
                      (Some s) ))
                insts
          in
          let keys =
            match ti with
            | Some ti -> (
                match Dispatch.spawn_patterns ti idx with
                | Some cps ->
                    let matchers =
                      List.map
                        (fun cp ev ->
                          Eval.match_compiled_event c o ~env:Env.empty cp ev)
                        cps
                    in
                    spawn_keys_with ~matchers ~occurred ~ix_vars
                | None -> spawn_keys c o ~occurred ~ix_vars ix_body)
            | None -> spawn_keys c o ~occurred ~ix_vars ix_body
          in
          let fresh =
            List.filter_map
              (fun key ->
                if find_indexed key stepped <> None then None
                else
                  let ae =
                    if pf then const_false
                    else
                      atom_eval c o ~occurred
                        ~binds:(List.combine ix_vars key)
                  in
                  Some (key, Monitor.step ix_compiled ~atom_eval:ae None))
              keys
          in
          (match fresh with
          | [] ->
              if stepped != insts then
                o.Obj_state.perm_states.(idx) <- Obj_state.PS_indexed stepped
          | _ ->
              o.Obj_state.perm_states.(idx) <-
                Obj_state.PS_indexed (stepped @ fresh))
      | ( Template.PG_quant { q_var; q_class; q_compiled; _ },
          Obj_state.PS_indexed insts ) ->
          let pf = perm_fast idx in
          let key_ae key =
            if pf then const_false
            else
              let binds = match key with [ v ] -> [ (q_var, v) ] | _ -> [] in
              atom_eval c o ~occurred ~binds
          in
          let stepped =
            if pf then begin
              let unchanged = ref true in
              let stepped =
                List.map
                  (fun ((key, s) as inst) ->
                    let s' = Monitor.step_false q_compiled s in
                    if s' == s then inst
                    else begin
                      unchanged := false;
                      (key, s')
                    end)
                  insts
              in
              if !unchanged then insts else stepped
            end
            else
              List.map
                (fun (key, s) ->
                  ( key,
                    Monitor.step q_compiled ~atom_eval:(key_ae key) (Some s) ))
                insts
          in
          let members = Ident.Set.elements (Community.extension c q_class) in
          let fresh =
            List.filter_map
              (fun m ->
                let key = [ Ident.to_value m ] in
                if find_indexed key stepped <> None then None
                else
                  Some
                    (key, Monitor.step q_compiled ~atom_eval:(key_ae key) None))
              members
          in
          (match fresh with
          | [] ->
              if stepped != insts then
                o.Obj_state.perm_states.(idx) <- Obj_state.PS_indexed stepped
          | _ ->
              o.Obj_state.perm_states.(idx) <-
                Obj_state.PS_indexed (stepped @ fresh))
      | _, _ -> assert false)
    tpl.Template.t_perms;
  (* temporal constraints: step and require truth *)
  let ki = ref 0 in
  let si = ref 0 in
  List.iter
    (fun (k : Template.constraint_def) ->
      match k with
      | Template.K_static f -> (
          match ti with
          | None ->
              if not (Eval.formula_state c ~env:Env.empty ~self:(Some o) f)
              then
                fail
                  (Constraint_violated
                     (o.Obj_state.id, Pretty.formula_to_string f))
          | Some ti ->
              let cs = ti.Dispatch.ti_statics.(!si) in
              incr si;
              let untouched =
                cs.Dispatch.cs_local && (not born)
                && not
                     (Array.exists
                        (fun s -> List.mem s written)
                        cs.Dispatch.cs_slots)
              in
              if untouched then Dispatch.note_static_skip ()
              else if not (cs.Dispatch.cs_compiled c Env.empty (Some o)) then
                fail
                  (Constraint_violated (o.Obj_state.id, cs.Dispatch.cs_text)))
      | Template.K_temporal (_, compiled, text) ->
          let prev = o.Obj_state.constr_states.(!ki) in
          let tfast =
            match ti with
            | Some ti when fast ti.Dispatch.ti_temp_mons.(!ki) ->
                Dispatch.note_monitor_fast ();
                true
            | _ -> false
          in
          let s =
            match prev with
            | Some p when tfast ->
                let s = Monitor.step_false compiled p in
                if s != p then o.Obj_state.constr_states.(!ki) <- Some s;
                s
            | _ ->
                let ae =
                  if tfast then const_false
                  else atom_eval c o ~occurred ~binds:[]
                in
                let s = Monitor.step compiled ~atom_eval:ae prev in
                o.Obj_state.constr_states.(!ki) <- Some s;
                s
          in
          incr ki;
          if not (Monitor.value compiled s) then
            fail (Constraint_violated (o.Obj_state.id, text)))
    tpl.Template.t_constraints;
  (* history *)
  if c.Community.config.Community.record_history then
    o.Obj_state.history <-
      { Obj_state.h_events = occurred; h_attrs = Array.copy o.Obj_state.attrs }
      :: o.Obj_state.history;
  o.Obj_state.steps <- o.Obj_state.steps + 1

(* ------------------------------------------------------------------ *)
(* Executing one synchronous step                                      *)
(* ------------------------------------------------------------------ *)

(** Argument arity and types (API-level safety net; checked
    specifications construct well-typed events anyway). *)
let validate_event_args (ev : Event.t) (ed : Template.event_def) =
  if List.length ev.Event.args <> List.length ed.Template.ed_params then
    fail
      (Eval_error
         (Printf.sprintf "%s expects %d argument(s), got %d" ev.Event.name
            (List.length ed.Template.ed_params)
            (List.length ev.Event.args)));
  List.iter2
    (fun v pty ->
      if not (Vtype.subtype (Value.type_of v) pty) then
        fail
          (Eval_error
             (Printf.sprintf "%s: argument %s does not fit parameter type %s"
                ev.Event.name (Value.to_string v) (Vtype.to_string pty))))
    ev.Event.args ed.Template.ed_params

(** Run the staged valuation rules of one event occurrence, feeding each
    matching rule's value into [record]. *)
let staged_vrules (c : Community.t) (o : Obj_state.t) record (ev : Event.t)
    (ce : Dispatch.centry) =
  Dispatch.note_hit ();
  List.iter
    (fun (cv : Dispatch.cvrule) ->
      match
        Eval.match_compiled_event c o ~env:Env.empty cv.Dispatch.cv_pat ev
      with
      | None -> ()
      | Some env ->
          let guard_ok =
            match cv.Dispatch.cv_guard with
            | None -> true
            | Some g -> g c env (Some o)
          in
          if guard_ok then
            let v = cv.Dispatch.cv_rhs c env (Some o) in
            record o cv.Dispatch.cv_attr cv.Dispatch.cv_slot v)
    ce.Dispatch.ce_vrules

let exec_sync (c : Community.t) (txn : Txn.t) (sync : Event.t list) : unit =
  (* group events by target object *)
  let groups : (Ident.t * Event.t list) list =
    List.fold_left
      (fun acc (ev : Event.t) ->
        let id = ev.Event.target in
        match List.assoc_opt id acc with
        | Some evs ->
            (id, evs @ [ ev ]) :: List.remove_assoc id acc
        | None -> (id, [ ev ]) :: acc)
      [] sync
    |> List.rev
  in
  (* phase 1: materialise objects, validate life-cycle stage.  When
     staging is on, the event's index entry is fetched once here and
     threaded through every later phase. *)
  let participants =
    List.map
      (fun (id, evs) ->
        let tpl = Community.template_exn c id.Ident.cls in
        let ti =
          if Dispatch.enabled c then Some (Dispatch.template_index c tpl)
          else None
        in
        let evs =
          List.map
            (fun (ev : Event.t) ->
              match ti with
              | Some ti -> (ev, Some (Dispatch.entry ti ev.Event.name))
              | None -> (ev, None))
            evs
        in
        let event_def (ev : Event.t) = function
          | Some ce -> ce.Dispatch.ce_ed
          | None -> Template.find_event tpl ev.Event.name
        in
        let has_birth =
          List.exists
            (fun (ev, ce) ->
              match event_def ev ce with
              | Some ed -> ed.Template.ed_kind = Ast.Ev_birth
              | None -> false)
            evs
        in
        let o =
          match Community.find_object c id with
          | Some o -> o
          | None ->
              if not has_birth then fail (Unknown_object id)
              else begin
                let o = Obj_state.create id tpl in
                Community.register_object c o;
                Txn.note_created txn id;
                o
              end
        in
        Txn.touch txn o;
        (* closure under inheritance: an aspect needs its base aspect —
           phases (view of) and static specializations alike *)
        (match (tpl.Template.t_view_of, tpl.Template.t_spec_of) with
        | (Some base, _ | None, Some base) when has_birth -> (
            match Community.living c (Ident.make base id.Ident.key) with
            | Some _ -> ()
            | None -> fail (Not_alive (Ident.make base id.Ident.key)))
        | _ -> ());
        List.iter
          (fun ((ev : Event.t), ce) ->
            match event_def ev ce with
            | None -> fail (Unknown_event (tpl.Template.t_name, ev.Event.name))
            | Some ed ->
                validate_event_args ev ed;
                (match ed.Template.ed_kind with
                | Ast.Ev_birth ->
                    if o.Obj_state.alive || o.Obj_state.dead then
                      fail (Already_alive id)
                | Ast.Ev_death | Ast.Ev_normal ->
                    if not o.Obj_state.alive then fail (Not_alive id)))
          evs;
        (o, evs, has_birth))
      groups
  in
  (* phase 2: permissions on pre-states *)
  List.iter
    (fun ((o : Obj_state.t), evs, _) ->
      List.iter (fun (ev, ce) -> check_permissions c o ev ce) evs)
    participants;
  (* phase 3: valuations on pre-states.  Conflicting writes are detected
     in O(1) through a hashtable keyed by (identity, attribute); the
     list preserves a deterministic application order and carries the
     resolved slot for the apply phase.  An object receiving a single
     staged event whose rules write pairwise-distinct slots cannot
     conflict at all, so its writes skip the hashtable. *)
  let write_index : (Ident.t * string, Value.t) Hashtbl.t Lazy.t =
    lazy (Hashtbl.create 16)
  in
  let write_list : (Obj_state.t * string * int * Value.t) list ref = ref [] in
  let record_write (o : Obj_state.t) attr slot v =
    let index = Lazy.force write_index in
    let key = (o.Obj_state.id, attr) in
    match Hashtbl.find_opt index key with
    | Some v' when not (Value.equal v v') ->
        fail (Valuation_conflict (o.Obj_state.id, attr, v', v))
    | Some _ -> ()
    | None ->
        Hashtbl.add index key v;
        write_list := (o, attr, slot, v) :: !write_list
  in
  List.iter
    (fun ((o : Obj_state.t), evs, _) ->
      match evs with
      | [ (ev, Some ce) ] when ce.Dispatch.ce_distinct_slots ->
          staged_vrules c o
            (fun o attr slot v ->
              write_list := (o, attr, slot, v) :: !write_list)
            ev ce
      | _ ->
          let tpl = o.Obj_state.template in
          List.iter
            (fun ((ev : Event.t), ce) ->
              match ce with
              | Some ce -> staged_vrules c o record_write ev ce
              | None ->
                  let vars = List.map fst tpl.Template.t_vars in
                  List.iter
                    (fun (rule : Ast.valuation_rule) ->
                      match
                        Eval.match_local_event c o ~env:Env.empty ~vars
                          rule.Ast.v_event ev
                      with
                      | None -> ()
                      | Some env ->
                          let guard_ok =
                            match rule.Ast.v_guard with
                            | None -> true
                            | Some g ->
                                Eval.formula_state c ~env ~self:(Some o) g
                          in
                          if guard_ok then
                            let v =
                              Eval.expr c ~env ~self:(Some o) rule.Ast.v_rhs
                            in
                            record_write o rule.Ast.v_attr (-1) v)
                    tpl.Template.t_valuations)
            evs)
    participants;
  (* phase 4: apply — births, identification attributes, valuations,
     deaths, extension updates *)
  let event_def_of (o : Obj_state.t) ((ev : Event.t), ce) =
    match ce with
    | Some ce -> ce.Dispatch.ce_ed
    | None -> Template.find_event o.Obj_state.template ev.Event.name
  in
  List.iter
    (fun ((o : Obj_state.t), evs, _) ->
      List.iter
        (fun evce ->
          match event_def_of o evce with
          | Some ed when ed.Template.ed_kind = Ast.Ev_birth ->
              o.Obj_state.alive <- true;
              set_id_attrs o;
              Community.extension_add c o.Obj_state.id
          | _ -> ())
        evs)
    participants;
  List.iter
    (fun ((o : Obj_state.t), attr, slot, v) ->
      if slot >= 0 then Obj_state.set_attr_slot o slot v
      else Obj_state.set_attr o attr v)
    (List.rev !write_list);
  (* a death ends the object's life cycle — and, because all aspects of
     one object share it, the death of a base aspect also ends every
     living phase (view) aspect depending on it, transitively *)
  let rec kill (o : Obj_state.t) =
    if o.Obj_state.alive then begin
      Txn.touch txn o;
      o.Obj_state.alive <- false;
      o.Obj_state.dead <- true;
      Community.extension_remove c o.Obj_state.id;
      Txn.note_destroyed txn o.Obj_state.id;
      Hashtbl.iter
        (fun _ (tpl : Template.t) ->
          match (tpl.Template.t_view_of, tpl.Template.t_spec_of) with
          | (Some base, _ | None, Some base)
            when String.equal base o.Obj_state.id.Ident.cls -> (
              match
                Community.living c
                  (Ident.make tpl.Template.t_name o.Obj_state.id.Ident.key)
              with
              | Some dependent -> kill dependent
              | None -> ())
          | _ -> ())
        c.Community.templates
    end
  in
  List.iter
    (fun ((o : Obj_state.t), evs, _) ->
      List.iter
        (fun evce ->
          match event_def_of o evce with
          | Some ed when ed.Template.ed_kind = Ast.Ev_death -> kill o
          | _ -> ())
        evs)
    participants;
  (* phase 5: post-state constraints and monitor advancement *)
  List.iter
    (fun ((o : Obj_state.t), evs, born) ->
      let written =
        List.filter_map
          (fun ((o' : Obj_state.t), _, slot, _) ->
            if o' == o && slot >= 0 then Some slot else None)
          !write_list
      in
      step_monitors c o ~occurred:(List.map fst evs) ~born ~written)
    participants

(** Specialised execution of one normal (non-birth, non-death) event on
    an existing object, with the staged index entry already resolved by
    {!expand_sync_singleton}: the grouping, object lookup and index
    fetches of {!exec_sync} are skipped, but phase order, failure order
    and observable effects are identical. *)
let exec_sync_resolved (c : Community.t) (txn : Txn.t) (ev : Event.t)
    (o : Obj_state.t) (entry : Dispatch.centry) (ed : Template.event_def) :
    unit =
  Txn.touch txn o;
  (* phase 1: validation *)
  validate_event_args ev ed;
  if not o.Obj_state.alive then fail (Not_alive o.Obj_state.id);
  (* phase 2: permissions on the pre-state *)
  check_permissions c o ev (Some entry);
  (* phase 3: valuations on the pre-state *)
  let write_list : (Obj_state.t * string * int * Value.t) list ref = ref [] in
  (if entry.Dispatch.ce_distinct_slots then
     staged_vrules c o
       (fun o attr slot v -> write_list := (o, attr, slot, v) :: !write_list)
       ev entry
   else begin
     let index = Hashtbl.create 8 in
     staged_vrules c o
       (fun o attr slot v ->
         let key = (o.Obj_state.id, attr) in
         match Hashtbl.find_opt index key with
         | Some v' when not (Value.equal v v') ->
             fail (Valuation_conflict (o.Obj_state.id, attr, v', v))
         | Some _ -> ()
         | None ->
             Hashtbl.add index key v;
             write_list := (o, attr, slot, v) :: !write_list)
       ev entry
   end);
  (* phase 4: apply *)
  List.iter
    (fun ((o : Obj_state.t), attr, slot, v) ->
      if slot >= 0 then Obj_state.set_attr_slot o slot v
      else Obj_state.set_attr o attr v)
    (List.rev !write_list);
  (* phase 5: post-state constraints and monitor advancement *)
  let written =
    List.filter_map
      (fun (_, _, slot, _) -> if slot >= 0 then Some slot else None)
      !write_list
  in
  step_monitors c o ~occurred:[ ev ] ~born:false ~written

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

(** Run a list of micro-steps as one atomic transaction: each micro-step
    is closed under calling, executed, and its transaction-calling
    follow-ups are queued behind the remaining micro-steps.  Each
    micro-step runs under its own savepoint, so a violation unwinds the
    failing micro-step first and then aborts the whole attempt. *)
let rec exec_txn (c : Community.t) (micro_steps : Event.t list list) :
    step_result =
  (* fast path: one micro-step whose closure contributes no follow-ups
     needs no savepoint (the transaction rollback covers it) and no
     work-queue *)
  match micro_steps with
  | [ init ] -> (
      let txn = Txn.begin_ c in
      match
        match expand_sync_singleton c init with
        | Some (ev, Some o, entry)
          when (match entry.Dispatch.ce_ed with
               | Some ed -> ed.Template.ed_kind = Ast.Ev_normal
               | None -> false) ->
            let ed = Option.get entry.Dispatch.ce_ed in
            exec_sync_resolved c txn ev o entry ed;
            {
              committed = [ [ ev ] ];
              created = Txn.created txn;
              destroyed = Txn.destroyed txn;
            }
        | Some (ev, _, _) ->
            (* singleton closure, but a birth, death or unknown event:
               the general executor handles object creation and
               life-cycle transitions *)
            exec_sync c txn [ ev ];
            {
              committed = [ [ ev ] ];
              created = Txn.created txn;
              destroyed = Txn.destroyed txn;
            }
        | None -> (
            let sync, followups = expand_sync c init in
            match followups with
            | [] ->
                exec_sync c txn sync;
                {
                  committed = [ sync ];
                  created = Txn.created txn;
                  destroyed = Txn.destroyed txn;
                }
            | _ ->
                (* transaction calling: fall back to the queued protocol,
                   with the already-expanded first micro-step re-run
                   under its own savepoint *)
                exec_txn_queued c txn [ init ])
      with
      | outcome ->
          Txn.commit txn;
          Ok outcome
      | exception Error reason ->
          Txn.rollback txn;
          Error reason)
  | _ -> (
      let txn = Txn.begin_ c in
      match exec_txn_queued c txn micro_steps with
      | outcome ->
          Txn.commit txn;
          Ok outcome
      | exception Error reason ->
          Txn.rollback txn;
          Error reason)

and exec_txn_queued (c : Community.t) (txn : Txn.t)
    (micro_steps : Event.t list list) =
  let committed = ref [] in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add s queue) micro_steps;
  while not (Queue.is_empty queue) do
    let init = Queue.pop queue in
    let sp = Txn.savepoint txn in
    try
      let sync, followups = expand_sync c init in
      exec_sync c txn sync;
      committed := sync :: !committed;
      List.iter (fun s -> Queue.add s queue) followups
    with Error _ as e ->
      Txn.rollback_to txn sp;
      raise e
  done;
  {
    committed = List.rev !committed;
    created = Txn.created txn;
    destroyed = Txn.destroyed txn;
  }

(** Resolve a step request to the micro-step queue it animates:
    [Create]/[Destroy] pick their default birth/death event against the
    schema, the firing shapes pass through.  Shared by {!step} and the
    two-phase {!prepare} so both commit paths execute the very same
    queue. *)
let normalise (c : Community.t) (s : Step.t) :
    (Event.t list list, Runtime_error.reason) result =
  match s with
  | Step.Fire ev -> Ok [ [ ev ] ]
  | Step.Sync evs -> Ok [ evs ]
  | Step.Seq evs -> Ok (List.map (fun e -> [ e ]) evs)
  | Step.Txn micro_steps -> Ok micro_steps
  | Step.Create { cls; key; event; args } -> (
      match Community.find_template c cls with
      | None -> Error (Unknown_class cls)
      | Some tpl -> (
          let birth =
            match event with
            | Some name -> (
                match Template.find_event tpl name with
                | Some ed when ed.Template.ed_kind = Ast.Ev_birth -> Some name
                | Some _ | None -> None)
            | None -> (
                match Template.birth_events tpl with
                | [ ed ] -> Some ed.Template.ed_name
                | _ -> None)
          in
          match birth with
          | None ->
              Error
                (Not_birth
                   (Event.make (Ident.make cls key)
                      (Option.value ~default:"<birth>" event)
                      args))
          | Some name -> Ok [ [ Event.make (Ident.make cls key) name args ] ]))
  | Step.Destroy { id; event; args } -> (
      match Community.find_template c id.Ident.cls with
      | None -> Error (Unknown_class id.Ident.cls)
      | Some tpl -> (
          let death =
            match event with
            | Some name -> Some name
            | None -> (
                match Template.death_events tpl with
                | [ ed ] -> Some ed.Template.ed_name
                | _ -> None)
          in
          match death with
          | None -> Error (Unsupported "object has no unique death event")
          | Some name -> Ok [ [ Event.make id name args ] ]))

(** The single entry point: every way of changing the community is a
    {!Step.t} executed here. *)
let step (c : Community.t) (s : Step.t) : step_result =
  match normalise c s with
  | Error _ as e -> e
  | Ok micro_steps -> exec_txn c micro_steps

(* ------------------------------------------------------------------ *)
(* Two-phase execution (shard participants)                            *)
(* ------------------------------------------------------------------ *)

type prepared = { p_txn : Txn.t; p_outcome : outcome }

(** Execute the step but leave its transaction open: the effects are
    applied and the outcome known, yet nothing is owned-committed (no
    version bump, no commit hook, no WAL record).  The caller must
    resolve the scope with {!commit_prepared} or {!rollback_prepared}
    before anything else animates this community. *)
let prepare (c : Community.t) (s : Step.t) :
    (prepared, Runtime_error.reason) result =
  match normalise c s with
  | Error _ as e -> e
  | Ok micro_steps -> (
      let txn = Txn.begin_ c in
      match exec_txn_queued c txn micro_steps with
      | outcome -> Ok { p_txn = txn; p_outcome = outcome }
      | exception Error reason ->
          Txn.rollback txn;
          Error reason)

let outcome_of_prepared p = p.p_outcome
let commit_prepared p = Txn.commit p.p_txn
let rollback_prepared p = Txn.rollback p.p_txn

(** Fire a single event (with its synchronous closure). *)
let fire c ev = step c (Step.Fire ev)

(** Fire several events simultaneously (event sharing). *)
let fire_sync c evs = step c (Step.Sync evs)

(** Fire a sequence of events as one atomic transaction. *)
let fire_seq c evs = step c (Step.Seq evs)

(** General form: a queue of micro-steps as one transaction. *)
let run_txn c micro_steps = step c (Step.Txn micro_steps)

(** Create an object: fire the class's birth event.  [event] defaults to
    the unique birth event of the template. *)
let create c ~cls ~key ?event ?(args = []) () : step_result =
  step c (Step.Create { cls; key; event; args })

(** Kill an object: fire the (unique) death event. *)
let destroy c ~id ?event ?(args = []) () : step_result =
  step c (Step.Destroy { id; event; args })

(** Fire enabled active events until quiescence or [fuel] runs out.
    Only parameterless active events are considered (argument synthesis
    for parameterized active events is out of scope).  Returns the
    events fired, in order. *)
let run_active c ~fuel : Event.t list =
  let fired = ref [] in
  let budget = ref fuel in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    let candidates =
      List.concat_map
        (fun (o : Obj_state.t) ->
          List.filter_map
            (fun (ed : Template.event_def) ->
              if ed.Template.ed_active && ed.Template.ed_params = []
                 && ed.Template.ed_kind = Ast.Ev_normal
              then Some (Event.make o.Obj_state.id ed.Template.ed_name [])
              else None)
            o.Obj_state.template.Template.t_events)
        (Community.living_objects c)
    in
    List.iter
      (fun ev ->
        if !budget > 0 then
          match fire c ev with
          | Ok _ ->
              fired := ev :: !fired;
              decr budget;
              progress := true
          | Error _ -> ())
      candidates
  done;
  List.rev !fired

(* ------------------------------------------------------------------ *)
(* Enabledness queries (for animation front ends)                      *)
(* ------------------------------------------------------------------ *)

(** Would this event be accepted right now?  Fired inside {!Txn.probe},
    which always rolls back: the community is untouched (including
    monitor states) and the cost is O(touched state), not O(society). *)
let enabled c (ev : Event.t) : bool =
  match Txn.probe c (fun () -> fire c ev) with
  | Ok _ -> true
  | Error _ -> false

(** Parameterless non-birth events of a template, in declaration order.
    With compiled dispatch on, the list is read off the staged index
    (hoisted once per template per schema generation) instead of being
    re-filtered from [t_events] on every query. *)
let nullary_descriptors c (tpl : Template.t) : Template.event_def array =
  if Dispatch.enabled c then
    (Dispatch.template_index c tpl).Dispatch.ti_nullary
  else
    Array.of_list
      (List.filter
         (fun (ed : Template.event_def) ->
           ed.Template.ed_params = [] && ed.Template.ed_kind <> Ast.Ev_birth)
         tpl.Template.t_events)

(** Non-birth events with their parameter types, in declaration
    order. *)
let candidate_descriptors c (tpl : Template.t) :
    (string * Vtype.t list) array =
  if Dispatch.enabled c then
    (Dispatch.template_index c tpl).Dispatch.ti_candidates
  else
    Array.of_list
      (List.filter_map
         (fun (ed : Template.event_def) ->
           if ed.Template.ed_kind = Ast.Ev_birth then None
           else Some (ed.Template.ed_name, ed.Template.ed_params))
         tpl.Template.t_events)

(** The parameterless events of a living object that are currently
    enabled — what an animator would offer as next steps.  Events with
    parameters are reported by {!candidate_events} instead (enabledness
    generally depends on the arguments). *)
let enabled_events c (id : Ident.t) : string list =
  match Community.living c id with
  | None -> []
  | Some o ->
      List.filter_map
        (fun (ed : Template.event_def) ->
          if enabled c (Event.make id ed.Template.ed_name []) then
            Some ed.Template.ed_name
          else None)
        (Array.to_list (nullary_descriptors c o.Obj_state.template))

(** All event names of an object's template with their parameter
    types (birth events excluded for living objects). *)
let candidate_events c (id : Ident.t) : (string * Vtype.t list) list =
  match Community.find_template c id.Ident.cls with
  | None -> []
  | Some tpl -> Array.to_list (candidate_descriptors c tpl)

(* ------------------------------------------------------------------ *)
(* Batched parallel probes over a frozen view                          *)
(* ------------------------------------------------------------------ *)

(* Every worker (and the submitting domain) probes its own
   domain-private thaw of the view, so the probes are data-race free by
   construction; at [jobs = 1] the pool runs the same loop on the
   caller and the answers are bit-identical to the sequential
   queries. *)

let resolve_pool = function Some p -> p | None -> Pool.default ()

(** Enabledness of an arbitrary batch of events against one frozen
    view — the unit of work of the society server's coalesced probe
    dispatch. *)
let enabled_batch_par ?pool (v : View.t) (evs : Event.t array) : bool array =
  let pool = resolve_pool pool in
  let n = Array.length evs in
  let out = Array.make n false in
  Pool.run pool ~n (fun i ->
      let c = View.thaw_cached v in
      out.(i) <- enabled c evs.(i));
  out

(** [enabled_events] answered from a frozen view, probing the
    parameterless events in parallel.  Same names in the same
    (declaration) order as the sequential query. *)
let enabled_events_par ?pool (v : View.t) (id : Ident.t) : string list =
  let pool = resolve_pool pool in
  let c0 = View.thaw_cached v in
  match Community.living c0 id with
  | None -> []
  | Some o ->
      let descs = nullary_descriptors c0 o.Obj_state.template in
      let evs =
        Array.map (fun ed -> Event.make id ed.Template.ed_name []) descs
      in
      let ok = enabled_batch_par ~pool v evs in
      let acc = ref [] in
      for i = Array.length descs - 1 downto 0 do
        if ok.(i) then acc := descs.(i).Template.ed_name :: !acc
      done;
      !acc

(** [candidate_events] answered from a frozen view, with enabledness
    decided in parallel for the parameterless candidates.  [None] marks
    events whose enabledness depends on arguments (or a dead object) —
    the candidate is still offered, just undecided. *)
let candidate_events_par ?pool (v : View.t) (id : Ident.t) :
    (string * Vtype.t list * bool option) list =
  let pool = resolve_pool pool in
  let c0 = View.thaw_cached v in
  match Community.find_template c0 id.Ident.cls with
  | None -> []
  | Some tpl ->
      let cands = candidate_descriptors c0 tpl in
      let alive = Community.living c0 id <> None in
      let probe_idx =
        if alive then
          Array.of_list
            (List.filter
               (fun i -> snd cands.(i) = [])
               (List.init (Array.length cands) (fun i -> i)))
        else [||]
      in
      let evs =
        Array.map (fun i -> Event.make id (fst cands.(i)) []) probe_idx
      in
      let ok = enabled_batch_par ~pool v evs in
      let verdicts = Array.make (Array.length cands) None in
      Array.iteri (fun k i -> verdicts.(i) <- Some ok.(k)) probe_idx;
      List.init (Array.length cands) (fun i ->
          let name, params = cands.(i) in
          (name, params, verdicts.(i)))

(* ------------------------------------------------------------------ *)
(* Speculative parallel commit (footprint-disjoint batches)            *)
(* ------------------------------------------------------------------ *)

(* STM-style write path: contiguous runs of steps whose static
   footprints ({!Dispatch.footprint}) are bounded to pairwise-distinct
   target objects execute concurrently, each against a private [Txn]
   journal on a thawed {!View}; a sequencer then merges the clean
   journals into the master community in batch order.  Anything the
   analysis cannot bound — births, deaths, calling rules, cross-object
   reads, dynamic aspects — runs on the ordinary sequential engine at
   its batch position, so the result is always bit-identical to
   executing the batch sequentially.

   Why pre-state speculation is sound: group members have
   pairwise-distinct located targets and [FP_local] footprints, so no
   member reads or writes another member's target; class extensions
   and the object registry only change through births and deaths,
   which escape the group.  Hence each member's verdict and effects
   computed against the pre-group state coincide with what the
   sequential engine would compute at the member's batch position.  A
   runtime footprint check at merge time (the member's journal must
   contain nothing but snapshots of its own target) backstops the
   static analysis: an escaping journal discards that member's
   speculation and everything after it in the group. *)

let n_spec_batches = Atomic.make 0
and n_spec_groups = Atomic.make 0
and n_spec_commits = Atomic.make 0
and n_spec_rejects = Atomic.make 0
and n_spec_fallbacks = Atomic.make 0
and n_spec_seq_steps = Atomic.make 0

(** Speculation counters as labelled rows — appended to the "probe
    statistics" block ({!Trace.probe_stats_rows}). *)
let spec_stats_rows () =
  [
    ("speculative batches", Atomic.get n_spec_batches);
    ("speculative groups", Atomic.get n_spec_groups);
    ("speculative commits", Atomic.get n_spec_commits);
    ("speculative rejects", Atomic.get n_spec_rejects);
    ("speculative fallbacks", Atomic.get n_spec_fallbacks);
    ("batch sequential steps", Atomic.get n_spec_seq_steps);
  ]

let reset_spec_stats () =
  Atomic.set n_spec_batches 0;
  Atomic.set n_spec_groups 0;
  Atomic.set n_spec_commits 0;
  Atomic.set n_spec_rejects 0;
  Atomic.set n_spec_fallbacks 0;
  Atomic.set n_spec_seq_steps 0

(** A worker's verdict on one group member, executed against the
    pre-group view. *)
type speculation =
  | Spec_ok of outcome * Obj_state.snapshot
      (** accepted; the target's post-state, captured before the
          worker's journal was rolled back *)
  | Spec_err of Runtime_error.reason
      (** rejected with a footprint-local verdict — final *)
  | Spec_escape
      (** the journal recorded effects beyond the member's own target:
          the static footprint under-approximated (or a worker died
          before classifying); re-execute sequentially *)

(** A step is speculation-eligible when it denotes a single normal
    event on an existing object whose singleton closure is itself
    ([expand_sync_singleton]) and whose static footprint is
    [FP_local]. *)
let speculation_candidate (c : Community.t) (s : Step.t) :
    (Event.t * Obj_state.t) option =
  match normalise c s with
  | Ok [ [ ev0 ] ] -> (
      (* resolution raises on unknown events / targets; such a step is
         merely ineligible here — the sequential path will produce the
         proper error result *)
      match expand_sync_singleton c [ ev0 ] with
      | Some (ev, Some o, entry)
        when (match entry.Dispatch.ce_ed with
             | Some ed -> ed.Template.ed_kind = Ast.Ev_normal
             | None -> false) -> (
          let ti = Dispatch.template_index c o.Obj_state.template in
          match Dispatch.footprint ti ev.Event.name with
          | Dispatch.FP_local _ -> Some (ev, o)
          | Dispatch.FP_escape _ -> None)
      | Some _ | None -> None
      | exception Error _ -> None)
  | Ok _ | Error _ -> None

(** Execute one group of footprint-disjoint members speculatively and
    merge, in batch order, into [c].  [members] pairs each batch index
    with its located event; results land in [results] at those
    indexes. *)
let run_spec_group (c : Community.t) (pool : Pool.t)
    (members : (int * Event.t) array) (steps : Step.t array)
    (results : step_result array) : unit =
  let m = Array.length members in
  Atomic.incr n_spec_groups;
  let v = View.freeze c in
  let verdicts = Array.make m Spec_escape in
  Pool.run pool ~n:m (fun k ->
      let _, ev = members.(k) in
      let tc = View.thaw_cached v in
      let txn = Txn.begin_ tc in
      let verdict =
        match step tc (Step.Fire ev) with
        | Ok outcome -> (
            (* runtime footprint check: every journal entry must be a
               snapshot of the member's own target *)
            let clean =
              match tc.Community.journal with
              | Some j ->
                  List.for_all
                    (function
                      | Community.J_obj (o, _) ->
                          Ident.equal o.Obj_state.id ev.Event.target
                      | Community.J_register _ | Community.J_remove _
                      | Community.J_extensions _ ->
                          false)
                    j.Community.entries
              | None -> false
            in
            if clean then
              match Community.find_object tc ev.Event.target with
              | Some o -> Spec_ok (outcome, Obj_state.snapshot o)
              | None -> Spec_escape
            else Spec_escape)
        | Error reason -> Spec_err reason
        | exception e ->
            Txn.rollback txn;
            raise e
      in
      (* roll the private thaw back to pristine (it is domain-cached) *)
      Txn.rollback txn;
      verdicts.(k) <- verdict);
  (* merge sequencer: apply clean journals in batch order; a runtime
     escape invalidates the speculation of everything after it *)
  let escaped = ref false in
  Array.iteri
    (fun k (i, ev) ->
      if !escaped then begin
        Atomic.incr n_spec_fallbacks;
        results.(i) <- step c steps.(i)
      end
      else
        match verdicts.(k) with
        | Spec_ok (outcome, snap) -> (
            match Community.find_object c ev.Event.target with
            | Some o ->
                Atomic.incr n_spec_commits;
                let txn = Txn.begin_ c in
                Txn.touch txn o;
                Obj_state.restore o snap;
                Txn.commit txn;
                results.(i) <- Ok outcome
            | None ->
                (* unreachable: group members cannot unregister *)
                escaped := true;
                Atomic.incr n_spec_fallbacks;
                results.(i) <- step c steps.(i))
        | Spec_err reason ->
            Atomic.incr n_spec_rejects;
            results.(i) <- Error reason
        | Spec_escape ->
            escaped := true;
            Atomic.incr n_spec_fallbacks;
            results.(i) <- step c steps.(i))
    members

(** Execute a batch of steps with speculative parallel commit.  The
    result array is bit-identical to [Array.map (step c) steps] — at
    [jobs = 1] (or staging off, or a batch below the pool's small-batch
    cutoff) it literally is that loop.  Must be called at a quiescent
    point: no open journal on [c] (the group path freezes views). *)
let step_batch_par ?pool (c : Community.t) (steps : Step.t array) :
    step_result array =
  let pool = resolve_pool pool in
  let n = Array.length steps in
  if
    Pool.jobs pool <= 1
    || n < Pool.small_batch_cutoff
    || not (Dispatch.enabled c)
  then Array.map (step c) steps
  else begin
    Atomic.incr n_spec_batches;
    let results : step_result array =
      Array.make n (Result.Error (Unsupported "unreached"))
    in
    let group : (int * Event.t) list ref = ref [] in
    let group_targets : (Ident.t, unit) Hashtbl.t = Hashtbl.create 16 in
    let flush () =
      let members = Array.of_list (List.rev !group) in
      group := [];
      Hashtbl.reset group_targets;
      let m = Array.length members in
      if m > 0 then
        if m < Pool.small_batch_cutoff then
          (* pool dispatch and an O(society) freeze would dominate a
             small group — run its members sequentially instead *)
          Array.iter
            (fun (i, _) ->
              Atomic.incr n_spec_seq_steps;
              results.(i) <- step c steps.(i))
            members
        else run_spec_group c pool members steps results
    in
    Array.iteri
      (fun i s ->
        match speculation_candidate c s with
        | Some (ev, _) when not (Hashtbl.mem group_targets ev.Event.target)
          ->
            Hashtbl.replace group_targets ev.Event.target ();
            group := (i, ev) :: !group
        | Some (ev, _) ->
            (* same-target conflict: seal the group, open a new one *)
            flush ();
            Hashtbl.replace group_targets ev.Event.target ();
            group := (i, ev) :: !group
        | None ->
            flush ();
            Atomic.incr n_spec_seq_steps;
            results.(i) <- step c s)
      steps;
    flush ();
    results
  end

(* ------------------------------------------------------------------ *)
(* Naive (trace-based) permission checking — the E4 ablation baseline  *)
(* ------------------------------------------------------------------ *)

(** Re-evaluate a temporal guard over the full recorded history of [o]
    instead of reading the incremental monitor.  Requires
    [record_history = true] in the community's configuration.  Only
    meaningful for guards over the object's own state and events (which
    is what TROLL permissions are). *)
let naive_guard_value (c : Community.t) (o : Obj_state.t)
    (body : Template.atom Formula.t) ~(binds : (string * Value.t) list) :
    bool =
  let entries = Array.of_list (List.rev o.Obj_state.history) in
  if Array.length entries = 0 then false
  else begin
    let saved = o.Obj_state.attrs in
    let atom (a : Template.atom) (h : Obj_state.history_entry) =
      let env = Env.of_list (a.Template.binds @ binds) in
      match a.Template.pred with
      | Template.P_state f ->
          o.Obj_state.attrs <- h.Obj_state.h_attrs;
          let r =
            match Eval.formula_state c ~env ~self:(Some o) f with
            | b -> b
            | exception Error (Eval_error _) -> false
          in
          o.Obj_state.attrs <- saved;
          r
      | Template.P_occurs pat ->
          let vars = List.map fst o.Obj_state.template.Template.t_vars in
          List.exists
            (fun ev -> Eval.match_local_event c o ~env ~vars pat ev <> None)
            h.Obj_state.h_events
    in
    let r = Trace_eval.eval_last ~atom entries body in
    o.Obj_state.attrs <- saved;
    r
  end
