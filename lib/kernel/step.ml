(** The unified step request — see the interface for the contract. *)

type t =
  | Fire of Event.t
  | Sync of Event.t list
  | Seq of Event.t list
  | Txn of Event.t list list
  | Create of {
      cls : string;
      key : Value.t;
      event : string option;
      args : Value.t list;
    }
  | Destroy of { id : Ident.t; event : string option; args : Value.t list }

let micro_steps = function
  | Fire ev -> Some [ [ ev ] ]
  | Sync evs -> Some [ evs ]
  | Seq evs -> Some (List.map (fun e -> [ e ]) evs)
  | Txn ms -> Some ms
  | Create _ | Destroy _ -> None

let pp_events ppf evs =
  Format.fprintf ppf "@[<hov 1>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Event.pp)
    evs

let pp ppf = function
  | Fire ev -> Format.fprintf ppf "fire %a" Event.pp ev
  | Sync evs -> Format.fprintf ppf "sync %a" pp_events evs
  | Seq evs ->
      Format.fprintf ppf "seq @[<hov 1>%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Event.pp)
        evs
  | Txn ms ->
      Format.fprintf ppf "txn @[<hov 1>%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_events)
        ms
  | Create { cls; key; event; args } ->
      Format.fprintf ppf "create %s(%a)%s%a" cls Value.pp key
        (match event with Some e -> " " ^ e | None -> "")
        (fun ppf -> function
          | [] -> ()
          | args ->
              Format.fprintf ppf "(%a)"
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
                   Value.pp)
                args)
        args
  | Destroy { id; event; args } ->
      Format.fprintf ppf "destroy %a%s%a" Ident.pp id
        (match event with Some e -> " " ^ e | None -> "")
        (fun ppf -> function
          | [] -> ()
          | args ->
              Format.fprintf ppf "(%a)"
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
                   Value.pp)
                args)
        args

let to_string s = Format.asprintf "%a" pp s
