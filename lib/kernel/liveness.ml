(** Liveness requirements: goals an object is expected to achieve.

    §4 mentions "liveness requirements (i.e. goals to be achieved by the
    object in an active way)" among the TROLL features not elaborated in
    the paper.  Liveness cannot be *enforced* at each step the way
    permissions (safety) can; what an animator can do is *audit* a life
    cycle: given the recorded history of an object (communities created
    with [record_history = true]), report whether each goal

    - was {e achieved}: the goal formula held in some recorded state
      ("sometime" reading, the natural sense of a goal);
    - was {e maintained}: held in every recorded state;
    - {e still holds} in the current state.

    Goals are ordinary non-temporal state formulas, checked against the
    historical attribute states. *)

type verdict = {
  goal : Ast.formula;
  achieved : bool;  (** held at some point of the recorded history *)
  maintained : bool;  (** held at every point of the recorded history *)
  holds_now : bool;
  states_checked : int;
}

let evaluate_at (c : Community.t) (o : Obj_state.t)
    (attrs : Value.t array) (goal : Ast.formula) : bool =
  let saved = o.Obj_state.attrs in
  o.Obj_state.attrs <- attrs;
  let result =
    match Eval.formula_state c ~env:Env.empty ~self:(Some o) goal with
    | b -> b
    | exception Runtime_error.Error _ -> false
  in
  o.Obj_state.attrs <- saved;
  result

(** Audit one goal against an object's recorded history (newest first in
    storage; audited oldest-first).  With no recorded history, only the
    current state is examined. *)
let audit (c : Community.t) (o : Obj_state.t) (goal : Ast.formula) : verdict =
  let past_states =
    List.rev_map (fun h -> h.Obj_state.h_attrs) o.Obj_state.history
  in
  let states =
    match past_states with [] -> [ o.Obj_state.attrs ] | s -> s
  in
  let results = List.map (fun st -> evaluate_at c o st goal) states in
  {
    goal;
    achieved = List.exists (fun b -> b) results;
    maintained = List.for_all (fun b -> b) results;
    holds_now = evaluate_at c o o.Obj_state.attrs goal;
    states_checked = List.length states;
  }

(** Parse and audit a goal given in concrete syntax. *)
let audit_string (c : Community.t) (o : Obj_state.t) (src : string) :
    (verdict, string) result =
  match Parser.formula_of_string src with
  | Error e -> Error (Parse_error.to_string e)
  | Ok goal ->
      if Template.is_temporal_ast goal then
        Error "liveness goals are state formulas (no temporal operators)"
      else Ok (audit c o goal)

(** Audit a goal for every living member of a class. *)
let audit_class (c : Community.t) ~(cls : string) (goal : Ast.formula) :
    (Ident.t * verdict) list =
  Ident.Set.fold
    (fun id acc ->
      match Community.find_object c id with
      | Some o -> (id, audit c o goal) :: acc
      | None -> acc)
    (Community.extension c cls)
    []
  |> List.rev

(** Speculative goal check: would firing [ev] leave [o] in a state
    satisfying [goal]?  The attempt runs inside {!Txn.probe} and is
    always rolled back, so the community is untouched.  [None] when the
    event is rejected (the goal is unreachable by this step). *)
let achieves (c : Community.t) (o : Obj_state.t) (ev : Event.t)
    (goal : Ast.formula) : bool option =
  Txn.probe c (fun () ->
      match Engine.fire c ev with
      | Ok _ -> Some (evaluate_at c o o.Obj_state.attrs goal)
      | Error _ -> None)

(** {!achieves} for a batch of candidate events, answered from a frozen
    view: each pool participant fires against its own domain-private
    thaw, so the source community is never touched at all.  Order of
    answers matches [evs]; entries are [None] when the event is
    rejected, and also when the object is not alive in the view. *)
let achieves_batch_par ?pool (v : View.t) (id : Ident.t)
    (evs : Event.t array) (goal : Ast.formula) : bool option array =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let n = Array.length evs in
  let out = Array.make n None in
  Pool.run pool ~n (fun i ->
      let c = View.thaw_cached v in
      match Community.living c id with
      | None -> ()
      | Some o -> out.(i) <- achieves c o evs.(i) goal);
  out

let pp_verdict ppf v =
  Format.fprintf ppf "goal %s: %s (now %B, %d state(s) checked)"
    (Pretty.formula_to_string v.goal)
    (if v.maintained then "maintained throughout"
     else if v.achieved then "achieved"
     else "NOT achieved")
    v.holds_now v.states_checked
