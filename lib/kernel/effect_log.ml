(** First-class committed effects.

    The {!Txn} journal is an *undo* log: LIFO snapshots that restore the
    pre-transaction state.  This module derives from it the matching
    *redo* record — the effect delta of one committed transaction — by
    diffing, per touched object, the oldest journal snapshot (the state
    at transaction entry) against the committed state.  The two logs are
    thus consumers of the same entry stream: rollback walks the entries
    backwards, {!delta} folds them into a forward record.

    Effects are deliberately *state images*, not operations: replaying
    [E_attr (o, "salary", 2000)] installs the value regardless of how it
    was computed, so replay needs no rule evaluation and over-emission
    (an effect whose value happens to equal the old one) is harmless.
    Monitor states are serialised through their subformula truth vectors
    ({!Monitor.state_to_bools}), exactly like {!Persist}.

    The codec is line-based NDJSON-style text (one effect per line,
    [|]-separated, values via {!Value_codec}), grouped under [obj]
    context lines; see [docs/PERSISTENCE.md]. *)

(** One committed, replayable mutation.  Identities carry their class,
    so a record is self-contained. *)
type eff =
  | E_register of Ident.t  (** object (re)entered the object table *)
  | E_unregister of Ident.t  (** object left the object table *)
  | E_life of Ident.t * bool * bool  (** new (alive, dead) — birth/death *)
  | E_attr of Ident.t * string * Value.t  (** attribute write (new value) *)
  | E_perm_closed of Ident.t * int * bool array option
      (** closed permission monitor advanced to this truth vector *)
  | E_perm_indexed of Ident.t * int * (Value.t list * bool array) list
      (** indexed/quantified permission monitor: full instance table *)
  | E_constr of Ident.t * int * bool array option
      (** temporal-constraint monitor advanced to this truth vector *)
  | E_steps of Ident.t * int  (** life-cycle step counter *)

(* ------------------------------------------------------------------ *)
(* Delta: undo journal -> redo effects                                  *)
(* ------------------------------------------------------------------ *)

let bools_of_state s = Monitor.state_to_bools s

let perm_effects emit id idx (old_ps : Obj_state.pstate option)
    (ps : Obj_state.pstate) =
  let changed = match old_ps with Some o -> ps != o | None -> true in
  if changed then
    match ps with
    | Obj_state.PS_none -> () (* non-temporal guard: nothing tracked *)
    | Obj_state.PS_closed None -> (
        (* initial for a fresh object; only worth logging if it *became*
           unstarted again, which rollback alone can cause (not commit) —
           defensively emit when diffing against a started old state *)
        match old_ps with
        | Some (Obj_state.PS_closed (Some _)) ->
            emit (E_perm_closed (id, idx, None))
        | _ -> ())
    | Obj_state.PS_closed (Some s) ->
        emit (E_perm_closed (id, idx, Some (bools_of_state s)))
    | Obj_state.PS_indexed [] -> (
        match old_ps with
        | Some (Obj_state.PS_indexed (_ :: _)) ->
            emit (E_perm_indexed (id, idx, []))
        | _ -> ())
    | Obj_state.PS_indexed insts ->
        emit
          (E_perm_indexed
             (id, idx, List.map (fun (k, s) -> (k, bools_of_state s)) insts))

(** Effects of one object, given the oldest snapshot of it taken inside
    the transaction ([None] = the object was created by it, so the
    implicit baseline is the fresh unborn state). *)
let object_effects emit (o : Obj_state.t) (old : Obj_state.snapshot option) =
  let id = o.Obj_state.id in
  let tpl = o.Obj_state.template in
  (* step counter first: it bumps for essentially every touched object,
     and the codec folds a leading [E_steps] into the object's context
     line (one line instead of two per object on every commit) *)
  let old_steps = match old with Some s -> s.Obj_state.s_steps | None -> 0 in
  if o.Obj_state.steps <> old_steps then emit (E_steps (id, o.Obj_state.steps));
  (* life-cycle stage *)
  let old_alive, old_dead =
    match old with
    | Some s -> (s.Obj_state.s_alive, s.Obj_state.s_dead)
    | None -> (false, false)
  in
  if o.Obj_state.alive <> old_alive || o.Obj_state.dead <> old_dead then
    emit (E_life (id, o.Obj_state.alive, o.Obj_state.dead));
  (* attributes: pointer comparison per slot — may over-emit on a write
     of an equal-but-reallocated value, never under-emits *)
  Array.iteri
    (fun i v ->
      let changed =
        match old with
        | Some s -> v != s.Obj_state.s_attrs.(i)
        | None -> not (Value.is_undefined v)
      in
      if changed then emit (E_attr (id, Template.slot_name tpl i, v)))
    o.Obj_state.attrs;
  (* permission monitors *)
  Array.iteri
    (fun i ps ->
      let old_ps =
        match old with Some s -> Some s.Obj_state.s_perm_states.(i) | None -> None
      in
      perm_effects emit id i old_ps ps)
    o.Obj_state.perm_states;
  (* constraint monitors *)
  Array.iteri
    (fun i cs ->
      let old_cs =
        match old with
        | Some s -> Some s.Obj_state.s_constr_states.(i)
        | None -> None
      in
      let changed = match old_cs with Some o -> cs != o | None -> cs <> None in
      if changed then emit (E_constr (id, i, Option.map bools_of_state cs)))
    o.Obj_state.constr_states;
  ()

(** The committed effect delta of a transaction, from its surviving
    journal entries and the (final) community state.  Must be called
    after the last mutation and before any rollback — i.e. from the
    community's [commit_hook].

    Class extensions are intentionally *not* represented: membership is
    a function of [alive] (the paper's implicit standard class items),
    so replay re-derives extension changes from [E_life], exactly as
    {!Persist.load} re-derives them from the dumped life-cycle stage. *)
let iter_delta (c : Community.t) (j : Community.journal) (emit : eff -> unit) :
    unit =
  (* the oldest snapshot per touched object, as a small association
     list — this runs on every commit, and the typical transaction
     touches a handful of objects (epoch-deduped), so a hashtable's
     setup cost loses to linear scans here (E16) *)
  let oldest : (Obj_state.t * Obj_state.snapshot) list ref = ref [] in
  let registered = ref [] and removed = ref [] in
  (* entries are newest first, so keeping the *last* binding per object
     leaves the oldest snapshot — the state at transaction entry *)
  List.iter
    (function
      | Community.J_obj (o, s) ->
          let rec replace = function
            | [] -> [ (o, s) ]
            | (o', _) :: rest when o' == o -> (o, s) :: rest
            | b :: rest -> b :: replace rest
          in
          oldest := replace !oldest
      | Community.J_register id -> registered := id :: !registered
      | Community.J_remove o -> removed := o.Obj_state.id :: !removed
      | Community.J_extensions _ -> () (* re-derived from E_life on replay *))
    j.Community.entries;
  let registered = !registered (* oldest first after the reversal above *)
  and removed = !removed in
  List.iter (fun id -> emit (E_register id)) registered;
  List.iter (fun id -> emit (E_unregister id)) removed;
  (* first-touch (chronological) object order: the assoc list holds
     objects newest-touched-first, and touch order is a deterministic
     function of the executed step, so records are reproducible without
     paying for a canonical sort (string-key comparisons were ~a third
     of the commit hook's cost on multi-object cascades, E16).  Replay
     does not depend on cross-object order — effects are per-object
     state images. *)
  let touched = List.rev !oldest in
  List.iter
    (fun ((o : Obj_state.t), snap) ->
      (* an object removed during the transaction: unregister covers it.
         An object registered by it was snapshotted in its fresh state;
         the fresh-baseline diff and the snapshot diff agree, so reuse
         the snapshot when present. *)
      match Community.find_object c o.Obj_state.id with
      | None -> ()
      | Some _ -> object_effects emit o (Some snap))
    touched;
  (* registered objects that were never subsequently touched (defensive:
     the engine always touches right after registering) *)
  List.iter
    (fun id ->
      if
        not
          (List.exists
             (fun ((o : Obj_state.t), _) -> Ident.equal o.Obj_state.id id)
             !oldest)
      then
        match Community.find_object c id with
        | Some o -> object_effects emit o None
        | None -> ())
    registered

let delta (c : Community.t) (j : Community.journal) : eff list =
  let acc = ref [] in
  iter_delta c j (fun e -> acc := e :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let ident_of = function
  | E_register id | E_unregister id | E_life (id, _, _) | E_attr (id, _, _)
  | E_perm_closed (id, _, _) | E_perm_indexed (id, _, _) | E_constr (id, _, _)
  | E_steps (id, _) ->
      id

(** Serialise one effect into [buf], maintaining the [obj] context line
    across calls through [current].  Direct buffer writes throughout —
    this runs on every commit, and [Printf]'s format interpretation
    dominated the WAL's append cost (E16). *)
let add_int = Value_codec.add_int

let add_bits buf bits =
  Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) bits

let encode_eff buf (current : Ident.t option ref) eff =
  let add s = Buffer.add_string buf s in
  let addc ch = Buffer.add_char buf ch in
  let add_int n = add_int buf n in
  let add_bits bits = add_bits buf bits in
  let id = ident_of eff in
  (* pointer test only: all effects of one object carry the same
     identity record, and a false negative merely repeats a context
     line (the decoder is indifferent) *)
  let same = match !current with Some i -> i == id | None -> false in
  match eff with
  | E_steps (_, n) when not same ->
      (* a steps effect opening an object's group rides on the context
         line itself — the commonest per-object line pair collapsed *)
      add "obj|";
      add id.Ident.cls;
      addc '|';
      Value_codec.encode_buf buf id.Ident.key;
      addc '|';
      add_int n;
      addc '\n';
      current := Some id
  | _ -> (
  if not same then begin
    add "obj|";
    add id.Ident.cls;
    addc '|';
    Value_codec.encode_buf buf id.Ident.key;
    addc '\n';
    current := Some id
  end;
  match eff with
  | E_register _ -> add "reg\n"
  | E_unregister _ -> add "unreg\n"
  | E_life (_, alive, dead) ->
      add "life|";
      add (string_of_bool alive);
      addc '|';
      add (string_of_bool dead);
      addc '\n'
  | E_attr (_, name, v) ->
      add "attr|";
      add name;
      addc '|';
      Value_codec.encode_buf buf v;
      addc '\n'
  | E_perm_closed (_, idx, None) ->
      add "perm|";
      add_int idx;
      add "|none\n"
  | E_perm_closed (_, idx, Some bits) ->
      add "perm|";
      add_int idx;
      add "|closed|";
      add_bits bits;
      addc '\n'
  | E_perm_indexed (_, idx, insts) ->
      add "perm|";
      add_int idx;
      add "|indexed|";
      add_int (List.length insts);
      addc '\n';
      List.iter
        (fun (key, bits) ->
          add "inst|";
          Value_codec.encode_buf buf (Value.List key);
          addc '|';
          add_bits bits;
          addc '\n')
        insts
  | E_constr (_, idx, None) ->
      add "constr|";
      add_int idx;
      add "|none\n"
  | E_constr (_, idx, Some bits) ->
      add "constr|";
      add_int idx;
      addc '|';
      add_bits bits;
      addc '\n'
  | E_steps (_, n) ->
      add "steps|";
      add_int n;
      addc '\n')

(** Serialise an effect list.  Effects are grouped under [obj] context
    lines (class + key), mirroring the {!Persist} format. *)
let encode (effs : eff list) : string =
  let buf = Buffer.create 256 in
  let current = ref None in
  List.iter (encode_eff buf current) effs;
  Buffer.contents buf

(** The fused commit path: diff and serialise in one pass, with no
    intermediate effect list, into a caller-provided (reusable)
    buffer.  Returns the number of effects written; the bytes equal
    [encode (delta c j)].  This is what the {!Wal} hook calls on every
    commit. *)
let encode_delta (c : Community.t) (j : Community.journal) (buf : Buffer.t) :
    int =
  let current = ref None in
  let n = ref 0 in
  iter_delta c j (fun e ->
      incr n;
      encode_eff buf current e);
  !n

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let decode_value s =
  match Value_codec.decode s with Ok v -> v | Error m -> fail "bad value: %s" m

let bits_of_string s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '1' -> true
      | '0' -> false
      | c -> fail "bad bit %c" c)

let decode (payload : string) : (eff list, string) result =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' payload)
  in
  try
    let current = ref None in
    let id () =
      match !current with Some id -> id | None -> fail "effect outside an object"
    in
    let acc = ref [] in
    let pending_inst = ref None (* (idx, remaining, rev insts) *) in
    let flush_inst () =
      match !pending_inst with
      | Some (idx, 0, insts) ->
          acc := E_perm_indexed (id (), idx, List.rev insts) :: !acc;
          pending_inst := None
      | Some _ -> fail "truncated indexed-monitor instance block"
      | None -> ()
    in
    List.iter
      (fun line ->
        match String.split_on_char '|' line with
        | [ "inst"; key; bits ] -> (
            match !pending_inst with
            | Some (idx, n, insts) when n > 0 ->
                let key =
                  match decode_value key with
                  | Value.List l -> l
                  | _ -> fail "instance key is not a list"
                in
                let p = Some (idx, n - 1, (key, bits_of_string bits) :: insts) in
                pending_inst := p;
                if n - 1 = 0 then flush_inst ()
            | _ -> fail "inst line outside an indexed block")
        | fields -> (
            flush_inst ();
            match fields with
            | [ "obj"; cls; key ] ->
                current := Some (Ident.make cls (decode_value key))
            | [ "obj"; cls; key; n ] ->
                (* context line with the object's folded step counter *)
                let id = Ident.make cls (decode_value key) in
                current := Some id;
                acc := E_steps (id, int_of_string n) :: !acc
            | [ "reg" ] -> acc := E_register (id ()) :: !acc
            | [ "unreg" ] -> acc := E_unregister (id ()) :: !acc
            | [ "life"; alive; dead ] ->
                acc :=
                  E_life (id (), bool_of_string alive, bool_of_string dead)
                  :: !acc
            | [ "attr"; name; v ] ->
                acc := E_attr (id (), name, decode_value v) :: !acc
            | [ "perm"; idx; "none" ] ->
                acc := E_perm_closed (id (), int_of_string idx, None) :: !acc
            | [ "perm"; idx; "closed"; bits ] ->
                acc :=
                  E_perm_closed
                    (id (), int_of_string idx, Some (bits_of_string bits))
                  :: !acc
            | [ "perm"; idx; "indexed"; n ] ->
                let n = int_of_string n in
                if n = 0 then
                  acc := E_perm_indexed (id (), int_of_string idx, []) :: !acc
                else pending_inst := Some (int_of_string idx, n, [])
            | [ "constr"; idx; "none" ] ->
                acc := E_constr (id (), int_of_string idx, None) :: !acc
            | [ "constr"; idx; bits ] ->
                acc :=
                  E_constr (id (), int_of_string idx, Some (bits_of_string bits))
                  :: !acc
            | [ "steps"; n ] -> acc := E_steps (id (), int_of_string n) :: !acc
            | _ -> fail "malformed effect line: %s" line))
      lines;
    flush_inst ();
    Ok (List.rev !acc)
  with
  | Bad m -> Error m
  | Failure m -> Error m

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let perm_compiled (o : Obj_state.t) idx =
  match List.nth_opt o.Obj_state.template.Template.t_perms idx with
  | Some pm -> (
      match pm.Template.pm_guard with
      | Template.PG_closed (_, compiled) -> `Closed compiled
      | Template.PG_indexed { ix_compiled; _ } -> `Indexed ix_compiled
      | Template.PG_quant { q_compiled; _ } -> `Indexed q_compiled
      | Template.PG_state _ -> fail "monitor effect for a state guard")
  | None -> fail "permission index out of range"

let constr_compiled (o : Obj_state.t) idx =
  let temporal =
    List.filter_map
      (function
        | Template.K_temporal (_, compiled, _) -> Some compiled
        | Template.K_static _ -> None)
      o.Obj_state.template.Template.t_constraints
  in
  match List.nth_opt temporal idx with
  | Some compiled -> compiled
  | None -> fail "constraint index out of range"

let monitor_state_for compiled bits =
  match Monitor.state_of_bools compiled bits with
  | Some s -> s
  | None -> fail "monitor state does not match the specification's formula"

(** Replay a decoded effect list against a community compiled from the
    same specification.  Must be called without an open journal; class
    extensions are re-derived from the [E_life] transitions.  Replay is
    idempotent for state-image effects and tolerates re-registration, so
    replaying a suffix that partially overlaps the current state (e.g.
    WAL records at or before a snapshot) converges to the same result. *)
let apply (c : Community.t) (effs : eff list) : (unit, string) result =
  try
    let obj id =
      match Community.find_object c id with
      | Some o -> o
      | None -> fail "effect for unknown object %s" (Ident.to_string id)
    in
    List.iter
      (fun eff ->
        match eff with
        | E_register id ->
            if Community.find_object c id = None then begin
              let tpl = Community.template_exn c id.Ident.cls in
              Community.register_object c (Obj_state.create id tpl)
            end
        | E_unregister id ->
            (match Community.find_object c id with
            | Some o when o.Obj_state.alive -> Community.extension_remove c id
            | _ -> ());
            Community.remove_object c id
        | E_life (id, alive, dead) ->
            let o = obj id in
            let was_alive = o.Obj_state.alive in
            o.Obj_state.alive <- alive;
            o.Obj_state.dead <- dead;
            if alive && not was_alive then Community.extension_add c id
            else if was_alive && not alive then Community.extension_remove c id
        | E_attr (id, name, v) -> Obj_state.set_attr (obj id) name v
        | E_perm_closed (id, idx, bits) -> (
            let o = obj id in
            if idx < 0 || idx >= Array.length o.Obj_state.perm_states then
              fail "permission index out of range";
            match perm_compiled o idx with
            | `Closed compiled ->
                o.Obj_state.perm_states.(idx) <-
                  Obj_state.PS_closed
                    (Option.map (monitor_state_for compiled) bits)
            | `Indexed _ -> fail "closed state for indexed guard")
        | E_perm_indexed (id, idx, insts) -> (
            let o = obj id in
            if idx < 0 || idx >= Array.length o.Obj_state.perm_states then
              fail "permission index out of range";
            match perm_compiled o idx with
            | `Indexed compiled ->
                o.Obj_state.perm_states.(idx) <-
                  Obj_state.PS_indexed
                    (List.map
                       (fun (k, bits) -> (k, monitor_state_for compiled bits))
                       insts)
            | `Closed _ -> fail "instance table for closed guard")
        | E_constr (id, idx, bits) ->
            let o = obj id in
            if idx < 0 || idx >= Array.length o.Obj_state.constr_states then
              fail "constraint index out of range";
            o.Obj_state.constr_states.(idx) <-
              Option.map (monitor_state_for (constr_compiled o idx)) bits
        | E_steps (id, n) -> (obj id).Obj_state.steps <- n)
      effs;
    Ok ()
  with
  | Bad m -> Error m
  | Failure m -> Error m
  | Runtime_error.Error r -> Error (Runtime_error.reason_to_string r)
