(** Fixed pool of worker domains for read-only probe fan-out.

    A pool of size [jobs] owns [jobs - 1] persistent worker domains; the
    submitting domain always participates, so [jobs = 1] spawns nothing
    and runs strictly sequentially on the caller — that path is
    bit-identical to not having a pool at all (same evaluation order,
    same counter updates) and is the default under [dune runtest].

    Work is distributed by an atomic chunk cursor over the index range:
    each participant repeatedly claims the next chunk of indexes with
    [Atomic.fetch_and_add] until the range is exhausted.  There is no
    work stealing and no per-item queue — probes over a frozen
    {!View} are uniform enough that chunked self-scheduling (4 chunks
    per participant) balances well without deque traffic.

    The first exception raised by any participant is captured with a
    compare-and-set and re-raised on the submitting domain after the
    dispatch drains; remaining chunks are claimed but not run. *)

type job = {
  j_fn : int -> unit;
  j_n : int;
  j_chunk : int;
  j_cursor : int Atomic.t;  (** next unclaimed index *)
  j_done : int Atomic.t;  (** indexes accounted for (run or skipped) *)
  j_exn : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  jobs : int;
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  work_cv : Condition.t;  (** new job or shutdown *)
  done_cv : Condition.t;  (** some job completed *)
  mutable seq : int;  (** bumped once per submitted job *)
  mutable job : job option;
  mutable stop : bool;
}

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

(* Atomics, not refs: chunk claims are counted from worker domains. *)
let n_par_dispatches = Atomic.make 0
and n_par_items = Atomic.make 0
and n_seq_dispatches = Atomic.make 0
and n_seq_items = Atomic.make 0
and n_cutoff_dispatches = Atomic.make 0
and n_chunks = Atomic.make 0

(** Batches smaller than this run sequentially on the caller even when
    worker domains are idle: E15 showed pool dispatch (mutex + two
    condition-variable round trips) dominating real probe work on small
    batches.  8 items is where dispatch cost drops under ~10% of the
    cheapest measured per-item probe work. *)
let small_batch_cutoff = 8

let stats_rows () =
  [
    ("parallel dispatches", Atomic.get n_par_dispatches);
    ("parallel items", Atomic.get n_par_items);
    ("sequential dispatches", Atomic.get n_seq_dispatches);
    ("sequential items", Atomic.get n_seq_items);
    ("small-batch cutoff", small_batch_cutoff);
    ("small-batch seq dispatches", Atomic.get n_cutoff_dispatches);
    ("chunks claimed", Atomic.get n_chunks);
  ]

let reset_stats () =
  Atomic.set n_par_dispatches 0;
  Atomic.set n_par_items 0;
  Atomic.set n_seq_dispatches 0;
  Atomic.set n_seq_items 0;
  Atomic.set n_cutoff_dispatches 0;
  Atomic.set n_chunks 0

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)
(* ------------------------------------------------------------------ *)

let work_job (j : job) =
  let continue_ = ref true in
  while !continue_ do
    let start = Atomic.fetch_and_add j.j_cursor j.j_chunk in
    if start >= j.j_n then continue_ := false
    else begin
      Atomic.incr n_chunks;
      let stop = min j.j_n (start + j.j_chunk) in
      (* once a participant has failed, later chunks are claimed and
         counted but not run, so [j_done] still reaches [j_n] and the
         dispatch drains instead of deadlocking *)
      (if Atomic.get j.j_exn = None then
         try
           for i = start to stop - 1 do
             j.j_fn i
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set j.j_exn None (Some (e, bt))));
      ignore (Atomic.fetch_and_add j.j_done (stop - start))
    end
  done

let rec worker_loop t last_seq =
  Mutex.lock t.m;
  while (not t.stop) && t.seq = last_seq do
    Condition.wait t.work_cv t.m
  done;
  let seq = t.seq and job = t.job and stop = t.stop in
  Mutex.unlock t.m;
  if not stop then begin
    (match job with
    | Some j ->
        work_job j;
        (* the participant whose chunk completes the range wakes the
           submitter; broadcasting under the mutex pairs with the
           submitter's check-then-wait and cannot be lost *)
        if Atomic.get j.j_done >= j.j_n then begin
          Mutex.lock t.m;
          Condition.broadcast t.done_cv;
          Mutex.unlock t.m
        end
    | None -> ());
    worker_loop t seq
  end

(* ------------------------------------------------------------------ *)
(* Pool lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      workers = [];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      seq = 0;
      job = None;
      stop = false;
    }
  in
  (* jobs = 1 spawns no domains at all: the process stays fork-safe
     (Unix.fork refuses to run once any domain has ever been created) *)
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let jobs t = t.jobs

let shutdown t =
  match t.workers with
  | [] -> ()
  | workers ->
      Mutex.lock t.m;
      t.stop <- true;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.m;
      List.iter Domain.join workers;
      t.workers <- []

let run t ~n f =
  if n > 0 then
    if t.jobs <= 1 || n < small_batch_cutoff || t.workers = [] then begin
      if t.jobs > 1 && t.workers <> [] && n > 1 then
        Atomic.incr n_cutoff_dispatches;
      Atomic.incr n_seq_dispatches;
      ignore (Atomic.fetch_and_add n_seq_items n);
      for i = 0 to n - 1 do
        f i
      done
    end
    else begin
      Atomic.incr n_par_dispatches;
      ignore (Atomic.fetch_and_add n_par_items n);
      let chunk = max 1 ((n + (t.jobs * 4) - 1) / (t.jobs * 4)) in
      let j =
        {
          j_fn = f;
          j_n = n;
          j_chunk = chunk;
          j_cursor = Atomic.make 0;
          j_done = Atomic.make 0;
          j_exn = Atomic.make None;
        }
      in
      Mutex.lock t.m;
      t.job <- Some j;
      t.seq <- t.seq + 1;
      Condition.broadcast t.work_cv;
      Mutex.unlock t.m;
      work_job j;
      Mutex.lock t.m;
      while Atomic.get j.j_done < n do
        Condition.wait t.done_cv t.m
      done;
      t.job <- None;
      Mutex.unlock t.m;
      match Atomic.get j.j_exn with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f xs.(0)) in
    (* index 0 already computed to seed the result array *)
    run t ~n:(n - 1) (fun i -> out.(i + 1) <- f xs.(i + 1));
    out
  end

(* ------------------------------------------------------------------ *)
(* Default pool                                                        *)
(* ------------------------------------------------------------------ *)

let jobs_override = ref None

let default_jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "TROLLC_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | _ -> 1)
      | None -> max 1 (Domain.recommended_domain_count () - 1))

let default_pool = ref None

let set_default_jobs n =
  let n = max 1 n in
  jobs_override := Some n;
  match !default_pool with
  | Some p when p.jobs <> n ->
      shutdown p;
      default_pool := None
  | _ -> ()

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create ~jobs:(default_jobs ()) in
      default_pool := Some p;
      p

let shutdown_default () =
  match !default_pool with
  | Some p ->
      shutdown p;
      default_pool := None
  | None -> ()
