(** The object community: all objects, class extensions, global
    interaction rules and enumerations of one specification — the
    paper's "object society". *)

module Smap :
  Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type config = {
  record_history : bool;
      (** store per-object traces (needed by the naive permission
          checker, liveness auditing, and the E4 benchmark) *)
  max_sync_set : int;
      (** safety bound on the event-calling closure (cycle detection) *)
  compiled_dispatch : bool;
      (** use the staged per-event rule indexes and compiled evaluators
          ({!Dispatch}); off = the fully interpreted reference path *)
}

val default_config : config
(** No history recording, closure bound 4096, compiled dispatch on. *)

(** Staged dispatch state attached to a community by higher layers
    (extended and consumed by {!Dispatch}). *)
type staged = ..

val schema_generation : int ref
(** Bumped on every schema mutation ({!add_template}, {!add_enum},
    {!add_global}); staged caches stamp themselves with it and rebuild
    on mismatch. *)

type global_rule = {
  gr_vars : (string * Vtype.t) list;
  gr_rule : Ast.calling_rule;
}

(** One undoable runtime mutation; recorded newest first while a journal
    is open, undone in LIFO order by {!Txn}. *)
type journal_entry =
  | J_obj of Obj_state.t * Obj_state.snapshot
      (** object about to be mutated: restore its fields *)
  | J_register of Ident.t  (** object was registered: remove it again *)
  | J_remove of Obj_state.t  (** object was removed: put it back *)
  | J_extensions of Ident.Set.t Smap.t  (** previous extensions map *)

(** The open journal of a community — the live undo log plus lifetime
    counters and the epoch-based snapshot-dedup table.  Owned by
    {!Txn}; the mutators below feed it. *)
type journal = {
  mutable entries : journal_entry list;  (** newest first *)
  mutable count : int;  (** = length of [entries] *)
  mutable total : int;  (** entries ever recorded *)
  mutable bytes : int;  (** approx. bytes snapshotted *)
  touched : (Ident.t, int) Hashtbl.t;  (** object → epoch of last snap *)
  mutable epoch : int;
}

type t = {
  templates : (string, Template.t) Hashtbl.t;
  enum_of_const : (string, string) Hashtbl.t;
  enum_defs : (string, string list) Hashtbl.t;
  objects : (Ident.t, Obj_state.t) Hashtbl.t;
  mutable index : Obj_state.t Btree.t;
      (** ordered object index (storage layer), kept in sync with
          [objects] and rolled back through the same journal *)
  mutable extensions : Ident.Set.t Smap.t;
  mutable globals : global_rule list;
  mutable journal : journal option;  (** managed by {!Txn} *)
  config : config;
  mutable staged : staged option;
      (** community-level dispatch index, built lazily by {!Dispatch} *)
  mutable version : int;
      (** instance-state version: bumped on every committed transaction
          ({!Txn.commit} of the owning scope) and on every direct
          journal-less mutation; rollbacks restore state exactly and do
          not bump.  {!View}s stamp themselves with it to detect
          staleness in O(1). *)
  mutable commit_hook : (journal -> unit) option;
      (** called by {!Txn.commit} of the owning scope, after the state
          is final but before the journal is released, whenever any
          entries survived — the redo-log side of the journal ({!Wal}
          derives the committed effect delta from it).  Never called on
          rollbacks or probes. *)
}

val create : ?config:config -> unit -> t

val bump_version : t -> unit
(** Advance {!field-version}; called by the mutators here and by
    {!Txn.commit}. *)

(** {1 Journal} *)

val journal_record : t -> journal_entry -> unit
(** Append to the open journal, if any (no-op otherwise). *)

val undo_entry : t -> journal_entry -> unit
(** Undo one entry, mutating raw fields without journaling. *)

(** {1 Schema} *)

val add_template : t -> Template.t -> unit
val find_template : t -> string -> Template.t option

val template_exn : t -> string -> Template.t
(** Raises {!Runtime_error.Error} ([Unknown_class]). *)

val is_class : t -> string -> bool
val add_enum : t -> string -> string list -> unit
val enum_of_const : t -> string -> string option
val enum_consts : t -> string -> string list option
val add_global : t -> vars:(string * Vtype.t) list -> Ast.calling_rule -> unit

(** {1 Objects and extensions} *)

val find_object : t -> Ident.t -> Obj_state.t option

val object_exn : t -> Ident.t -> Obj_state.t
(** Raises {!Runtime_error.Error} ([Unknown_object]). *)

val living : t -> Ident.t -> Obj_state.t option
(** The exact aspect, if alive. *)

val register_object : t -> Obj_state.t -> unit
(** Add to the object table and ordered index; journaled. *)

val remove_object : t -> Ident.t -> unit
(** Drop from the object table and ordered index; journaled. *)

val extension : t -> string -> Ident.Set.t
(** Living members of a class. *)

val extension_add : t -> Ident.t -> unit
val extension_remove : t -> Ident.t -> unit

(** {1 Inheritance} *)

val base_chain : t -> string -> Template.t list
(** The class itself, then its [view of]/[specialization of] ancestors
    upward. *)

val specializations_of : t -> string -> Template.t list
val phases_born_by : t -> string -> string -> (Template.t * Template.event_def) list

(** {1 Traversal} *)

val clone : t -> t
(** Deep copy for genuine branching exploration — keeping several
    divergent futures alive at once (object states duplicated, templates
    shared, journal not carried over).  For speculative "try and roll
    back" questions use {!Txn.probe}: O(touched state), not
    O(society). *)

val reset_instance_state : t -> unit
(** Drop all objects, extensions and index entries (schema stays).  For
    reloading persisted state; must not be called with an open
    journal. *)

val iter_objects : t -> (Obj_state.t -> unit) -> unit
val living_objects : t -> Obj_state.t list

val objects_sorted : t -> Obj_state.t list
(** All objects in identity order, read off the ordered index. *)

val pp : Format.formatter -> t -> unit
