(** Persistence of object bases ("persistent database objects", §1).

    {!save} dumps the complete dynamic state — attribute maps,
    life-cycle stages, permission- and constraint-monitor states — to a
    line-based text format; {!load} restores it into a fresh community
    compiled from the *same specification*.  Templates are not
    serialised (the specification is the schema; the dump is the
    instance level), and recorded histories are not serialised
    (permission decisions survive regardless: they live in the monitor
    states).  See [test/test_storage.ml] for the decision-equivalence
    property. *)

val save : Community.t -> string

val save_file : Community.t -> string -> unit
(** Crash-safe: writes via {!write_file_atomic}. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path contents] writes through a same-directory
    temp file, fsyncs, atomically renames over [path], then fsyncs the
    directory — a crash leaves either the old file or the new one,
    never a truncated mix.  Also used by {!Wal} for snapshots. *)

val load : ?reset:bool -> Community.t -> string -> (unit, string) result
(** Restore a dump; existing objects are discarded.  Fails (with the
    community in an unspecified but safe-to-discard state) on malformed
    input or a dump from a different specification.  [~reset:false]
    keeps the current objects and merges the dump in — the shard layer
    unions *disjoint* per-shard dumps this way (loading an object that
    already exists is unspecified). *)

val load_file : Community.t -> string -> (unit, string) result
