(** Staged rule dispatch: per-event rule indexes and compiled
    evaluators, cached on templates and communities and stamped with
    [Community.schema_generation] (rebuilt on mismatch).

    Consumed by {!Engine} when the community's [compiled_dispatch]
    configuration flag is on; the interpreted path remains the reference
    semantics and the two must be observationally identical. *)

(** {1 Statistics} *)

type stats = {
  templates_staged : int;  (** template indexes built (incl. rebuilds) *)
  slots_interned : int;  (** attribute slots across staged templates *)
  rules_indexed : int;  (** valuation/permission/calling/global rules *)
  dispatch_hits : int;  (** per-event index lookups served *)
  interpreted_fallbacks : int;
      (** compiled closures that deferred to the interpreter *)
  static_skips : int;  (** static constraints skipped as untouched *)
  monitor_fast_steps : int;
      (** monitor advances taken with the constant-false atom evaluator *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
val stats_rows : unit -> (string * int) list
val pp_stats : Format.formatter -> unit -> unit

val note_hit : unit -> unit
(** Engine-side: one per-event index lookup served. *)

val note_static_skip : unit -> unit
(** Engine-side: one static constraint skipped via footprint. *)

val note_monitor_fast : unit -> unit
(** Engine-side: one monitor advanced with the constant-false atom
    evaluator. *)

(** {1 Compiled rule forms} *)

type cvrule = {
  cv_rule : Ast.valuation_rule;
  cv_pat : Eval.compiled_pattern;
  cv_guard : Eval.compiled_formula option;
  cv_rhs : Eval.compiled_expr;
  cv_attr : string;
  cv_slot : int;  (** slot of [cv_attr]; [-1] when not a declared slot *)
}

type ccalled = { cd_term : Ast.event_term; cd_args : Eval.compiled_expr list }

type ccalling = {
  cc_rule : Ast.calling_rule;
  cc_pat : Eval.compiled_pattern;
  cc_guard : Eval.compiled_formula option;
  cc_called : ccalled list;
}

type cperm = {
  cp_idx : int;  (** position in [t_perms] / [perm_states] *)
  cp_pm : Template.permission;
  cp_args : Eval.compiled_arg list;
  cp_nargs : int;
  cp_state_guard : Eval.compiled_formula option;
      (** compiled guard for [PG_state]; monitored guards are evaluated
          by the engine *)
}

type centry = {
  ce_ed : Template.event_def option;
      (** the event's definition — one hash lookup replaces the
          per-phase [Template.find_event] list scans *)
  ce_vrules : cvrule list;
  ce_perms : cperm list;
  ce_callings : ccalling list;
  ce_distinct_slots : bool;
      (** the valuation rules write pairwise-distinct known slots, so a
          single occurrence of the event cannot conflict with itself *)
}

type catom =
  | CA_state of Eval.compiled_formula
  | CA_occurs of Eval.compiled_pattern

(** Event footprint of a monitored formula; when a step's occurred
    events are disjoint from [cm_names] and there are no state atoms,
    every atom is false and the monitor can advance with a
    constant-false evaluator — same truth vector, no evaluation work. *)
type cmon = { cm_names : string array; cm_has_state : bool }

type cstatic = {
  cs_compiled : Eval.compiled_formula;
  cs_text : string;
  cs_local : bool;
      (** reads only own stored attribute slots — eligible for
          dirty-slot skipping *)
  cs_slots : int array;
}

(** Full read/write footprint of one event of one template, for the
    speculative parallel commit path ({!Engine.step_batch_par}).

    [FP_local]: a single occurrence on an existing object reads and
    writes only that object — the listed attribute slots plus the
    per-step state every step touches on its own target anyway
    (life-cycle stage, step counter, monitor states).  [fp_extensions]
    flags class-extension reads (quantified guards); extensions change
    only through births and deaths, which escape, so the flag never
    blocks grouping.

    [FP_escape]: the footprint cannot be bounded to the target object
    (cross-object access, queries, quantifiers, dynamic aspects,
    calling rules, birth/death, derived attributes, …) — the event
    takes the sequential engine.  Over-approximation is sound; an
    escape only costs parallelism. *)
type footprint =
  | FP_escape of string  (** why the event must run sequentially *)
  | FP_local of {
      fp_reads : int array;  (** own slots read, sorted ascending *)
      fp_writes : int array;  (** own slots written, sorted ascending *)
      fp_extensions : bool;  (** reads class extensions *)
    }

type tpl_index = {
  ti_generation : int;
  ti_by_event : (string, centry) Hashtbl.t;
  ti_atoms : (Template.atom * catom) list;  (** by physical identity *)
  ti_spawns : (int * Eval.compiled_pattern list) list;
  ti_statics : cstatic array;
  ti_perm_mons : cmon option array;
      (** per permission index; [None] for [PG_state] guards *)
  ti_temp_mons : cmon array;  (** per [K_temporal] constraint, in order *)
  ti_nullary : Template.event_def array;
      (** parameterless non-birth events, in declaration order — the
          probe set of [Engine.enabled_events], hoisted here so neither
          the sequential nor the batched path re-filters [t_events] *)
  ti_candidates : (string * Vtype.t list) array;
      (** all non-birth events with their parameter types, in
          declaration order ([Engine.candidate_events]) *)
  ti_footprints : (string, footprint) Hashtbl.t;
      (** per event name: full read/write footprint ({!footprint}) *)
}

type Template.staged += T_staged of tpl_index

type cglobal = {
  cg_rule : Community.global_rule;
  cg_guard : Eval.compiled_formula option;
  cg_called : ccalled list;
}

type com_index = {
  ci_generation : int;
  ci_globals : (string, cglobal list) Hashtbl.t;
  ci_phases :
    (string * string, (Template.t * Template.event_def) list) Hashtbl.t;
}

type Community.staged += C_staged of com_index

(** {1 Staging and lookups} *)

val enabled : Community.t -> bool
(** The community's [compiled_dispatch] flag. *)

val template_index : Community.t -> Template.t -> tpl_index
(** Cached per-template index; built (or rebuilt after a schema change)
    on first use. *)

val community_index : Community.t -> com_index

val entry : tpl_index -> string -> centry
(** All staged rules of the template reacting to an event name. *)

val globals_for : com_index -> string -> cglobal list
val phases_for :
  com_index -> cls:string -> event:string ->
  (Template.t * Template.event_def) list

val atom : tpl_index -> Template.atom -> catom option
(** Compiled form of a monitored atom, by physical identity. *)

val spawn_patterns : tpl_index -> int -> Eval.compiled_pattern list option
(** Occurrence patterns of a [PG_indexed] permission's body, compiled
    with the guard's pattern variables. *)

val footprint : tpl_index -> string -> footprint
(** The event's read/write footprint; [FP_escape] for names the
    template does not index. *)

val stage_community : Community.t -> unit
(** Warm every cache at load time, so the first event pays no staging
    cost. *)
