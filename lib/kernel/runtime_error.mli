(** Runtime errors and event-rejection reasons of the animator.

    *Rejections* are attempts the specification forbids (permission or
    constraint violations, conflicting valuations) — they leave the
    community unchanged.  *Errors* indicate API misuse or an ill-formed
    specification (unknown class, event on a dead object). *)

type reason =
  | Unknown_class of string
  | Unknown_object of Ident.t
  | Unknown_event of string * string  (** class, event *)
  | Unknown_attribute of string * string  (** class, attribute *)
  | Already_alive of Ident.t
  | Not_alive of Ident.t
  | Not_birth of Event.t  (** creating an object with a non-birth event *)
  | Permission_denied of Event.t * string  (** event, guard text *)
  | Constraint_violated of Ident.t * string
  | Valuation_conflict of Ident.t * string * Value.t * Value.t
      (** two events of one synchronous step write different values *)
  | Eval_error of string
  | Unsupported of string
  | Unknown_shard of int
      (** a routed step named a shard outside the partition map *)
  | Shard_unavailable of int
      (** the owning shard process is down (mid-protocol death) *)

exception Error of reason

val fail : reason -> 'a
(** Raise {!Error}. *)

val pp_reason : Format.formatter -> reason -> unit
val reason_to_string : reason -> string

val code : reason -> string
(** A stable snake_case code naming the constructor
    (["permission_denied"], ["unknown_class"], …) — the machine-facing
    half of a rejection, used by structured error frames on the wire;
    {!reason_to_string} is the human-facing half. *)

val phase_rank : reason -> int
(** Which engine phase (run over the whole synchronous set) a reason
    belongs to: 0 routing/availability, 1 life cycles and name
    resolution, 2 execution rejections (permissions, valuations,
    constraints, evaluation).  A coordinator merging sub-step failures
    from several shards reports the minimum-rank error so the same
    class of error surfaces as in a single engine; attribution within
    one rank stays decomposition-dependent. *)
