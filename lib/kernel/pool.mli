(** Fixed pool of worker domains for read-only probe fan-out.

    A pool of size [jobs] owns [jobs - 1] persistent worker domains;
    the submitting domain participates in every dispatch.  [jobs = 1]
    spawns no domains and runs strictly sequentially on the caller —
    bit-identical to not having a pool (same evaluation order, same
    statistics), and fork-safe: [Unix.fork] refuses to run in any
    process that has ever created a domain, so sequential pools keep
    fork-based tooling (the fuzz server oracle) working.

    Work is self-scheduled by an atomic chunk cursor — about four
    chunks per participant, no queues, no stealing.  Dispatches are
    serial per pool: {!run} blocks the submitter until the whole index
    range has drained. *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] worker domains ([jobs] is clamped to at least
    1). *)

val jobs : t -> int

val small_batch_cutoff : int
(** Batches with fewer items than this run sequentially on the caller
    even when worker domains are idle: pool dispatch (mutex + two
    condition-variable round trips) dominates real work on small
    batches (bench E15).  Reported in {!stats_rows}. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] calls [f i] once for every [0 <= i < n], in parallel
    across the pool's domains, and returns when all calls have
    finished.  Batches below {!small_batch_cutoff} run sequentially on
    the caller (identical results, same evaluation order as jobs = 1).
    [f] must only touch domain-private or frozen data (see {!View}).
    The first exception raised by any participant is re-raised here
    after the dispatch drains. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] on top of {!run} (element order preserved). *)

val shutdown : t -> unit
(** Join all worker domains; idempotent.  The pool must be idle. *)

(** {1 Default pool}

    The CLI resolves a process-wide job count once ([--jobs], then the
    [TROLLC_JOBS] environment variable, then
    [Domain.recommended_domain_count () - 1], floor 1) and shares one
    lazily created pool. *)

val default_jobs : unit -> int
val set_default_jobs : int -> unit

val default : unit -> t
(** The shared pool, created on first use at {!default_jobs} size.
    Never call this from a process that still needs to [Unix.fork]
    unless the resolved size is 1. *)

val shutdown_default : unit -> unit

(** {1 Statistics} *)

val stats_rows : unit -> (string * int) list
val reset_stats : unit -> unit
