(** Frozen read-only projection of a community, for parallel probes.

    A view captures, at a quiescent point (no open journal), everything
    a probe can observe: per-object snapshots in identity order, the
    extensions map, the global rules, and the pre-warmed staged dispatch
    caches.  The capture is O(society) like {!Community.clone}, but a
    view is immutable and therefore shareable across domains; each
    worker {!thaw}s its own private mutable community from it and runs
    ordinary [Txn.probe]s there.

    Staleness is detected in O(1): a view stamps itself with the global
    [Community.schema_generation] and the source's instance-state
    [version]; {!valid} compares both.  Rollbacks restore state exactly
    and never invalidate a view. *)

type entry = {
  e_id : Ident.t;
  e_template : Template.t;
  e_snap : Obj_state.snapshot;
}

type t = {
  source : Community.t;
  vid : int;  (** process-unique, keys the per-domain thaw cache *)
  v_schema_gen : int;
  v_version : int;
  entries : entry array;  (** all objects, identity order *)
  v_extensions : Ident.Set.t Community.Smap.t;
  v_globals : Community.global_rule list;
  v_config : Community.config;
  v_staged : Community.staged option;
      (** community dispatch index captured at freeze time, after
          pre-warming — thawed communities share it and never build
          caches concurrently *)
}

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

(* freezes and invalidations happen on the owning domain, but thaws run
   on workers: atomics throughout *)
let n_taken = Atomic.make 0
and n_invalidated = Atomic.make 0
and n_thaws = Atomic.make 0
and n_thaw_hits = Atomic.make 0

let stats_rows () =
  [
    ("views taken", Atomic.get n_taken);
    ("views invalidated", Atomic.get n_invalidated);
    ("views thawed", Atomic.get n_thaws);
    ("thaw cache hits", Atomic.get n_thaw_hits);
  ]

let reset_stats () =
  Atomic.set n_taken 0;
  Atomic.set n_invalidated 0;
  Atomic.set n_thaws 0;
  Atomic.set n_thaw_hits 0

let note_invalidated () = Atomic.incr n_invalidated

(* ------------------------------------------------------------------ *)
(* Freeze / validity                                                   *)
(* ------------------------------------------------------------------ *)

let vid_counter = Atomic.make 0

let freeze (c : Community.t) : t =
  if c.Community.journal <> None then
    invalid_arg "View.freeze: community has an open transaction";
  (* warm every dispatch cache now, on the owning domain, so thawed
     communities only ever read them *)
  if Dispatch.enabled c then Dispatch.stage_community c;
  let entries =
    Array.of_list
      (List.map
         (fun (o : Obj_state.t) ->
           {
             e_id = o.Obj_state.id;
             e_template = o.Obj_state.template;
             e_snap = Obj_state.snapshot o;
           })
         (Community.objects_sorted c))
  in
  Atomic.incr n_taken;
  {
    source = c;
    vid = Atomic.fetch_and_add vid_counter 1;
    v_schema_gen = !Community.schema_generation;
    v_version = c.Community.version;
    entries;
    v_extensions = c.Community.extensions;
    v_globals = c.Community.globals;
    v_config = c.Community.config;
    v_staged = c.Community.staged;
  }

let valid (v : t) : bool =
  v.source.Community.journal = None
  && v.v_schema_gen = !Community.schema_generation
  && v.v_version = v.source.Community.version

let source v = v.source
let n_objects v = Array.length v.entries
let version v = v.v_version

(* ------------------------------------------------------------------ *)
(* Thaw                                                                *)
(* ------------------------------------------------------------------ *)

let thaw (v : t) : Community.t =
  Atomic.incr n_thaws;
  let src = v.source in
  let objects = Hashtbl.create (max 16 (2 * Array.length v.entries)) in
  let index = ref Btree.empty in
  Array.iter
    (fun e ->
      let o = Obj_state.create e.e_id e.e_template in
      (* copy_snapshot: restore installs the snapshot arrays as the live
         ones, and probes mutate them in place — the frozen snapshot
         must keep private copies per thaw *)
      Obj_state.restore o (Obj_state.copy_snapshot e.e_snap);
      Hashtbl.replace objects e.e_id o;
      index := Btree.add !index (Ident.to_value e.e_id) o)
    v.entries;
  {
    Community.templates = src.Community.templates;
    enum_of_const = src.Community.enum_of_const;
    enum_defs = src.Community.enum_defs;
    objects;
    index = !index;
    extensions = v.v_extensions;
    globals = v.v_globals;
    journal = None;
    config = v.v_config;
    staged = v.v_staged;
    version = 0;
    commit_hook = None;
  }

(* Per-domain cache of recent thaws, keyed by [vid].  Refinement checks
   alternate between two views (abstract and concrete side) on every
   branch task, so a one-slot cache would thrash; four slots cover the
   realistic working set. *)
let max_cached = 4

let thaw_cache : (int * Community.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let take_upto n xs =
  List.filteri (fun i _ -> i < n) xs

let thaw_cached (v : t) : Community.t =
  let cache = Domain.DLS.get thaw_cache in
  match List.assoc_opt v.vid !cache with
  | Some c ->
      Atomic.incr n_thaw_hits;
      c
  | None ->
      let c = thaw v in
      cache := (v.vid, c) :: take_upto (max_cached - 1) !cache;
      c

(* ------------------------------------------------------------------ *)
(* State digests                                                       *)
(* ------------------------------------------------------------------ *)

(* Memo of quiescent digests, keyed by the same (schema generation,
   instance version) stamp pair {!valid} uses.  Per-domain (DLS) so
   pool workers never race on the list; communities mid-probe (open
   journal) bypass it entirely, because probe mutations do not bump the
   version. *)
let digest_memo : (Community.t * int * int * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let compute_digest (c : Community.t) : string =
  Digest.to_hex (Digest.string (Persist.save c))

let state_digest (c : Community.t) : string =
  if c.Community.journal <> None then compute_digest c
  else
    let memo = Domain.DLS.get digest_memo in
    let gen = !Community.schema_generation and ver = c.Community.version in
    match
      List.find_opt (fun (c', g, v, _) -> c' == c && g = gen && v = ver) !memo
    with
    | Some (_, _, _, d) -> d
    | None ->
        let d = compute_digest c in
        memo := (c, gen, ver, d) :: take_upto (max_cached - 1) !memo;
        d
