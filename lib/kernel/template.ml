(** Compiled templates.

    A template is the anonymous structure-and-behaviour pattern of §3:
    typed attributes, events with birth/death/active markers, valuation
    rules, calling rules, permissions and constraints.  Compilation
    (see {!Compile}) resolves types and translates permission guards and
    temporal constraints into {!Formula} terms over two kinds of atoms:
    state predicates and event-occurrence tests, which the engine
    monitors incrementally per object. *)

(* ------------------------------------------------------------------ *)
(* Atoms of monitored formulas                                         *)
(* ------------------------------------------------------------------ *)

(** Atomic propositions of monitored temporal formulas. *)
type apred =
  | P_state of Ast.formula
      (** a non-temporal state predicate, evaluated on the object's
          current attribute state (may contain bounded quantifiers) *)
  | P_occurs of Ast.event_term
      (** the event occurred in the step leading to the current state *)

type atom = {
  binds : (string * Value.t) list;
      (** instantiation of parameter / quantifier variables; added when a
          parametric monitor instance is spawned *)
  pred : apred;
}

let pp_apred ppf = function
  | P_state f -> Pretty.pp_formula ppf f
  | P_occurs e -> Format.fprintf ppf "after(%a)" Pretty.pp_event e

let pp_atom ppf { binds; pred } =
  if binds = [] then pp_apred ppf pred
  else
    Format.fprintf ppf "%a[%a]" pp_apred pred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf (v, x) -> Format.fprintf ppf "%s=%a" v Value.pp x))
      binds

(** Does an AST formula contain a temporal operator? *)
let rec is_temporal_ast (f : Ast.formula) =
  match f.f with
  | Ast.F_expr _ -> false
  | Ast.F_not g -> is_temporal_ast g
  | Ast.F_and (a, b) | Ast.F_or (a, b) | Ast.F_implies (a, b) ->
      is_temporal_ast a || is_temporal_ast b
  | Ast.F_sometime _ | Ast.F_always _ | Ast.F_since _ | Ast.F_previous _
  | Ast.F_after _ ->
      true
  | Ast.F_forall (_, g) | Ast.F_exists (_, g) -> is_temporal_ast g

(** Translate an AST formula into a monitored temporal formula.
    Maximal non-temporal subformulas become single state atoms, so the
    expression evaluator (which understands bounded quantifiers) handles
    them in one piece.  Quantifiers *around* temporal operators are not
    representable here — {!Compile} treats the outermost one as a
    parametric monitor and rejects deeper ones. *)
let rec to_temporal (f : Ast.formula) : atom Formula.t =
  if not (is_temporal_ast f) then
    Formula.Atom { binds = []; pred = P_state f }
  else
    match f.f with
    | Ast.F_not g -> Formula.Not (to_temporal g)
    | Ast.F_and (a, b) -> Formula.And (to_temporal a, to_temporal b)
    | Ast.F_or (a, b) -> Formula.Or (to_temporal a, to_temporal b)
    | Ast.F_implies (a, b) -> Formula.Implies (to_temporal a, to_temporal b)
    | Ast.F_sometime g -> Formula.Sometime (to_temporal g)
    | Ast.F_always g -> Formula.Always (to_temporal g)
    | Ast.F_since (a, b) -> Formula.Since (to_temporal a, to_temporal b)
    | Ast.F_previous g -> Formula.Previous (to_temporal g)
    | Ast.F_after ev -> Formula.Atom { binds = []; pred = P_occurs ev }
    | Ast.F_expr _ -> assert false (* non-temporal, caught above *)
    | Ast.F_forall _ | Ast.F_exists _ ->
        Runtime_error.fail
          (Runtime_error.Unsupported
             "quantifier around temporal operators must be outermost")

(** Instantiate a compiled formula's atoms with quantifier bindings. *)
let instantiate (binds : (string * Value.t) list) (f : atom Formula.t) :
    atom Formula.t =
  Formula.map (fun a -> { a with binds = binds @ a.binds }) f

(* ------------------------------------------------------------------ *)
(* Template components                                                 *)
(* ------------------------------------------------------------------ *)

type attr_def = {
  at_name : string;
  at_type : Vtype.t;
  at_params : Vtype.t list;  (** non-empty only for derived attributes *)
  at_derived : Ast.derivation_rule option;
  at_constant : bool;
}

type event_def = {
  ed_name : string;
  ed_params : Vtype.t list;
  ed_kind : Ast.event_kind;
  ed_active : bool;
  ed_born_by : Ast.event_term option;
      (** phase birth triggered by a base-object event *)
}

(** How a permission guard is checked. *)
type pguard =
  | PG_state of Ast.formula
      (** non-temporal: evaluated directly on the pre-state *)
  | PG_closed of atom Formula.t * atom Monitor.compiled
      (** temporal, no free variables: one monitor per object *)
  | PG_indexed of {
      ix_vars : string list;  (** pattern variables the guard mentions *)
      ix_body : atom Formula.t;
      ix_compiled : atom Monitor.compiled;
    }
      (** temporal with free pattern variables (e.g. [sometime(after(
          hire(P)))] guarding [fire(P)]): one monitor instance per
          observed instantiation *)
  | PG_quant of {
      q_quant : [ `Forall | `Exists ];
      q_var : string;
      q_class : string;  (** quantification over the class extension *)
      q_body : atom Formula.t;
      q_compiled : atom Monitor.compiled;
    }
      (** outermost class quantifier around a temporal body *)

type permission = {
  pm_event : string;
  pm_args : Ast.expr list;  (** binding pattern *)
  pm_guard : pguard;
  pm_text : string;  (** for diagnostics *)
}

type constraint_def =
  | K_static of Ast.formula  (** must hold in every state *)
  | K_temporal of atom Formula.t * atom Monitor.compiled * string
      (** monitored; must hold at every instant *)

(** Interned attribute slots: every declared attribute gets a fixed
    integer index, so object states store a [Value.t array] instead of a
    string map (see {!Obj_state}).  Built lazily from [t_attrs] and
    cached; the template record stays buildable as a plain literal. *)
type slots = {
  slot_names : string array;  (** declaration order *)
  slot_index : (string, int) Hashtbl.t;
}

(** Staging hook: the dispatch layer ({!Dispatch}) caches its per-event
    rule indexes and compiled evaluators on the template through this
    extensible type, without the template layer depending on the
    evaluator. *)
type staged = ..

type t = {
  t_name : string;
  t_kind : [ `Class | `Single ];
  t_id_fields : (string * Vtype.t) list;
  t_view_of : string option;
  t_spec_of : string option;
  t_attrs : attr_def list;
  t_events : event_def list;
  t_valuations : Ast.valuation_rule list;
  t_callings : Ast.calling_rule list;
  t_perms : permission list;
  t_constraints : constraint_def list;
  t_vars : (string * Vtype.t) list;
      (** declared rule variables: names that act as binders in event
          patterns *)
  mutable t_slots : slots option;  (** lazy: see {!slots} *)
  mutable t_staged : staged option;  (** owned by the dispatch layer *)
}

let slots t =
  match t.t_slots with
  | Some s -> s
  | None ->
      let names = Array.of_list (List.map (fun a -> a.at_name) t.t_attrs) in
      let index = Hashtbl.create (max 4 (Array.length names)) in
      Array.iteri
        (fun i n -> if not (Hashtbl.mem index n) then Hashtbl.add index n i)
        names;
      let s = { slot_names = names; slot_index = index } in
      t.t_slots <- Some s;
      s

let n_slots t = Array.length (slots t).slot_names
let slot_of t name = Hashtbl.find_opt (slots t).slot_index name
let slot_name t i = (slots t).slot_names.(i)

let find_attr t name =
  List.find_opt (fun a -> String.equal a.at_name name) t.t_attrs

let find_event t name =
  List.find_opt (fun e -> String.equal e.ed_name name) t.t_events

let birth_events t =
  List.filter (fun e -> e.ed_kind = Ast.Ev_birth) t.t_events

let death_events t =
  List.filter (fun e -> e.ed_kind = Ast.Ev_death) t.t_events

let is_var t name = List.mem_assoc name t.t_vars

(** Permissions guarding a given event name. *)
let perms_for t ev_name =
  List.filter (fun p -> String.equal p.pm_event ev_name) t.t_perms
