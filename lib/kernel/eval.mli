(** Evaluation of expressions, state formulas and event patterns against
    a community.

    Name resolution follows TROLL scoping: a bare name is a bound
    variable, then an attribute of the current object (including
    attributes inherited from base aspects), then an enumeration
    constant, then a class (its extension as a set of surrogates — or,
    for single objects, the surrogate itself).  [surrogate] is a
    built-in pseudo attribute denoting the own identity.  Errors are
    reported through {!Runtime_error}. *)

val key_of_value : string -> Value.t -> Ident.t
(** Interpret a value as an identity for the class: surrogates pass
    through (their key is extracted), anything else is the raw key. *)

val read_attr : Community.t -> Obj_state.t -> string -> Value.t list -> Value.t
(** Observe an attribute: derived attributes evaluate their derivation
    rule (with the given arguments as parameters); lookups delegate
    upward through [view of]/[specialization of] chains.  Raises on
    unknown attributes. *)

val base_object : Community.t -> Obj_state.t -> Obj_state.t option
(** The base aspect (same key, base class), if registered. *)

val resolve_ref :
  Community.t -> env:Env.t -> self:Obj_state.t option -> Ast.obj_ref -> Ident.t
(** Resolve [self], variables, component aliases, incorporated-object
    aliases, single-object names, and [CLASS(key)] references. *)

val expr :
  Community.t -> env:Env.t -> self:Obj_state.t option -> Ast.expr -> Value.t

val formula_state :
  Community.t -> env:Env.t -> self:Obj_state.t option -> Ast.formula -> bool
(** Evaluate a non-temporal formula on the current state.  Bounded
    quantifiers range over class extensions and finite types; [exists]
    over infinite base types is solved by witness extraction from
    membership/equality constraints on the bound variable.  Raises on
    temporal operators (those live in compiled monitors). *)

val query :
  Community.t -> env:Env.t -> self:Obj_state.t option -> Ast.query -> Value.t
(** The embedded object query algebra; inside [select] conditions the
    element's tuple fields (and [it], the element itself) are in
    scope. *)

val match_args :
  Community.t ->
  env:Env.t ->
  self:Obj_state.t option ->
  vars:string list ->
  Ast.expr list ->
  Value.t list ->
  Env.t option
(** Unify pattern argument expressions against actual values: a bare
    declared variable binds, anything else evaluates and compares. *)

val match_local_event :
  Community.t ->
  Obj_state.t ->
  env:Env.t ->
  vars:string list ->
  Ast.event_term ->
  Event.t ->
  Env.t option
(** Match an event pattern (rule heads, permissions, [after(…)] atoms)
    against an occurred event of the object. *)

(** {1 Compiled evaluators}

    Expressions, formulas and event patterns can be staged into closures
    with static decisions (attribute slots, enum constants, class-ness,
    literals) taken once at compile time.  Compiled closures capture
    schema facts but never a community — the community is a runtime
    argument, so clones evaluate against their own state.  {!Dispatch}
    owns cache invalidation via [Community.schema_generation]. *)

type compiled_expr = Community.t -> Env.t -> Obj_state.t option -> Value.t
type compiled_formula = Community.t -> Env.t -> Obj_state.t option -> bool

val fallback_count : int ref
(** Compiled evaluations that fell back to the interpreter (dynamic name
    resolution, queries, quantifiers). *)

val compile_expr :
  Community.t -> tpl:Template.t option -> Ast.expr -> compiled_expr
(** Compile against the schema of the given community; [tpl] is the
    template whose objects will be [self] (slot resolution), [None] for
    self-free contexts such as global interaction guards. *)

val compile_formula :
  Community.t -> tpl:Template.t option -> Ast.formula -> compiled_formula
(** Non-temporal connectives compile to closures; quantifiers fall back
    to {!formula_state}; temporal operators raise as in the
    interpreter. *)

(** One compiled pattern argument: a binder or an expression compared
    against the actual value. *)
type compiled_arg =
  | CA_bind of string
  | CA_expr of compiled_expr

type compiled_pattern = {
  cp_name : string;
  cp_target : Ast.obj_ref option;
      (** [None] covers both "no target" and [self] *)
  cp_args : compiled_arg list;
  cp_nargs : int;
}

val compile_args :
  Community.t ->
  tpl:Template.t option ->
  vars:string list ->
  Ast.expr list ->
  compiled_arg list

val compile_pattern :
  Community.t ->
  tpl:Template.t option ->
  vars:string list ->
  Ast.event_term ->
  compiled_pattern

val match_compiled_args :
  Community.t ->
  env:Env.t ->
  self:Obj_state.t option ->
  compiled_arg list ->
  int ->
  Value.t list ->
  Env.t option
(** Compiled counterpart of {!match_args}: binders bind on first
    occurrence and compare afterwards. *)

val match_compiled_event :
  Community.t ->
  Obj_state.t ->
  env:Env.t ->
  compiled_pattern ->
  Event.t ->
  Env.t option
(** Compiled counterpart of {!match_local_event}. *)
