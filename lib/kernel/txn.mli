(** Journaled transactions over a {!Community}: the single owner of
    runtime-state mutation and rollback.

    Every event attempt runs inside a transaction.  Mutations — object
    fields (via {!touch} + direct writes), object creation/destruction,
    class extensions, the ordered storage index — are recorded in the
    community's journal, a LIFO undo log of O(1) pointer saves.
    Rollback undoes the log newest-first and restores the society
    exactly.

    Scopes nest: [begin_] under an open journal, {!savepoint}, and
    {!probe} each mark the current journal length and unwind back to it,
    so a micro-step of a transaction-calling cascade can roll back
    individually before the whole attempt aborts.  Only the outermost
    transaction owns the journal slot.

    {!probe} answers speculative questions ("would this event be
    accepted?") in O(touched state); compare {!Community.clone}, which
    is O(society) and reserved for genuine branching exploration. *)

type t
(** An open transaction scope. *)

val begin_ : Community.t -> t
(** Open a scope.  Installs a fresh journal, or nests inside the open
    one. *)

val commit : t -> unit
(** Close the scope keeping its effects.  A nested commit keeps the
    journal entries: the outer scope may still roll everything back. *)

val rollback : t -> unit
(** Undo everything recorded since the scope opened and close it. *)

val touch : t -> Obj_state.t -> unit
(** Snapshot the object before mutating it.  Deduplicated per scope: a
    second [touch] of the same object in the same scope is free. *)

val note_created : t -> Ident.t -> unit
val note_destroyed : t -> Ident.t -> unit

val created : t -> Ident.t list
(** Objects noted as created in this scope, oldest first. *)

val destroyed : t -> Ident.t list
(** Objects noted as destroyed in this scope, oldest first. *)

(** {1 Savepoints} *)

type savepoint

val savepoint : t -> savepoint
(** Mark the current journal position (and created/destroyed lists). *)

val rollback_to : t -> savepoint -> unit
(** Undo back to the mark, keeping the scope open.  Savepoints unwind in
    LIFO order: rolling back to an early savepoint discards later
    ones. *)

(** {1 Probes} *)

val probe : Community.t -> (unit -> 'a) -> 'a
(** [probe c f] runs [f] inside a scope that is {e always} rolled back,
    leaving [c] bit-identical; the result (or exception) of [f] is
    passed through.  Nests freely inside open transactions and other
    probes. *)

(** {1 Statistics} *)

type stats = {
  begun : int;
  committed : int;
  rolled_back : int;
  savepoints : int;
  savepoint_rollbacks : int;
  probes : int;
  journal_entries : int;
  bytes_snapshotted : int;
}

val stats : unit -> stats
(** Process-wide counters since start (or the last {!reset_stats}).
    Journal-entry and byte totals are accounted when the owning
    transaction closes. *)

val reset_stats : unit -> unit
val pp_stats : Format.formatter -> stats -> unit
