(** Compiled templates: the anonymous structure-and-behaviour patterns
    of §3, with permissions and temporal constraints translated into
    monitored {!Formula} terms.

    The record types are transparent: the formal layer
    ([troll_morphism]) and tests build templates directly, and
    {!Compile} produces them from checked AST declarations. *)

(** {1 Atoms of monitored formulas} *)

type apred =
  | P_state of Ast.formula
      (** a non-temporal state predicate, evaluated on the object's
          current attribute state (may contain bounded quantifiers) *)
  | P_occurs of Ast.event_term
      (** the event occurred in the step leading to the current state *)

type atom = {
  binds : (string * Value.t) list;
      (** instantiation of parameter/quantifier variables, added when a
          parametric monitor instance is spawned *)
  pred : apred;
}

val pp_apred : Format.formatter -> apred -> unit
val pp_atom : Format.formatter -> atom -> unit

val is_temporal_ast : Ast.formula -> bool
(** Does the AST formula contain a temporal operator? *)

val to_temporal : Ast.formula -> atom Formula.t
(** Translate an AST formula into a monitored temporal formula; maximal
    non-temporal subformulas become single state atoms.  Raises
    {!Runtime_error.Error} on quantifiers strictly inside temporal
    operators (only the outermost position is executable). *)

val instantiate : (string * Value.t) list -> atom Formula.t -> atom Formula.t
(** Attach quantifier bindings to every atom. *)

(** {1 Template components} *)

type attr_def = {
  at_name : string;
  at_type : Vtype.t;
  at_params : Vtype.t list;  (** non-empty only for derived attributes *)
  at_derived : Ast.derivation_rule option;
  at_constant : bool;
}

type event_def = {
  ed_name : string;
  ed_params : Vtype.t list;
  ed_kind : Ast.event_kind;
  ed_active : bool;
  ed_born_by : Ast.event_term option;
      (** phase birth triggered by a base-object event *)
}

(** How a permission guard is checked (see docs/SEMANTICS.md §3). *)
type pguard =
  | PG_state of Ast.formula
      (** non-temporal: evaluated directly on the pre-state *)
  | PG_closed of atom Formula.t * atom Monitor.compiled
      (** temporal, no free variables: one monitor per object *)
  | PG_indexed of {
      ix_vars : string list;
      ix_body : atom Formula.t;
      ix_compiled : atom Monitor.compiled;
    }
      (** temporal with free pattern variables: one monitor instance per
          observed instantiation *)
  | PG_quant of {
      q_quant : [ `Forall | `Exists ];
      q_var : string;
      q_class : string;
      q_body : atom Formula.t;
      q_compiled : atom Monitor.compiled;
    }  (** outermost class quantifier around a temporal body *)

type permission = {
  pm_event : string;
  pm_args : Ast.expr list;  (** binding pattern *)
  pm_guard : pguard;
  pm_text : string;  (** for diagnostics *)
}

type constraint_def =
  | K_static of Ast.formula  (** must hold in every state *)
  | K_temporal of atom Formula.t * atom Monitor.compiled * string
      (** monitored; must hold at every instant *)

(** Interned attribute slots: one fixed integer index per declared
    attribute, backing the [Value.t array] storage of {!Obj_state}. *)
type slots = {
  slot_names : string array;  (** declaration order *)
  slot_index : (string, int) Hashtbl.t;
}

(** Staging hook for the dispatch layer: {!Dispatch} extends this type
    with its per-event rule indexes and compiled evaluators, cached on
    the template without a dependency of this layer on the evaluator. *)
type staged = ..

type t = {
  t_name : string;
  t_kind : [ `Class | `Single ];
  t_id_fields : (string * Vtype.t) list;
  t_view_of : string option;
  t_spec_of : string option;
  t_attrs : attr_def list;
  t_events : event_def list;
  t_valuations : Ast.valuation_rule list;
  t_callings : Ast.calling_rule list;
  t_perms : permission list;
  t_constraints : constraint_def list;
  t_vars : (string * Vtype.t) list;
      (** declared rule variables (binders in event patterns) *)
  mutable t_slots : slots option;  (** lazily built slot table *)
  mutable t_staged : staged option;  (** owned by the dispatch layer *)
}

val slots : t -> slots
(** The slot table, built from [t_attrs] on first use and cached. *)

val n_slots : t -> int
val slot_of : t -> string -> int option
val slot_name : t -> int -> string

val find_attr : t -> string -> attr_def option
val find_event : t -> string -> event_def option
val birth_events : t -> event_def list
val death_events : t -> event_def list
val is_var : t -> string -> bool
val perms_for : t -> string -> permission list
