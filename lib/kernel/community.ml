(** The object community: all living objects, class extensions, global
    interaction rules and enumeration definitions of one specification.

    A community is what the paper calls an object society — "a (possibly
    large) collection of objects that interact".  Classes are themselves
    treated as (implicit) objects with standard items: the extension of
    each class is maintained here, with insertion/deletion performed by
    birth/death events (the paper's "standard class items … provided
    implicitly"). *)

module Smap = Map.Make (String)

type config = {
  record_history : bool;
      (** store per-object traces (needed by the naive permission checker
          and the E4 ablation benchmark) *)
  max_sync_set : int;
      (** safety bound on the event-calling closure, to detect cycles *)
  compiled_dispatch : bool;
      (** use the staged per-event rule indexes and compiled evaluators
          ({!Dispatch}); off = the fully interpreted reference path *)
}

let default_config =
  { record_history = false; max_sync_set = 4096; compiled_dispatch = true }

(** Staged dispatch state attached to a community by higher layers
    (extended and consumed by {!Dispatch}; kept abstract here to avoid a
    dependency cycle). *)
type staged = ..

(** Bumped whenever any community's schema-level data (templates, enums,
    globals) changes.  Staged caches stamp themselves with the
    generation they were built at and rebuild on mismatch; a global
    counter is sound (cross-community invalidation only costs a rebuild)
    and survives {!clone}, which shares the template table. *)
let schema_generation = ref 0

type global_rule = {
  gr_vars : (string * Vtype.t) list;
  gr_rule : Ast.calling_rule;
}

(** One undoable mutation of runtime state.  Entries are recorded newest
    first while a journal is open (see {!Txn}); undoing them in LIFO
    order restores the community exactly.  Attribute maps, monitor
    states, extensions and the object index are immutable values held in
    mutable slots, so every entry is an O(1) pointer (or shallow-copy)
    save. *)
type journal_entry =
  | J_obj of Obj_state.t * Obj_state.snapshot
      (** object about to be mutated: restore its fields *)
  | J_register of Ident.t  (** object was registered: remove it again *)
  | J_remove of Obj_state.t  (** object was removed: put it back *)
  | J_extensions of Ident.Set.t Smap.t  (** previous extensions map *)

(** The open journal of a community.  [entries]/[count] are the live
    undo log; [total]/[bytes] count everything ever recorded (for the
    statistics); [touched]/[epoch] implement per-scope snapshot
    deduplication — an object is re-snapshotted only when a new scope
    (transaction, savepoint or probe) has opened since its last
    snapshot. *)
type journal = {
  mutable entries : journal_entry list;  (** newest first *)
  mutable count : int;  (** = length of [entries] *)
  mutable total : int;  (** entries ever recorded *)
  mutable bytes : int;  (** approx. bytes snapshotted *)
  touched : (Ident.t, int) Hashtbl.t;  (** object → epoch of last snap *)
  mutable epoch : int;
}

type t = {
  templates : (string, Template.t) Hashtbl.t;
  enum_of_const : (string, string) Hashtbl.t;  (** constant → enum name *)
  enum_defs : (string, string list) Hashtbl.t;  (** enum name → constants *)
  objects : (Ident.t, Obj_state.t) Hashtbl.t;
  mutable index : Obj_state.t Btree.t;
      (** ordered object index (storage layer), keyed by identity value;
          kept in sync with [objects] and rolled back through the same
          journal *)
  mutable extensions : Ident.Set.t Smap.t;  (** class → living members *)
  mutable globals : global_rule list;
  mutable journal : journal option;
      (** open transaction journal; managed by {!Txn}, fed by the
          mutators below *)
  config : config;
  mutable staged : staged option;
      (** community-level dispatch index, built lazily by {!Dispatch} *)
  mutable version : int;
      (** instance-state version: bumped on every committed transaction
          and on every direct (journal-less) mutation, so a frozen
          {!View} can tell cheaply whether this community still looks
          the way it did at freeze time.  Rollbacks restore state
          exactly and do not bump. *)
  mutable commit_hook : (journal -> unit) option;
      (** called by {!Txn.commit} of the owning scope, after the state
          is final but before the journal is released, whenever any
          entries survived — the redo-log side of the journal ({!Wal}
          derives the committed effect delta from it).  Never called on
          rollbacks or probes. *)
}

let create ?(config = default_config) () =
  {
    templates = Hashtbl.create 16;
    enum_of_const = Hashtbl.create 16;
    enum_defs = Hashtbl.create 16;
    objects = Hashtbl.create 64;
    index = Btree.empty;
    extensions = Smap.empty;
    globals = [];
    journal = None;
    config;
    staged = None;
    version = 0;
    commit_hook = None;
  }

let bump_version t = t.version <- t.version + 1

(* ------------------------------------------------------------------ *)
(* Journal plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let journal_record t e =
  match t.journal with
  | None -> ()
  | Some j ->
      j.entries <- e :: j.entries;
      j.count <- j.count + 1;
      j.total <- j.total + 1

(** Undo one entry.  Mutates the raw fields directly: undoing must never
    journal. *)
let undo_entry t = function
  | J_obj (o, s) -> Obj_state.restore o s
  | J_register id ->
      Hashtbl.remove t.objects id;
      t.index <- Btree.remove t.index (Ident.to_value id)
  | J_remove o ->
      Hashtbl.replace t.objects o.Obj_state.id o;
      t.index <- Btree.add t.index (Ident.to_value o.Obj_state.id) o
  | J_extensions ext -> t.extensions <- ext

let add_template t (tpl : Template.t) =
  Hashtbl.replace t.templates tpl.Template.t_name tpl;
  incr schema_generation;
  t.staged <- None;
  bump_version t

let find_template t name = Hashtbl.find_opt t.templates name

let template_exn t name =
  match find_template t name with
  | Some tpl -> tpl
  | None -> Runtime_error.fail (Runtime_error.Unknown_class name)

let is_class t name = Hashtbl.mem t.templates name

let add_enum t name consts =
  Hashtbl.replace t.enum_defs name consts;
  List.iter (fun c -> Hashtbl.replace t.enum_of_const c name) consts;
  incr schema_generation;
  t.staged <- None;
  bump_version t

let enum_of_const t c = Hashtbl.find_opt t.enum_of_const c
let enum_consts t name = Hashtbl.find_opt t.enum_defs name

let add_global t ~vars rule =
  t.globals <- t.globals @ [ { gr_vars = vars; gr_rule = rule } ];
  incr schema_generation;
  t.staged <- None;
  bump_version t

let find_object t id = Hashtbl.find_opt t.objects id

let object_exn t id =
  match find_object t id with
  | Some o -> o
  | None -> Runtime_error.fail (Runtime_error.Unknown_object id)

(** Living instance, following no inheritance: exact aspect lookup. *)
let living t id =
  match find_object t id with
  | Some o when o.Obj_state.alive -> Some o
  | _ -> None

let register_object t (o : Obj_state.t) =
  journal_record t (J_register o.Obj_state.id);
  if t.journal = None then bump_version t;
  Hashtbl.replace t.objects o.Obj_state.id o;
  t.index <- Btree.add t.index (Ident.to_value o.Obj_state.id) o

let remove_object t id =
  (match Hashtbl.find_opt t.objects id with
  | Some o -> journal_record t (J_remove o)
  | None -> ());
  if t.journal = None then bump_version t;
  Hashtbl.remove t.objects id;
  t.index <- Btree.remove t.index (Ident.to_value id)

(** Current extension (living members) of a class. *)
let extension t cls =
  match Smap.find_opt cls t.extensions with
  | Some s -> s
  | None -> Ident.Set.empty

let extension_add t id =
  journal_record t (J_extensions t.extensions);
  if t.journal = None then bump_version t;
  t.extensions <-
    Smap.update id.Ident.cls
      (fun s ->
        Some (Ident.Set.add id (Option.value ~default:Ident.Set.empty s)))
      t.extensions

let extension_remove t id =
  journal_record t (J_extensions t.extensions);
  if t.journal = None then bump_version t;
  t.extensions <-
    Smap.update id.Ident.cls
      (function None -> None | Some s -> Some (Ident.Set.remove id s))
      t.extensions

(** The chain of base templates of a class: the class itself first, then
    its [view of] / [specialization of] ancestors upward. *)
let base_chain t cls =
  let rec go acc name =
    match find_template t name with
    | None -> List.rev acc
    | Some tpl -> (
        let acc = tpl :: acc in
        match (tpl.Template.t_view_of, tpl.Template.t_spec_of) with
        | Some base, _ | None, Some base ->
            if List.exists (fun x -> String.equal x.Template.t_name base) acc
            then List.rev acc (* defensive: cyclic hierarchy *)
            else go acc base
        | None, None -> List.rev acc)
  in
  go [] cls

(** Classes having [cls] as direct base by static specialization — their
    instances must be created together with the base aspect. *)
let specializations_of t cls =
  Hashtbl.fold
    (fun _ tpl acc ->
      match tpl.Template.t_spec_of with
      | Some base when String.equal base cls -> tpl :: acc
      | _ -> acc)
    t.templates []

(** Phase classes whose birth is called by an event of [cls]. *)
let phases_born_by t cls ev_name =
  Hashtbl.fold
    (fun _ tpl acc ->
      let matching =
        List.filter_map
          (fun (ed : Template.event_def) ->
            match ed.ed_born_by with
            | Some { Ast.target = Some (Ast.OR_name base); ev_name = base_ev; _ }
              when String.equal base cls && String.equal base_ev ev_name ->
                Some ed
            | _ -> None)
          tpl.Template.t_events
      in
      List.map (fun ed -> (tpl, ed)) matching @ acc)
    t.templates []

(** Deep copy for genuine branching exploration — keeping several
    divergent futures alive at once.  Object states are duplicated,
    templates and rules are shared (immutable); the copy starts with no
    open journal.  For speculative "try and roll back" questions use
    {!Txn.probe} instead: it is O(touched state), not O(society). *)
let clone t =
  let objects = Hashtbl.create (Hashtbl.length t.objects) in
  let index = ref Btree.empty in
  Hashtbl.iter
    (fun id (o : Obj_state.t) ->
      let o' = Obj_state.create id o.Obj_state.template in
      Obj_state.restore o' (Obj_state.snapshot o);
      Hashtbl.replace objects id o';
      index := Btree.add !index (Ident.to_value id) o')
    t.objects;
  {
    templates = t.templates;
    enum_of_const = t.enum_of_const;
    enum_defs = t.enum_defs;
    objects;
    index = !index;
    extensions = t.extensions;
    globals = t.globals;
    journal = None;
    config = t.config;
    staged = t.staged;
    version = 0;
    commit_hook = None;
  }

(** Drop every object, extension and index entry (templates, enums and
    globals stay).  Used when reloading persisted state; must not be
    called with an open journal. *)
let reset_instance_state t =
  Hashtbl.reset t.objects;
  t.index <- Btree.empty;
  t.extensions <- Smap.empty;
  bump_version t

let iter_objects t f = Hashtbl.iter (fun _ o -> f o) t.objects

(** All objects in identity order, straight off the ordered index. *)
let objects_sorted t = List.map snd (Btree.bindings t.index)

let living_objects t =
  Hashtbl.fold
    (fun _ o acc -> if o.Obj_state.alive then o :: acc else acc)
    t.objects []

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  (* the index orders by identity value = (class, key), i.e. exactly
     [Ident.compare] *)
  List.iter (fun o -> Format.fprintf ppf "%a@," Obj_state.pp o) (objects_sorted t);
  Format.fprintf ppf "@]"
