(** First-class committed effects: the redo-log view of the {!Txn}
    journal.

    {!delta} folds the surviving undo entries of a committed transaction
    into a forward effect record (state images, not operations);
    {!encode}/{!decode} give the records a line-based text codec; and
    {!apply} replays a record against a community compiled from the same
    specification.  The undo log and the redo log are two consumers of
    one journal stream; {!Wal} frames encoded records on disk.  See
    [docs/PERSISTENCE.md] for the format. *)

(** One committed, replayable mutation.  Monitor states travel as
    subformula truth vectors ({!Monitor.state_to_bools}), like in
    {!Persist}; class extensions are not represented — replay re-derives
    them from [E_life] (membership is a function of [alive]). *)
type eff =
  | E_register of Ident.t  (** object (re)entered the object table *)
  | E_unregister of Ident.t  (** object left the object table *)
  | E_life of Ident.t * bool * bool  (** new (alive, dead) — birth/death *)
  | E_attr of Ident.t * string * Value.t  (** attribute write (new value) *)
  | E_perm_closed of Ident.t * int * bool array option
      (** closed permission monitor advanced to this truth vector *)
  | E_perm_indexed of Ident.t * int * (Value.t list * bool array) list
      (** indexed/quantified permission monitor: full instance table *)
  | E_constr of Ident.t * int * bool array option
      (** temporal-constraint monitor advanced to this truth vector *)
  | E_steps of Ident.t * int  (** life-cycle step counter *)

val delta : Community.t -> Community.journal -> eff list
(** The committed effect delta of a transaction: per touched object, the
    oldest journal snapshot (state at transaction entry) diffed against
    the committed state.  Call from the community's [commit_hook], i.e.
    after the final mutation and before the journal is released.  May
    over-emit (an unchanged value that was re-written), never
    under-emits; effects are state images, so replay is idempotent.
    Objects appear in first-touch (chronological) order — deterministic
    for a deterministic step, and replay does not depend on cross-object
    order. *)

val encode : eff list -> string
(** Line-based text payload ([|]-separated fields, values via
    {!Value_codec}), effects grouped under [obj] context lines.  A
    steps effect opening an object's group is folded into its context
    line ([obj|CLS|key|steps]) — the step counter bumps for essentially
    every touched object, so this halves the per-object framing on
    typical commits. *)

val encode_delta : Community.t -> Community.journal -> Buffer.t -> int
(** [encode (delta c j)] fused into one diff-and-serialise pass with no
    intermediate effect list, appended to a caller-provided (reusable)
    buffer; returns the effect count.  The {!Wal} commit hook's fast
    path. *)

val decode : string -> (eff list, string) result

val apply : Community.t -> eff list -> (unit, string) result
(** Replay effects in order.  Requires a community compiled from the
    same specification, without an open journal.  Class extensions are
    re-derived from life-cycle transitions, exactly as {!Persist.load}
    re-derives them from the dumped stage. *)
